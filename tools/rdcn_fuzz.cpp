// rdcn_fuzz — differential fuzz driver.
//
// Sweeps seed-derived random scenarios (batch) and stream specs through
// the check/ differential validator: every registered policy runs under
// the per-step invariant audit, batch and streaming modes are compared
// packet for packet, costs are cross-checked against the first-principles
// recomputations, the brute-force optimum, the trivial bound and ALG's
// charging / dual-witness / LP certificates. Any violation is a proven
// bug. On failure the driver shrinks the seed's workload to a minimal
// reproducer (check::minimize_seed) and prints a ready-to-paste gtest
// case for tests/test_check.cpp.
//
//   rdcn_fuzz [--seeds N] [--base S] [--mode batch|stream|both]
//             [--policies a,b,...] [--minimize 0|1] [--verbose]
//             [--inject-transient N]
//
// Failure classification (util/fault.hpp): transient infrastructure
// failures (TransientError / CancelledError) are retried once with the
// same seed before reporting -- a fuzz sweep on a flaky box should not
// burn a whole run on one hiccup -- while deterministic check failures
// (report violations, logic_error, anything else) are never retried:
// retrying a proven bug would just hide it. --inject-transient N makes
// the first N checks throw a TransientError (test hook for the retry
// path; with retry, a clean sweep stays clean).
//
// Exit status: 0 = clean sweep, 1 = violations found, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/minimize.hpp"
#include "run/policies.hpp"
#include "util/fault.hpp"

namespace {

using namespace rdcn;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: rdcn_fuzz [--seeds N] [--base S] [--mode batch|stream|both]\n"
               "                 [--policies a,b,...] [--minimize 0|1] [--verbose]\n"
               "                 [--inject-transient N]\n");
  std::exit(2);
}

std::uint64_t parse_count(const std::string& text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "rdcn_fuzz: not a number: '%s'\n", text.c_str());
    usage();
  }
  return value;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string part = csv.substr(begin, comma - begin);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

struct Totals {
  std::size_t scenarios = 0;
  std::size_t checks = 0;
  std::size_t skipped = 0;
  std::size_t failures = 0;
  std::size_t transient_retries = 0;
};

/// --inject-transient budget: the first N checks throw before running.
std::uint64_t inject_transient = 0;

/// Runs one differential check, retrying a transient infrastructure
/// failure once with the same seed. Deterministic failures -- check
/// violations inside the report, logic_error, any other exception --
/// are never retried; non-transient exceptions propagate and crash the
/// sweep loudly (they are bugs in the harness, not in the policies).
template <typename CheckFn>
check::DiffReport run_check(const char* kind, std::uint64_t seed, Totals& totals,
                            const CheckFn& check) {
  for (int attempt = 1;; ++attempt) {
    try {
      if (inject_transient > 0) {
        --inject_transient;
        throw TransientError("injected transient infrastructure failure");
      }
      return check();
    } catch (...) {
      const std::exception_ptr failure = std::current_exception();
      if (!is_transient_failure(failure) || attempt >= 2) throw;
      const FailureInfo info = describe_failure(failure);
      std::fprintf(stderr,
                   "rdcn_fuzz: transient failure on %s seed %llu (%s: %s); retrying\n",
                   kind, static_cast<unsigned long long>(seed), info.type.c_str(),
                   info.message.c_str());
      ++totals.transient_retries;
    }
  }
}

void report_failure(const char* kind, std::uint64_t seed, const check::DiffReport& report,
                    bool minimize, const check::DiffOptions& options) {
  std::printf("\nFAIL %s seed %llu (%zu violations):\n", kind,
              static_cast<unsigned long long>(seed), report.violations.size());
  for (const std::string& violation : report.violations) {
    std::printf("  * %s\n", violation.c_str());
  }
  if (!minimize) return;
  const check::MinimizedRepro repro =
      std::strcmp(kind, "stream") == 0 ? check::minimize_stream_seed(seed, options)
                                       : check::minimize_batch_seed(seed, options);
  if (!repro.still_failing()) {
    std::printf("  (seed no longer fails under re-derivation; flaky environment?)\n");
    return;
  }
  std::printf("  minimized: %zu -> %zu %s", repro.original_size, repro.size,
              repro.stream ? "measured packets" : "packets");
  if (!repro.failing_neighbors.empty()) {
    std::printf("; failing neighbor seeds:");
    for (const std::uint64_t neighbor : repro.failing_neighbors) {
      std::printf(" %llu", static_cast<unsigned long long>(neighbor));
    }
  }
  std::printf("\n  ready-to-paste regression test (tests/test_check.cpp):\n\n%s\n",
              repro.ctest_case.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 50;
  std::uint64_t base = 1;
  std::string mode = "both";
  bool minimize = true;
  bool verbose = false;
  check::DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = parse_count(next());
    } else if (arg == "--base") {
      base = parse_count(next());
    } else if (arg == "--mode") {
      mode = next();
      if (mode != "batch" && mode != "stream" && mode != "both") usage();
    } else if (arg == "--policies") {
      options.policies = split_csv(next());
      for (const std::string& name : options.policies) {
        try {
          (void)named_policy(name);
        } catch (const std::invalid_argument& error) {
          std::fprintf(stderr, "rdcn_fuzz: %s\n", error.what());
          usage();
        }
      }
    } else if (arg == "--minimize") {
      minimize = next() != "0";
    } else if (arg == "--inject-transient") {
      inject_transient = parse_count(next());
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      usage();
    }
  }

  std::printf("rdcn_fuzz: %llu seeds from %llu, mode %s, %zu policies\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(base), mode.c_str(),
              (options.policies.empty() ? policy_names() : options.policies).size());

  Totals totals;
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    if (mode != "stream") {
      const check::DiffReport report = run_check("batch", seed, totals, [&]() {
        return check::check_scenario_seed(seed, 0, options);
      });
      ++totals.scenarios;
      totals.checks += report.checks;
      totals.skipped += report.skipped.size();
      if (!report.ok()) {
        ++totals.failures;
        report_failure("batch", seed, report, minimize, options);
      } else if (verbose) {
        std::printf("ok batch seed %llu (%zu checks)\n",
                    static_cast<unsigned long long>(seed), report.checks);
      }
    }
    if (mode != "batch") {
      const check::DiffReport report = run_check("stream", seed, totals, [&]() {
        return check::check_stream_seed(seed, 0, true, options);
      });
      ++totals.scenarios;
      totals.checks += report.checks;
      totals.skipped += report.skipped.size();
      if (!report.ok()) {
        ++totals.failures;
        report_failure("stream", seed, report, minimize, options);
      } else if (verbose) {
        std::printf("ok stream seed %llu (%zu checks%s)\n",
                    static_cast<unsigned long long>(seed), report.checks,
                    report.skipped.empty() ? "" : ", spec skipped");
      }
    }
  }

  std::printf(
      "\nrdcn_fuzz: %zu scenarios, %zu cross-checks, %zu spec skips, %zu failures, "
      "%zu transient retries\n",
      totals.scenarios, totals.checks, totals.skipped, totals.failures,
      totals.transient_retries);
  return totals.failures == 0 ? 0 : 1;
}
