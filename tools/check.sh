#!/usr/bin/env bash
# Single entry point for local and CI verification:
#   configure, build, run the full ctest suite, then one smoke bench.
#
#   $ tools/check.sh [build-dir]        # full build + test + smokes
#   $ tools/check.sh lint [build-dir]   # pre-PR static pass only:
#                                       #   rdcn_lint (+ self-tests),
#                                       #   clang-format / clang-tidy over
#                                       #   changed files when installed
#
# RDCN_WERROR=ON in the environment turns warnings into errors (CI does).
# Exit code is nonzero if any stage fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

configure() {
  cmake -B "$1" -S "$repo" -DRDCN_WERROR="${RDCN_WERROR:-OFF}" "${@:2}"
}

if [ "${1:-}" = "lint" ]; then
  build="${2:-$repo/build}"
  echo "== lint: rdcn_lint =="
  configure "$build" >/dev/null
  cmake --build "$build" -j"$(nproc)" --target rdcn_lint test_lint
  ctest --test-dir "$build" --output-on-failure -R test_lint
  "$build/rdcn_lint" --root "$repo"
  # clang tools are optional locally (the CI lint job always has them);
  # when present they run over the files this branch touches.
  changed="$(git -C "$repo" diff --name-only --diff-filter=d origin/main...HEAD \
               2>/dev/null | grep -E '\.(cpp|hpp)$' | grep -v '^tests/lint_fixtures/' \
               || true)"
  if command -v clang-format >/dev/null && [ -n "$changed" ]; then
    echo "== lint: clang-format (changed files) =="
    (cd "$repo" && echo "$changed" | xargs clang-format --dry-run -Werror)
  else
    echo "== lint: clang-format skipped (not installed or no changed files) =="
  fi
  if command -v clang-tidy >/dev/null && [ -n "$changed" ]; then
    echo "== lint: clang-tidy (changed sources) =="
    configure "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    sources="$(echo "$changed" | grep -E '^(src|tools|bench)/.*\.cpp$' || true)"
    if [ -n "$sources" ]; then
      (cd "$repo" && echo "$sources" | xargs clang-tidy -p "$build" --quiet)
    fi
  else
    echo "== lint: clang-tidy skipped (not installed or no changed files) =="
  fi
  echo "check.sh: lint passed"
  exit 0
fi

build="${1:-$repo/build}"

echo "== configure =="
configure "$build"

echo "== build =="
cmake --build "$build" -j"$(nproc)"

echo "== test =="
ctest --test-dir "$build" --output-on-failure -j"$(nproc)"

echo "== lint =="
# Project-specific invariants (hot-alloc, json-concat, probe-registry,
# include-hygiene); test_lint already validated the tool against its
# fixtures as part of the suite above.
"$build/rdcn_lint" --root "$repo"

echo "== smoke bench =="
if [ -x "$build/bench/bench_scalability" ]; then
  "$build/bench/bench_scalability" --benchmark_filter='BM_AlgEndToEnd/8' \
      --benchmark_min_time=0.05 >/dev/null
else
  # google-benchmark absent: any plain bench exercises the whole stack.
  "$build/bench/bench_bmatching" >/dev/null
fi

echo "== smoke perf diff =="
# bench_hotpath's quick subset shares row keys with the committed baseline;
# perf_diff must parse, match, and (self-compare) report zero regressions.
"$build/bench/bench_hotpath" --quick --json > "$build/hotpath_current.json"
"$build/perf_diff" "$build/hotpath_current.json" "$build/hotpath_current.json" \
    --threshold 0.01 >/dev/null
# Dev machines vary too much for a local hard gate; CI's perf-smoke job is
# the blocking diff (same baseline, same threshold, no --warn-only).
"$build/perf_diff" "$repo/BENCH_hotpath.json" "$build/hotpath_current.json" \
    --threshold 0.5 --warn-only
# The suite-level baseline: deterministic cost rows, so the match itself
# (keys + total_cost within threshold) must hold even locally.
"$build/bench/bench_suite" > "$build/suite_current.json"
"$build/perf_diff" "$repo/BENCH_suite.json" "$build/suite_current.json" \
    --threshold 0.5 --warn-only
# Per-phase rows (probe-on drains) diff warn-only against their own
# baseline: phase self-times are noisier than end-to-end medians, so they
# report rather than gate -- but the keys must still match, and the --json
# report must come out as strict JSON (perf_diff re-parses before writing).
"$build/bench/bench_hotpath" --quick --phases --json > "$build/hotpath_phases_current.json"
"$build/perf_diff" "$repo/BENCH_hotpath_phases.json" "$build/hotpath_phases_current.json" \
    --threshold 0.5 --warn-only --json "$build/hotpath_phases_diff.json"
test -s "$build/hotpath_phases_diff.json"
# Duplicate (bench, name, params) keys are an emitter bug; perf_diff must
# refuse to match them (negative smoke: exit 2, not silent last-write-wins).
head -n 1 "$build/hotpath_current.json" > "$build/dup_rows.json"
head -n 1 "$build/hotpath_current.json" >> "$build/dup_rows.json"
if "$build/perf_diff" "$build/dup_rows.json" "$build/dup_rows.json" >/dev/null 2>&1; then
  echo "check.sh: perf_diff accepted duplicate row keys" >&2
  exit 1
fi

echo "== smoke fuzz =="
# Fixed-seed differential sweep; the random spec grids draw the whole
# topology zoo (two-tier, crossbar, oversubscribed, expander, rotor), so
# every wiring family passes through the checker on every run.
"$build/rdcn_fuzz" --seeds 15 --base 1 >/dev/null
# Staged stream specs (failure injection / mid-run rewiring): seed 17
# historically caught a telemetry served-count bug at stage boundaries.
"$build/rdcn_fuzz" --seeds 10 --base 12 --mode stream >/dev/null
# Transient-failure classification: an injected infrastructure hiccup is
# retried once (same seed) and the sweep still comes out clean.
"$build/rdcn_fuzz" --seeds 2 --base 1 --mode batch --inject-transient 1 >/dev/null

echo "== smoke cli =="
"$build/rdcn_cli" policies >/dev/null
"$build/rdcn_cli" record "$build/smoke_trace.inst" --packets 500 --rho 0.6 --seed 3 >/dev/null
"$build/rdcn_cli" stream --trace "$build/smoke_trace.inst" --warmup 0 --packets 500 >/dev/null
"$build/rdcn_cli" stream --rho 0.6 --warmup 200 --packets 2000 --seed 3 >/dev/null
# Time-staged run with failure injection, audited: kill two edges under
# requeue, then restore them; the per-stage summary rows must appear.
printf '[{"duration": 40},\n {"duration": 40, "kill_edges": [0, 1], "dead": "requeue"},\n {"duration": 0, "restore_edges": [0, 1]}]\n' \
    > "$build/smoke_stages.json"
"$build/rdcn_cli" stream --rho 0.6 --warmup 100 --packets 1500 --seed 3 \
    --stages "$build/smoke_stages.json" --audit > "$build/smoke_staged.out"
grep -q "stage 2" "$build/smoke_staged.out"
# Profile subcommand: per-phase table plus a Chrome trace; the command
# itself strict-parses the written trace (nonzero exit on invalid JSON).
"$build/rdcn_cli" profile --racks 16 --packets 500 \
    --out "$build/profile_trace.json" >/dev/null
test -s "$build/profile_trace.json"

echo "== smoke suites =="
"$build/rdcn_cli" suite "$repo/examples/suites/paper_baseline.json" >/dev/null
"$build/rdcn_cli" suite "$repo/examples/suites/skew_sweep.json" --list >/dev/null
"$build/rdcn_cli" suite "$repo/examples/suites/failure_sweep.json" >/dev/null
if "$build/rdcn_cli" suite "$repo/tests/suites/unknown_key.json" >/dev/null 2>&1; then
  echo "check.sh: bad suite file was not rejected" >&2
  exit 1
fi

echo "== smoke fault tolerance & resume =="
# A small two-workload suite; the fault hook targets the zipf cells.
cat > "$build/resume_smoke.json" <<'EOF'
{
  "suite": "resume-smoke",
  "mode": "batch",
  "seeds": {"base": 1, "repetitions": 2},
  "policies": ["alg", "fifo"],
  "topologies": [
    {"name": "pod", "kind": "two_tier", "racks": 6, "lasers": 2,
     "photodetectors": 2, "density": 0.6, "max_edge_delay": 2}
  ],
  "workloads": [
    {"name": "uniform", "packets": 80, "rate": 4.0, "skew": "uniform"},
    {"name": "zipf", "packets": 80, "rate": 4.0, "skew": "zipf",
     "zipf_exponent": 1.2}
  ]
}
EOF
# Reference: the uninterrupted run every fault-tolerant variant must match.
# wall_ms is a wall-clock measurement -- the one field two runs of the
# same cell never agree on -- so cross-run comparisons strip it; every
# actual metric must then be byte-identical.
strip_wall() { sed -E 's/"wall_ms":[0-9.eE+-]+,?//g' "$1"; }
"$build/rdcn_cli" suite "$build/resume_smoke.json" --threads 1 \
    > "$build/resume_ref.out" 2>/dev/null
# Kill-and-resume: the injected crash SIGKILLs the process at the first
# zipf cell (cells run in order under --threads 1, so the uniform cells
# are already journaled); the resume must produce bit-identical output.
rm -f "$build/resume_smoke.journal"
kill_status=0
RDCN_SUITE_FAULT="crash@zipf" "$build/rdcn_cli" suite "$build/resume_smoke.json" \
    --threads 1 --journal "$build/resume_smoke.journal" \
    >/dev/null 2>&1 || kill_status=$?
if [ "$kill_status" -ne 137 ]; then
  echo "check.sh: crash injection did not SIGKILL the suite (exit $kill_status)" >&2
  exit 1
fi
grep -q '"rdcn_suite_journal":1' "$build/resume_smoke.journal"
"$build/rdcn_cli" suite --resume "$build/resume_smoke.journal" \
    > "$build/resume_merged.out" 2>/dev/null
cmp <(strip_wall "$build/resume_ref.out") <(strip_wall "$build/resume_merged.out")
# Isolate: the failing zipf cells become structured error rows; the
# healthy uniform rows stay bit-identical to the reference.
RDCN_SUITE_FAULT="throw@zipf" "$build/rdcn_cli" suite "$build/resume_smoke.json" \
    --threads 1 --isolate > "$build/resume_isolate.out" 2>/dev/null
test "$(grep -c '"status":"failed"' "$build/resume_isolate.out")" -eq 2
cmp <(strip_wall "$build/resume_ref.out" | head -n 2) \
    <(strip_wall "$build/resume_isolate.out" | head -n 2)
# fail_fast: same injection without --isolate aborts nonzero and reports
# the suppressed sibling ("and 1 more cell failed").
if RDCN_SUITE_FAULT="throw@zipf" "$build/rdcn_cli" suite "$build/resume_smoke.json" \
    --threads 1 > /dev/null 2> "$build/resume_failfast.err"; then
  echo "check.sh: fail_fast suite with injected fault exited 0" >&2
  exit 1
fi
grep -q "more cell" "$build/resume_failfast.err"
# Transient retry: the injection fires once per repetition, so a retry
# budget of 2 recovers and the output is bit-identical to the reference.
RDCN_SUITE_FAULT="transient@zipf" "$build/rdcn_cli" suite "$build/resume_smoke.json" \
    --threads 1 --attempts 2 --backoff-ms 1 > "$build/resume_retry.out" 2>/dev/null
cmp <(strip_wall "$build/resume_ref.out") <(strip_wall "$build/resume_retry.out")

echo "check.sh: all stages passed"
