// rdcn — command-line front end for the library.
//
// Subcommands:
//   gen   <out.inst> [--racks N] [--lasers N] [--pds N] [--density F]
//         [--max-delay D] [--fixed-dl D] [--packets N] [--rate F]
//         [--skew uniform|zipf|hotspot|permutation|incast] [--zipf F]
//         [--weights unit|uniform-int|pareto|bimodal] [--wmax N]
//         [--bursty] [--seed S]
//       Generates a workload over a two-tier pod and writes an instance file.
//   run   <in.inst> [--policy <name>] [--capacity B] [--speedup K]
//         [--reconfig D] [--reps N] [--seed S]
//       Replays an instance under a registry policy and prints the schedule
//       summary. Replays are deterministic; --reps > 1 repeats the identical
//       run to aggregate wall-clock time.
//   certify <in.inst> [--eps F]
//       Runs ALG, builds the dual witness, verifies Lemmas 1-5 and prints
//       the certified OPT lower bound and ratio.
//   show  <in.inst> [--receivers] [--width N]
//       Runs ALG and renders the schedule as an ASCII Gantt chart.
//   info  <in.inst>
//       Prints topology/workload statistics.
//   policies
//       Lists the policy registry names accepted by --policy.
//   record <out.inst> [--rho F] [--source poisson|onoff] [--packets N]
//          [--seed S] [topology/shape flags as gen]
//       Captures the first N packets of an open-loop traffic source into an
//       instance file -- a replayable arrival trace (see `stream --trace`).
//   stream [--policy <name>] [--rho F] [--source poisson|onoff]
//          [--trace in.inst] [--warmup N] [--packets N] [--window N]
//          [--capacity B] [--speedup K] [--reconfig D] [--seed S]
//          [--max-steps N] [--cap-factor F] [--stages stages.json]
//          [--audit] [topology/shape flags as gen]
//       Open-loop steady-state run: streams Poisson/on-off arrivals at
//       target utilization rho (or replays a recorded trace) through the
//       bounded-memory engine and prints latency percentiles, throughput
//       and backlog after the warmup cutoff. --stages drives a time-staged
//       dynamic scenario (a JSON array of stage objects -- per-stage
//       traffic overrides plus edge/rack failure injection and mid-run
//       rewiring, the suite "stages" schema); the summary then adds
//       per-stage served/dropped/requeued and time-to-drain recovery rows.
//       --audit runs the invariant auditor alongside (throws on violation).
//       --stages is incompatible with --trace.
//   suite [suite.json] [--threads N] [--list] [--journal out.journal]
//         [--resume in.journal] [--isolate] [--deadline-ms F]
//         [--attempts N] [--backoff-ms F]
//       Runs a declarative suite file (topology x workload/traffic x
//       engine x policy grid, see run/suite.hpp and examples/suites/)
//       through the BatchRunner and prints one BenchReport JSON line per
//       cell. --list prints the expanded cells without running. Parse
//       errors name the offending JSON path and exit nonzero.
//       Fault tolerance (README "Fault tolerance & resume"): --journal
//       rewrites a crash-safe manifest (atomic write-temp-fsync-rename)
//       after every completed cell; --resume loads such a journal (the
//       spec travels inside it, so the positional file is optional and,
//       when given, must normalize identically), skips recorded cells and
//       prints merged output bit-identical to an uninterrupted run.
//       --isolate turns a failing cell into a structured error row
//       ("status": "failed") instead of aborting the suite; --deadline-ms
//       bounds each repetition's wall clock (cancelled cooperatively at
//       the next step boundary); --attempts N retries transient failures
//       (deadline/TransientError) with exponential backoff, same seed.
//       RDCN_SUITE_FAULT="kind@cell-substring" (test-only) injects faults
//       into matching cells: throw | transient (fires once per rep, so a
//       retry succeeds) | hang (spins until deadline cancellation) |
//       crash (SIGKILL, for the resume smoke) | sleep:MS.
//   profile [--policy <name>] [--racks N] [--packets N] [--seed S]
//           [--reps N] [--events N] [--out trace.json]
//       Runs the engine probe (sim/probe.hpp) over a BM_AlgEndToEnd-shaped
//       batch run (bench/bench_scalability.cpp's generation, default
//       64 racks / 2000 packets / seed 5), prints the per-phase time
//       breakdown and the counter/gauge registry, and writes the raw span
//       ring as Chrome trace-event JSON (load at ui.perfetto.dev or
//       chrome://tracing). The written trace is re-read through the strict
//       parser and sanity-checked; any violation exits nonzero.
//
// Instance files use the rdcn-instance v1 text format (Instance::save).
// All execution routes through the run/ subsystem (the same ScenarioRunner
// and StreamRunner the benches use).

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "core/charging.hpp"
#include "core/dual_witness.hpp"
#include "run/scenario.hpp"
#include "run/stream.hpp"
#include "run/suite.hpp"
#include "sim/gantt.hpp"
#include "sim/metrics.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace rdcn;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: rdcn_cli <command> [file] [options]\n"
               "commands: gen run certify show info policies record stream suite profile\n"
               "  gen/run/certify/show/info/record take an instance file;\n"
               "  suite takes a suite JSON file (see examples/suites/), or\n"
               "    just --resume <journal> (the spec travels in the journal);\n"
               "  stream, policies and profile take options only.\n"
               "run with no options for defaults; see source header for flags\n");
  std::exit(2);
}

struct Args {
  std::string command;
  std::string file;
  std::vector<std::string> rest;

  bool has(const std::string& flag) const {
    for (const auto& a : rest) {
      if (a == flag) return true;
    }
    return false;
  }
  std::string value(const std::string& flag, const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < rest.size(); ++i) {
      if (rest[i] == flag) return rest[i + 1];
    }
    return fallback;
  }
  double number(const std::string& flag, double fallback) const {
    const std::string v = value(flag, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }
};

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return Instance::load(in);
}

/// Scenario replaying a saved instance file (every repetition identical).
ScenarioSpec replay_scenario(const std::string& path) {
  ScenarioSpec spec;
  spec.name = path;
  auto shared = std::make_shared<Instance>(load_instance(path));
  spec.make_instance = [shared](std::uint64_t) { return *shared; };
  return spec;
}

/// Resolves --policy against the registry; unknown names print the list
/// and exit nonzero.
PolicyFactory policy_from(const Args& args) {
  const std::string name = args.value("--policy", "alg");
  try {
    return named_policy(name);
  } catch (const std::invalid_argument&) {
    std::string known;
    for (const std::string& entry : policy_names()) known += " " + entry;
    std::fprintf(stderr, "unknown policy '%s'; known:%s\n", name.c_str(), known.c_str());
    std::exit(2);
  }
}

void fill_two_tier(const Args& args, TwoTierConfig& net) {
  net.racks = static_cast<NodeIndex>(args.number("--racks", 8));
  net.lasers_per_rack = static_cast<NodeIndex>(args.number("--lasers", 2));
  net.photodetectors_per_rack = static_cast<NodeIndex>(args.number("--pds", 2));
  net.density = args.number("--density", 0.6);
  net.max_edge_delay = static_cast<Delay>(args.number("--max-delay", 2));
  net.fixed_link_delay = static_cast<Delay>(args.number("--fixed-dl", 0));
}

void fill_shape(const Args& args, WorkloadConfig& shape) {
  const std::string skew = args.value("--skew", "zipf");
  shape.skew = skew == "uniform"       ? PairSkew::Uniform
               : skew == "hotspot"     ? PairSkew::Hotspot
               : skew == "permutation" ? PairSkew::Permutation
               : skew == "incast"      ? PairSkew::Incast
                                       : PairSkew::Zipf;
  shape.zipf_exponent = args.number("--zipf", 1.2);
  const std::string weights = args.value("--weights", "uniform-int");
  shape.weights = weights == "unit"      ? WeightDist::Unit
                  : weights == "pareto"  ? WeightDist::Pareto
                  : weights == "bimodal" ? WeightDist::Bimodal
                                         : WeightDist::UniformInt;
  shape.weight_max = static_cast<std::int64_t>(args.number("--wmax", 10));
}

TrafficConfig traffic_from(const Args& args) {
  TrafficConfig traffic;
  const std::string source = args.value("--source", "poisson");
  if (source == "onoff") {
    traffic.process = ArrivalProcess::OnOff;
  } else if (source != "poisson") {
    std::fprintf(stderr, "unknown --source '%s'; known: poisson onoff\n", source.c_str());
    std::exit(2);
  }
  traffic.rho = args.number("--rho", 0.8);
  fill_shape(args, traffic.shape);
  traffic.on_stay = args.number("--on-stay", 0.9);
  traffic.off_stay = args.number("--off-stay", 0.7);
  return traffic;
}

int cmd_gen(const Args& args) {
  ScenarioSpec spec;
  spec.name = args.file;
  fill_two_tier(args, spec.topology.two_tier);

  auto& traffic = spec.workload;
  traffic.num_packets = static_cast<std::size_t>(args.number("--packets", 200));
  traffic.arrival_rate = args.number("--rate", 4.0);
  fill_shape(args, traffic);
  traffic.bursty = args.has("--bursty");

  const auto seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  spec.base_seed = seed;
  const Instance instance = ScenarioRunner(spec).instance(seed);
  std::ofstream out(args.file);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.file.c_str());
    return 1;
  }
  instance.save(out);
  std::printf("wrote %zu packets / %d racks / %d edges to %s\n", instance.num_packets(),
              instance.topology().num_sources(), instance.topology().num_edges(),
              args.file.c_str());
  return 0;
}

int cmd_run(const Args& args) {
  const PolicyFactory policy = policy_from(args);

  ScenarioSpec spec = replay_scenario(args.file);
  spec.engine.endpoint_capacity = static_cast<int>(args.number("--capacity", 1));
  spec.engine.speedup_rounds = static_cast<int>(args.number("--speedup", 1));
  spec.engine.reconfig_delay = static_cast<Delay>(args.number("--reconfig", 0));
  spec.base_seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  spec.repetitions = static_cast<std::size_t>(args.number("--reps", 1));
  const ScenarioRunner runner(spec);

  const Instance instance = runner.instance(spec.base_seed);
  const RunResult run = runner.run_once(policy, instance);
  const ScheduleSummary summary = summarize(instance, run);

  Table table({"metric", "value"});
  table.add_row({"policy", policy.name});
  table.add_row({"total weighted latency", Table::fmt(summary.total_cost, 3)});
  table.add_row({"mean weighted latency", Table::fmt(summary.mean_weighted_latency, 3)});
  table.add_row({"max latency", Table::fmt(summary.max_latency, 0)});
  table.add_row({"makespan", Table::fmt(static_cast<std::int64_t>(summary.makespan))});
  table.add_row({"reconfigurable share",
                 Table::fmt(100.0 * summary.reconfig_fraction, 1) + "%"});
  table.add_row({"steps simulated",
                 Table::fmt(static_cast<std::int64_t>(run.steps_simulated))});
  if (spec.repetitions > 1) {
    // Replaying a saved instance is bit-identical per repetition (same
    // file, deterministic policies), so repeats only measure timing.
    const ScenarioResult result = runner.run(policy);
    table.add_row({"identical replays", std::to_string(spec.repetitions)});
    table.add_row({"mean wall ms / replay", Table::fmt(result.wall_ms.mean(), 3)});
  }
  table.print("run summary: " + args.file);
  return 0;
}

int cmd_certify(const Args& args) {
  ScenarioSpec spec = replay_scenario(args.file);
  spec.engine.record_trace = true;
  const ScenarioRunner runner(spec);
  const Instance instance = runner.instance(1);
  const double eps = args.number("--eps", 1.0);
  const RunResult run = runner.run_once(alg_policy(), instance);
  const DualWitness witness = build_dual_witness(instance, run);
  const ChargingAudit audit = audit_charging(instance, run);
  const DualFeasibilityReport feasibility = check_dual_feasibility(instance, witness);

  Table table({"certificate", "value", "requirement", "status"});
  table.add_row({"ALG cost", Table::fmt(run.total_cost, 3), "", ""});
  table.add_row({"Lemma 1 ledger gap", Table::fmt(lemma1_gap(witness, run), 9), "= 0",
                 lemma1_gap(witness, run) < 1e-6 ? "PASS" : "FAIL"});
  table.add_row({"Lemma 2 max overcharge", Table::fmt(audit.max_overcharge, 9), "<= 0",
                 audit.max_overcharge <= 1e-7 ? "PASS" : "FAIL"});
  table.add_row({"Lemma 4 violation factor", Table::fmt(feasibility.max_violation_ratio, 4),
                 "< 2", feasibility.max_violation_ratio < 2.0 ? "PASS" : "FAIL"});
  table.add_row({"Lemma 5 halved feasible", feasibility.halved_feasible ? "yes" : "no",
                 "yes", feasibility.halved_feasible ? "PASS" : "FAIL"});
  const double lower = witness.lower_bound(eps);
  table.add_row({"certified OPT(1/(2+eps)) >=", Table::fmt(lower, 3), "", ""});
  table.add_row({"Theorem 1 bound", Table::fmt(2.0 * (2.0 / eps + 1.0), 2) + "x", "", ""});
  if (lower > 0) {
    table.add_row({"measured ratio", Table::fmt(run.total_cost / lower, 3) + "x",
                   "<= bound",
                   run.total_cost / lower <= 2.0 * (2.0 / eps + 1.0) ? "PASS" : "FAIL"});
  }
  table.print("dual-fitting certificate (eps = " + Table::fmt(eps, 2) + ")");
  return 0;
}

int cmd_show(const Args& args) {
  ScenarioSpec spec = replay_scenario(args.file);
  spec.engine.record_trace = true;
  const ScenarioRunner runner(spec);
  const Instance instance = runner.instance(1);
  const RunResult run = runner.run_once(alg_policy(), instance);
  GanttOptions options;
  options.show_receivers = args.has("--receivers");
  options.max_width = static_cast<std::size_t>(args.number("--width", 160));
  std::printf("%s", render_gantt(instance, run, options).c_str());
  std::printf("total weighted latency %.3f, makespan %lld\n", run.total_cost,
              static_cast<long long>(run.makespan));
  return 0;
}

int cmd_info(const Args& args) {
  const Instance instance = load_instance(args.file);
  const Topology& topology = instance.topology();
  double total_weight = 0.0;
  Time first = instance.num_packets() ? instance.packets().front().arrival : 0;
  Time last = instance.num_packets() ? instance.packets().back().arrival : 0;
  for (const Packet& p : instance.packets()) total_weight += p.weight;

  Table table({"property", "value"});
  table.add_row({"sources / destinations", Table::fmt(static_cast<std::int64_t>(
                                               topology.num_sources())) +
                                               " / " +
                                               Table::fmt(static_cast<std::int64_t>(
                                                   topology.num_destinations()))});
  table.add_row({"transmitters / receivers",
                 Table::fmt(static_cast<std::int64_t>(topology.num_transmitters())) + " / " +
                     Table::fmt(static_cast<std::int64_t>(topology.num_receivers()))});
  table.add_row({"reconfigurable edges",
                 Table::fmt(static_cast<std::int64_t>(topology.num_edges()))});
  table.add_row({"fixed links",
                 Table::fmt(static_cast<std::uint64_t>(topology.fixed_links().size()))});
  table.add_row({"packets", Table::fmt(static_cast<std::uint64_t>(instance.num_packets()))});
  table.add_row({"total weight", Table::fmt(total_weight, 1)});
  table.add_row({"arrival span", Table::fmt(static_cast<std::int64_t>(first)) + " .. " +
                                     Table::fmt(static_cast<std::int64_t>(last))});
  table.add_row({"integer weights", instance.has_integer_weights() ? "yes" : "no"});
  table.add_row({"trivial cost bound", Table::fmt(instance.ideal_cost(), 2)});
  table.add_row({"validation", instance.validate().empty() ? "ok" : instance.validate()});
  table.print("instance info: " + args.file);
  return 0;
}

int cmd_policies() {
  for (const std::string& name : policy_names()) std::printf("%s\n", name.c_str());
  return 0;
}

int cmd_record(const Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  // Same wiring rule as `stream` without --trace: a recorded trace and a
  // live stream with identical flags see the identical network.
  TopologySpec tspec;
  fill_two_tier(args, tspec.two_tier);
  const Topology topology = make_topology(tspec, seed);

  TrafficConfig traffic = traffic_from(args);
  traffic.shape.seed = seed;
  const auto count = static_cast<std::size_t>(args.number("--packets", 10000));
  // Deterministic in (topology, traffic), so this matches the rate the
  // source below calibrates internally; the 4096-draw estimate is cheap.
  const double rate = calibrate_rate(topology, traffic);

  const auto source = make_source(topology, traffic);
  Instance instance(topology, record_arrivals(*source, count));
  std::ofstream out(args.file);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.file.c_str());
    return 1;
  }
  instance.save(out);
  const Time span = instance.num_packets() ? instance.packets().back().arrival : 0;
  std::printf(
      "recorded %zu packets over %lld steps (target rho %.2f, lambda %.3f/step) to %s\n",
      instance.num_packets(), static_cast<long long>(span), traffic.rho, rate,
      args.file.c_str());
  return 0;
}

int cmd_stream(const Args& args) {
  const PolicyFactory policy = policy_from(args);

  StreamSpec spec;
  spec.engine.endpoint_capacity = static_cast<int>(args.number("--capacity", 1));
  spec.engine.speedup_rounds = static_cast<int>(args.number("--speedup", 1));
  spec.engine.reconfig_delay = static_cast<Delay>(args.number("--reconfig", 0));
  spec.base_seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  spec.warmup_packets = static_cast<std::size_t>(args.number("--warmup", 2000));
  spec.measure_packets = static_cast<std::size_t>(args.number("--packets", 20000));
  spec.telemetry_window = static_cast<Time>(args.number("--window", 256));
  spec.max_steps = static_cast<Time>(args.number("--max-steps", 0));
  spec.step_cap_factor = args.number("--cap-factor", 8.0);

  spec.engine.audit = args.has("--audit");

  const std::string trace = args.value("--trace", "");
  const std::string stages = args.value("--stages", "");
  if (!stages.empty() && !trace.empty()) {
    std::fprintf(stderr, "--stages is incompatible with --trace (staged replay goes "
                         "through the batch Engine::run(schedule))\n");
    return 2;
  }
  if (!trace.empty()) {
    spec.name = trace;
    auto shared = std::make_shared<Instance>(load_instance(trace));
    spec.make_trace = [shared](std::uint64_t) { return *shared; };
  } else {
    spec.name = "stream";
    fill_two_tier(args, spec.topology.two_tier);
    spec.traffic = traffic_from(args);
    if (!stages.empty()) {
      try {
        spec.stages = load_stages_file(stages);
      } catch (const SuiteError& error) {
        std::fprintf(stderr, "stages error: %s\n", error.what());
        return 1;
      }
    }
  }

  const StreamRunner runner(spec);
  const StreamRepOutcome out = runner.run_repetition(policy, spec.base_seed);

  Table table({"metric", "value"});
  table.add_row({"policy", policy.name});
  table.add_row({"source", !trace.empty()                                  ? "trace"
                           : spec.traffic.process == ArrivalProcess::OnOff ? "onoff"
                                                                           : "poisson"});
  if (trace.empty()) {
    table.add_row({"target rho / lambda", Table::fmt(spec.traffic.rho, 2) + " / " +
                                              Table::fmt(out.target_rate, 3) + " pkt/step"});
  }
  table.add_row({"measured rho", Table::fmt(out.measured_rho, 3)});
  table.add_row({"offered / served / measured",
                 Table::fmt(out.offered) + " / " + Table::fmt(out.served) + " / " +
                     Table::fmt(out.measured)});
  if (out.measured > 0) {
    table.add_row({"latency p50 / p95 / p99 / p999",
                   Table::fmt(out.latency.p50()) + " / " + Table::fmt(out.latency.p95()) +
                       " / " + Table::fmt(out.latency.p99()) + " / " +
                       Table::fmt(out.latency.p999())});
    table.add_row({"mean latency", Table::fmt(out.mean_latency, 2)});
  } else {
    table.add_row({"latency", "n/a (no packet retired inside the measure range;"
                              " check --warmup vs the trace length)"});
  }
  table.add_row({"throughput", Table::fmt(out.throughput, 3) + " pkt/step"});
  table.add_row({"backlog mean / peak", Table::fmt(out.mean_backlog, 1) + " / " +
                                            Table::fmt(out.peak_backlog)});
  table.add_row({"steps", Table::fmt(static_cast<std::int64_t>(out.steps))});
  table.add_row({"peak resident slots",
                 Table::fmt(static_cast<std::uint64_t>(out.peak_resident))});
  table.add_row({"truncated", out.truncated ? "YES (hit step cap)" : "no"});
  if (!spec.stages.empty()) {
    table.add_row({"dropped / requeued",
                   Table::fmt(out.dropped) + " / " + Table::fmt(out.requeued)});
    for (std::size_t k = 0; k < out.stages.size(); ++k) {
      const StageOutcome& stage = out.stages[k];
      std::string row = "T=" + Table::fmt(static_cast<std::int64_t>(stage.start)) +
                        ", offered " + Table::fmt(stage.offered) + ", served " +
                        Table::fmt(stage.served) + ", dropped " +
                        Table::fmt(stage.dropped) + ", requeued " +
                        Table::fmt(stage.requeued);
      if (stage.edges_killed != 0 || stage.edges_restored != 0) {
        row += ", edges -" + Table::fmt(static_cast<std::uint64_t>(stage.edges_killed)) +
               "/+" + Table::fmt(static_cast<std::uint64_t>(stage.edges_restored));
      }
      row += ", drain " + (stage.drain_steps < 0
                               ? std::string("n/a")
                               : Table::fmt(static_cast<std::int64_t>(stage.drain_steps)));
      table.add_row({"stage " + std::to_string(k), row});
    }
  }
  table.add_row({"wall ms", Table::fmt(out.wall_ms, 1)});
  table.print("steady-state stream: " + spec.name);
  return 0;
}

/// Validates a written Chrome trace with the strict parser: the document
/// must round-trip, carry a non-empty traceEvents array of complete
/// events, and have monotone (sorted) timestamps. Returns an error
/// message, empty on success.
std::string validate_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "cannot re-open " + path;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  json::Value document;
  try {
    document = json::parse(text);
  } catch (const json::ParseError& error) {
    return std::string("strict parse failed: ") + error.what();
  }
  const json::Value* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) return "missing traceEvents array";
  if (events->as_array().empty()) return "traceEvents is empty";
  double last_ts = -1.0;
  for (const json::Value& event : events->as_array()) {
    const json::Value* ph = event.find("ph");
    const json::Value* ts = event.find("ts");
    const json::Value* dur = event.find("dur");
    const json::Value* name = event.find("name");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      return "event is not a complete event (ph != \"X\")";
    }
    if (name == nullptr || !name->is_string()) return "event without a name";
    if (ts == nullptr || !ts->is_number() || dur == nullptr || !dur->is_number()) {
      return "event without numeric ts/dur";
    }
    if (ts->as_number() < last_ts) return "timestamps are not monotone";
    last_ts = ts->as_number();
  }
  return "";
}

int cmd_profile(const Args& args) {
  const PolicyFactory policy = policy_from(args);
  const auto racks = static_cast<NodeIndex>(args.number("--racks", 64));
  const auto packets = static_cast<std::size_t>(args.number("--packets", 2000));
  const auto seed = static_cast<std::uint64_t>(args.number("--seed", 5));
  const auto reps = std::max<std::size_t>(1, static_cast<std::size_t>(args.number("--reps", 1)));
  const auto events = static_cast<std::size_t>(args.number("--events", 1 << 16));
  const std::string out_path = args.value("--out", "profile_trace.json");

  // BM_AlgEndToEnd's exact instance generation (bench/bench_scalability),
  // so the phase shares speak to the committed BENCH_*.json trajectory.
  Rng rng(seed);
  TwoTierConfig net;
  net.racks = racks;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.4;
  net.max_edge_delay = 2;
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig traffic;
  traffic.num_packets = packets;
  traffic.arrival_rate = static_cast<double>(racks) / 2.0;
  traffic.skew = PairSkew::Zipf;
  traffic.weights = WeightDist::UniformInt;
  traffic.seed = seed;
  const Instance instance = generate_workload(topology, traffic);

  EngineOptions options;
  options.probe.enabled = true;
  options.probe.event_capacity = events;

  ProbeReport merged;
  std::string trace_json;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    Engine engine(instance, *dispatcher, *scheduler, options);
    const RunResult run = engine.run();
    merge_report(merged, run.probe);
    // The engine outlives run(): export the last repetition's span ring.
    if (rep + 1 == reps) trace_json = engine.probe()->chrome_trace_json(1);
  }

  const double wall_ms = static_cast<double>(merged.wall_ns) / 1e6;
  const double instr_ms = static_cast<double>(merged.instrumented_ns()) / 1e6;
  Table phases({"phase", "calls", "self ms", "total ms", "share of wall"});
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const double self_ms = static_cast<double>(merged.phase_self_ns[i]) / 1e6;
    const double total_ms = static_cast<double>(merged.phase_total_ns[i]) / 1e6;
    phases.add_row({to_string(static_cast<Phase>(i)),
                    Table::fmt(static_cast<std::int64_t>(merged.phase_calls[i])),
                    Table::fmt(self_ms, 3), Table::fmt(total_ms, 3),
                    Table::fmt(100.0 * self_ms / wall_ms, 1) + "%"});
  }
  phases.add_row({"(instrumented)", "", Table::fmt(instr_ms, 3), "",
                  Table::fmt(100.0 * instr_ms / wall_ms, 1) + "%"});
  phases.print("per-phase breakdown: " + policy.name + " " + std::to_string(racks) +
               " racks x " + std::to_string(packets) + " packets, " +
               std::to_string(reps) + " rep(s), wall " + Table::fmt(wall_ms, 1) + " ms");

  Table registry({"counter / gauge", "value", "max"});
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    registry.add_row({to_string(static_cast<Counter>(i)),
                      Table::fmt(static_cast<std::int64_t>(merged.counters[i])), ""});
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    registry.add_row({to_string(static_cast<Gauge>(i)),
                      Table::fmt(static_cast<std::int64_t>(merged.gauge_last[i])),
                      Table::fmt(static_cast<std::int64_t>(merged.gauge_max[i]))});
  }
  registry.print("counter / gauge registry (gauges: last, max)");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << trace_json << "\n";
  out.close();
  const std::string error = validate_trace_file(out_path);
  if (!error.empty()) {
    std::fprintf(stderr, "trace validation FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote Chrome trace to %s (validated; load at ui.perfetto.dev)\n",
              out_path.c_str());
  return 0;
}

/// Test-only fault injection, from RDCN_SUITE_FAULT="kind@cell-substring".
/// Kinds: throw (deterministic failure, every attempt), transient (fires
/// once per (cell, repetition), so a retry budget >= 2 recovers
/// bit-identically), hang (spins until the deadline watchdog cancels the
/// repetition; hangs forever without --deadline-ms, which is the point),
/// crash (raise(SIGKILL) -- the resume smoke's mid-flight kill), sleep:MS
/// (slows matching cells down so a kill lands mid-suite deterministically).
FaultHook fault_hook_from_env() {
  const char* env = std::getenv("RDCN_SUITE_FAULT");
  if (env == nullptr || *env == '\0') return nullptr;
  const std::string spec(env);
  const std::size_t at = spec.find('@');
  if (at == std::string::npos) {
    std::fprintf(stderr, "RDCN_SUITE_FAULT must be kind@cell-substring, got '%s'\n", env);
    std::exit(2);
  }
  const std::string kind = spec.substr(0, at);
  const std::string needle = spec.substr(at + 1);
  double sleep_ms = 0.0;
  if (kind.rfind("sleep:", 0) == 0) {
    sleep_ms = std::strtod(kind.c_str() + 6, nullptr);
  } else if (kind != "throw" && kind != "transient" && kind != "hang" && kind != "crash") {
    std::fprintf(stderr,
                 "RDCN_SUITE_FAULT kind '%s' unknown (throw|transient|hang|crash|sleep:MS)\n",
                 kind.c_str());
    std::exit(2);
  }
  // Transient faults fire once per (cell, repetition): the shared ledger
  // below remembers what already fired, so the retried attempt succeeds.
  auto fired = std::make_shared<std::set<std::pair<std::string, std::size_t>>>();
  auto fired_mutex = std::make_shared<std::mutex>();
  return [kind, needle, sleep_ms, fired, fired_mutex](
             const std::string& cell, std::size_t rep, const CancelToken* cancel) {
    if (cell.find(needle) == std::string::npos) return;
    if (kind == "throw") {
      throw std::runtime_error("injected fault in " + cell);
    }
    if (kind == "transient") {
      const std::lock_guard<std::mutex> lock(*fired_mutex);
      if (fired->insert({cell, rep}).second) {
        throw TransientError("injected transient fault in " + cell);
      }
      return;
    }
    if (kind == "crash") {
      std::raise(SIGKILL);
      return;
    }
    if (kind == "hang") {
      while (cancel == nullptr || !cancel->cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw CancelledError("injected hang cancelled (deadline exceeded)");
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms));
  };
}

int cmd_suite(const Args& args) {
  const std::string resume_path = args.value("--resume", "");
  const bool resuming = !resume_path.empty();
  SuiteSpec spec;
  SuiteJournal journal;
  try {
    if (resuming) {
      journal = load_suite_journal(resume_path);
      if (!args.file.empty()) {
        // Optional cross-check: a suite file given alongside --resume must
        // normalize to exactly the journal's embedded spec.
        if (suite_to_json(load_suite_file(args.file)) != journal.spec_json) {
          std::fprintf(stderr, "suite error: %s does not match the journal %s\n",
                       args.file.c_str(), resume_path.c_str());
          return 1;
        }
      }
      spec = journal.spec;
    } else {
      if (args.file.empty()) {
        std::fprintf(stderr, "suite: need a suite file (or --resume <journal>)\n");
        return 2;
      }
      spec = load_suite_file(args.file);
    }
  } catch (const SuiteError& error) {
    std::fprintf(stderr, "suite error: %s\n", error.what());
    return 1;
  }
  const SuiteRunner runner(std::move(spec));
  std::fprintf(stderr, "suite %s: %zu grid cells x %zu policies = %zu runs\n",
               runner.spec().name.c_str(), runner.grid_cells(),
               runner.spec().policies.size(), runner.cells());
  if (args.has("--list")) {
    for (const std::string& name : runner.cell_names()) std::printf("%s\n", name.c_str());
    return 0;
  }

  SuiteRunOptions options;
  options.threads = static_cast<std::size_t>(args.number("--threads", 0));
  // --resume keeps journaling to the same file unless --journal overrides.
  options.journal = args.value("--journal", resuming ? resume_path : "");
  options.policy.failure =
      args.has("--isolate") ? FailurePolicy::Isolate : FailurePolicy::FailFast;
  options.policy.deadline_ms = args.number("--deadline-ms", 0.0);
  options.policy.max_attempts = static_cast<int>(args.number("--attempts", 1));
  options.policy.backoff_base_ms = args.number("--backoff-ms", 10.0);
  options.policy.fault_hook = fault_hook_from_env();

  if (resuming) {
    std::size_t recorded = 0;
    for (const std::string& row : journal.rows) recorded += row.empty() ? 0 : 1;
    std::fprintf(stderr, "resume: %zu/%zu cells already recorded in %s\n", recorded,
                 journal.rows.size(), resume_path.c_str());
  }
  const std::vector<std::string> lines =
      runner.run(options, resuming ? &journal : nullptr);
  for (const std::string& line : lines) std::printf("%s\n", line.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  // stream and policies take no positional file; everything else does.
  // suite's is optional (flag-shaped argv[2] means none): --resume carries
  // the spec inside the journal.
  const bool takes_file = args.command == "gen" || args.command == "run" ||
                          args.command == "certify" || args.command == "show" ||
                          args.command == "info" || args.command == "record" ||
                          args.command == "suite";
  const bool file_optional = args.command == "suite";
  int rest_from = takes_file ? 3 : 2;
  if (takes_file) {
    if (argc >= 3 && (!file_optional || argv[2][0] != '-')) {
      args.file = argv[2];
    } else if (file_optional) {
      rest_from = 2;
    } else {
      usage();
    }
  }
  for (int i = rest_from; i < argc; ++i) args.rest.emplace_back(argv[i]);

  try {
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "certify") return cmd_certify(args);
    if (args.command == "show") return cmd_show(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "policies") return cmd_policies();
    if (args.command == "record") return cmd_record(args);
    if (args.command == "stream") return cmd_stream(args);
    if (args.command == "suite") return cmd_suite(args);
    if (args.command == "profile") return cmd_profile(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
  usage();
}
