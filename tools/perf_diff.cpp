// perf_diff -- compare two BenchReport JSON line sets across commits (the
// ROADMAP's suite-level diff tool). Every bench in this repo emits rows as
// one JSON object per line ({"bench":...,"name":...,"params":{...},
// "total_cost":...,"wall_ms":...,...}); this tool matches rows between a
// baseline file and a current file by their (bench, name, params) key and
// reports per-metric deltas. Rows may be embedded in arbitrary bench
// stdout: any line not starting with '{' is ignored, so both saved
// BENCH_*.json files and raw bench output diff cleanly.
//
//   perf_diff BASELINE CURRENT [--threshold F] [--metrics a,b] [--warn-only]
//             [--json PATH]
//
//   --threshold F   relative regression gate on the gated metrics
//                   (default 0.25 = +25%); exceeding it fails the run
//   --metrics a,b   comma-separated metric names to gate on (default:
//                   wall_ms plus every metric ending in "_ns" or
//                   containing "ns_per" -- the time-like, higher-is-worse
//                   ones; other shared numeric metrics are reported only)
//   --warn-only     report regressions but exit 0 (noisy CI runners)
//   --json PATH     additionally write the per-row deltas as one strict
//                   JSON document (rows/missing/new/summary; re-parsed
//                   before writing so downstream tooling can rely on it)
//
// Lines carrying a "meta" key (BenchReport's run-metadata header) are
// skipped: build identity and timestamps must never participate in row
// matching.
//
// Duplicate (bench, name, params) keys within one input are an emitter
// bug (two rows would silently shadow each other in the match map), so
// they are reported per-key and fail the run even under --warn-only.
//
// Exit codes: 0 ok / regressions suppressed, 1 regression above the
// threshold, 2 usage, parse failure, or duplicate row keys.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace {

using rdcn::json::Value;

struct Row {
  std::string key;  ///< bench/name/params fingerprint
  std::vector<std::pair<std::string, double>> metrics;
};

/// Stable row key: bench, name, then params serialized with sorted keys
/// (so key order differences between emitters do not break matching).
std::string row_key(const Value& object) {
  std::string key;
  if (const Value* bench = object.find("bench")) {
    if (bench->is_string()) key += bench->as_string();
  }
  key += '|';
  if (const Value* name = object.find("name")) {
    if (name->is_string()) key += name->as_string();
  }
  if (const Value* params = object.find("params"); params && params->is_object()) {
    std::vector<std::pair<std::string, std::string>> sorted;
    for (const auto& [param, value] : params->as_object()) {
      sorted.emplace_back(param, rdcn::json::dump(value));
    }
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [param, value] : sorted) key += '|' + param + '=' + value;
  }
  return key;
}

std::vector<Row> load_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::vector<Row> rows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] != '{') continue;  // bench tables, headers
    Value object;
    try {
      object = rdcn::json::parse(line);
    } catch (const rdcn::json::ParseError& error) {
      throw std::runtime_error(path + ":" + std::to_string(line_number) + ": " +
                               error.what());
    }
    if (!object.is_object()) continue;
    if (object.find("meta") != nullptr) continue;  // run-metadata header line
    Row row;
    row.key = row_key(object);
    for (const auto& [name, value] : object.as_object()) {
      if (name == "bench" || name == "name" || name == "params") continue;
      if (value.is_number()) row.metrics.emplace_back(name, value.as_number());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Reports every (bench, name, params) key appearing more than once in
/// `rows`. Duplicates mean the emitter dropped a distinguishing param --
/// matching would silently keep only the last row, so fail instead.
bool report_duplicate_keys(const std::string& path, const std::vector<Row>& rows) {
  std::map<std::string, std::size_t> seen;
  for (const Row& row : rows) ++seen[row.key];
  bool any = false;
  for (const auto& [key, count] : seen) {
    if (count < 2) continue;
    any = true;
    std::fprintf(stderr, "perf_diff: duplicate row key in '%s' (x%zu): %s\n",
                 path.c_str(), count, key.c_str());
  }
  return any;
}

bool gated_by_default(const std::string& metric) {
  if (metric == "wall_ms") return true;
  if (metric.size() > 3 && metric.compare(metric.size() - 3, 3, "_ns") == 0) return true;
  return metric.find("ns_per") != std::string::npos;
}

int usage() {
  std::fprintf(stderr,
               "usage: perf_diff BASELINE CURRENT [--threshold F] [--metrics a,b] "
               "[--warn-only] [--json PATH]\n");
  return 2;
}

struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double delta = 0.0;  ///< relative: (current - baseline) / |baseline|
  bool gated = false;
  bool regressed = false;
};

struct RowDiff {
  std::string key;
  std::vector<MetricDelta> metrics;
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, json_path;
  double threshold = 0.25;
  bool warn_only = false;
  std::vector<std::string> gate_metrics;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (++i >= argc) return usage();
      try {
        threshold = std::stod(argv[i]);
      } catch (...) {
        return usage();
      }
    } else if (arg == "--metrics") {
      if (++i >= argc) return usage();
      std::stringstream split(argv[i]);
      std::string metric;
      while (std::getline(split, metric, ',')) {
        if (!metric.empty()) gate_metrics.push_back(metric);
      }
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--json") {
      if (++i >= argc) return usage();
      json_path = argv[i];
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage();
    }
  }
  if (current_path.empty()) return usage();

  std::vector<Row> baseline, current;
  try {
    baseline = load_rows(baseline_path);
    current = load_rows(current_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "perf_diff: %s\n", error.what());
    return 2;
  }

  const bool baseline_dups = report_duplicate_keys(baseline_path, baseline);
  const bool current_dups = report_duplicate_keys(current_path, current);
  if (baseline_dups || current_dups) return 2;

  std::map<std::string, const Row*> baseline_by_key;
  for (const Row& row : baseline) baseline_by_key[row.key] = &row;

  const auto gated = [&gate_metrics](const std::string& metric) {
    if (gate_metrics.empty()) return gated_by_default(metric);
    return std::find(gate_metrics.begin(), gate_metrics.end(), metric) !=
           gate_metrics.end();
  };

  std::size_t matched = 0, regressions = 0, missing = 0;
  std::vector<RowDiff> diffs;
  std::vector<std::string> new_keys;
  for (const Row& row : current) {
    const auto it = baseline_by_key.find(row.key);
    if (it == baseline_by_key.end()) {
      std::printf("NEW       %s\n", row.key.c_str());
      new_keys.push_back(row.key);
      continue;
    }
    ++matched;
    RowDiff diff;
    diff.key = row.key;
    for (const auto& [metric, value] : row.metrics) {
      const auto base = std::find_if(
          it->second->metrics.begin(), it->second->metrics.end(),
          [&metric](const auto& entry) { return entry.first == metric; });
      if (base == it->second->metrics.end()) continue;
      const double reference = base->second;
      const double delta =
          reference != 0.0 ? (value - reference) / std::abs(reference) : 0.0;
      const bool is_gated = gated(metric);
      const bool regressed = is_gated && delta > threshold;
      if (regressed) ++regressions;
      std::printf("%-9s %s :: %s  %.6g -> %.6g  (%+.1f%%)\n",
                  regressed ? "REGRESSED" : (is_gated ? "ok" : "info"),
                  row.key.c_str(), metric.c_str(), reference, value, delta * 100.0);
      diff.metrics.push_back(
          MetricDelta{metric, reference, value, delta, is_gated, regressed});
    }
    diffs.push_back(std::move(diff));
    baseline_by_key.erase(it);
  }
  std::vector<std::string> missing_keys;
  for (const auto& [key, row] : baseline_by_key) {
    std::printf("MISSING   %s\n", key.c_str());
    missing_keys.push_back(key);
    ++missing;
  }
  std::printf("perf_diff: %zu matched, %zu regressions (threshold +%.0f%%), "
              "%zu missing, %zu new\n",
              matched, regressions, threshold * 100.0, missing,
              current.size() - matched);

  if (!json_path.empty()) {
    namespace json = rdcn::json;
    json::Array row_values;
    for (const RowDiff& diff : diffs) {
      json::Array metric_values;
      for (const MetricDelta& m : diff.metrics) {
        json::Object entry;
        entry.emplace_back("metric", m.metric);
        entry.emplace_back("baseline", m.baseline);
        entry.emplace_back("current", m.current);
        entry.emplace_back("delta", m.delta);
        entry.emplace_back("gated", m.gated);
        entry.emplace_back("regressed", m.regressed);
        metric_values.emplace_back(std::move(entry));
      }
      json::Object row_object;
      row_object.emplace_back("key", diff.key);
      row_object.emplace_back("metrics", std::move(metric_values));
      row_values.emplace_back(std::move(row_object));
    }
    const auto key_array = [](const std::vector<std::string>& keys) {
      json::Array out;
      for (const std::string& key : keys) out.emplace_back(key);
      return out;
    };
    json::Object summary;
    summary.emplace_back("matched", static_cast<std::int64_t>(matched));
    summary.emplace_back("regressions", static_cast<std::int64_t>(regressions));
    summary.emplace_back("missing", static_cast<std::int64_t>(missing));
    summary.emplace_back("new", static_cast<std::int64_t>(new_keys.size()));
    json::Object document;
    document.emplace_back("baseline", baseline_path);
    document.emplace_back("current", current_path);
    document.emplace_back("threshold", threshold);
    document.emplace_back("rows", std::move(row_values));
    document.emplace_back("missing", key_array(missing_keys));
    document.emplace_back("new", key_array(new_keys));
    document.emplace_back("summary", std::move(summary));
    const std::string text = json::dump(json::Value(std::move(document)), 1);
    try {
      json::parse(text);  // self-check: the emitted document must be strict JSON
    } catch (const json::ParseError& error) {
      std::fprintf(stderr, "perf_diff: emitted invalid JSON: %s\n", error.what());
      return 2;
    }
    try {
      // Atomic write-temp-fsync-rename: downstream tooling either sees
      // the previous document or this one, never a truncated mix.
      rdcn::atomic_write_file(json_path, text + '\n');
    } catch (const std::exception& error) {
      std::fprintf(stderr, "perf_diff: cannot write '%s': %s\n", json_path.c_str(),
                   error.what());
      return 2;
    }
  }
  if (matched == 0) {
    // A gate that matches nothing gates nothing -- if row keys drift (a
    // renamed param, a broken emitter) that must fail loudly, even under
    // --warn-only, so check.sh and CI cannot silently lose coverage.
    std::fprintf(stderr, "perf_diff: no rows matched between the two inputs\n");
    return 2;
  }
  if (regressions > 0 && !warn_only) return 1;
  return 0;
}
