// rdcn_lint -- project-specific invariant checker (ISSUE 8). Generic
// tools (clang-tidy, -Wall) cannot know this repo's contracts; this one
// mechanically enforces the ones PRs 5-7 established by convention, so
// they are caught at review time instead of by a failing dynamic test
// three refactors later:
//
//   hot-alloc        No unbounded heap-allocation idioms inside regions
//                    annotated hot (`// rdcn-lint: hot` before a function,
//                    `// rdcn-lint: hot-file` anywhere in a file): `new`,
//                    make_unique/make_shared, malloc, and push_back /
//                    emplace_back on a container that is never presized
//                    (no <container>.reserve/.resize/.assign anywhere in
//                    the file). Presize-to-high-water is the sanctioned
//                    pattern -- the dynamic zero-allocation contract is
//                    pinned by test_hotpath; this catches violations
//                    statically, at review time.
//   json-concat      No hand-rolled JSON string concatenation outside
//                    src/util/json and src/util/trace: a string literal
//                    that looks like JSON scaffolding (contains `{"` or
//                    `":`) on a line that concatenates (`+`, `<<`,
//                    `.append`). Strict output goes through util/json so
//                    escaping/NaN/duplicate-key bugs have one home.
//   probe-registry   Probe span/counter/gauge names are a closed registry
//                    (src/sim/probe.hpp enums + the to_string tables in
//                    probe.cpp). Checks the tables are total (one name per
//                    enumerator, kNum* matches, no duplicates) and that
//                    every "phase_<name>_ns" string literal in the tree
//                    refers to a registered phase.
//   include-hygiene  Project headers are included by their public path
//                    (the src/-rooted include dir): no "src/..." prefixes
//                    and no "../" escapes that bypass it.
//
// Escape hatch: `// rdcn-lint: allow(<rule>) -- <why>` on the flagged
// line suppresses that rule there; the justification is part of the
// convention (an allow without a reason should not survive review).
//
//   rdcn_lint [--root DIR] [PATH...]
//
// PATHs (files or directories) default to src/ tools/ bench/ under the
// root; the probe registry is read from <root>/src/sim/probe.{hpp,cpp}.
// Exit codes: 0 clean, 1 violations, 2 usage or I/O failure.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// One source line after the scanner pass: code with comments removed and
/// string-literal bodies blanked out, the extracted literal bodies, the
/// lint directives found in its comments, and the raw text.
struct ScannedLine {
  std::string code;
  std::vector<std::string> strings;  ///< unescaped literal bodies
  std::vector<std::string> directives;
  std::string raw;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Collects the `rdcn-lint: <directive>` marker from a comment chunk. The
/// tag must open the comment (only whitespace before it), so prose that
/// merely *mentions* the syntax -- like this tool's own documentation --
/// is not an annotation.
void extract_directives(const std::string& comment, std::vector<std::string>& out) {
  const std::string tag = "rdcn-lint:";
  const std::size_t at = comment.find_first_not_of(" \t");
  if (at == std::string::npos || comment.compare(at, tag.size(), tag) != 0) return;
  std::size_t start = at + tag.size();
  while (start < comment.size() && comment[start] == ' ') ++start;
  std::size_t end = start;
  while (end < comment.size() && (ident_char(comment[end]) || comment[end] == '-' ||
                                  comment[end] == '(' || comment[end] == ')')) {
    ++end;
  }
  if (end > start) out.push_back(comment.substr(start, end - start));
}

/// Line-based scanner: strips // and /* */ comments (collecting lint
/// directives from them), blanks string/char literals out of the code
/// channel, and collects each string literal's unescaped body. Handles
/// raw strings R"delim(...)delim" across lines.
class Scanner {
 public:
  std::vector<ScannedLine> scan(const std::vector<std::string>& lines) {
    std::vector<ScannedLine> out;
    out.reserve(lines.size());
    for (const std::string& raw : lines) {
      ScannedLine scanned;
      scanned.raw = raw;
      std::string& code = scanned.code;
      code.reserve(raw.size());
      std::size_t i = 0;
      while (i < raw.size()) {
        if (in_block_comment_) {
          const std::size_t end = raw.find("*/", i);
          const std::size_t stop = end == std::string::npos ? raw.size() : end;
          comment_buffer_.append(raw, i, stop - i);
          if (end == std::string::npos) {
            i = raw.size();
          } else {
            extract_directives(comment_buffer_, scanned.directives);
            comment_buffer_.clear();
            in_block_comment_ = false;
            i = end + 2;
          }
          continue;
        }
        if (in_raw_string_) {
          const std::string close = ")" + raw_delim_ + "\"";
          const std::size_t end = raw.find(close, i);
          if (end == std::string::npos) {
            current_string_.append(raw, i, raw.size() - i);
            current_string_ += '\n';
            i = raw.size();
          } else {
            current_string_.append(raw, i, end - i);
            scanned.strings.push_back(current_string_);
            current_string_.clear();
            in_raw_string_ = false;
            code += "\"\"";  // placeholder so concatenation context survives
            i = end + close.size();
          }
          continue;
        }
        const char c = raw[i];
        if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
          extract_directives(raw.substr(i + 2), scanned.directives);
          break;  // rest of the line is comment
        }
        if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
          in_block_comment_ = true;
          comment_buffer_.clear();
          i += 2;
          continue;
        }
        if (c == 'R' && i + 1 < raw.size() && raw[i + 1] == '"' &&
            (i == 0 || !ident_char(raw[i - 1]))) {
          const std::size_t open = raw.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim_ = raw.substr(i + 2, open - (i + 2));
            in_raw_string_ = true;
            current_string_.clear();
            i = open + 1;
            continue;
          }
        }
        if (c == '"') {
          std::string body;
          ++i;
          while (i < raw.size() && raw[i] != '"') {
            if (raw[i] == '\\' && i + 1 < raw.size()) {
              // Keep the escaped character (so \" becomes "), which is
              // what the json-concat heuristic needs to see.
              body += raw[i + 1];
              i += 2;
            } else {
              body += raw[i];
              ++i;
            }
          }
          if (i < raw.size()) ++i;  // closing quote
          scanned.strings.push_back(std::move(body));
          code += "\"\"";
          continue;
        }
        if (c == '\'') {
          ++i;
          while (i < raw.size() && raw[i] != '\'') {
            i += raw[i] == '\\' ? 2 : 1;
          }
          if (i < raw.size()) ++i;
          code += "' '";
          continue;
        }
        code += c;
        ++i;
      }
      out.push_back(std::move(scanned));
    }
    return out;
  }

 private:
  bool in_block_comment_ = false;
  std::string comment_buffer_;
  bool in_raw_string_ = false;
  std::string raw_delim_;
  std::string current_string_;
};

// ------------------------------------------------------- probe registry --

struct ProbeRegistry {
  bool loaded = false;
  std::set<std::string> phases;
  std::set<std::string> counters;
  std::set<std::string> gauges;
  std::vector<Violation> table_violations;  ///< totality/duplication issues
};

/// Number bound to `inline constexpr std::size_t kNum<What> = N;` in
/// probe.hpp, or 0 when absent.
std::size_t parse_registry_count(const std::string& text, const std::string& name) {
  const std::size_t at = text.find(name);
  if (at == std::string::npos) return 0;
  std::size_t i = text.find('=', at);
  if (i == std::string::npos) return 0;
  ++i;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  std::size_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  return value;
}

/// Pulls the `case <Enum>::X: return "name";` table of one to_string
/// overload out of probe.cpp. The switch is located by its parameter type.
void parse_name_table(const std::vector<std::string>& lines, const std::string& enum_name,
                      const std::string& file, std::size_t expected,
                      std::set<std::string>& names, std::vector<Violation>& violations) {
  const std::string needle = "case " + enum_name + "::";
  std::size_t cases = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find(needle) == std::string::npos) continue;
    ++cases;
    const std::size_t ret = line.find("return \"");
    if (ret == std::string::npos) continue;
    const std::size_t start = ret + 8;
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) continue;
    const std::string name = line.substr(start, end - start);
    if (!names.insert(name).second) {
      violations.push_back({file, i + 1, "probe-registry",
                            enum_name + " name \"" + name +
                                "\" appears twice in the to_string table; registry "
                                "names must be unique"});
    }
  }
  if (expected != 0 && cases != expected) {
    violations.push_back({file, 1, "probe-registry",
                          "to_string(" + enum_name + ") covers " +
                              std::to_string(cases) + " enumerators but kNum count is " +
                              std::to_string(expected) +
                              "; every registry slot needs a name"});
  }
}

ProbeRegistry load_probe_registry(const fs::path& root) {
  ProbeRegistry registry;
  const fs::path hpp = root / "src" / "sim" / "probe.hpp";
  const fs::path cpp = root / "src" / "sim" / "probe.cpp";
  std::ifstream hpp_in(hpp), cpp_in(cpp);
  if (!hpp_in || !cpp_in) return registry;
  std::stringstream hpp_text;
  hpp_text << hpp_in.rdbuf();
  std::vector<std::string> cpp_lines;
  std::string line;
  while (std::getline(cpp_in, line)) cpp_lines.push_back(line);

  const std::string cpp_name = cpp.generic_string();
  parse_name_table(cpp_lines, "Phase", cpp_name,
                   parse_registry_count(hpp_text.str(), "kNumPhases"), registry.phases,
                   registry.table_violations);
  parse_name_table(cpp_lines, "Counter", cpp_name,
                   parse_registry_count(hpp_text.str(), "kNumCounters"), registry.counters,
                   registry.table_violations);
  parse_name_table(cpp_lines, "Gauge", cpp_name,
                   parse_registry_count(hpp_text.str(), "kNumGauges"), registry.gauges,
                   registry.table_violations);
  registry.loaded = true;
  return registry;
}

// --------------------------------------------------------------- checker --

struct FileReport {
  std::vector<Violation> violations;
};

bool has_allow(const ScannedLine& line, const std::string& rule) {
  return std::find(line.directives.begin(), line.directives.end(), "allow(" + rule + ")") !=
         line.directives.end();
}

/// Last identifier component of the expression ending right before
/// `.push_back` -- `active_.transmitters.push_back` -> "transmitters".
std::string container_token(const std::string& code, std::size_t dot) {
  std::size_t end = dot;
  std::size_t start = end;
  while (start > 0 && ident_char(code[start - 1])) --start;
  return code.substr(start, end - start);
}

bool path_is_under(const std::string& generic, const char* dir) {
  return generic.find(dir) != std::string::npos;
}

FileReport check_file(const fs::path& path, const ProbeRegistry& registry) {
  FileReport report;
  std::ifstream in(path);
  if (!in) {
    report.violations.push_back(
        {path.generic_string(), 0, "io", "cannot open file"});
    return report;
  }
  std::vector<std::string> raw_lines;
  std::string line;
  while (std::getline(in, line)) raw_lines.push_back(line);
  Scanner scanner;
  const std::vector<ScannedLine> lines = scanner.scan(raw_lines);
  const std::string file = path.generic_string();

  // Pre-pass: which containers does this file ever presize, and where do
  // the hot regions lie. Hot regions: from a `hot` directive, the function
  // body opened by the next `{` until its matching `}` (brace depth).
  std::set<std::string> presized;
  for (const ScannedLine& scanned : lines) {
    const std::string& code = scanned.code;
    for (const char* call : {".reserve(", ".resize(", ".assign("}) {
      std::size_t at = code.find(call);
      while (at != std::string::npos) {
        const std::string token = container_token(code, at);
        if (!token.empty()) presized.insert(token);
        at = code.find(call, at + 1);
      }
    }
  }

  bool hot_file = false;
  for (const ScannedLine& scanned : lines) {
    if (std::find(scanned.directives.begin(), scanned.directives.end(), "hot-file") !=
        scanned.directives.end()) {
      hot_file = true;
    }
  }

  int depth = 0;
  bool pending_hot = false;
  std::size_t pending_hot_line = 0;
  bool in_hot_region = false;
  std::size_t hot_region_line = 0;
  int hot_region_depth = 0;

  const bool json_exempt =
      path_is_under(file, "src/util/json") || path_is_under(file, "src/util/trace");

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const ScannedLine& scanned = lines[i];
    const std::string& code = scanned.code;
    const std::size_t line_no = i + 1;

    if (std::find(scanned.directives.begin(), scanned.directives.end(), "hot") !=
        scanned.directives.end()) {
      pending_hot = true;
      pending_hot_line = line_no;
    }

    const bool hot_now = hot_file || in_hot_region ||
                         (pending_hot && code.find('{') != std::string::npos);

    // --- hot-alloc ------------------------------------------------------
    if (hot_now && !has_allow(scanned, "hot-alloc")) {
      const std::size_t origin = hot_file ? 1 : (in_hot_region ? hot_region_line : pending_hot_line);
      const std::string where =
          hot_file ? "hot file" : "hot region (annotated at line " + std::to_string(origin) + ")";
      for (const char* bad : {"make_unique", "make_shared", "malloc(", "calloc(", "realloc("}) {
        if (code.find(bad) != std::string::npos) {
          report.violations.push_back(
              {file, line_no, "hot-alloc",
               std::string(bad) + " in " + where +
                   "; hot paths must reuse presized scratch (see README \"Static "
                   "analysis & lint\")"});
        }
      }
      std::size_t at = 0;
      while ((at = code.find("new", at)) != std::string::npos) {
        const bool word = (at == 0 || !ident_char(code[at - 1])) &&
                          (at + 3 >= code.size() || !ident_char(code[at + 3]));
        if (word) {
          report.violations.push_back(
              {file, line_no, "hot-alloc",
               "'new' in " + where + "; hot paths must not heap-allocate"});
        }
        at += 3;
      }
      for (const char* grow : {".push_back(", ".emplace_back("}) {
        at = 0;
        while ((at = code.find(grow, at)) != std::string::npos) {
          const std::string token = container_token(code, at);
          if (presized.count(token) == 0) {
            report.violations.push_back(
                {file, line_no, "hot-alloc",
                 "'" + token + "'" + grow +
                     "...) in " + where + " without a presize (" + token +
                     ".reserve/.resize/.assign) anywhere in this file"});
          }
          at += 1;
        }
      }
    }

    // --- json-concat ----------------------------------------------------
    if (!json_exempt && !has_allow(scanned, "json-concat")) {
      const bool concatenating = code.find('+') != std::string::npos ||
                                 code.find("<<") != std::string::npos ||
                                 code.find(".append(") != std::string::npos;
      if (concatenating) {
        for (const std::string& literal : scanned.strings) {
          const bool jsonish = literal.find("{\"") != std::string::npos ||
                               literal.find("\":") != std::string::npos;
          if (jsonish) {
            report.violations.push_back(
                {file, line_no, "json-concat",
                 "hand-rolled JSON fragment \"" + literal +
                     "\" concatenated outside src/util/json; build a json::Value "
                     "and dump() it instead"});
            break;  // one per line is enough
          }
        }
      }
    }

    // --- probe-registry -------------------------------------------------
    if (registry.loaded && !has_allow(scanned, "probe-registry")) {
      for (const std::string& literal : scanned.strings) {
        if (literal.size() > 9 && literal.rfind("phase_", 0) == 0 &&
            literal.compare(literal.size() - 3, 3, "_ns") == 0) {
          const std::string name = literal.substr(6, literal.size() - 9);
          if (registry.phases.count(name) == 0) {
            report.violations.push_back(
                {file, line_no, "probe-registry",
                 "\"" + literal + "\" does not name a registered probe phase (known: " +
                     [&registry] {
                       std::string known;
                       for (const std::string& phase : registry.phases) {
                         if (!known.empty()) known += ", ";
                         known += phase;
                       }
                       return known;
                     }() +
                     "); add the phase to sim/probe.hpp first"});
          }
        }
      }
    }

    // --- include-hygiene ------------------------------------------------
    if (!has_allow(scanned, "include-hygiene")) {
      const std::string& raw = scanned.raw;
      std::size_t hash = raw.find_first_not_of(" \t");
      if (hash != std::string::npos && raw[hash] == '#') {
        const std::size_t inc = raw.find("include", hash);
        if (inc != std::string::npos) {
          const std::size_t quote = raw.find('"', inc);
          if (quote != std::string::npos) {
            const std::string target = raw.substr(quote + 1, raw.find('"', quote + 1) -
                                                                 (quote + 1));
            if (target.rfind("src/", 0) == 0) {
              report.violations.push_back(
                  {file, line_no, "include-hygiene",
                   "#include \"" + target +
                       "\" bypasses the public include root; include \"" +
                       target.substr(4) + "\" instead"});
            } else if (target.rfind("../", 0) == 0) {
              report.violations.push_back(
                  {file, line_no, "include-hygiene",
                   "#include \"" + target +
                       "\" escapes the include root with a relative path; use the "
                       "src/-rooted public path"});
            }
          }
        }
      }
    }

    // --- hot-region bookkeeping ----------------------------------------
    for (char c : code) {
      if (c == '{') {
        if (pending_hot) {
          in_hot_region = true;
          hot_region_line = pending_hot_line;
          hot_region_depth = depth;
          pending_hot = false;
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (in_hot_region && depth <= hot_region_depth) in_hot_region = false;
      }
    }
  }
  return report;
}

void collect_sources(const fs::path& path, std::vector<fs::path>& out) {
  if (fs::is_regular_file(path)) {
    out.push_back(path);
    return;
  }
  if (!fs::is_directory(path)) return;
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      out.push_back(entry.path());
    }
  }
}

int usage() {
  std::fprintf(stderr, "usage: rdcn_lint [--root DIR] [PATH...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "rdcn_lint: root '%s' is not a directory\n",
                 root.generic_string().c_str());
    return 2;
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  const ProbeRegistry registry = load_probe_registry(root);
  if (!registry.loaded) {
    std::fprintf(stderr,
                 "rdcn_lint: note: %s not readable; probe-registry checks skipped\n",
                 (root / "src/sim/probe.cpp").generic_string().c_str());
  }

  std::vector<fs::path> files;
  for (const std::string& path : paths) {
    const fs::path resolved = fs::path(path).is_absolute() ? fs::path(path) : root / path;
    if (!fs::exists(resolved)) {
      std::fprintf(stderr, "rdcn_lint: no such path: %s\n",
                   resolved.generic_string().c_str());
      return 2;
    }
    collect_sources(resolved, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Violation> all = registry.table_violations;
  for (const fs::path& file : files) {
    FileReport report = check_file(file, registry);
    all.insert(all.end(), report.violations.begin(), report.violations.end());
  }
  for (const Violation& violation : all) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", violation.file.c_str(), violation.line,
                 violation.rule.c_str(), violation.message.c_str());
  }
  std::fprintf(stderr, "rdcn_lint: %zu file(s) scanned, %zu violation(s)\n",
               files.size(), all.size());
  return all.empty() ? 0 : 1;
}
