// Reproduces the paper's worked examples exactly.
//
//  * Figure 1: the table's feasible schedule costs 9; the optimum is 7
//    (verified by the exact brute-force scheduler); ALG is feasible and
//    costs at most the table's schedule.
//  * Figure 2: the realized impacts (= charging-scheme charges) are
//    1, 2, 5 on input Pi and 1, 3, 3, 7 on Pi' = Pi + p4, and the stable
//    matching flips when p4 arrives.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/charging.hpp"
#include "core/impact.hpp"
#include "net/builders.hpp"
#include "opt/brute_force.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

TEST(Figure1, InstanceIsValid) {
  const Instance instance = figure1_instance();
  EXPECT_EQ(instance.validate(), "");
  EXPECT_EQ(instance.num_packets(), 5u);
  const Figure1Ids ids = figure1_ids();
  EXPECT_EQ(instance.topology().num_edges(), 4);
  EXPECT_EQ(instance.topology().fixed_link_delay(ids.s2, ids.d3), std::optional<Delay>(4));
  EXPECT_FALSE(instance.topology().fixed_link_delay(ids.s1, ids.d1).has_value());
}

TEST(Figure1, PaperScheduleCostsNine) {
  // Hand-evaluate the schedule from the figure's table:
  // step 1: p1 via (t1,r1), p3 via (t3,r3); step 2: p2 via (t1,r2),
  // p4 via (t3,r3); p5 via the fixed link (s2,d3) with delay 4.
  // Latencies: p1=1, p2=2, p3=1, p4=1, p5=4; total 9.
  const double p1 = 1.0 * (1 + 1 - 1);
  const double p2 = 1.0 * (2 + 1 - 1);
  const double p3 = 1.0 * (1 + 1 - 1);
  const double p4 = 1.0 * (2 + 1 - 2);
  const double p5 = 1.0 * 4;
  EXPECT_DOUBLE_EQ(p1 + p2 + p3 + p4 + p5, 9.0);
}

TEST(Figure1, ExactOptimumIsSeven) {
  const auto result = brute_force_opt(figure1_instance());
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 7.0);
}

TEST(Figure1, AlgIsFeasibleAndDelivers) {
  const Instance instance = figure1_instance();
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-9);
  // ALG is online; it cannot beat the offline optimum.
  EXPECT_GE(run.total_cost, 7.0 - 1e-9);
}

TEST(Figure1, AlgRoutesP5ThroughReconfigurableLayer) {
  // At p5's arrival (t3,r4) has impact w*(1+1)/1... base 1 plus H = {p4}
  // (one pending unit chunk on t3): Delta = 1 + 1 = 2 < w*dl = 4, so the
  // dispatcher must prefer the reconfigurable edge -- exactly the
  // improvement the paper's optimal schedule exploits.
  const Instance instance = figure1_instance();
  const RunResult run = run_alg(instance);
  EXPECT_FALSE(run.outcomes[4].route.use_fixed);
  EXPECT_LE(run.total_cost, 9.0 - 1e-9);  // strictly better than the table
}

class Figure2Test : public ::testing::Test {
 protected:
  static std::vector<double> charges(const Instance& instance) {
    const RunResult run = run_alg(instance);
    const ChargingAudit audit = audit_charging(instance, run);
    return audit.charge;
  }
};

TEST_F(Figure2Test, ImpactsOnPi) {
  const std::vector<double> charge = charges(figure2_instance_pi());
  ASSERT_EQ(charge.size(), 3u);
  EXPECT_DOUBLE_EQ(charge[0], 1.0);  // p1: own transmission only
  EXPECT_DOUBLE_EQ(charge[1], 2.0);  // p2: blocked by later p3, not charged
  EXPECT_DOUBLE_EQ(charge[2], 5.0);  // p3: own 3 + blocks p2 (weight 2)
}

TEST_F(Figure2Test, ImpactsOnPiPrime) {
  const std::vector<double> charge = charges(figure2_instance_pi_prime());
  ASSERT_EQ(charge.size(), 4u);
  EXPECT_DOUBLE_EQ(charge[0], 1.0);  // p1
  EXPECT_DOUBLE_EQ(charge[1], 3.0);  // p2: own 2 + blocks p1 (weight 1)
  EXPECT_DOUBLE_EQ(charge[2], 3.0);  // p3: blocked only by later p4
  EXPECT_DOUBLE_EQ(charge[3], 7.0);  // p4: own 4 + blocks p3 (weight 3)
}

TEST_F(Figure2Test, StableMatchingFlipsWhenP4Arrives) {
  // On Pi, step 1 transmits {p1, p3}; on Pi', step 1 transmits {p2, p4}.
  const RunResult pi = run_alg(figure2_instance_pi());
  EXPECT_EQ(pi.outcomes[0].chunk_transmit_steps.at(0), 1);  // p1 at step 1
  EXPECT_EQ(pi.outcomes[1].chunk_transmit_steps.at(0), 2);  // p2 waits
  EXPECT_EQ(pi.outcomes[2].chunk_transmit_steps.at(0), 1);  // p3 at step 1

  const RunResult pi_prime = run_alg(figure2_instance_pi_prime());
  EXPECT_EQ(pi_prime.outcomes[0].chunk_transmit_steps.at(0), 2);  // p1 waits
  EXPECT_EQ(pi_prime.outcomes[1].chunk_transmit_steps.at(0), 1);  // p2 at step 1
  EXPECT_EQ(pi_prime.outcomes[2].chunk_transmit_steps.at(0), 2);  // p3 waits
  EXPECT_EQ(pi_prime.outcomes[3].chunk_transmit_steps.at(0), 1);  // p4 at step 1
}

TEST_F(Figure2Test, ChargesStayWithinAlpha) {
  for (const Instance& instance :
       {figure2_instance_pi(), figure2_instance_pi_prime()}) {
    const RunResult run = run_alg(instance);
    const ChargingAudit audit = audit_charging(instance, run);
    EXPECT_LE(audit.max_overcharge, 1e-9);
    EXPECT_NEAR(audit.cover_gap, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace rdcn
