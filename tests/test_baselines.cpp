// Baseline policy tests: every (dispatcher, scheduler) combination
// delivers all packets with consistent accounting; scheduler-specific
// behaviours (max-weight per-step optimality, rotor obliviousness, iSLIP
// matching validity, FIFO ordering) are checked directly.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"
#include "helpers.hpp"
#include "match/brute_force.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

std::unique_ptr<DispatchPolicy> make_dispatcher(int kind) {
  switch (kind) {
    case 0: return std::make_unique<ImpactDispatcher>();
    case 1: return std::make_unique<RandomDispatcher>(123);
    case 2: return std::make_unique<RoundRobinDispatcher>();
    case 3: return std::make_unique<JsqDispatcher>();
    case 4: return std::make_unique<MinDelayDispatcher>();
    default: return std::make_unique<DirectOnlyDispatcher>();
  }
}

std::unique_ptr<SchedulePolicy> make_scheduler(int kind, const Topology& topology) {
  switch (kind) {
    case 0: return std::make_unique<StableMatchingScheduler>();
    case 1: return std::make_unique<MaxWeightScheduler>();
    case 2: return std::make_unique<IslipScheduler>(topology);
    case 3: return std::make_unique<RotorScheduler>(topology);
    case 4: return std::make_unique<RandomMaximalScheduler>(321);
    default: return std::make_unique<FifoScheduler>();
  }
}

class PolicyGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PolicyGrid, DeliversEverythingWithConsistentAccounting) {
  const auto [dispatcher_kind, scheduler_kind] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    auto dispatcher = make_dispatcher(dispatcher_kind);
    auto scheduler = make_scheduler(scheduler_kind, instance.topology());
    EngineOptions options;
    options.record_trace = false;
    const RunResult run = simulate(instance, *dispatcher, *scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run))
        << "dispatcher " << dispatcher_kind << " scheduler " << scheduler_kind
        << " seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
    EXPECT_GE(run.total_cost, instance.ideal_cost() - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PolicyGrid,
                         ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)));

TEST(MaxWeightScheduler, PicksHeaviestCompatibleSet) {
  // Three packets: (t0,r0) w5, (t0,r1) w4, (t1,r0) w3. Stable matching
  // picks {5}, then {4,3}? No: greedy picks 5, blocking both others ->
  // {5}. Max-weight picks {4, 3} (total 7 > 5).
  Topology g;
  g.add_sources(2);
  g.add_destinations(2);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1);
  g.add_edge(t0, r0, 1);
  g.add_edge(t0, r1, 1);
  g.add_edge(t1, r0, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 5.0, 0, 0);
  instance.add_packet(1, 4.0, 0, 1);
  instance.add_packet(1, 3.0, 1, 0);

  MinDelayDispatcher dispatcher;  // routes are forced (one edge per pair)
  MaxWeightScheduler max_weight;
  EngineOptions options;
  const RunResult run = simulate(instance, dispatcher, max_weight, options);
  // Step 1 transmits p2 and p3 (total weight 7), p1 waits to step 2.
  EXPECT_EQ(run.outcomes[1].chunk_transmit_steps.at(0), 1);
  EXPECT_EQ(run.outcomes[2].chunk_transmit_steps.at(0), 1);
  EXPECT_EQ(run.outcomes[0].chunk_transmit_steps.at(0), 2);

  // Stable matching on the same instance transmits p1 first.
  ImpactDispatcher impact;
  StableMatchingScheduler stable;
  const RunResult stable_run = simulate(instance, impact, stable, {});
  EXPECT_EQ(stable_run.outcomes[0].chunk_transmit_steps.at(0), 1);
}

TEST(RotorScheduler, IsDemandOblivious) {
  // The rotor's active matching depends only on the step index, so a
  // packet must wait for its edge's color slot.
  const Topology g = build_crossbar(3);
  RotorScheduler rotor(g);
  EXPECT_EQ(rotor.cycle_length(), 3);

  Instance instance(g, {});
  instance.add_packet(1, 1.0, 0, 1);
  MinDelayDispatcher dispatcher;
  RotorScheduler scheduler(instance.topology());
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  EXPECT_TRUE(all_delivered(instance, run));
  // Completion within one full rotor cycle.
  EXPECT_LE(run.outcomes[0].completion, 1 + 3 + 1);
}

TEST(IslipScheduler, ProducesMaximalMatchingUnderFullLoad) {
  // Full crossbar with one packet per (i, i) pair: iSLIP must schedule a
  // perfect matching in the first step (any maximal matching is perfect
  // on disjoint pairs).
  const Topology g = build_crossbar(4);
  Instance instance(g, {});
  for (NodeIndex i = 0; i < 4; ++i) {
    instance.add_packet(1, 1.0, i, (i + 1) % 4);
  }
  MinDelayDispatcher dispatcher;
  IslipScheduler scheduler(instance.topology());
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run.outcomes[static_cast<std::size_t>(i)].chunk_transmit_steps.at(0), 1);
  }
}

TEST(FifoScheduler, ServesInArrivalOrderUnderContention) {
  // Two packets on one edge; the later, heavier packet must NOT overtake.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(2, 100.0, 0, 0);

  MinDelayDispatcher dispatcher;
  FifoScheduler fifo;
  const RunResult run = simulate(instance, dispatcher, fifo, {});
  EXPECT_EQ(run.outcomes[0].chunk_transmit_steps.at(0), 1);
  EXPECT_EQ(run.outcomes[1].chunk_transmit_steps.at(0), 2);

  // The stable-matching scheduler (weight-aware) would do the same here
  // since p1 transmits before p2 even arrives; contention at step 2+:
  ImpactDispatcher impact;
  StableMatchingScheduler stable;
  const RunResult stable_run = simulate(instance, impact, stable, {});
  EXPECT_EQ(stable_run.total_cost, run.total_cost);
}

TEST(DirectOnlyDispatcher, PrefersFixedLinks) {
  const Instance instance = figure1_instance();
  DirectOnlyDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  EXPECT_TRUE(run.outcomes[4].route.use_fixed);  // p5 has a fixed link
  EXPECT_FALSE(run.outcomes[0].route.use_fixed);  // p1 does not
}

TEST(JsqDispatcher, SpreadsLoadAcrossParallelEdges) {
  // Two parallel edges between the same rack pair; JSQ must use both.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(0);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(0);
  g.add_edge(t0, r0, 1);
  g.add_edge(t1, r1, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);

  JsqDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  EXPECT_NE(run.outcomes[0].route.edge, run.outcomes[1].route.edge);
  EXPECT_EQ(run.makespan, 2);  // both transmitted in step 1
}

TEST(RandomDispatcher, DeterministicUnderSeed) {
  const Instance instance = testing::make_varied_instance(5);
  RandomDispatcher d1(77), d2(77);
  StableMatchingScheduler s1, s2;
  const RunResult a = simulate(instance, d1, s1, {});
  const RunResult b = simulate(instance, d2, s2, {});
  EXPECT_EQ(a.total_cost, b.total_cost);
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    EXPECT_EQ(a.outcomes[i].route.edge, b.outcomes[i].route.edge);
  }
}

}  // namespace
}  // namespace rdcn
