// Tests of the exact brute-force optimum and the lower-bound facade:
// hand-checkable instances, dominance relations between the bounds, and
// agreement with ALG on uncontended inputs.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "opt/brute_force.hpp"
#include "opt/lower_bounds.hpp"

namespace rdcn {
namespace {

TEST(BruteForce, EmptyInstanceCostsZero) {
  const Topology g = figure2_topology();
  const Instance instance(g, {});
  const auto result = brute_force_opt(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

TEST(BruteForce, SinglePacketPaysPathLatency) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 3);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 3.0, 0, 0);
  const auto result = brute_force_opt(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 6.0);  // w * (d+1)/2 = 3 * 2
}

TEST(BruteForce, ChoosesFixedLinkWhenCheaper) {
  // Congested edge vs direct link: three heavy packets on one (t, r);
  // the third is cheaper via a fixed link of delay 2 (cost 2) than waiting
  // for the queue (cost 3).
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  g.add_fixed_link(0, 0, 2);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);
  const auto result = brute_force_opt(instance);
  ASSERT_TRUE(result.has_value());
  // Queue-only: 1+2+3 = 6. One via fixed: 1+2 + 2 = 5. Two via fixed:
  // 1 + 2 + 2 = 5. So OPT = 5.
  EXPECT_DOUBLE_EQ(result->cost, 5.0);
}

TEST(BruteForce, HonorsPacketLimit) {
  const Instance instance = figure1_instance();
  BruteForceLimits limits;
  limits.max_packets = 3;
  EXPECT_FALSE(brute_force_opt(instance, limits).has_value());
}

TEST(BruteForce, OptNeverExceedsAlg) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    testing::RandomInstanceSpec spec;
    spec.seed = seed;
    spec.racks = 3;
    spec.packets = 5;
    spec.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
    spec.fixed_link_delay = (seed % 2 == 0) ? 5 : 0;
    const Instance instance = testing::make_random_instance(spec);
    const auto opt = brute_force_opt(instance);
    ASSERT_TRUE(opt.has_value()) << "seed " << seed;
    const RunResult run = run_alg(instance);
    EXPECT_GE(run.total_cost, opt->cost - 1e-9) << "seed " << seed;
    EXPECT_GE(opt->cost, instance.ideal_cost() - 1e-9) << "seed " << seed;
  }
}

TEST(LowerBounds, OrderingAndValidity) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    testing::RandomInstanceSpec spec;
    spec.seed = seed;
    spec.racks = 3;
    spec.packets = 5;
    const Instance instance = testing::make_random_instance(spec);

    LowerBoundOptions options;
    options.eps = 1.0;
    const LowerBounds bounds = compute_lower_bounds(instance, options);
    EXPECT_GT(bounds.trivial_bound, 0.0);
    EXPECT_GE(bounds.best(), bounds.trivial_bound - 1e-9);
    ASSERT_TRUE(bounds.lp_bound.has_value()) << "LP should fit at this size";
    // The dual-witness bound never exceeds the LP optimum (weak duality).
    EXPECT_LE(bounds.dual_witness_bound, *bounds.lp_bound + 1e-6);
    // The trivial per-packet bound is dominated by the LP: at reduced
    // speed every packet still pays at least its best-case path latency.
    EXPECT_LE(bounds.trivial_bound, *bounds.lp_bound + 1e-6);
    // NOTE: bounds.best() lower-bounds OPT(1/(2+eps)-speed), which may
    // legitimately EXCEED the unit-speed ALG's cost -- that asymmetry is
    // exactly why resource augmentation makes competitiveness possible.
  }
}

TEST(LowerBounds, LpSkippedWhenTooLarge) {
  const Instance instance = testing::make_varied_instance(2);
  LowerBoundOptions options;
  options.max_lp_variables = 1;  // force the skip
  const LowerBounds bounds = compute_lower_bounds(instance, options);
  EXPECT_FALSE(bounds.lp_bound.has_value());
  EXPECT_GT(bounds.best(), 0.0);
}

}  // namespace
}  // namespace rdcn
