// Hot-path contracts of the scheduling round loop (ISSUE 5):
//  * steady-state rounds perform ZERO heap allocations, for every registry
//    scheduler and both randomized schedulers -- the Selection API hands
//    policies an engine-owned output scratch, and every policy keeps its
//    working buffers as grow-once members;
//  * Engine::active_endpoints builds a correct dense remap for both the
//    engine's own pending list and foreign candidate lists, including the
//    stale-rank ("sparse set") reuse across alternating lists.
//
// The binary overrides global operator new/delete with a counting
// passthrough; the drain phase of a streaming engine (no arrivals, pure
// scheduling rounds + retirement) must not bump the counter after a short
// warmup that grows the scratch buffers to their high-water sizes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "baseline/dispatchers.hpp"
#include "core/alg.hpp"
#include "core/randomized.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}

void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rdcn {
namespace {

/// A contended multi-chunk workload on a two-tier pod: every packet is
/// injected at step 1, so the drain that follows is a pure scheduling-round
/// loop (no dispatches) lasting tens of steps.
Topology hotpath_topology(std::uint64_t seed) {
  TwoTierConfig net;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.7;
  net.max_edge_delay = 3;
  Rng rng(seed);
  return build_two_tier(net, rng);
}

std::vector<Packet> burst_packets(const Topology& topology, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Packet> packets;
  packets.reserve(count);
  while (packets.size() < count) {
    Packet p;
    p.id = static_cast<PacketIndex>(packets.size());
    p.arrival = 1;
    p.weight = rng.next_double(0.5, 8.0);
    p.source = static_cast<NodeIndex>(rng.next_below(
        static_cast<std::uint64_t>(topology.num_sources())));
    p.destination = static_cast<NodeIndex>(rng.next_below(
        static_cast<std::uint64_t>(topology.num_destinations())));
    if (!topology.routable(p.source, p.destination)) continue;
    packets.push_back(p);
  }
  return packets;
}

/// Injects the burst, runs `warmup` drain steps (scratch buffers grow to
/// their high-water sizes here), then counts allocations over the rest of
/// the drain. Returns (drain steps measured, allocations seen).
std::pair<int, std::uint64_t> measure_drain_allocations(DispatchPolicy& dispatcher,
                                                        SchedulePolicy& scheduler,
                                                        const Topology& topology,
                                                        int warmup,
                                                        EngineOptions options = {}) {
  Engine engine(topology, dispatcher, scheduler, options, [](RetiredPacket&&) {});
  const std::vector<Packet> packets = burst_packets(topology, 160, 11);
  const Time arrival = 1;
  engine.begin_step(&arrival);
  for (const Packet& p : packets) engine.inject(p);
  engine.finish_step();
  for (int i = 0; i < warmup && engine.busy(); ++i) {
    engine.begin_step(nullptr);
    engine.finish_step();
  }
  const std::uint64_t before = g_allocation_count.load();
  int steps = 0;
  while (engine.busy()) {
    engine.begin_step(nullptr);
    engine.finish_step();
    ++steps;
  }
  return {steps, g_allocation_count.load() - before};
}

TEST(HotPathAllocations, RegistrySchedulersDrainWithoutAllocating) {
  const Topology topology = hotpath_topology(3);
  for (const std::string& name : policy_names()) {
    const PolicyFactory policy = named_policy(name);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(topology);
    const auto [steps, allocations] =
        measure_drain_allocations(*dispatcher, *scheduler, topology, 3);
    EXPECT_GT(steps, 5) << name << ": drain too short to be meaningful";
    EXPECT_EQ(allocations, 0u) << name << ": steady-state rounds hit the heap";
  }
}

TEST(HotPathAllocations, ProbeOnDrainRemainsAllocationFree) {
  // ISSUE 7: the observability layer's per-round work is fixed-slot
  // counters, a fixed-depth span stack, and a pre-sized ring with
  // drop-oldest overwrite -- enabling it must not change the zero-heap
  // contract. Capacity 64 forces ring wraparound inside the measured
  // window, so the drop-oldest path itself is pinned allocation-free too.
  const Topology topology = hotpath_topology(3);
  const PolicyFactory policy = named_policy("alg");
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{64}}) {
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(topology);
    EngineOptions options;
    options.probe.enabled = true;
    options.probe.event_capacity = capacity;
    const auto [steps, allocations] =
        measure_drain_allocations(*dispatcher, *scheduler, topology, 3, options);
    EXPECT_GT(steps, 5);
    EXPECT_EQ(allocations, 0u)
        << "probe-on drain hit the heap (ring capacity " << capacity << ")";
  }
}

TEST(HotPathAllocations, BMatchingExtensionDrainsWithoutAllocating) {
  // endpoint_capacity > 1 exercises StableMatchingScheduler's stamped
  // in-place capacitated greedy (the b-matching extension path).
  const Topology topology = hotpath_topology(3);
  const PolicyFactory policy = named_policy("alg");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  EngineOptions options;
  options.endpoint_capacity = 2;
  const auto [steps, allocations] =
      measure_drain_allocations(*dispatcher, *scheduler, topology, 3, options);
  EXPECT_GT(steps, 5);
  EXPECT_EQ(allocations, 0u) << "b-matching path hit the heap";
}

TEST(HotPathAllocations, RandomizedSchedulersDrainWithoutAllocating) {
  const Topology topology = hotpath_topology(3);
  {
    PerturbedStableScheduler scheduler(0.3, 7);
    auto dispatcher = named_policy("alg").dispatcher();
    const auto [steps, allocations] =
        measure_drain_allocations(*dispatcher, scheduler, topology, 3);
    EXPECT_GT(steps, 5);
    EXPECT_EQ(allocations, 0u) << "PerturbedStableScheduler";
  }
  {
    RandomSerialDictatorScheduler scheduler(7);
    auto dispatcher = named_policy("alg").dispatcher();
    const auto [steps, allocations] =
        measure_drain_allocations(*dispatcher, scheduler, topology, 3);
    EXPECT_GT(steps, 5);
    EXPECT_EQ(allocations, 0u) << "RandomSerialDictatorScheduler";
  }
}

// ----------------------------------------------------- dispatch phase --

/// ISSUE 6: the dispatch phase itself -- impact_of through the incremental
/// index, JSQ through the integer counters -- must be allocation-free at
/// steady state. dispatch() is a pure reader, so after a warmup that grows
/// the dispatcher scratch and the index's treap pool to their high-water
/// sizes, probing decisions against a live engine (with drain steps
/// interleaved, so the probes also flush real deferred index maintenance)
/// must not touch the heap.
TEST(HotPathAllocations, DispatchDecisionsAllocateNothingAtSteadyState) {
  const Topology topology = hotpath_topology(3);
  ImpactDispatcher impact;
  JsqDispatcher jsq;
  StableMatchingScheduler scheduler;
  Engine engine(topology, impact, scheduler, {}, [](RetiredPacket&&) {});

  const std::vector<Packet> packets = burst_packets(topology, 160, 11);
  const Time arrival = 1;
  engine.begin_step(&arrival);
  for (const Packet& p : packets) engine.inject(p);
  engine.finish_step();

  // Probe packets only feed (weight, source, destination) to dispatch().
  const std::vector<Packet> probes = burst_packets(topology, 32, 23);

  // Warmup: grow dispatcher scratch + index pool to their high-water sizes
  // (every probe once, since candidate-list scratch grows exact-fit), then
  // let drain rounds queue deferred index events so the measured probes
  // exercise flush().
  for (int i = 0; i < 2; ++i) {
    for (const Packet& p : probes) {
      impact.dispatch(engine, p);
      jsq.dispatch(engine, p);
    }
    engine.begin_step(nullptr);
    engine.finish_step();
  }

  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t decisions = 0;
  for (int step = 0; step < 6 && engine.busy(); ++step) {
    engine.begin_step(nullptr);
    engine.finish_step();
    for (const Packet& p : probes) {
      const RouteDecision a = impact.dispatch(engine, p);
      const RouteDecision b = jsq.dispatch(engine, p);
      decisions += 2;
      ASSERT_TRUE(a.use_fixed || a.edge >= 0);
      ASSERT_TRUE(b.use_fixed || b.edge >= 0);
    }
  }
  EXPECT_GT(decisions, 100u) << "probe loop too short to be meaningful";
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "steady-state dispatch decisions hit the heap";
}

// ------------------------------------------------- active-endpoint remap --

Candidate candidate_on(const Topology& topology, EdgeIndex e, PacketIndex id) {
  Candidate c;
  c.packet = id;
  c.edge = e;
  c.transmitter = topology.edge(e).transmitter;
  c.receiver = topology.edge(e).receiver;
  c.chunk_weight = 1.0 + static_cast<double>(id % 5);
  c.arrival = 1;
  c.remaining = 1;
  return c;
}

/// The remap must list each endpoint exactly once, rank every candidate
/// endpoint into the list, and survive alternating rebuilds from different
/// foreign lists (the stale-rank reuse path).
TEST(ActiveEndpoints, ForeignListRebuildsSurviveStaleRanks) {
  const Topology topology = build_crossbar(6);
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  Instance instance(topology, {});
  Engine engine(instance, dispatcher, scheduler, {});

  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Candidate> candidates;
    const std::size_t depth = 1 + rng.next_below(20);
    for (std::size_t i = 0; i < depth; ++i) {
      const auto e = static_cast<EdgeIndex>(
          rng.next_below(static_cast<std::uint64_t>(topology.num_edges())));
      candidates.push_back(candidate_on(topology, e, static_cast<PacketIndex>(i)));
    }
    const ActiveEndpoints& active = engine.active_endpoints(candidates);

    std::vector<NodeIndex> expect_t, expect_r;
    for (const Candidate& c : candidates) {
      if (std::find(expect_t.begin(), expect_t.end(), c.transmitter) == expect_t.end()) {
        expect_t.push_back(c.transmitter);
      }
      if (std::find(expect_r.begin(), expect_r.end(), c.receiver) == expect_r.end()) {
        expect_r.push_back(c.receiver);
      }
    }
    ASSERT_EQ(active.transmitters, expect_t) << "trial " << trial;
    ASSERT_EQ(active.receivers, expect_r) << "trial " << trial;
    for (const Candidate& c : candidates) {
      const auto t_rank = static_cast<std::size_t>(active.transmitter_rank(c.transmitter));
      const auto r_rank = static_cast<std::size_t>(active.receiver_rank(c.receiver));
      ASSERT_LT(t_rank, active.num_transmitters());
      ASSERT_LT(r_rank, active.num_receivers());
      EXPECT_EQ(active.transmitters[t_rank], c.transmitter);
      EXPECT_EQ(active.receivers[r_rank], c.receiver);
    }
  }
}

}  // namespace
}  // namespace rdcn
