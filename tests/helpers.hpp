#pragma once

// Shared fixtures for the test-suite: deterministic random instance
// families spanning topology shapes (crossbar, sparse two-tier, hybrid,
// heterogeneous delays) and workload mixes.

#include <cstdint>

#include "net/builders.hpp"
#include "net/instance.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace rdcn::testing {

struct RandomInstanceSpec {
  std::uint64_t seed = 1;
  NodeIndex racks = 4;
  NodeIndex lasers = 2;
  NodeIndex photodetectors = 2;
  double density = 0.8;
  Delay max_edge_delay = 2;
  Delay attach_delay = 0;
  Delay fixed_link_delay = 0;  ///< 0 = pure reconfigurable
  std::size_t packets = 20;
  double arrival_rate = 3.0;
  PairSkew skew = PairSkew::Uniform;
  WeightDist weights = WeightDist::UniformInt;
  std::int64_t weight_max = 8;
};

inline Instance make_random_instance(const RandomInstanceSpec& spec) {
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 12345);
  TwoTierConfig config;
  config.racks = spec.racks;
  config.lasers_per_rack = spec.lasers;
  config.photodetectors_per_rack = spec.photodetectors;
  config.density = spec.density;
  config.max_edge_delay = spec.max_edge_delay;
  config.attach_delay = spec.attach_delay;
  config.fixed_link_delay = spec.fixed_link_delay;
  const Topology topology = build_two_tier(config, rng);

  WorkloadConfig workload;
  workload.num_packets = spec.packets;
  workload.arrival_rate = spec.arrival_rate;
  workload.skew = spec.skew;
  workload.weights = spec.weights;
  workload.weight_max = spec.weight_max;
  workload.seed = spec.seed;
  return generate_workload(topology, workload);
}

/// A seed-indexed family covering several shapes; used by TEST_P sweeps.
/// Seeds above 100 select larger, more congested shapes so the same
/// property suites also exercise deep queues and long horizons.
inline Instance make_varied_instance(std::uint64_t seed) {
  RandomInstanceSpec spec;
  spec.seed = seed;
  if (seed > 100) {
    spec.racks = 6 + static_cast<NodeIndex>(seed % 5);          // 6..10 racks
    spec.lasers = 2;
    spec.photodetectors = 2;
    spec.density = 0.4;
    spec.max_edge_delay = 1 + static_cast<Delay>(seed % 4);     // 1..4
    spec.attach_delay = (seed % 4 == 0) ? 2 : 0;
    spec.fixed_link_delay = (seed % 2 == 0) ? 12 : 0;
    spec.packets = 60 + (seed % 40);
    spec.arrival_rate = 6.0;
    spec.skew = static_cast<PairSkew>(seed % 5);
    spec.weights = WeightDist::UniformInt;
    spec.weight_max = 16;
    return make_random_instance(spec);
  }
  spec.racks = 3 + static_cast<NodeIndex>(seed % 3);            // 3..5 racks
  spec.lasers = 1 + static_cast<NodeIndex>(seed % 2);           // 1..2
  spec.photodetectors = 1 + static_cast<NodeIndex>((seed / 2) % 2);
  spec.density = (seed % 4 == 0) ? 0.5 : 1.0;
  spec.max_edge_delay = 1 + static_cast<Delay>(seed % 3);       // 1..3
  spec.attach_delay = (seed % 5 == 0) ? 1 : 0;
  spec.fixed_link_delay = (seed % 3 == 0) ? 6 : 0;              // hybrid mix
  spec.packets = 12 + (seed % 10);
  spec.skew = static_cast<PairSkew>(seed % 5);
  spec.weights = static_cast<WeightDist>(seed % 3 == 0 ? 0 : 1);  // unit / uniform-int
  return make_random_instance(spec);
}

}  // namespace rdcn::testing
