// Direct tests of the LP model containers (double and exact) and of
// engine option combinations not covered elsewhere.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "lp/exact_simplex.hpp"
#include "lp/model.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

TEST(LpModel, ObjectiveAndViolation) {
  lp::Model model;
  const auto x = model.add_variable(2.0, "x");
  const auto y = model.add_variable(-1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Relation::LessEq, 3.0);
  model.add_constraint({{x, 1.0}}, lp::Relation::GreaterEq, 1.0);
  model.add_constraint({{y, 2.0}}, lp::Relation::Equal, 2.0);

  EXPECT_EQ(model.variable_name(x), "x");
  EXPECT_EQ(model.variable_name(y), "x1");
  EXPECT_DOUBLE_EQ(model.objective_value({2.0, 1.0}), 3.0);
  // (2, 1): 3 <= 3 ok, 2 >= 1 ok, 2 == 2 ok, nonneg ok.
  EXPECT_DOUBLE_EQ(model.max_violation({2.0, 1.0}), 0.0);
  // (0, 3): LessEq ok (3<=3), GreaterEq violated by 1, Equal violated by 4.
  EXPECT_DOUBLE_EQ(model.max_violation({0.0, 3.0}), 4.0);
  // Negative variable counts as violation.
  EXPECT_DOUBLE_EQ(model.max_violation({-0.5, 1.0}), 1.5);
}

TEST(LpModel, RejectsUnknownVariable) {
  lp::Model model;
  model.add_variable(1.0);
  EXPECT_THROW(model.add_constraint({{5, 1.0}}, lp::Relation::LessEq, 1.0),
               std::out_of_range);
}

TEST(ExactModel, FeasibilityIsExact) {
  lp::ExactModel model;
  const auto x = model.add_variable(Rational(1));
  model.add_constraint({{x, Rational(3)}}, lp::ExactRelation::Equal, Rational(1));
  // x = 1/3 satisfies exactly; x = 0.3333 would not. No epsilon involved.
  EXPECT_TRUE(model.is_feasible({Rational(1, 3)}));
  EXPECT_FALSE(model.is_feasible({Rational(3333, 10000)}));
  EXPECT_EQ(model.objective_value({Rational(1, 3)}), Rational(1, 3));
}

TEST(EngineCombos, SpeedupWithCapacity) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.speedup_rounds = 2;
    options.endpoint_capacity = 2;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
  }
}

TEST(EngineCombos, SpeedupWithReconfigDelay) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.speedup_rounds = 2;
    options.reconfig_delay = 1;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
  }
}

TEST(EngineCombos, MigrationWithCapacity) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.redispatch_queued = true;
    options.endpoint_capacity = 2;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
  }
}

TEST(EngineCombos, ReconfigDelayRejectsCapacity) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.reconfig_delay = 1;
  options.endpoint_capacity = 2;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
}

}  // namespace
}  // namespace rdcn
