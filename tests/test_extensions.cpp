// Tests for the extension features beyond the paper's base model:
// b-matching (endpoint capacities), reconfiguration delays, randomized
// schedulers (the paper's stated future work), and the flow-level API.

#include <gtest/gtest.h>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"
#include "core/randomized.hpp"
#include "flow/flows.hpp"
#include "helpers.hpp"
#include "match/capacitated.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

// ---------------------------------------------------- capacitated greedy --

TEST(CapacitatedMatching, RespectsCapacitiesAndEdgeExclusivity) {
  // Four requests into one right vertex with capacity 2; two share an edge.
  const std::vector<CapacitatedRequest> requests = {
      {0, 0, 10}, {1, 0, 11}, {2, 0, 12}, {3, 0, 11},
  };
  const auto accepted = greedy_stable_bmatching(requests, 4, 1, 2);
  EXPECT_EQ(accepted, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(is_stable_bmatching(requests, accepted, 4, 1, 2));
}

TEST(CapacitatedMatching, CapacityOneMatchesPlainGreedy) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(5);
    const std::size_t num_right = 1 + rng.next_below(5);
    std::vector<MatchRequest> plain;
    std::vector<CapacitatedRequest> capacitated;
    const std::size_t count = rng.next_below(12);
    for (std::size_t k = 0; k < count; ++k) {
      const auto left = static_cast<std::int32_t>(rng.next_below(num_left));
      const auto right = static_cast<std::int32_t>(rng.next_below(num_right));
      plain.push_back(MatchRequest{left, right});
      // Unique edge keys: edge exclusivity must not bite beyond endpoints.
      capacitated.push_back(CapacitatedRequest{left, right, static_cast<std::int64_t>(k)});
    }
    EXPECT_EQ(greedy_stable_matching(plain, num_left, num_right),
              greedy_stable_bmatching(capacitated, num_left, num_right, 1));
  }
}

TEST(CapacitatedMatching, StabilityPropertyOnRandomInputs) {
  Rng rng(73);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(4);
    const std::size_t num_right = 1 + rng.next_below(4);
    const auto capacity = static_cast<std::int32_t>(1 + rng.next_below(3));
    std::vector<CapacitatedRequest> requests;
    const std::size_t count = rng.next_below(14);
    for (std::size_t k = 0; k < count; ++k) {
      requests.push_back(CapacitatedRequest{
          static_cast<std::int32_t>(rng.next_below(num_left)),
          static_cast<std::int32_t>(rng.next_below(num_right)),
          static_cast<std::int64_t>(rng.next_below(6))});
    }
    const auto accepted = greedy_stable_bmatching(requests, num_left, num_right, capacity);
    EXPECT_TRUE(is_stable_bmatching(requests, accepted, num_left, num_right, capacity))
        << "trial " << trial;
  }
}

// ----------------------------------------------------- engine: b-matching --

TEST(BMatchingEngine, HigherCapacityNeverBreaksDelivery) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    for (int capacity : {1, 2, 3}) {
      ImpactDispatcher dispatcher;
      StableMatchingScheduler scheduler;
      EngineOptions options;
      options.endpoint_capacity = capacity;
      const RunResult run = simulate(instance, dispatcher, scheduler, options);
      EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed << " b=" << capacity;
      EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
    }
  }
}

TEST(BMatchingEngine, CapacityRelievesSharedTransmitter) {
  // One transmitter fanning out to two receivers: with b=1 the packets
  // serialize; with b=2 both go in step 1.
  Topology g;
  g.add_sources(1);
  g.add_destinations(2);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1);
  g.add_edge(t, r0, 1);
  g.add_edge(t, r1, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 1);

  EngineOptions b1;
  EngineOptions b2;
  b2.endpoint_capacity = 2;
  ImpactDispatcher d1, d2;
  StableMatchingScheduler s1, s2;
  const RunResult run1 = simulate(instance, d1, s1, b1);
  const RunResult run2 = simulate(instance, d2, s2, b2);
  EXPECT_DOUBLE_EQ(run1.total_cost, 3.0);  // 1 + 2
  EXPECT_DOUBLE_EQ(run2.total_cost, 2.0);  // 1 + 1
}

TEST(BMatchingEngine, RejectsBadOptions) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.endpoint_capacity = 0;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
  options.endpoint_capacity = 2;
  options.record_trace = true;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
}

// ----------------------------------------------- engine: reconfig delays --

TEST(ReconfigDelay, ZeroDelayMatchesBaseModel) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher d1, d2;
    StableMatchingScheduler s1, s2;
    EngineOptions base;
    base.record_trace = false;
    EngineOptions zero = base;
    zero.reconfig_delay = 0;
    EXPECT_DOUBLE_EQ(simulate(instance, d1, s1, base).total_cost,
                     simulate(instance, d2, s2, zero).total_cost);
  }
}

TEST(ReconfigDelay, DelaysFirstTransmission) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);

  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.reconfig_delay = 3;
  const RunResult run = simulate(instance, dispatcher, scheduler, options);
  // Retuning starts at step 1, ready at 4, transmit at 4, complete at 5.
  EXPECT_EQ(run.outcomes[0].chunk_transmit_steps.at(0), 4);
  EXPECT_DOUBLE_EQ(run.total_cost, 4.0);
}

TEST(ReconfigDelay, NoExtraCostWhenConfigurationIsReused) {
  // Two packets on the same edge: one retuning penalty, then back-to-back.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);

  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.reconfig_delay = 2;
  const RunResult run = simulate(instance, dispatcher, scheduler, options);
  EXPECT_EQ(run.outcomes[0].chunk_transmit_steps.at(0), 3);
  EXPECT_EQ(run.outcomes[1].chunk_transmit_steps.at(0), 4);  // no second retune
}

TEST(ReconfigDelay, AllPoliciesStillDeliver) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.reconfig_delay = 2;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
  }
}

// ------------------------------------------------- randomized schedulers --

TEST(RandomizedSchedulers, DeliverAndAccountConsistently) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    {
      ImpactDispatcher dispatcher;
      PerturbedStableScheduler scheduler(0.3, seed);
      const RunResult run = simulate(instance, dispatcher, scheduler, {});
      EXPECT_TRUE(all_delivered(instance, run));
      EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
    }
    {
      ImpactDispatcher dispatcher;
      RandomSerialDictatorScheduler scheduler(seed);
      const RunResult run = simulate(instance, dispatcher, scheduler, {});
      EXPECT_TRUE(all_delivered(instance, run));
    }
  }
}

TEST(RandomizedSchedulers, ZeroSigmaMatchesDeterministicAlg) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher d1, d2;
    StableMatchingScheduler deterministic;
    PerturbedStableScheduler perturbed(0.0, 123);
    const double a = simulate(instance, d1, deterministic, {}).total_cost;
    const double b = simulate(instance, d2, perturbed, {}).total_cost;
    EXPECT_DOUBLE_EQ(a, b) << "seed " << seed;
  }
}

// --------------------------------------------- restricted migration mode --

TEST(RedispatchQueued, DeliversWithConsistentAccounting) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.redispatch_queued = true;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
  }
}

TEST(RedispatchQueued, EscapesABadCommitment) {
  // Random dispatch may pick the long edge; with migration the queued
  // packet re-routes to the short one before transmitting. Construct a
  // deterministic case: two parallel edges with delays 1 and 4 from the
  // same source; a round-robin dispatcher alternates, so the second packet
  // lands on the delay-4 edge. With migration it can flee back once the
  // delay-1 edge drains.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(0);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(0);
  g.add_edge(t0, r0, 1);
  g.add_edge(t1, r1, 4);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);

  RoundRobinDispatcher d1, d2;
  StableMatchingScheduler s1, s2;
  EngineOptions plain;
  const RunResult committed = simulate(instance, d1, s1, plain);
  EngineOptions migratory;
  migratory.redispatch_queued = true;
  const RunResult migrated = simulate(instance, d2, s2, migratory);
  // Committed: p1 on the delay-4 edge pays (4+1)/2 = 2.5; with migration
  // RoundRobin re-offers p1 each step and (cursor advancing) it reaches
  // the drained delay-1 edge. Migration must not be worse here.
  EXPECT_LE(migrated.total_cost, committed.total_cost);
}

TEST(RedispatchQueued, IncompatibleWithTraceRecording) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.redispatch_queued = true;
  options.record_trace = true;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
}

// --------------------------------------------------------------- flows --

TEST(Flows, ExpansionMatchesReduction) {
  FlowSet flows(figure2_topology());
  flows.add_flow(1, 6.0, 3, 0, 0);
  flows.add_flow(2, 2.0, 1, 1, 2);
  const Instance instance = flows.to_instance();
  ASSERT_EQ(instance.num_packets(), 4u);
  EXPECT_DOUBLE_EQ(instance.packets()[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(instance.packets()[3].weight, 2.0);
  EXPECT_EQ(flows.packet_to_flow(),
            (std::vector<FlowIndex>{0, 0, 0, 1}));
}

TEST(Flows, ReportAggregatesCompletionAndCost) {
  // One flow of 3 units through a single edge: chunks at steps 1, 2, 3;
  // FCT = completion(4) - arrival(1) = 3; fractional cost = 2 * (1+2+3).
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  FlowSet flows(std::move(g));
  flows.add_flow(1, 6.0, 3, 0, 0);
  const Instance instance = flows.to_instance();
  const RunResult run = run_alg(instance);
  const FlowReport report = analyze_flows(flows, run);
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_EQ(report.flows[0].completion, 4);
  EXPECT_DOUBLE_EQ(report.flows[0].fct, 3.0);
  EXPECT_DOUBLE_EQ(report.flows[0].weighted_fct, 18.0);
  EXPECT_DOUBLE_EQ(report.total_fractional_cost, run.total_cost);
  EXPECT_DOUBLE_EQ(report.mean_fct, 3.0);
}

TEST(Flows, RejectsBadInputs) {
  FlowSet flows(figure2_topology());
  EXPECT_THROW(flows.add_flow(1, 1.0, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(flows.add_flow(1, 0.0, 1, 0, 0), std::invalid_argument);
  flows.add_flow(3, 1.0, 1, 0, 0);
  EXPECT_THROW(flows.add_flow(2, 1.0, 1, 0, 0), std::invalid_argument);
  // analyze before to_instance / with wrong result.
  RunResult empty;
  EXPECT_THROW(analyze_flows(flows, empty), std::invalid_argument);
}

TEST(Flows, FlowCompletionBeatsBaselinesOnElephants) {
  // Smoke-test the headline metric path end to end: weighted FCT of ALG
  // is no worse than FIFO on a contended elephant/mice mix.
  Rng rng(301);
  TwoTierConfig net;
  net.racks = 4;
  net.lasers_per_rack = 1;
  net.photodetectors_per_rack = 1;
  const Topology topology = build_two_tier(net, rng);
  FlowSet flows(topology);
  Rng traffic(77);
  for (Time step = 1; flows.flows().size() < 40; ++step) {
    const auto src = static_cast<NodeIndex>(traffic.next_below(4));
    auto dst = static_cast<NodeIndex>(traffic.next_below(4));
    if (dst == src) dst = static_cast<NodeIndex>((dst + 1) % 4);
    const bool elephant = traffic.next_bool(0.2);
    flows.add_flow(step, elephant ? 16.0 : 1.0, elephant ? 8 : 1, src, dst);
  }
  const Instance instance = flows.to_instance();

  ImpactDispatcher d1;
  StableMatchingScheduler alg;
  const FlowReport alg_report = analyze_flows(flows, simulate(instance, d1, alg, {}));

  ImpactDispatcher d2;
  FifoScheduler fifo;
  const FlowReport fifo_report = analyze_flows(flows, simulate(instance, d2, fifo, {}));

  EXPECT_LE(alg_report.total_fractional_cost, fifo_report.total_fractional_cost * 1.001);
}

}  // namespace
}  // namespace rdcn
