// Tests of the metric helpers: link statistics, load concentration, and a
// large integration "soak" run asserting every invariant at once on a
// 2000-packet instance.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/charging.hpp"
#include "core/dual_witness.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

TEST(LinkStats, CountsChunksAndWindows) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  const EdgeIndex e = g.add_edge(t, r, 2);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);

  const RunResult run = run_alg(instance);
  const auto stats = link_stats(instance, run);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].chunks_carried, 2);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].first_busy, 1);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].last_busy, 2);
  EXPECT_GT(stats[static_cast<std::size_t>(e)].utilization, 0.0);
}

TEST(LinkStats, FixedPacketsDoNotCount) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 3);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(link_stats(instance, run).empty());  // no edges at all
  EXPECT_DOUBLE_EQ(load_concentration(instance, run), 0.0);
}

TEST(LoadConcentration, HotspotBeatsUniform) {
  Rng rng(91);
  TwoTierConfig net;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  const Topology topology = build_two_tier(net, rng);

  WorkloadConfig traffic;
  traffic.num_packets = 300;
  traffic.arrival_rate = 3.0;
  traffic.seed = 4;
  traffic.skew = PairSkew::Uniform;
  const Instance uniform_instance = generate_workload(topology, traffic);
  const RunResult uniform_run = run_alg(uniform_instance);

  traffic.skew = PairSkew::Hotspot;
  traffic.hotspot_fraction = 0.8;
  const Instance hotspot = generate_workload(topology, traffic);
  const RunResult hotspot_run = run_alg(hotspot);

  EXPECT_GT(load_concentration(hotspot, hotspot_run),
            load_concentration(uniform_instance, uniform_run));
}

TEST(Soak, TwoThousandPacketsAllInvariants) {
  Rng rng(2024);
  TwoTierConfig net;
  net.racks = 16;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.4;
  net.max_edge_delay = 3;
  net.fixed_link_delay = 20;
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig traffic;
  traffic.num_packets = 2000;
  traffic.arrival_rate = 8.0;
  traffic.skew = PairSkew::Zipf;
  traffic.weights = WeightDist::UniformInt;
  traffic.weight_max = 20;
  traffic.bursty = true;
  traffic.seed = 99;
  const Instance instance = generate_workload(topology, traffic);
  ASSERT_EQ(instance.validate(), "");

  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-5);
  EXPECT_NEAR(run.total_cost, recompute_cost_active_form(instance, run), 1e-5);

  const DualWitness witness = build_dual_witness(instance, run);
  EXPECT_LT(lemma1_gap(witness, run), 1e-5);
  EXPECT_LE(run.total_cost, witness.sum_alpha + 1e-5);

  const ChargingAudit audit = audit_charging(instance, run);
  EXPECT_LE(audit.max_overcharge, 1e-6);
  EXPECT_LT(audit.cover_gap, 1e-5);

  const ExactChargingAudit exact = audit_charging_exact(instance, run);
  EXPECT_TRUE(exact.charges_cover_cost);
  EXPECT_TRUE(exact.within_alpha);

  // Serialization of a big instance round-trips too.
  const Instance reloaded = Instance::from_string(instance.to_string());
  EXPECT_EQ(reloaded.to_string(), instance.to_string());
}

}  // namespace
}  // namespace rdcn
