// Tests of the metric helpers: link statistics, load concentration, and a
// large integration "soak" run asserting every invariant at once on a
// 2000-packet instance.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/alg.hpp"
#include "core/charging.hpp"
#include "core/dual_witness.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"

namespace rdcn {
namespace {

TEST(LinkStats, CountsChunksAndWindows) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  const EdgeIndex e = g.add_edge(t, r, 2);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);

  const RunResult run = run_alg(instance);
  const auto stats = link_stats(instance, run);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].chunks_carried, 2);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].first_busy, 1);
  EXPECT_EQ(stats[static_cast<std::size_t>(e)].last_busy, 2);
  EXPECT_GT(stats[static_cast<std::size_t>(e)].utilization, 0.0);
}

TEST(LinkStats, FixedPacketsDoNotCount) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 3);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(link_stats(instance, run).empty());  // no edges at all
  EXPECT_DOUBLE_EQ(load_concentration(instance, run), 0.0);
}

TEST(LoadConcentration, HotspotBeatsUniform) {
  Rng rng(91);
  TwoTierConfig net;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  const Topology topology = build_two_tier(net, rng);

  WorkloadConfig traffic;
  traffic.num_packets = 300;
  traffic.arrival_rate = 3.0;
  traffic.seed = 4;
  traffic.skew = PairSkew::Uniform;
  const Instance uniform_instance = generate_workload(topology, traffic);
  const RunResult uniform_run = run_alg(uniform_instance);

  traffic.skew = PairSkew::Hotspot;
  traffic.hotspot_fraction = 0.8;
  const Instance hotspot = generate_workload(topology, traffic);
  const RunResult hotspot_run = run_alg(hotspot);

  EXPECT_GT(load_concentration(hotspot, hotspot_run),
            load_concentration(uniform_instance, uniform_run));
}

TEST(Soak, TwoThousandPacketsAllInvariants) {
  Rng rng(2024);
  TwoTierConfig net;
  net.racks = 16;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.4;
  net.max_edge_delay = 3;
  net.fixed_link_delay = 20;
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig traffic;
  traffic.num_packets = 2000;
  traffic.arrival_rate = 8.0;
  traffic.skew = PairSkew::Zipf;
  traffic.weights = WeightDist::UniformInt;
  traffic.weight_max = 20;
  traffic.bursty = true;
  traffic.seed = 99;
  const Instance instance = generate_workload(topology, traffic);
  ASSERT_EQ(instance.validate(), "");

  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-5);
  EXPECT_NEAR(run.total_cost, recompute_cost_active_form(instance, run), 1e-5);

  const DualWitness witness = build_dual_witness(instance, run);
  EXPECT_LT(lemma1_gap(witness, run), 1e-5);
  EXPECT_LE(run.total_cost, witness.sum_alpha + 1e-5);

  const ChargingAudit audit = audit_charging(instance, run);
  EXPECT_LE(audit.max_overcharge, 1e-6);
  EXPECT_LT(audit.cover_gap, 1e-5);

  const ExactChargingAudit exact = audit_charging_exact(instance, run);
  EXPECT_TRUE(exact.charges_cover_cost);
  EXPECT_TRUE(exact.within_alpha);

  // Serialization of a big instance round-trips too.
  const Instance reloaded = Instance::from_string(instance.to_string());
  EXPECT_EQ(reloaded.to_string(), instance.to_string());
}

TEST(StreamTelemetry, FlushesThePartialFinalWindow) {
  // A span that is not a multiple of the window: the trailing partial
  // window must be kept by finish(), so the series totals tile the run.
  StreamTelemetry telemetry(4);
  for (Time t = 1; t <= 10; ++t) telemetry.on_step(t, 2, 1, 5);
  const auto& series = telemetry.finish();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].steps, 4);
  EXPECT_EQ(series[1].steps, 4);
  EXPECT_EQ(series[2].steps, 2);  // partial, not dropped
  EXPECT_EQ(series[2].start, 9);
  Time steps = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  for (const StreamWindow& window : series) {
    steps += window.steps;
    arrivals += window.arrivals;
    served += window.served;
    EXPECT_DOUBLE_EQ(window.mean_backlog, 5.0);
  }
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(arrivals, 20u);
  EXPECT_EQ(served, 10u);
  EXPECT_EQ(telemetry.finish().size(), 3u);  // idempotent
}

TEST(StreamTelemetry, BoundaryRetirementsFoldIntoTheTrailingWindow) {
  // Stage mutations retire packets between steps (requeue onto the fixed
  // layer completes them inside apply_mutation); absorb_boundary must keep
  // the series served total equal to the run's.
  StreamTelemetry closed(4);
  for (Time t = 1; t <= 4; ++t) closed.on_step(t, 1, 1, 2);
  closed.absorb_boundary(3);  // last window already flushed
  const auto& series = closed.finish();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].served, 7u);

  StreamTelemetry open(4);
  open.on_step(1, 1, 1, 2);
  open.absorb_boundary(2);  // open partial window absorbs them
  const auto& partial = open.finish();
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0].served, 3u);
  EXPECT_EQ(partial[0].steps, 1);

  StreamTelemetry none(4);
  none.absorb_boundary(1);  // no steps at all: still surfaced at finish
  ASSERT_EQ(none.finish().size(), 1u);
  EXPECT_EQ(none.windows()[0].served, 1u);
  EXPECT_EQ(none.windows()[0].steps, 0);
}

TEST(LatencyHistogram, EmptySentinelsAndPercentileThrow) {
  const LatencyHistogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_THROW(empty.percentile(50.0), std::logic_error);
}

TEST(LatencyHistogram, MergeEdgeCases) {
  LatencyHistogram a;
  a.add(5);
  a.add(100);
  LatencyHistogram b;
  b.add(7);

  // Merging an empty histogram must not drag min/max to the 0 sentinels.
  LatencyHistogram with_empty = a;
  with_empty.merge(LatencyHistogram{});
  EXPECT_EQ(with_empty.count(), 2u);
  EXPECT_EQ(with_empty.min(), 5);
  EXPECT_EQ(with_empty.max(), 100);

  // Merging INTO an empty histogram adopts the other's extremes.
  LatencyHistogram from_empty;
  from_empty.merge(a);
  EXPECT_EQ(from_empty.min(), 5);
  EXPECT_EQ(from_empty.max(), 100);
  EXPECT_EQ(from_empty.count(), 2u);

  // Merge is order-independent.
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
  EXPECT_EQ(ab.p50(), ba.p50());
  EXPECT_EQ(ab.p99(), ba.p99());
  EXPECT_DOUBLE_EQ(ab.mean(), ba.mean());

  // Mismatched layouts refuse to merge, even when the source is empty.
  EXPECT_THROW(ab.merge(LatencyHistogram{6}), std::invalid_argument);
}

}  // namespace
}  // namespace rdcn
