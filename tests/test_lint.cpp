// Self-tests for tools/rdcn_lint (ISSUE 8): every planted fixture under
// tests/lint_fixtures/ must be caught with the exact rule name, the
// sanctioned patterns (presize, allow() escapes) must pass, and -- the
// point of the whole exercise -- a run over the real tree must be clean.
//
// The binary path and source root arrive as compile definitions
// (RDCN_LINT_BIN, RDCN_SOURCE_DIR) from CMake; the tool is exercised the
// way CI and check.sh invoke it, through its real CLI.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(RDCN_LINT_BIN) + " --root " + RDCN_SOURCE_DIR + " " + args + " 2>&1";
  LintRun result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) result.output += buffer;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(RDCN_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

TEST(RdcnLint, HotAllocCatchesNewInHotRegion) {
  const LintRun run = run_lint(fixture("hot_alloc_new.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[hot-alloc]"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("hot_alloc_new.cpp:10:"), std::string::npos) << run.output;
  // The identical `new` in the un-annotated function must not be flagged.
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, HotAllocCatchesUnpresizedPushBack) {
  const LintRun run = run_lint(fixture("hot_alloc_push_back.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[hot-alloc]"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("grows_unbounded"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, HotAllocAcceptsPresizeAndAllowEscape) {
  const LintRun run = run_lint(fixture("hot_alloc_clean.cpp"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, JsonConcatCatchesHandRolledFragments) {
  const LintRun run = run_lint(fixture("json_concat.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[json-concat]"), std::string::npos) << run.output;
  // Every planted line trips: the generic fragment plus both lines of the
  // hand-rolled suite-journal manifest (the shape run/suite.cpp's writer
  // must never regress to). The quoted-word error message is not flagged.
  EXPECT_NE(run.output.find("rdcn_suite_journal"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("3 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, ProbeRegistryCatchesUnregisteredPhaseKey) {
  const LintRun run = run_lint(fixture("probe_registry.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[probe-registry]"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("phase_quantum_teleport_ns"), std::string::npos)
      << run.output;
  // phase_dispatch_ns in the same file is registered and must pass.
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, IncludeHygieneCatchesBothEscapeForms) {
  const LintRun run = run_lint(fixture("include_hygiene.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[include-hygiene]"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("src/sim/probe.hpp"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("../util/json.hpp"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("2 violation(s)"), std::string::npos) << run.output;
}

TEST(RdcnLint, RealTreeIsClean) {
  // The gate itself: src/ tools/ bench/ under the current conventions.
  const LintRun run = run_lint("");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(RdcnLint, BadFlagIsUsageError) {
  const LintRun run = run_lint("--definitely-not-a-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(RdcnLint, MissingPathIsIoError) {
  const LintRun run = run_lint("no/such/dir");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
