// Tests for the matching substrate: greedy stable matching, Gale-Shapley,
// Hungarian max-weight matching, Hopcroft-Karp, and bipartite edge
// coloring -- each validated against brute-force oracles on random graphs.

#include <gtest/gtest.h>

#include <numeric>

#include "match/brute_force.hpp"
#include "match/edge_coloring.hpp"
#include "match/gale_shapley.hpp"
#include "match/hopcroft_karp.hpp"
#include "match/hungarian.hpp"
#include "match/stable.hpp"
#include "util/rng.hpp"

namespace rdcn {
namespace {

std::vector<WeightedBipartiteEdge> random_edges(Rng& rng, std::size_t num_left,
                                                std::size_t num_right, std::size_t count,
                                                bool integer_weights = true) {
  std::vector<WeightedBipartiteEdge> edges;
  for (std::size_t k = 0; k < count; ++k) {
    WeightedBipartiteEdge edge;
    edge.left = static_cast<std::int32_t>(rng.next_below(num_left));
    edge.right = static_cast<std::int32_t>(rng.next_below(num_right));
    edge.weight = integer_weights ? static_cast<double>(rng.next_int(1, 9))
                                  : rng.next_double(0.1, 9.0);
    edges.push_back(edge);
  }
  return edges;
}

// ---------------------------------------------------------------- stable --

TEST(GreedyStableMatching, AcceptsInOrderAndIsStable) {
  // Requests pre-sorted by priority; conflict structure forces rejections.
  const std::vector<MatchRequest> requests = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 1},
  };
  const auto accepted = greedy_stable_matching(requests, 3, 2);
  EXPECT_EQ(accepted, (std::vector<std::size_t>{0, 3}));
  EXPECT_TRUE(is_stable_selection(requests, accepted, 3, 2));
}

TEST(GreedyStableMatching, EmptyInput) {
  EXPECT_TRUE(greedy_stable_matching({}, 4, 4).empty());
}

TEST(GreedyStableMatching, StabilityPropertyOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(6);
    const std::size_t num_right = 1 + rng.next_below(6);
    std::vector<MatchRequest> requests;
    const std::size_t count = rng.next_below(12);
    for (std::size_t k = 0; k < count; ++k) {
      requests.push_back(MatchRequest{static_cast<std::int32_t>(rng.next_below(num_left)),
                                      static_cast<std::int32_t>(rng.next_below(num_right))});
    }
    const auto accepted = greedy_stable_matching(requests, num_left, num_right);
    EXPECT_TRUE(is_stable_selection(requests, accepted, num_left, num_right));
    // Every rejected request has a blocking witness of lower index.
    const auto witness = blocking_witness(requests, accepted, num_left, num_right);
    std::vector<bool> is_accepted(requests.size(), false);
    for (std::size_t idx : accepted) is_accepted[idx] = true;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (is_accepted[i]) continue;
      ASSERT_LT(witness[i], requests.size());
      EXPECT_LT(witness[i], i);
      const bool shares = requests[witness[i]].left == requests[i].left ||
                          requests[witness[i]].right == requests[i].right;
      EXPECT_TRUE(shares);
    }
  }
}

TEST(GreedyStableMatching, RejectsNonMatchingSelections) {
  const std::vector<MatchRequest> requests = {{0, 0}, {0, 1}};
  const std::vector<std::size_t> both = {0, 1};
  EXPECT_FALSE(is_stable_selection(requests, both, 1, 2));  // shares left 0
}

// ----------------------------------------------------------- gale-shapley --

TEST(GaleShapley, ClassicThreeByThree) {
  StableMarriageInput input;
  input.preferences_left = {{0, 1, 2}, {1, 0, 2}, {0, 1, 2}};
  input.preferences_right = {{1, 0, 2}, {0, 1, 2}, {0, 1, 2}};
  const auto result = gale_shapley(input);
  EXPECT_TRUE(is_stable_marriage(input, result));
  for (std::int32_t match : result.match_of_left) EXPECT_NE(match, -1);
}

TEST(GaleShapley, PartialListsLeaveUnmatched) {
  StableMarriageInput input;
  input.preferences_left = {{0}, {0}};  // both want only woman 0
  input.preferences_right = {{1, 0}};
  const auto result = gale_shapley(input);
  EXPECT_TRUE(is_stable_marriage(input, result));
  EXPECT_EQ(result.match_of_right[0], 1);  // she prefers 1
  EXPECT_EQ(result.match_of_left[0], -1);
}

TEST(GaleShapley, StableOnRandomPreferences) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.next_below(6);
    const std::size_t m = 1 + rng.next_below(6);
    StableMarriageInput input;
    input.preferences_left.resize(n);
    input.preferences_right.resize(m);
    for (auto& prefs : input.preferences_left) {
      std::vector<std::int32_t> all(m);
      std::iota(all.begin(), all.end(), 0);
      rng.shuffle(all);
      all.resize(rng.next_below(m + 1));
      prefs = all;
    }
    for (auto& prefs : input.preferences_right) {
      std::vector<std::int32_t> all(n);
      std::iota(all.begin(), all.end(), 0);
      rng.shuffle(all);
      all.resize(rng.next_below(n + 1));
      prefs = all;
    }
    const auto result = gale_shapley(input);
    EXPECT_TRUE(is_stable_marriage(input, result)) << "trial " << trial;
  }
}

// -------------------------------------------------------------- hungarian --

TEST(Hungarian, KnownAssignment) {
  // Classic 3x3: min cost assignment.
  const std::vector<std::vector<double>> cost = {
      {4, 1, 3},
      {2, 0, 5},
      {3, 2, 2},
  };
  const auto assignment = min_cost_assignment(cost);
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) total += cost[i][static_cast<std::size_t>(assignment[i])];
  EXPECT_NEAR(total, 5.0, 1e-9);  // (0,1)+(1,0)+(2,2) = 1+2+2
}

TEST(Hungarian, MatchesBruteForceOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(5);
    const std::size_t num_right = 1 + rng.next_below(5);
    const auto edges = random_edges(rng, num_left, num_right, 1 + rng.next_below(10));
    const MatchingResult fast = max_weight_matching(edges, num_left, num_right);
    const double exact = brute_force_max_weight_matching(edges, num_left, num_right);
    EXPECT_NEAR(fast.total_weight, exact, 1e-7) << "trial " << trial;
    // Returned edges form a matching.
    std::vector<bool> left_used(num_left, false), right_used(num_right, false);
    for (std::size_t k : fast.edges) {
      EXPECT_FALSE(left_used[static_cast<std::size_t>(edges[k].left)]);
      EXPECT_FALSE(right_used[static_cast<std::size_t>(edges[k].right)]);
      left_used[static_cast<std::size_t>(edges[k].left)] = true;
      right_used[static_cast<std::size_t>(edges[k].right)] = true;
    }
  }
}

TEST(Hungarian, EmptyAndSingleton) {
  EXPECT_TRUE(max_weight_matching({}, 3, 3).edges.empty());
  const std::vector<WeightedBipartiteEdge> one = {{0, 0, 2.5}};
  const auto result = max_weight_matching(one, 1, 1);
  ASSERT_EQ(result.edges.size(), 1u);
  EXPECT_NEAR(result.total_weight, 2.5, 1e-12);
}

// ---------------------------------------------------------- hopcroft-karp --

TEST(HopcroftKarp, MatchesBruteForceCardinality) {
  Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(6);
    const std::size_t num_right = 1 + rng.next_below(6);
    const auto weighted = random_edges(rng, num_left, num_right, rng.next_below(12));
    std::vector<std::vector<std::int32_t>> adjacency(num_left);
    for (const auto& edge : weighted) {
      adjacency[static_cast<std::size_t>(edge.left)].push_back(edge.right);
    }
    const auto match = hopcroft_karp(adjacency, num_right);
    const std::size_t exact = brute_force_max_cardinality(weighted, num_left, num_right);
    EXPECT_EQ(matching_size(match), exact) << "trial " << trial;
  }
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  std::vector<std::vector<std::int32_t>> adjacency(5);
  for (std::int32_t i = 0; i < 5; ++i) adjacency[static_cast<std::size_t>(i)] = {i};
  EXPECT_EQ(matching_size(hopcroft_karp(adjacency, 5)), 5u);
}

// ------------------------------------------------------------ edge coloring --

TEST(EdgeColoring, ProperWithDeltaColorsOnRandomGraphs) {
  Rng rng(53);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_left = 1 + rng.next_below(6);
    const std::size_t num_right = 1 + rng.next_below(6);
    std::vector<BipartiteEdge> edges;
    const std::size_t count = rng.next_below(15);
    std::vector<std::int32_t> deg_l(num_left, 0), deg_r(num_right, 0);
    for (std::size_t k = 0; k < count; ++k) {
      BipartiteEdge edge{static_cast<std::int32_t>(rng.next_below(num_left)),
                         static_cast<std::int32_t>(rng.next_below(num_right))};
      edges.push_back(edge);
      ++deg_l[static_cast<std::size_t>(edge.left)];
      ++deg_r[static_cast<std::size_t>(edge.right)];
    }
    std::int32_t delta = 0;
    for (auto d : deg_l) delta = std::max(delta, d);
    for (auto d : deg_r) delta = std::max(delta, d);

    const EdgeColoring coloring = color_bipartite_edges(edges, num_left, num_right);
    EXPECT_EQ(coloring.num_colors, delta) << "trial " << trial;
    EXPECT_TRUE(is_proper_edge_coloring(edges, coloring, num_left, num_right))
        << "trial " << trial;
    const auto matchings = coloring_to_matchings(coloring);
    std::size_t total = 0;
    for (const auto& matching : matchings) total += matching.size();
    EXPECT_EQ(total, edges.size());
  }
}

TEST(EdgeColoring, CompleteBipartiteUsesExactlyN) {
  std::vector<BipartiteEdge> edges;
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 4; ++j) edges.push_back(BipartiteEdge{i, j});
  }
  const EdgeColoring coloring = color_bipartite_edges(edges, 4, 4);
  EXPECT_EQ(coloring.num_colors, 4);
  EXPECT_TRUE(is_proper_edge_coloring(edges, coloring, 4, 4));
}

}  // namespace
}  // namespace rdcn
