// Tests for the run/ subsystem: the policy registry, ScenarioRunner
// determinism and metric plumbing, the bespoke-instance hook,
// BatchRunner's deterministic fan-out over the thread pool, and the
// thread pool's exception-propagation / shutdown-ordering contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include "helpers.hpp"
#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "small";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.workload.num_packets = 30;
  spec.workload.arrival_rate = 3.0;
  spec.workload.weights = WeightDist::UniformInt;
  spec.repetitions = 4;
  return spec;
}

// ------------------------------------------------------ policy registry --

TEST(PolicyRegistry, EveryNameResolvesAndRuns) {
  const ScenarioRunner runner(small_spec());
  for (const std::string& name : policy_names()) {
    const PolicyFactory policy = named_policy(name);
    EXPECT_EQ(policy.name, name);
    ASSERT_TRUE(policy.dispatcher);
    ASSERT_TRUE(policy.scheduler);
    const RunResult run = runner.run_once(policy, 1);
    EXPECT_GT(run.total_cost, 0.0) << name;
  }
}

TEST(PolicyRegistry, UnknownNameThrows) {
  EXPECT_THROW(named_policy("definitely-not-a-policy"), std::invalid_argument);
}

TEST(PolicyRegistry, GridsLeadWithAlg) {
  EXPECT_EQ(scheduler_baselines().front().name, "ALG");
  EXPECT_EQ(dispatcher_ablations().front().name, "Impact (ALG)");
}

// ------------------------------------------------------- ScenarioRunner --

TEST(ScenarioRunner, InstancesAreDeterministicPerSeed) {
  const ScenarioRunner runner(small_spec());
  const Instance a = runner.instance(7);
  const Instance b = runner.instance(7);
  EXPECT_EQ(a.to_string(), b.to_string());
  const Instance c = runner.instance(8);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(ScenarioRunner, SeedsEnumerateRepetitions) {
  ScenarioSpec spec = small_spec();
  spec.base_seed = 10;
  spec.repetitions = 3;
  EXPECT_EQ(ScenarioRunner(spec).seeds(),
            (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(ScenarioRunner, RunAggregatesAllRepetitions) {
  const ScenarioRunner runner(small_spec());
  const ScenarioResult result = runner.run(alg_policy());
  EXPECT_EQ(result.scenario, "small");
  EXPECT_EQ(result.policy, "alg");
  ASSERT_EQ(result.repetitions.size(), 4u);
  double sum = 0.0;
  for (const RepetitionOutcome& rep : result.repetitions) {
    EXPECT_GT(rep.total_cost, 0.0);
    EXPECT_GE(rep.wall_ms, 0.0);
    EXPECT_NEAR(rep.total_cost, rep.reconfig_cost + rep.fixed_cost, 1e-9);
    sum += rep.total_cost;
  }
  EXPECT_NEAR(result.cost.mean(), sum / 4.0, 1e-9);
  // Default metric is total_cost.
  EXPECT_DOUBLE_EQ(result.metric.mean(), result.cost.mean());
}

TEST(ScenarioRunner, RunsAreReproducible) {
  const ScenarioRunner runner(small_spec());
  const ScenarioResult a = runner.run(alg_policy());
  const ScenarioResult b = runner.run(alg_policy());
  for (std::size_t i = 0; i < a.repetitions.size(); ++i) {
    EXPECT_EQ(a.repetitions[i].total_cost, b.repetitions[i].total_cost);
    EXPECT_EQ(a.repetitions[i].makespan, b.repetitions[i].makespan);
  }
}

TEST(ScenarioRunner, CustomMetricSeesInstanceAndRun) {
  const ScenarioRunner runner(small_spec());
  const ScenarioResult result =
      runner.run(alg_policy(), [](const Instance& instance, const RunResult& run) {
        return run.total_cost / instance.ideal_cost();
      });
  for (const RepetitionOutcome& rep : result.repetitions) {
    EXPECT_GE(rep.metric, 1.0 - 1e-9);  // cost >= trivial bound
  }
}

TEST(ScenarioRunner, BespokeInstanceHookBypassesGenerators) {
  ScenarioSpec spec;
  spec.name = "bespoke";
  spec.make_instance = [](std::uint64_t seed) {
    Topology g;
    g.add_sources(1);
    g.add_destinations(1);
    const NodeIndex t = g.add_transmitter(0);
    const NodeIndex r = g.add_receiver(0);
    g.add_edge(t, r, 1);
    Instance instance(std::move(g), {});
    for (std::uint64_t i = 0; i < seed; ++i) instance.add_packet(1, 1.0, 0, 0);
    return instance;
  };
  const ScenarioRunner runner(spec);
  EXPECT_EQ(runner.instance(3).num_packets(), 3u);
  // Serial drain of 3 unit packets: latencies 1 + 2 + 3.
  EXPECT_DOUBLE_EQ(runner.run_once(alg_policy(), 3).total_cost, 6.0);
}

TEST(ScenarioRunner, EngineOptionsReachTheEngine) {
  ScenarioSpec spec = small_spec();
  spec.engine.speedup_rounds = 3;
  const double fast = ScenarioRunner(spec).run(alg_policy()).cost.mean();
  spec.engine.speedup_rounds = 1;
  const double slow = ScenarioRunner(spec).run(alg_policy()).cost.mean();
  EXPECT_LE(fast, slow + 1e-9);
}

TEST(ScenarioRunner, FixedWiringSharesTopologyAcrossSeeds) {
  ScenarioSpec spec = small_spec();
  spec.topology.fixed_wiring = true;
  const ScenarioRunner runner(spec);
  const Topology a = runner.instance(1).topology();
  const Topology b = runner.instance(2).topology();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeIndex e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).transmitter, b.edge(e).transmitter);
    EXPECT_EQ(a.edge(e).receiver, b.edge(e).receiver);
    EXPECT_EQ(a.edge(e).delay, b.edge(e).delay);
  }
}

TEST(ScenarioRunner, RejectsZeroRepetitions) {
  ScenarioSpec spec = small_spec();
  spec.repetitions = 0;
  EXPECT_THROW(ScenarioRunner{spec}, std::invalid_argument);
}

// ---------------------------------------------------------- BatchRunner --

TEST(BatchRunner, GridResultsMatchSequentialRuns) {
  const auto policies = std::vector<PolicyFactory>{alg_policy(), named_policy("fifo")};
  BatchRunner batch(2);
  batch.add_grid(small_spec(), policies);
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 2u);

  const ScenarioRunner runner(small_spec());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    EXPECT_EQ(results[p].policy, policies[p].name);
    const ScenarioResult sequential = runner.run(policies[p]);
    ASSERT_EQ(results[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(results[p].repetitions[i].seed, sequential.repetitions[i].seed);
      EXPECT_EQ(results[p].repetitions[i].total_cost, sequential.repetitions[i].total_cost);
    }
  }
}

TEST(BatchRunner, RunClearsTheQueue) {
  BatchRunner batch(1);
  batch.add(small_spec(), alg_policy());
  EXPECT_EQ(batch.cells(), 1u);
  EXPECT_EQ(batch.run().size(), 1u);
  EXPECT_EQ(batch.cells(), 0u);
  EXPECT_TRUE(batch.run().empty());
}

TEST(BatchRunner, MetricsTravelThroughThePool) {
  BatchRunner batch(2);
  batch.add(small_spec(), alg_policy(),
            [](const Instance& instance, const RunResult&) {
              return static_cast<double>(instance.num_packets());
            });
  const auto results = batch.run();
  EXPECT_DOUBLE_EQ(results.at(0).metric.mean(), 30.0);
}

// ------------------------------------------------- BatchRunner failures --

/// A spec whose repetition 2 blows up during instance construction (the
/// bespoke-instance hook runs inside the pool task).
ScenarioSpec failing_spec(const std::string& what) {
  ScenarioSpec spec = small_spec();
  spec.name = "failing";
  spec.repetitions = 3;
  spec.make_instance = [what](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 2) throw std::runtime_error(what);
    return ScenarioRunner(small_spec()).instance(rep_seed);
  };
  return spec;
}

TEST(BatchRunner, FirstFailureIsRethrownToTheCaller) {
  BatchRunner batch(2);
  batch.add(failing_spec("rep 2 exploded"), alg_policy());
  try {
    batch.run();
    FAIL() << "run() swallowed the task failure";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rep 2 exploded");
  }
}

TEST(BatchRunner, CellsAreClearedAfterAThrowAndTheRunnerStaysUsable) {
  BatchRunner batch(2);
  batch.add(small_spec(), alg_policy());
  batch.add(failing_spec("boom"), alg_policy());
  EXPECT_EQ(batch.cells(), 2u);
  EXPECT_THROW(batch.run(), std::runtime_error);
  // The failed run consumed its queue; the runner accepts new work and
  // produces correct results afterwards.
  EXPECT_EQ(batch.cells(), 0u);
  EXPECT_TRUE(batch.run().empty());
  batch.add(small_spec(), alg_policy());
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  const ScenarioResult expected = ScenarioRunner(small_spec()).run(alg_policy());
  EXPECT_DOUBLE_EQ(results.front().cost.mean(), expected.cost.mean());
}

TEST(BatchRunner, FailingCellDoesNotCorruptSiblingOutcomes) {
  // A failing cell aborts the whole run() (all-or-nothing by contract);
  // re-running the surviving cells afterwards must match a fresh
  // sequential baseline exactly -- no state bleeds across the failure.
  const auto policies = std::vector<PolicyFactory>{alg_policy(), named_policy("fifo")};
  BatchRunner batch(2);
  batch.add(small_spec(), policies[0]);
  batch.add(failing_spec("middle cell"), alg_policy());
  batch.add(small_spec(), policies[1]);
  EXPECT_THROW(batch.run(), std::runtime_error);

  batch.add_grid(small_spec(), policies);
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 2u);
  const ScenarioRunner runner(small_spec());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const ScenarioResult sequential = runner.run(policies[p]);
    ASSERT_EQ(results[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(results[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost)
          << policies[p].name << " rep " << i;
    }
  }
}

TEST(BatchRunner, StreamCellFailureAlsoRethrowsAndClears) {
  StreamSpec spec;
  spec.name = "failing-stream";
  spec.warmup_packets = 0;
  spec.measure_packets = 10;
  spec.make_trace = [](std::uint64_t) -> Instance {
    throw std::runtime_error("trace construction failed");
  };
  BatchRunner batch(2);
  batch.add_stream(spec, alg_policy());
  EXPECT_THROW(batch.run_streams(), std::runtime_error);
  EXPECT_EQ(batch.stream_cells(), 0u);
  EXPECT_TRUE(batch.run_streams().empty());
}

// ----------------------------------------------------------- ThreadPool --
// Regression tests for the ISSUE 8 failure contract: before it, a task
// that threw escaped the worker's thread function (std::terminate), leaked
// in_flight_ (deadlocking wait_idle), and the destructor *ran* still-queued
// tasks during teardown -- on exception paths those closures can reference
// stack frames that are already being unwound.

TEST(ThreadPool, TaskExceptionPropagatesFromWaitIdleAndClears) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) pool.submit([&completed] { ++completed; });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle swallowed the task failure";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task failed");
  }
  // All-or-nothing observation: the failure surfaces only after every
  // other in-flight task has finished.
  EXPECT_EQ(completed.load(), 8);
  // The failure was handed off exactly once; the pool stays usable.
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstBodyException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 64,
                            [&ran](std::size_t i) {
                              ++ran;
                              if (i == 3) throw std::logic_error("body blew up");
                            }),
               std::logic_error);
  EXPECT_GE(ran.load(), 1);
  // The pool survives; a clean parallel_for afterwards runs every index.
  std::atomic<int> clean{0};
  parallel_for(pool, 32, [&clean](std::size_t) { ++clean; });
  EXPECT_EQ(clean.load(), 32);
}

TEST(ThreadPool, DestructorDiscardsQueuedTasksInsteadOfRunningThem) {
  // One worker, pinned inside a blocking task while more tasks queue up
  // behind it; the destructor must join the worker after its current task
  // and discard the queue. The drain semantics this test outlaws would
  // execute all 9 tasks on every attempt; the discard semantics make
  // executed == 1 overwhelmingly likely per attempt (the destructor only
  // has to set the stop flag within 50ms), so retries de-flake the test
  // without ever accepting a drain.
  std::size_t executed_after_teardown = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::atomic<std::size_t> executed{0};
    std::atomic<bool> release{false};
    auto pool = std::make_unique<ThreadPool>(1);
    std::atomic<bool> started{false};
    pool->submit([&started, &release, &executed] {
      started = true;
      while (!release.load()) std::this_thread::yield();
      ++executed;
    });
    while (!started.load()) std::this_thread::yield();
    for (int i = 0; i < 8; ++i) {
      pool->submit([&executed] { ++executed; });
    }
    std::thread destroyer([&pool] { pool.reset(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release = true;
    destroyer.join();
    executed_after_teardown = executed.load();
    if (executed_after_teardown == 1) break;
  }
  EXPECT_EQ(executed_after_teardown, 1u);
}

TEST(ThreadPool, UncollectedFailureIsDroppedAtDestruction) {
  // A throwing task whose wait_idle never runs must not terminate or leak
  // the exception into the destructor -- teardown is noexcept.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("never collected"); });
  // Destructor joins the worker (which has captured the failure) and
  // drops the exception; reaching the end of this scope IS the test.
}

}  // namespace
}  // namespace rdcn
