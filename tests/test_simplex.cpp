// Unit and property tests for the from-scratch two-phase simplex:
// hand-checked LPs, infeasible/unbounded detection, feasibility of the
// returned point, and strong duality on randomly generated primal/dual
// pairs (the decisive correctness property).

#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace rdcn::lp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
  Model model;
  model.set_maximize(true);
  const auto x = model.add_variable(3.0);
  const auto y = model.add_variable(5.0);
  model.add_constraint({{x, 1.0}}, Relation::LessEq, 4.0);
  model.add_constraint({{y, 2.0}}, Relation::LessEq, 12.0);
  model.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::LessEq, 18.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 36.0, 1e-8);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-8);
  EXPECT_NEAR(solution.values[y], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGreaterEq) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  => optimum 23 at (7, 3)?
  // 2*7+3*3 = 23; alternative (2, 8): 4+24=28. So 23... check x+y>=10 with
  // cheaper x: push y to its floor: (7,3) -> 23.
  Model model;
  const auto x = model.add_variable(2.0);
  const auto y = model.add_variable(3.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq, 10.0);
  model.add_constraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
  model.add_constraint({{y, 1.0}}, Relation::GreaterEq, 3.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 23.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t. x + 2y == 4, x - y == 1  => y = 1, x = 2, obj 3.
  Model model;
  const auto x = model.add_variable(1.0);
  const auto y = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::Equal, 4.0);
  model.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-8);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-8);
  EXPECT_NEAR(solution.values[y], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Model model;
  const auto x = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
  model.add_constraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
  EXPECT_EQ(solve(model).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model model;
  model.set_maximize(true);
  const auto x = model.add_variable(1.0);
  const auto y = model.add_variable(0.0);
  model.add_constraint({{y, 1.0}}, Relation::LessEq, 5.0);
  (void)x;  // x unconstrained above
  EXPECT_EQ(solve(model).status, SolveStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x  s.t. -x <= -3  (i.e. x >= 3) => 3.
  Model model;
  const auto x = model.add_variable(1.0);
  model.add_constraint({{x, -1.0}}, Relation::LessEq, -3.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-8);
}

TEST(Simplex, DegenerateKleeMintyLike) {
  // A small degenerate problem that cycles under naive pivoting.
  Model model;
  model.set_maximize(true);
  // Chvatal's cycling example: max 10x1 - 57x2 - 9x3 - 24x4; optimum 1 at
  // (1, 0, 1, 0).
  const auto x1 = model.add_variable(10.0);
  const auto x2 = model.add_variable(-57.0);
  const auto x3 = model.add_variable(-9.0);
  const auto x4 = model.add_variable(-24.0);
  model.add_constraint({{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9.0}}, Relation::LessEq, 0.0);
  model.add_constraint({{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1.0}}, Relation::LessEq, 0.0);
  model.add_constraint({{x1, 1.0}}, Relation::LessEq, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-7);
}

/// Builds the explicit dual of: min c x, Ax >= b, x >= 0  -->
/// max b y, A^T y <= c, y >= 0; strong duality must hold.
TEST(Simplex, StrongDualityOnRandomCoveringLps) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.next_below(4);
    const std::size_t m = 2 + rng.next_below(4);
    std::vector<std::vector<double>> a(m, std::vector<double>(n));
    std::vector<double> b(m), c(n);
    for (auto& row : a) {
      for (auto& value : row) value = static_cast<double>(rng.next_int(0, 5));
    }
    for (auto& value : b) value = static_cast<double>(rng.next_int(1, 8));
    for (auto& value : c) value = static_cast<double>(rng.next_int(1, 9));
    // Ensure feasibility: every row needs a positive coefficient.
    for (std::size_t i = 0; i < m; ++i) {
      a[i][rng.next_below(n)] += 1.0;
    }

    Model primal;
    for (std::size_t j = 0; j < n; ++j) primal.add_variable(c[j]);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<Term> terms;
      for (std::size_t j = 0; j < n; ++j) {
        if (a[i][j] != 0.0) terms.push_back(Term{j, a[i][j]});
      }
      primal.add_constraint(std::move(terms), Relation::GreaterEq, b[i]);
    }

    Model dual;
    dual.set_maximize(true);
    for (std::size_t i = 0; i < m; ++i) dual.add_variable(b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      std::vector<Term> terms;
      for (std::size_t i = 0; i < m; ++i) {
        if (a[i][j] != 0.0) terms.push_back(Term{i, a[i][j]});
      }
      dual.add_constraint(std::move(terms), Relation::LessEq, c[j]);
    }

    const Solution primal_solution = solve(primal);
    const Solution dual_solution = solve(dual);
    ASSERT_EQ(primal_solution.status, SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(dual_solution.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(primal_solution.objective, dual_solution.objective, 1e-6)
        << "strong duality failed on trial " << trial;
    EXPECT_LE(primal.max_violation(primal_solution.values), 1e-7);
    EXPECT_LE(dual.max_violation(dual_solution.values), 1e-7);
  }
}

TEST(Simplex, EmptyModel) {
  Model model;
  model.add_variable(1.0);
  const Solution solution = solve(model);
  EXPECT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-12);
}

}  // namespace
}  // namespace rdcn::lp
