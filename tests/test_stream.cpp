// Tests for the streaming engine mode and the run/ stream layer: the
// golden equivalence (a streamed run fed a pre-recorded arrival sequence
// reproduces the batch engine's schedule bit-for-bit while holding only
// O(in-flight) per-packet state), StreamRunner determinism and measurement
// semantics, and BatchRunner's streamed fan-out.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "helpers.hpp"
#include "net/builders.hpp"
#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/stream.hpp"
#include "workload/generator.hpp"

namespace rdcn {
namespace {

Instance golden_instance(std::size_t packets, std::uint64_t seed) {
  TwoTierConfig net;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.7;
  net.max_edge_delay = 3;
  net.fixed_link_delay = 6;  // exercise the fixed-route retirement path
  Rng rng(seed);
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig workload;
  workload.num_packets = packets;
  workload.arrival_rate = 4.0;
  workload.skew = PairSkew::Zipf;
  workload.weights = WeightDist::UniformInt;
  workload.seed = seed;
  return generate_workload(topology, workload);
}

/// Streams instance.packets() through a streaming-mode engine, collecting
/// retired outcomes by id, and returns (aggregates, outcomes).
std::pair<RunResult, std::map<PacketIndex, RetiredPacket>> stream_replay(
    const Instance& instance, const PolicyFactory& policy, EngineOptions options,
    std::size_t* peak_resident = nullptr) {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  std::map<PacketIndex, RetiredPacket> retired;
  Engine engine(instance.topology(), *dispatcher, *scheduler, options,
                [&](RetiredPacket&& packet) {
                  const PacketIndex id = packet.id;
                  EXPECT_TRUE(retired.emplace(id, std::move(packet)).second)
                      << "packet retired twice";
                });
  const auto& packets = instance.packets();
  std::size_t next = 0;
  while (next < packets.size() || engine.busy()) {
    const Time* upcoming = next < packets.size() ? &packets[next].arrival : nullptr;
    engine.begin_step(upcoming);
    while (next < packets.size() && packets[next].arrival == engine.now()) {
      engine.inject(packets[next]);
      ++next;
    }
    engine.finish_step();
  }
  if (peak_resident != nullptr) *peak_resident = engine.peak_resident_slots();
  return {engine.aggregates(), std::move(retired)};
}

// ------------------------------------------------------------------ golden --

TEST(StreamEngine, ReproducesBatchScheduleBitForBit) {
  const Instance instance = golden_instance(300, 5);
  for (const char* name : {"alg", "maxweight", "fifo", "islip", "random"}) {
    const PolicyFactory policy = named_policy(name);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    const RunResult expected = simulate(instance, *dispatcher, *scheduler);

    const auto [aggregates, retired] = stream_replay(instance, policy, {});
    EXPECT_EQ(aggregates.total_cost, expected.total_cost) << name;
    EXPECT_EQ(aggregates.reconfig_cost, expected.reconfig_cost) << name;
    EXPECT_EQ(aggregates.fixed_cost, expected.fixed_cost) << name;
    EXPECT_EQ(aggregates.makespan, expected.makespan) << name;
    EXPECT_EQ(aggregates.steps_simulated, expected.steps_simulated) << name;

    ASSERT_EQ(retired.size(), instance.num_packets()) << name;
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      const auto id = static_cast<PacketIndex>(i);
      const PacketOutcome& want = expected.outcomes[i];
      const auto it = retired.find(id);
      ASSERT_NE(it, retired.end()) << name << " packet " << i;
      const RetiredPacket& got = it->second;
      EXPECT_EQ(got.arrival, instance.packets()[i].arrival);
      EXPECT_EQ(got.weight, instance.packets()[i].weight);
      EXPECT_EQ(got.outcome.route.use_fixed, want.route.use_fixed) << name;
      EXPECT_EQ(got.outcome.route.edge, want.route.edge) << name;
      EXPECT_EQ(got.outcome.completion, want.completion) << name;
      EXPECT_EQ(got.outcome.weighted_latency, want.weighted_latency) << name;
      EXPECT_EQ(got.outcome.chunk_transmit_steps, want.chunk_transmit_steps)
          << name << " packet " << i;
    }
  }
}

TEST(StreamEngine, ReproducesBatchUnderCapacityAndSpeedup) {
  const Instance instance = golden_instance(250, 9);
  EngineOptions capacity2;
  capacity2.endpoint_capacity = 2;
  EngineOptions speedup2;
  speedup2.speedup_rounds = 2;
  for (const EngineOptions& options : {EngineOptions{}, capacity2, speedup2}) {
    const PolicyFactory policy = named_policy("alg");
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    EngineOptions batch_options = options;
    const RunResult expected = simulate(instance, *dispatcher, *scheduler, batch_options);

    const auto [aggregates, retired] = stream_replay(instance, policy, options);
    EXPECT_EQ(aggregates.total_cost, expected.total_cost);
    EXPECT_EQ(aggregates.makespan, expected.makespan);
    EXPECT_EQ(aggregates.steps_simulated, expected.steps_simulated);
    ASSERT_EQ(retired.size(), instance.num_packets());
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      EXPECT_EQ(retired.at(static_cast<PacketIndex>(i)).outcome.chunk_transmit_steps,
                expected.outcomes[i].chunk_transmit_steps);
    }
  }
}

TEST(StreamEngine, GoldenReplayPassesThePerStepAudit) {
  // PR-2's golden equivalence under the check/ invariant auditor: both
  // modes run with EngineOptions::audit on, every step's matching,
  // conservation and completion accounting re-derived independently, and
  // the schedules must still agree bit-for-bit.
  const Instance instance = golden_instance(300, 5);
  EngineOptions audited;
  audited.audit = true;
  for (const char* name : {"alg", "maxweight", "fifo"}) {
    const PolicyFactory policy = named_policy(name);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    const RunResult expected = simulate(instance, *dispatcher, *scheduler, audited);
    const auto [aggregates, retired] = stream_replay(instance, policy, audited);
    EXPECT_EQ(aggregates.total_cost, expected.total_cost) << name;
    EXPECT_EQ(aggregates.makespan, expected.makespan) << name;
    EXPECT_EQ(retired.size(), instance.num_packets()) << name;
  }
}

TEST(StreamEngine, ResidentStateIsBoundedByInFlightNotTotal) {
  // A long, lightly-loaded arrival sequence: the window must retire and
  // compact far below the total packet count.
  TwoTierConfig net;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.9;
  net.max_edge_delay = 2;
  Rng rng(3);
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig workload;
  workload.num_packets = 4000;
  workload.arrival_rate = 2.0;  // well under capacity
  workload.seed = 3;
  const Instance instance = generate_workload(topology, workload);

  std::size_t peak_resident = 0;
  const auto [aggregates, retired] =
      stream_replay(instance, named_policy("alg"), {}, &peak_resident);
  ASSERT_EQ(retired.size(), instance.num_packets());
  EXPECT_GT(peak_resident, 0u);
  // O(in-flight): orders of magnitude below the 4000 packets served.
  EXPECT_LT(peak_resident, instance.num_packets() / 8);
}

TEST(StreamEngine, StreamingModeRejectsBatchOnlyFeatures) {
  const Topology topology = golden_instance(10, 1).topology();
  const PolicyFactory policy = named_policy("alg");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  EngineOptions options;
  options.record_trace = true;
  EXPECT_THROW(Engine(topology, *dispatcher, *scheduler, options,
                      [](RetiredPacket&&) {}),
               std::invalid_argument);
  options = {};
  options.redispatch_queued = true;
  EXPECT_THROW(Engine(topology, *dispatcher, *scheduler, options,
                      [](RetiredPacket&&) {}),
               std::invalid_argument);
  options = {};
  EXPECT_THROW(Engine(topology, *dispatcher, *scheduler, options, nullptr),
               std::invalid_argument);
  Engine engine(topology, *dispatcher, *scheduler, options, [](RetiredPacket&&) {});
  EXPECT_THROW(engine.run(), std::logic_error);
}

// ------------------------------------------------------------ StreamRunner --

StreamSpec small_stream() {
  StreamSpec spec;
  spec.name = "small-stream";
  auto& net = spec.topology.two_tier;
  net.racks = 5;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.traffic.rho = 0.6;
  spec.traffic.shape.weights = WeightDist::UniformInt;
  spec.warmup_packets = 200;
  spec.measure_packets = 1500;
  spec.telemetry_window = 64;
  return spec;
}

TEST(StreamRunner, DeterministicPerSeed) {
  const StreamRunner runner(small_stream());
  const StreamRepOutcome a = runner.run_repetition(alg_policy(), 4);
  const StreamRepOutcome b = runner.run_repetition(alg_policy(), 4);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.p50(), b.latency.p50());
  EXPECT_EQ(a.latency.p999(), b.latency.p999());
  const StreamRepOutcome c = runner.run_repetition(alg_policy(), 5);
  EXPECT_NE(a.total_cost, c.total_cost);
}

TEST(StreamRunner, MeasuresExactlyTheMeasurementRange) {
  const StreamSpec spec = small_stream();
  const StreamRunner runner(spec);
  const StreamRepOutcome out = runner.run_repetition(alg_policy(), 1);
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(out.measured, spec.measure_packets);
  EXPECT_EQ(out.latency.count(), spec.measure_packets);
  EXPECT_GE(out.offered, out.served);
  EXPECT_GE(out.served, out.measured);
  EXPECT_GT(out.throughput, 0.0);
  EXPECT_GT(out.mean_latency, 0.0);
  EXPECT_GE(static_cast<double>(out.latency.p999()),
            static_cast<double>(out.latency.p50()));
  // rho targeting carries through the runner.
  EXPECT_NEAR(out.measured_rho, spec.traffic.rho, 0.15 * spec.traffic.rho);
  // Telemetry windows tile the simulated steps.
  Time covered = 0;
  for (const StreamWindow& window : out.series) covered += window.steps;
  EXPECT_EQ(covered, out.steps);
  // Bounded memory at the runner level too.
  EXPECT_LT(out.peak_resident, static_cast<std::size_t>(out.served) / 2);
}

TEST(StreamRunner, TraceReplayMatchesBatchTotals) {
  const Instance instance = golden_instance(400, 13);
  StreamSpec spec;
  spec.name = "replay";
  spec.warmup_packets = 0;
  spec.measure_packets = instance.num_packets();
  spec.make_trace = [&](std::uint64_t) { return instance; };
  const StreamRunner runner(spec);
  const StreamRepOutcome out = runner.run_repetition(named_policy("maxweight"), 1);

  const PolicyFactory policy = named_policy("maxweight");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  const RunResult expected = simulate(instance, *dispatcher, *scheduler);

  EXPECT_EQ(out.total_cost, expected.total_cost);
  EXPECT_EQ(out.makespan, expected.makespan);
  EXPECT_EQ(out.steps, expected.steps_simulated);
  EXPECT_EQ(out.served, instance.num_packets());
  EXPECT_EQ(out.measured, instance.num_packets());
}

TEST(StreamRunner, TruncatesAtTheStepCap) {
  StreamSpec spec = small_stream();
  spec.max_steps = 50;
  const StreamRepOutcome out = StreamRunner(spec).run_repetition(alg_policy(), 1);
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.steps, 50);
  EXPECT_LT(out.measured, spec.measure_packets);
}

TEST(StreamRunner, TruncatedOverloadPointIsFlaggedInAggregation) {
  // An overloaded rho point: backlog grows without bound, every
  // repetition hits the step cap, and the aggregate must say so instead
  // of folding truncated runs in silently.
  StreamSpec spec = small_stream();
  spec.traffic.rho = 2.5;
  spec.max_steps = 400;
  spec.warmup_packets = 0;
  spec.measure_packets = 100000;  // unreachable before the cap
  spec.repetitions = 2;
  const StreamResult overloaded = StreamRunner(spec).run(alg_policy());
  EXPECT_EQ(overloaded.truncated_reps, 2u);
  for (const StreamRepOutcome& rep : overloaded.repetitions) {
    EXPECT_TRUE(rep.truncated);
    EXPECT_LT(rep.measured, spec.measure_packets);
  }
  // A converged point reports zero truncated repetitions.
  const StreamResult converged = StreamRunner(small_stream()).run(alg_policy());
  EXPECT_EQ(converged.truncated_reps, 0u);
  EXPECT_FALSE(converged.repetitions.front().truncated);
}

TEST(StreamRunner, ZeroDemandPairsAreCountedNotSilentlyFolded) {
  // One pair reachable only over the fixed layer (demand 0), one with a
  // reconfigurable route: the fixed-only packets must be surfaced in
  // zero_demand rather than silently diluting measured_rho.
  Topology topology;
  const NodeIndex sources = topology.add_sources(2);
  const NodeIndex destinations = topology.add_destinations(2);
  const NodeIndex transmitter = topology.add_transmitter(sources);
  const NodeIndex receiver = topology.add_receiver(destinations);
  topology.add_edge(transmitter, receiver, 2);
  topology.add_fixed_link(sources + 1, destinations + 1, 3);  // fixed-only pair
  Instance instance(std::move(topology), {});
  instance.add_packet(1, 1.0, sources, destinations);
  instance.add_packet(1, 1.0, sources + 1, destinations + 1);
  instance.add_packet(2, 2.0, sources + 1, destinations + 1);

  StreamSpec spec;
  spec.name = "zero-demand";
  spec.warmup_packets = 0;
  spec.measure_packets = instance.num_packets();
  spec.make_trace = [&](std::uint64_t) { return instance; };
  const StreamRepOutcome out = StreamRunner(spec).run_repetition(alg_policy(), 1);
  EXPECT_EQ(out.offered, 3u);
  EXPECT_EQ(out.zero_demand, 2u);
  EXPECT_GT(out.measured_rho, 0.0);  // from the one reconfigurable packet
}

TEST(StreamRunner, RejectsInvalidSpecs) {
  StreamSpec spec = small_stream();
  spec.repetitions = 0;
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.measure_packets = 0;
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.engine.record_trace = true;
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.engine.max_steps = 100;  // the spec-level cap is the supported knob
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
}

TEST(StreamRunner, RunMergesRepetitions) {
  StreamSpec spec = small_stream();
  spec.repetitions = 3;
  spec.measure_packets = 600;
  const StreamResult result = StreamRunner(spec).run(alg_policy());
  ASSERT_EQ(result.repetitions.size(), 3u);
  EXPECT_EQ(result.latency.count(), 3u * 600u);
  std::uint64_t total = 0;
  for (const StreamRepOutcome& rep : result.repetitions) total += rep.latency.count();
  EXPECT_EQ(result.latency.count(), total);
  EXPECT_EQ(result.throughput.count(), 3u);
}

// ----------------------------------------------------- staged mutations --

/// Two disjoint reconfigurable routes for the pair (0, 0): a cheap edge a
/// min-delay dispatcher always prefers and an expensive fallback that only
/// matters once the cheap one is killed.
Topology two_route_topology() {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t1 = g.add_transmitter(0);
  const NodeIndex t2 = g.add_transmitter(0);
  const NodeIndex r1 = g.add_receiver(0);
  const NodeIndex r2 = g.add_receiver(0);
  g.add_edge(t1, r1, 2);  // edge 0: preferred
  g.add_edge(t2, r2, 6);  // edge 1: fallback
  return g;
}

TEST(StageMutations, RequeueRedispatchesUntouchedPacketsOntoSurvivors) {
  const Topology topology = two_route_topology();
  const PolicyFactory policy = named_policy("min-delay");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  EngineOptions options;
  options.audit = true;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  Engine engine(topology, *dispatcher, *scheduler, options,
                [&](RetiredPacket&& packet) {
                  if (packet.outcome.dropped) {
                    ++dropped;
                  } else {
                    ++served;
                    EXPECT_EQ(packet.outcome.route.edge, 1) << "must finish on the fallback";
                  }
                });
  // Both packets land on edge 0 (min delay); one step transmits a single
  // chunk of the front packet, leaving the second untouched.
  Packet p0{0, 1, 1.0, 0, 0};
  Packet p1{1, 1, 1.0, 0, 0};
  const Time first = 1;
  engine.begin_step(&first);
  engine.inject(p0);
  engine.inject(p1);
  engine.finish_step();

  StageMutation mutation;
  mutation.kill_edges = {0};
  mutation.dead_policy = DeadPolicy::Requeue;
  const MutationStats stats = engine.apply_mutation(mutation);
  EXPECT_EQ(stats.edges_killed, 1u);
  // The packet with a transmitted chunk can never be requeued (partial
  // work is unrecoverable); the untouched one re-routes onto edge 1.
  EXPECT_EQ(stats.packets_dropped, 1u);
  EXPECT_EQ(stats.packets_requeued, 1u);
  EXPECT_EQ(engine.packets_dropped(), 1u);
  EXPECT_EQ(engine.packets_requeued(), 1u);

  while (engine.busy()) {
    engine.begin_step(nullptr);
    engine.finish_step();
  }
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(dropped, 1u);
}

TEST(StageMutations, DropPolicyStrandsEveryPacketOnTheDeadEdge) {
  const Topology topology = two_route_topology();
  const PolicyFactory policy = named_policy("min-delay");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  EngineOptions options;
  options.audit = true;
  std::uint64_t dropped = 0;
  Engine engine(topology, *dispatcher, *scheduler, options,
                [&](RetiredPacket&& packet) { dropped += packet.outcome.dropped ? 1 : 0; });
  Packet p0{0, 1, 1.0, 0, 0};
  Packet p1{1, 1, 1.0, 0, 0};
  const Time first = 1;
  engine.begin_step(&first);
  engine.inject(p0);
  engine.inject(p1);
  engine.finish_step();

  StageMutation mutation;
  mutation.kill_edges = {0};
  mutation.dead_policy = DeadPolicy::Drop;
  const MutationStats stats = engine.apply_mutation(mutation);
  EXPECT_EQ(stats.packets_dropped, 2u);
  EXPECT_EQ(stats.packets_requeued, 0u);
  EXPECT_EQ(dropped, 2u);
  EXPECT_FALSE(engine.busy());

  // Restoring revives the edge for later arrivals.
  StageMutation restore;
  restore.restore_edges = {0};
  EXPECT_EQ(engine.apply_mutation(restore).edges_restored, 1u);
  EXPECT_TRUE(engine.edge_alive(0));
}

TEST(StageMutations, ValidatesBoundariesAndArguments) {
  const Topology topology = two_route_topology();
  const PolicyFactory policy = named_policy("min-delay");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  Engine engine(topology, *dispatcher, *scheduler, {}, [](RetiredPacket&&) {});

  StageMutation bad_edge;
  bad_edge.kill_edges = {99};
  EXPECT_THROW(engine.apply_mutation(bad_edge), std::invalid_argument);

  StageMutation kill;
  kill.kill_edges = {0};
  const Time first = 1;
  engine.begin_step(&first);
  EXPECT_THROW(engine.apply_mutation(kill), std::logic_error);  // mid-step
  engine.finish_step();
  EXPECT_EQ(engine.apply_mutation(kill).edges_killed, 1u);
}

// ----------------------------------------------------- staged StreamRunner --

TEST(StreamRunner, OverrideFreeSingleStageMatchesUnstaged) {
  // A one-stage schedule with no overrides and no mutation must be
  // bit-for-bit the classic run: same arrivals, same schedule, same stats.
  const StreamSpec plain = small_stream();
  StreamSpec staged = plain;
  staged.stages.emplace_back();  // duration 0 = to end, all inherit
  const StreamRepOutcome a = StreamRunner(plain).run_repetition(alg_policy(), 4);
  const StreamRepOutcome b = StreamRunner(staged).run_repetition(alg_policy(), 4);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.p50(), b.latency.p50());
  ASSERT_EQ(b.stages.size(), 1u);
  EXPECT_EQ(b.stages[0].start, 1);
  EXPECT_EQ(b.stages[0].offered, b.offered);
  EXPECT_EQ(b.stages[0].entry_backlog, 0u);
  EXPECT_EQ(b.stages[0].drain_steps, 0);
}

StreamSpec failure_recovery_stream() {
  StreamSpec spec = small_stream();
  spec.engine.audit = true;  // zero-tolerance invariant audit across stage edges
  StageSpec healthy;
  healthy.duration = 60;
  StageSpec degraded;
  degraded.duration = 60;
  degraded.mutation.kill_edges = {0, 1};
  degraded.mutation.dead_policy = DeadPolicy::Requeue;
  degraded.rho = 0.4;
  StageSpec recovered;  // duration 0 = to end of run
  recovered.mutation.restore_edges = {0, 1};
  spec.stages = {healthy, degraded, recovered};
  return spec;
}

TEST(StreamRunner, StagedFailureAndRecoveryRunsUnderAudit) {
  const StreamRunner runner(failure_recovery_stream());
  const StreamRepOutcome out = runner.run_repetition(alg_policy(), 3);
  ASSERT_EQ(out.stages.size(), 3u);
  ASSERT_GT(out.steps, 121) << "run must outlive the whole schedule";
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(out.stages[0].start, 1);
  EXPECT_EQ(out.stages[1].start, 61);
  EXPECT_EQ(out.stages[2].start, 121);
  EXPECT_EQ(out.stages[1].edges_killed, 2u);
  EXPECT_EQ(out.stages[2].edges_restored, 2u);
  EXPECT_GT(out.stages[1].entry_backlog, 0u);

  // Every packet is attributed to exactly one stage.
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  Time steps = 0;
  for (const StageOutcome& stage : out.stages) {
    offered += stage.offered;
    served += stage.served;
    dropped += stage.dropped;
    steps += stage.steps;
  }
  EXPECT_EQ(offered, out.offered);
  EXPECT_EQ(served, out.served);
  EXPECT_EQ(dropped, out.dropped);
  EXPECT_EQ(steps, out.steps);
  // Every measured id retired or dropped exactly once.
  EXPECT_EQ(out.measured + out.dropped_measured, runner.spec().measure_packets);
}

TEST(StreamRunner, StagedRunsAreDeterministicPerSeed) {
  const StreamRunner runner(failure_recovery_stream());
  const StreamRepOutcome a = runner.run_repetition(alg_policy(), 7);
  const StreamRepOutcome b = runner.run_repetition(alg_policy(), 7);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t k = 0; k < a.stages.size(); ++k) {
    EXPECT_EQ(a.stages[k].offered, b.stages[k].offered) << "stage " << k;
    EXPECT_EQ(a.stages[k].served, b.stages[k].served) << "stage " << k;
    EXPECT_EQ(a.stages[k].dropped, b.stages[k].dropped) << "stage " << k;
    EXPECT_EQ(a.stages[k].drain_steps, b.stages[k].drain_steps) << "stage " << k;
  }
}

TEST(StreamRunner, StagedSpecsRejectIllFormedSchedules) {
  StreamSpec spec = small_stream();
  spec.stages.emplace_back();
  spec.stages.emplace_back();  // duration 0 before the last stage
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.stages.emplace_back();
  spec.stages.back().rho = 0.0;
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.stages.emplace_back();
  spec.stages.back().on_stay = 1.5;
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);
  spec = small_stream();
  spec.make_trace = [](std::uint64_t) { return golden_instance(10, 1); };
  spec.stages.emplace_back();
  EXPECT_THROW(StreamRunner{spec}, std::invalid_argument);  // stages need generative traffic
}

// -------------------------------------------------------------- satellites --

TEST(StreamRunner, SlowTraceDrainsToCompletionDespiteZeroTargetRate) {
  // The trace path keeps target_rate == 0 by design: the derived step cap
  // (a division by the calibrated rate) must never be taken there, or a
  // sparse trace would truncate instead of draining.
  TwoTierConfig net;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.9;
  net.max_edge_delay = 2;
  Rng rng(11);
  const Topology topology = build_two_tier(net, rng);
  WorkloadConfig workload;
  workload.num_packets = 60;
  workload.arrival_rate = 0.05;  // ~20 idle steps between arrivals
  workload.seed = 11;
  Instance instance = generate_workload(topology, workload);

  StreamSpec spec;
  spec.name = "sparse-replay";
  spec.warmup_packets = 0;
  spec.measure_packets = instance.num_packets();
  spec.make_trace = [&](std::uint64_t) { return instance; };
  const StreamRepOutcome out = StreamRunner(spec).run_repetition(alg_policy(), 1);
  EXPECT_DOUBLE_EQ(out.target_rate, 0.0);
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(out.served, instance.num_packets());
  EXPECT_EQ(out.measured, instance.num_packets());
}

TEST(StreamRunner, AggregationKeepsTruncatedLatencyApart) {
  // A truncated repetition's histogram is a censored sample (only the
  // survivors that retired before the cap); it must merge into
  // latency_truncated, never into the converged summary.
  StreamSpec spec = small_stream();
  spec.repetitions = 2;
  const StreamRunner runner(spec);
  StreamRepOutcome converged;
  converged.seed = 1;
  converged.latency.add(10);
  converged.latency.add(20);
  StreamRepOutcome truncated;
  truncated.seed = 2;
  truncated.truncated = true;
  truncated.latency.add(3);
  truncated.dropped = 4;
  truncated.requeued = 1;
  std::vector<StreamRepOutcome> outcomes;
  outcomes.push_back(std::move(converged));
  outcomes.push_back(std::move(truncated));
  const StreamResult result = runner.aggregate(alg_policy(), std::move(outcomes));
  EXPECT_EQ(result.truncated_reps, 1u);
  EXPECT_EQ(result.latency.count(), 2u);
  EXPECT_EQ(result.latency.max(), 20);
  EXPECT_EQ(result.latency_truncated.count(), 1u);
  EXPECT_EQ(result.latency_truncated.max(), 3);
  EXPECT_EQ(result.dropped, 4u);
  EXPECT_EQ(result.requeued, 1u);
}

// ------------------------------------------------------------- BatchRunner --

TEST(BatchRunner, StreamCellsMatchSequentialRuns) {
  StreamSpec spec = small_stream();
  spec.repetitions = 2;
  spec.measure_packets = 500;
  const auto policies = std::vector<PolicyFactory>{alg_policy(), named_policy("fifo")};

  BatchRunner batch(2);
  batch.add_stream_grid(spec, policies);
  EXPECT_EQ(batch.stream_cells(), 2u);
  const auto results = batch.run_streams();
  EXPECT_EQ(batch.stream_cells(), 0u);
  ASSERT_EQ(results.size(), 2u);

  const StreamRunner runner(spec);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    EXPECT_EQ(results[p].policy, policies[p].name);
    const StreamResult sequential = runner.run(policies[p]);
    ASSERT_EQ(results[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(results[p].repetitions[i].seed, sequential.repetitions[i].seed);
      EXPECT_EQ(results[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost);
      EXPECT_EQ(results[p].repetitions[i].latency.p99(),
                sequential.repetitions[i].latency.p99());
    }
    EXPECT_EQ(results[p].latency.count(), sequential.latency.count());
  }
}

}  // namespace
}  // namespace rdcn
