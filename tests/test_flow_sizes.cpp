// Tests for the empirical flow-size profiles and the flow workload
// generator: tail shapes, caps, determinism, expansion consistency.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/alg.hpp"
#include "flow/flows.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"
#include "workload/flow_sizes.hpp"

namespace rdcn {
namespace {

TEST(FlowSizes, SamplesArePositiveAndBounded) {
  Rng rng(5);
  for (const FlowSizeProfile profile :
       {FlowSizeProfile::WebSearch, FlowSizeProfile::DataMining,
        FlowSizeProfile::UniformTiny}) {
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t size = sample_flow_size(profile, rng);
      EXPECT_GE(size, 1);
      EXPECT_LE(size, 20000);
    }
  }
}

TEST(FlowSizes, DataMiningHasHeavierTailThanWebSearch) {
  Rng rng_a(7), rng_b(7);
  std::vector<std::int64_t> web, mining;
  for (int i = 0; i < 5000; ++i) {
    web.push_back(sample_flow_size(FlowSizeProfile::WebSearch, rng_a));
    mining.push_back(sample_flow_size(FlowSizeProfile::DataMining, rng_b));
  }
  auto median = [](std::vector<std::int64_t>& v) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  auto max_of = [](const std::vector<std::int64_t>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  // Mining: tiny median, giant max; web: moderate median, smaller max.
  EXPECT_LT(median(mining), median(web));
  EXPECT_GT(max_of(mining), max_of(web));
}

TEST(FlowSizes, UniformTinyStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto size = sample_flow_size(FlowSizeProfile::UniformTiny, rng);
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 4);
  }
}

TEST(FlowWorkload, GeneratesRunnableFlowSets) {
  Rng rng(11);
  TwoTierConfig net;
  net.racks = 4;
  const Topology topology = build_two_tier(net, rng);

  FlowWorkloadConfig config;
  config.num_flows = 30;
  config.profile = FlowSizeProfile::WebSearch;
  config.max_size = 16;
  config.seed = 3;
  const FlowSet flows = generate_flow_workload(topology, config);
  EXPECT_EQ(flows.flows().size(), 30u);
  for (const Flow& flow : flows.flows()) {
    EXPECT_GE(flow.size, 1);
    EXPECT_LE(flow.size, 16);
    EXPECT_DOUBLE_EQ(flow.weight, static_cast<double>(flow.size));  // weight_by_size
  }

  const Instance instance = flows.to_instance();
  EXPECT_EQ(instance.validate(), "");
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  const FlowReport report = analyze_flows(flows, run);
  EXPECT_DOUBLE_EQ(report.total_fractional_cost, run.total_cost);
}

TEST(FlowWorkload, DeterministicAndSeedSensitive) {
  Rng rng(13);
  TwoTierConfig net;
  net.racks = 4;
  const Topology topology = build_two_tier(net, rng);
  FlowWorkloadConfig config;
  config.num_flows = 20;
  config.seed = 5;
  const FlowSet a = generate_flow_workload(topology, config);
  const FlowSet b = generate_flow_workload(topology, config);
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    EXPECT_EQ(a.flows()[i].size, b.flows()[i].size);
    EXPECT_EQ(a.flows()[i].arrival, b.flows()[i].arrival);
  }
  config.seed = 6;
  const FlowSet c = generate_flow_workload(topology, config);
  bool any_difference = c.flows().size() != a.flows().size();
  for (std::size_t i = 0; !any_difference && i < std::min(a.flows().size(), c.flows().size());
       ++i) {
    any_difference = a.flows()[i].size != c.flows()[i].size ||
                     a.flows()[i].source != c.flows()[i].source;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FlowWorkload, UnitWeightModeInvertsChunkWeights) {
  Rng rng(17);
  TwoTierConfig net;
  net.racks = 3;
  const Topology topology = build_two_tier(net, rng);
  FlowWorkloadConfig config;
  config.num_flows = 10;
  config.weight_by_size = false;
  config.seed = 8;
  const FlowSet flows = generate_flow_workload(topology, config);
  for (const Flow& flow : flows.flows()) EXPECT_DOUBLE_EQ(flow.weight, 1.0);
  const Instance instance = flows.to_instance();
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const FlowIndex f = flows.packet_to_flow()[i];
    EXPECT_NEAR(instance.packets()[i].weight,
                1.0 / static_cast<double>(flows.flows()[static_cast<std::size_t>(f)].size),
                1e-12);
  }
}

TEST(FlowSizes, Labels) {
  EXPECT_STREQ(to_string(FlowSizeProfile::WebSearch), "web-search");
  EXPECT_STREQ(to_string(FlowSizeProfile::DataMining), "data-mining");
}

}  // namespace
}  // namespace rdcn
