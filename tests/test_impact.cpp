// Direct unit tests of the worst-case impact Delta_p(e) (Section III-B)
// and the dispatcher's routing rule, against hand-computed values.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/impact.hpp"
#include "net/builders.hpp"

namespace rdcn {
namespace {

/// Runs the dispatcher over the instance's packets without scheduling any
/// of them (time frozen before the first transmission), capturing the
/// alphas the paper's dual solution uses. We reuse the engine via run_alg
/// and read the recorded alphas instead, plus probe Delta directly through
/// a one-packet engine where the pending state is empty.

TEST(Impact, BaseTermOnly) {
  // Lone packet, edge with d(e)=4 and attach delays 1/2:
  // Delta = w (du + (d+1)/2 + dv) = 2 * (1 + 2.5 + 2) = 11.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0, 1);
  const NodeIndex r = g.add_receiver(0, 2);
  g.add_edge(t, r, 4);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);

  const RunResult run = run_alg(instance);
  EXPECT_DOUBLE_EQ(run.outcomes[0].route.alpha, 11.0);
  EXPECT_DOUBLE_EQ(run.total_cost, 11.0);  // realized == worst case when alone
}

TEST(Impact, Figure2AlphasOnPi) {
  // Hand computation (see the dispatcher trace in DESIGN.md):
  //   p1: Delta = 1;  p2: Delta = 2 + L{p1} = 3;  p3: Delta = 3 + L{p2} = 5.
  const RunResult run = run_alg(figure2_instance_pi());
  EXPECT_DOUBLE_EQ(run.outcomes[0].route.alpha, 1.0);
  EXPECT_DOUBLE_EQ(run.outcomes[1].route.alpha, 3.0);
  EXPECT_DOUBLE_EQ(run.outcomes[2].route.alpha, 5.0);
}

TEST(Impact, Figure2AlphasOnPiPrime) {
  const RunResult run = run_alg(figure2_instance_pi_prime());
  EXPECT_DOUBLE_EQ(run.outcomes[3].route.alpha, 7.0);  // p4: 4 + L{p3}=3
}

TEST(Impact, HeavierPendingChunksCountTowardH) {
  // p2 (weight 1) dispatched while p1 (weight 5, delay-2 edge -> chunk
  // weight 2.5 >= 1) is pending with 2 chunks: |H| = 2, Delta = 1 + 1*2 = 3.
  Topology g;
  g.add_sources(2);
  g.add_destinations(2);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1);
  g.add_edge(t0, r0, 2);  // p1's edge
  g.add_edge(t1, r0, 1);  // p2's edge shares r0
  (void)t1;
  (void)r1;
  Instance instance(std::move(g), {});
  instance.add_packet(1, 5.0, 0, 0);
  instance.add_packet(1, 1.0, 1, 0);

  const RunResult run = run_alg(instance);
  EXPECT_DOUBLE_EQ(run.outcomes[1].route.alpha, 1.0 + 1.0 * 2.0);
}

TEST(Impact, EqualChunkWeightTiesGoToH) {
  // Pending chunk weight equals the new packet's chunk weight: the earlier
  // packet is preferred, so the pending chunk lands in H (not L).
  Topology g;
  g.add_sources(2);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  g.add_edge(t0, r0, 1);
  g.add_edge(t1, r0, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 3.0, 0, 0);
  instance.add_packet(1, 3.0, 1, 0);

  const RunResult run = run_alg(instance);
  // p2: Delta = 3 (base) + w * |H| = 3 + 3 = 6. If the tie went to L it
  // would be 3 + 1 * 3 = 6 here too (d=1) -- so distinguish via weights:
  EXPECT_DOUBLE_EQ(run.outcomes[1].route.alpha, 6.0);
}

TEST(Impact, TieBetweenHAndLDistinguishedByDelay) {
  // d(e) = 2 for the new packet p2, pending p1 chunk weight equals p2's
  // chunk weight 1.5: H gives Delta = base + w2*|H| = w2*1.5 + 3;
  // L would give base + d*w(L) = w2*1.5 + 2*1.5. With w2 = 3:
  // H -> 4.5 + 3 = 7.5; L -> 4.5 + 3.0 = 7.5... pick sizes so they differ:
  // pending p1: ONE chunk of weight 1.5 (w1=1.5? must be > 0; use w1=3,
  // d1=2 -> chunk 1.5, TWO chunks). H: 4.5 + 3*2 = 10.5; L: 4.5 + 2*3 = 10.5.
  // |H| counts chunks and L sums weights * d -- for equal chunk weights
  // they coincide (w_p/d * d = w_p); assert the common value.
  Topology g;
  g.add_sources(2);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  g.add_edge(t0, r0, 2);
  g.add_edge(t1, r0, 2);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 3.0, 0, 0);
  instance.add_packet(1, 3.0, 1, 0);
  const RunResult run = run_alg(instance);
  EXPECT_DOUBLE_EQ(run.outcomes[1].route.alpha, 4.5 + 6.0);
}

TEST(Impact, DispatcherPrefersFixedLinkOnTies) {
  // w * dl == Delta(e): the rule is "<=", so the fixed link wins.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);        // Delta = w * 1
  g.add_fixed_link(0, 0, 1);  // w * 1, tie
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(run.outcomes[0].route.use_fixed);
  EXPECT_DOUBLE_EQ(run.outcomes[0].route.alpha, 2.0);
}

TEST(Impact, DispatcherAvoidsCongestedEdge) {
  // Two parallel routes; five heavy packets pile on edge A, so the sixth
  // must be dispatched to edge B.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(0);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(0);
  const EdgeIndex a = g.add_edge(t0, r0, 1);
  const EdgeIndex b = g.add_edge(t1, r1, 1);
  Instance instance(std::move(g), {});
  for (int i = 0; i < 2; ++i) instance.add_packet(1, 4.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 0);

  const RunResult run = run_alg(instance);
  // The two heavy packets split across a and b (second avoids the first);
  // the light packet then joins the side where it is cheaper; by symmetry
  // both have one heavy pending chunk -> H = 1 either way; alpha = 1 + 1.
  EXPECT_NE(run.outcomes[0].route.edge, run.outcomes[1].route.edge);
  EXPECT_DOUBLE_EQ(run.outcomes[2].route.alpha, 2.0);
  (void)a;
  (void)b;
}

TEST(Impact, FixedLinkUsedWhenNoReconfigurableRoute) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 6);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(run.outcomes[0].route.use_fixed);
  EXPECT_DOUBLE_EQ(run.outcomes[0].route.alpha, 12.0);
  EXPECT_EQ(run.outcomes[0].completion, 7);
}

}  // namespace
}  // namespace rdcn
