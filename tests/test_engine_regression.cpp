// Regression tests for the indexed engine core:
//  * determinism -- the incrementally-maintained candidate list must
//    reproduce the pre-refactor (rebuild-and-sort) engine's schedules
//    bit-for-bit; the golden costs below were captured from the seed
//    engine on the make_varied_instance family;
//  * the SchedulePolicy contract -- candidates arrive priority-sorted at
//    every round with consistent remaining counts;
//  * EngineOptions edge interactions (reconfig_delay x endpoint_capacity,
//    redispatch_queued / record_trace rejection matrix).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

struct Golden {
  std::uint64_t seed;
  double total_cost;
  Time makespan;
};

// Captured from the seed engine (pre-refactor) at commit b07bcdf, %.17g.
constexpr Golden kSeedEngineGoldens[] = {
    {1ULL, 136, 12},
    {2ULL, 146.5, 17},
    {3ULL, 16, 6},
    {4ULL, 263, 20},
    {5ULL, 297.49999999999994, 12},
    {7ULL, 152.5, 8},
    {11ULL, 163.5, 11},
    {101ULL, 2940.5, 32},
    {103ULL, 5376.333333333333, 56},
    {117ULL, 5024, 42},
};

TEST(EngineRegression, ReproducesSeedEngineCosts) {
  for (const Golden& golden : kSeedEngineGoldens) {
    const Instance instance = testing::make_varied_instance(golden.seed);
    EngineOptions options;
    options.record_trace = false;
    const RunResult run = run_alg(instance, options);
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << "seed " << golden.seed;
    EXPECT_EQ(run.makespan, golden.makespan) << "seed " << golden.seed;
  }
}

TEST(EngineRegression, GoldensPassThePerStepAudit) {
  // The audit hook is observation-only: with EngineOptions::audit on, the
  // check/ auditor re-derives matching feasibility, conservation and
  // completion accounting at every step (throwing AuditFailure on any
  // violation) while the golden costs must still reproduce bit-for-bit.
  for (const Golden& golden : kSeedEngineGoldens) {
    const Instance instance = testing::make_varied_instance(golden.seed);
    EngineOptions options;
    options.record_trace = false;
    options.audit = true;
    const RunResult run = run_alg(instance, options);
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << "seed " << golden.seed;
    EXPECT_EQ(run.makespan, golden.makespan) << "seed " << golden.seed;
  }
}

TEST(EngineRegression, RepeatedRunsAreIdentical) {
  for (const std::uint64_t seed : {2ULL, 103ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    const RunResult a = run_alg(instance);
    const RunResult b = run_alg(instance);
    EXPECT_EQ(a.total_cost, b.total_cost);
    EXPECT_EQ(a.makespan, b.makespan);
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      EXPECT_EQ(a.outcomes[i].chunk_transmit_steps, b.outcomes[i].chunk_transmit_steps);
    }
  }
}

/// Delegating scheduler that asserts the engine's candidate contract.
class ContractCheckingScheduler final : public SchedulePolicy {
 public:
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override {
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return chunk_higher_priority(a, b);
                               }));
    EXPECT_EQ(&candidates, &engine.pending_candidates());
    for (const Candidate& c : candidates) {
      EXPECT_GT(c.remaining, 0);
      EXPECT_EQ(c.remaining, engine.remaining_chunks(c.packet));
      EXPECT_EQ(c.edge, engine.assigned_edge(c.packet));
      EXPECT_DOUBLE_EQ(c.chunk_weight, engine.chunk_weight(c.packet));
      // The per-endpoint queues and the candidate list agree.
      const auto& queue = engine.pending_on_transmitter(c.transmitter);
      EXPECT_NE(std::find(queue.begin(), queue.end(), c.packet), queue.end());
    }
    ++rounds_checked;
    return inner_.select(engine, now, candidates);
  }

  int rounds_checked = 0;

 private:
  StableMatchingScheduler inner_;
};

TEST(EngineRegression, CandidateListStaysSortedAndConsistent) {
  const Instance instance = testing::make_varied_instance(103);
  ImpactDispatcher dispatcher;
  ContractCheckingScheduler scheduler;
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_GT(scheduler.rounds_checked, 10);
}

TEST(EngineRegression, ContractHoldsUnderMigrationAndCapacity) {
  const Instance instance = testing::make_varied_instance(101);
  {
    ImpactDispatcher dispatcher;
    ContractCheckingScheduler scheduler;
    EngineOptions options;
    options.redispatch_queued = true;
    options.audit = true;  // the auditor's re-dispatch ledger path
    EXPECT_TRUE(all_delivered(instance, simulate(instance, dispatcher, scheduler, options)));
  }
  {
    ImpactDispatcher dispatcher;
    ContractCheckingScheduler scheduler;
    EngineOptions options;
    options.endpoint_capacity = 3;
    options.audit = true;
    EXPECT_TRUE(all_delivered(instance, simulate(instance, dispatcher, scheduler, options)));
  }
}

// ------------------------------------------ EngineOptions interactions --

TEST(EngineOptionsMatrix, ReconfigDelayRequiresUnitCapacity) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.reconfig_delay = 2;
  options.endpoint_capacity = 2;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
  // Each extension alone is accepted.
  options.endpoint_capacity = 1;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, options));
  options.reconfig_delay = 0;
  options.endpoint_capacity = 2;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, options));
}

TEST(EngineOptionsMatrix, TraceRejectsEveryNonAnalysisExtension) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  const auto rejected = [&](EngineOptions options) {
    options.record_trace = true;
    EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
  };
  rejected({.redispatch_queued = true});
  rejected({.reconfig_delay = 1});
  rejected({.endpoint_capacity = 2});
  rejected({.speedup_rounds = 2});
  // The analysis model itself records fine.
  EngineOptions analysis;
  analysis.record_trace = true;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, analysis));
}

TEST(EngineOptionsMatrix, ReconfigDelayAndMigrationCompose) {
  // Both extensions together: queued packets may re-route while endpoints
  // retune; delivery and accounting must survive the interaction.
  for (const std::uint64_t seed : {1ULL, 4ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.reconfig_delay = 2;
    options.redispatch_queued = true;
    options.audit = true;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
  }
}

TEST(EngineOptionsMatrix, ReconfigDelayNeverBeatsFreeRetuning) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher d0, d1;
    StableMatchingScheduler s0, s1;
    EngineOptions free_retune;
    free_retune.record_trace = false;
    EngineOptions delayed = free_retune;
    delayed.reconfig_delay = 3;
    const double base = simulate(instance, d0, s0, free_retune).total_cost;
    const double slowed = simulate(instance, d1, s1, delayed).total_cost;
    EXPECT_GE(slowed, base - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rdcn
