// Regression tests for the indexed engine core:
//  * determinism -- the incrementally-maintained candidate list must
//    reproduce the pre-refactor (rebuild-and-sort) engine's schedules
//    bit-for-bit; the golden costs below were captured from the seed
//    engine on the make_varied_instance family;
//  * the SchedulePolicy contract -- candidates arrive priority-sorted at
//    every round with consistent remaining counts;
//  * EngineOptions edge interactions (reconfig_delay x endpoint_capacity,
//    redispatch_queued / record_trace rejection matrix).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

struct Golden {
  std::uint64_t seed;
  double total_cost;
  Time makespan;
};

// Captured from the seed engine (pre-refactor) at commit b07bcdf, %.17g.
constexpr Golden kSeedEngineGoldens[] = {
    {1ULL, 136, 12},
    {2ULL, 146.5, 17},
    {3ULL, 16, 6},
    {4ULL, 263, 20},
    {5ULL, 297.49999999999994, 12},
    {7ULL, 152.5, 8},
    {11ULL, 163.5, 11},
    {101ULL, 2940.5, 32},
    {103ULL, 5376.333333333333, 56},
    {117ULL, 5024, 42},
};

TEST(EngineRegression, ReproducesSeedEngineCosts) {
  for (const Golden& golden : kSeedEngineGoldens) {
    const Instance instance = testing::make_varied_instance(golden.seed);
    EngineOptions options;
    options.record_trace = false;
    const RunResult run = run_alg(instance, options);
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << "seed " << golden.seed;
    EXPECT_EQ(run.makespan, golden.makespan) << "seed " << golden.seed;
  }
}

TEST(EngineRegression, GoldensPassThePerStepAudit) {
  // The audit hook is observation-only: with EngineOptions::audit on, the
  // check/ auditor re-derives matching feasibility, conservation and
  // completion accounting at every step (throwing AuditFailure on any
  // violation) while the golden costs must still reproduce bit-for-bit.
  for (const Golden& golden : kSeedEngineGoldens) {
    const Instance instance = testing::make_varied_instance(golden.seed);
    EngineOptions options;
    options.record_trace = false;
    options.audit = true;
    const RunResult run = run_alg(instance, options);
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << "seed " << golden.seed;
    EXPECT_EQ(run.makespan, golden.makespan) << "seed " << golden.seed;
  }
}

TEST(EngineRegression, RepeatedRunsAreIdentical) {
  for (const std::uint64_t seed : {2ULL, 103ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    const RunResult a = run_alg(instance);
    const RunResult b = run_alg(instance);
    EXPECT_EQ(a.total_cost, b.total_cost);
    EXPECT_EQ(a.makespan, b.makespan);
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      EXPECT_EQ(a.outcomes[i].chunk_transmit_steps, b.outcomes[i].chunk_transmit_steps);
    }
  }
}

// --------------------------- all-policy schedule goldens (Selection API) --

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the integral schedule data (route kind/edge, completion,
/// per-chunk transmit steps) in packet-id order: equal hashes == bit-for-
/// bit identical schedules, with no floating-point in the fingerprint.
std::uint64_t schedule_hash(const std::vector<PacketOutcome>& outcomes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const PacketOutcome& o : outcomes) {
    h = mix64(h, o.route.use_fixed ? 1u : 0u);
    h = mix64(h, static_cast<std::uint64_t>(o.route.use_fixed ? -1 : o.route.edge));
    h = mix64(h, static_cast<std::uint64_t>(o.completion));
    h = mix64(h, o.chunk_transmit_steps.size());
    for (Time t : o.chunk_transmit_steps) h = mix64(h, static_cast<std::uint64_t>(t));
  }
  return h;
}

struct PolicyGolden {
  const char* policy;
  std::uint64_t seed;
  double total_cost;
  Time makespan;
  std::uint64_t hash;
};

// Captured from the Selection-API engine at PR 5; `alg`'s rows reproduce
// the pre-refactor kSeedEngineGoldens costs above, pinning the whole
// registry (batch AND streamed, audited) to these schedules.
constexpr PolicyGolden kPolicyGoldens[] = {
    {"alg", 101ULL, 2940.5, 32, 0x0f32fd3947ee6634ULL},
    {"maxweight", 101ULL, 2969, 32, 0x29d8e70a73f91256ULL},
    {"islip", 101ULL, 4520, 32, 0x5f90196ba4dad009ULL},
    {"rotor", 101ULL, 52772, 246, 0x00ff4787dbd40ff4ULL},
    {"random", 101ULL, 4825, 32, 0x42f37e766451fe85ULL},
    {"fifo", 101ULL, 4506, 32, 0x670000fa8941651aULL},
    {"impact", 101ULL, 2940.5, 32, 0x0f32fd3947ee6634ULL},
    {"random-dispatch", 101ULL, 3148.5, 32, 0x5ba2538fbcdf8783ULL},
    {"round-robin", 101ULL, 3063.5, 32, 0xd7e45cd57a739e0bULL},
    {"jsq", 101ULL, 2970, 32, 0xe9f822b46830a417ULL},
    {"min-delay", 101ULL, 3323.5, 36, 0xf2d5b06e0aa09cd9ULL},
    {"direct-only", 101ULL, 3235.5, 36, 0xa4be27d60f580159ULL},
    {"alg", 103ULL, 5376.333333333333, 56, 0x495a38077d357f3dULL},
    {"maxweight", 103ULL, 5398.4999999999991, 56, 0xf31533743d25360fULL},
    {"islip", 103ULL, 7510.333333333333, 56, 0x528356261f84554bULL},
    {"rotor", 103ULL, 87168, 522, 0x7a7e26a03b339efaULL},
    {"random", 103ULL, 8276.3333333333339, 56, 0x9472f7821700d325ULL},
    {"fifo", 103ULL, 7855.5, 56, 0xf07c51e6d8093034ULL},
    {"impact", 103ULL, 5376.333333333333, 56, 0x495a38077d357f3dULL},
    {"random-dispatch", 103ULL, 6045, 56, 0xa0023c8884b61ef5ULL},
    {"round-robin", 103ULL, 5539.1666666666661, 56, 0x7dcfa62ca7116390ULL},
    {"jsq", 103ULL, 5448.7499999999991, 56, 0xd36dd52f18d56ec2ULL},
    {"min-delay", 103ULL, 6407.5, 56, 0xbad24f4161eb9e68ULL},
    {"direct-only", 103ULL, 6407.5, 56, 0xbad24f4161eb9e68ULL},
};

TEST(EngineRegression, AllRegistryPoliciesMatchScheduleGoldensBatch) {
  std::map<std::uint64_t, Instance> instances;
  for (const PolicyGolden& golden : kPolicyGoldens) {
    auto it = instances.find(golden.seed);
    if (it == instances.end()) {
      it = instances.emplace(golden.seed, testing::make_varied_instance(golden.seed)).first;
    }
    const PolicyFactory policy = named_policy(golden.policy);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(it->second.topology());
    EngineOptions options;
    options.audit = true;
    const RunResult run = simulate(it->second, *dispatcher, *scheduler, options);
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << golden.policy << " seed " << golden.seed;
    EXPECT_EQ(run.makespan, golden.makespan) << golden.policy << " seed " << golden.seed;
    EXPECT_EQ(schedule_hash(run.outcomes), golden.hash)
        << golden.policy << " seed " << golden.seed;
  }
}

TEST(EngineRegression, ProbeEnabledRunsReproduceScheduleGoldens) {
  // ISSUE 7: the observability probe only observes -- enabling it (with an
  // event ring small enough to wrap) must reproduce every policy's golden
  // schedule hash bit-for-bit, while the report itself comes back coherent.
  std::map<std::uint64_t, Instance> instances;
  for (const PolicyGolden& golden : kPolicyGoldens) {
    auto it = instances.find(golden.seed);
    if (it == instances.end()) {
      it = instances.emplace(golden.seed, testing::make_varied_instance(golden.seed)).first;
    }
    const PolicyFactory policy = named_policy(golden.policy);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(it->second.topology());
    EngineOptions options;
    options.audit = true;
    options.probe.enabled = true;
    options.probe.event_capacity = 64;
    const RunResult run = simulate(it->second, *dispatcher, *scheduler, options);
    EXPECT_EQ(schedule_hash(run.outcomes), golden.hash)
        << golden.policy << " seed " << golden.seed << ": probe perturbed the schedule";
    EXPECT_EQ(run.makespan, golden.makespan) << golden.policy << " seed " << golden.seed;
    EXPECT_NEAR(run.total_cost, golden.total_cost, 1e-9 * (1.0 + golden.total_cost))
        << golden.policy << " seed " << golden.seed;
    ASSERT_TRUE(run.probe.enabled) << golden.policy;
    const auto packets = static_cast<std::uint64_t>(it->second.num_packets());
    EXPECT_EQ(run.probe.counters[static_cast<std::size_t>(Counter::PacketsRetired)],
              packets)
        << golden.policy << " seed " << golden.seed;
  }
}

TEST(EngineRegression, AllRegistryPoliciesMatchScheduleGoldensStreamed) {
  // The same schedules must come out of the streaming engine mode fed the
  // recorded arrival sequence (audited): retired outcomes, reassembled in
  // id order, hash to the same golden fingerprints.
  std::map<std::uint64_t, Instance> instances;
  for (const PolicyGolden& golden : kPolicyGoldens) {
    auto it = instances.find(golden.seed);
    if (it == instances.end()) {
      it = instances.emplace(golden.seed, testing::make_varied_instance(golden.seed)).first;
    }
    const Instance& instance = it->second;
    const PolicyFactory policy = named_policy(golden.policy);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    EngineOptions options;
    options.audit = true;
    options.max_steps = default_max_steps(instance, 0);
    std::vector<PacketOutcome> outcomes(instance.num_packets());
    Engine engine(instance.topology(), *dispatcher, *scheduler, options,
                  [&outcomes](RetiredPacket&& packet) {
                    outcomes[static_cast<std::size_t>(packet.id)] = std::move(packet.outcome);
                  });
    const auto& packets = instance.packets();
    std::size_t next = 0;
    while (next < packets.size() || engine.busy()) {
      const Time* upcoming = next < packets.size() ? &packets[next].arrival : nullptr;
      engine.begin_step(upcoming);
      while (next < packets.size() && packets[next].arrival == engine.now()) {
        engine.inject(packets[next]);
        ++next;
      }
      engine.finish_step();
    }
    EXPECT_EQ(schedule_hash(outcomes), golden.hash)
        << golden.policy << " seed " << golden.seed;
    EXPECT_EQ(engine.aggregates().makespan, golden.makespan)
        << golden.policy << " seed " << golden.seed;
    EXPECT_NEAR(engine.aggregates().total_cost, golden.total_cost,
                1e-9 * (1.0 + golden.total_cost))
        << golden.policy << " seed " << golden.seed;
  }
}

/// Delegating scheduler that asserts the engine's candidate contract.
class ContractCheckingScheduler final : public SchedulePolicy {
 public:
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override {
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return chunk_higher_priority(a, b);
                               }));
    EXPECT_EQ(&candidates, &engine.pending_candidates());
    EXPECT_TRUE(out.empty());  // the engine hands the scratch cleared
    const ActiveEndpoints& active = engine.active_endpoints(candidates);
    for (const Candidate& c : candidates) {
      EXPECT_GT(c.remaining, 0);
      EXPECT_EQ(c.remaining, engine.remaining_chunks(c.packet));
      EXPECT_EQ(c.edge, engine.assigned_edge(c.packet));
      EXPECT_DOUBLE_EQ(c.chunk_weight, engine.chunk_weight(c.packet));
      // The per-endpoint queues and the candidate list agree.
      const auto& queue = engine.pending_on_transmitter(c.transmitter);
      EXPECT_NE(std::find(queue.begin(), queue.end(), c.packet), queue.end());
      // The active-endpoint remap round-trips for every candidate endpoint.
      const auto t_rank = static_cast<std::size_t>(active.transmitter_rank(c.transmitter));
      const auto r_rank = static_cast<std::size_t>(active.receiver_rank(c.receiver));
      ASSERT_LT(t_rank, active.num_transmitters());
      ASSERT_LT(r_rank, active.num_receivers());
      EXPECT_EQ(active.transmitters[t_rank], c.transmitter);
      EXPECT_EQ(active.receivers[r_rank], c.receiver);
    }
    ++rounds_checked;
    inner_.select(engine, now, candidates, out);
  }

  int rounds_checked = 0;

 private:
  StableMatchingScheduler inner_;
};

TEST(EngineRegression, CandidateListStaysSortedAndConsistent) {
  const Instance instance = testing::make_varied_instance(103);
  ImpactDispatcher dispatcher;
  ContractCheckingScheduler scheduler;
  const RunResult run = simulate(instance, dispatcher, scheduler, {});
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_GT(scheduler.rounds_checked, 10);
}

TEST(EngineRegression, ContractHoldsUnderMigrationAndCapacity) {
  const Instance instance = testing::make_varied_instance(101);
  {
    ImpactDispatcher dispatcher;
    ContractCheckingScheduler scheduler;
    EngineOptions options;
    options.redispatch_queued = true;
    options.audit = true;  // the auditor's re-dispatch ledger path
    EXPECT_TRUE(all_delivered(instance, simulate(instance, dispatcher, scheduler, options)));
  }
  {
    ImpactDispatcher dispatcher;
    ContractCheckingScheduler scheduler;
    EngineOptions options;
    options.endpoint_capacity = 3;
    options.audit = true;
    EXPECT_TRUE(all_delivered(instance, simulate(instance, dispatcher, scheduler, options)));
  }
}

// ------------------------------------------ EngineOptions interactions --

TEST(EngineOptionsMatrix, ReconfigDelayRequiresUnitCapacity) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.reconfig_delay = 2;
  options.endpoint_capacity = 2;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
  // Each extension alone is accepted.
  options.endpoint_capacity = 1;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, options));
  options.reconfig_delay = 0;
  options.endpoint_capacity = 2;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, options));
}

TEST(EngineOptionsMatrix, TraceRejectsEveryNonAnalysisExtension) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  const auto rejected = [&](EngineOptions options) {
    options.record_trace = true;
    EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
  };
  rejected({.redispatch_queued = true});
  rejected({.reconfig_delay = 1});
  rejected({.endpoint_capacity = 2});
  rejected({.speedup_rounds = 2});
  // The analysis model itself records fine.
  EngineOptions analysis;
  analysis.record_trace = true;
  EXPECT_NO_THROW(Engine(instance, dispatcher, scheduler, analysis));
}

TEST(EngineOptionsMatrix, ReconfigDelayAndMigrationCompose) {
  // Both extensions together: queued packets may re-route while endpoints
  // retune; delivery and accounting must survive the interaction.
  for (const std::uint64_t seed : {1ULL, 4ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.reconfig_delay = 2;
    options.redispatch_queued = true;
    options.audit = true;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6);
  }
}

TEST(EngineOptionsMatrix, ReconfigDelayNeverBeatsFreeRetuning) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    ImpactDispatcher d0, d1;
    StableMatchingScheduler s0, s1;
    EngineOptions free_retune;
    free_retune.record_trace = false;
    EngineOptions delayed = free_retune;
    delayed.reconfig_delay = 3;
    const double base = simulate(instance, d0, s0, free_retune).total_cost;
    const double slowed = simulate(instance, d1, s1, delayed).total_cost;
    EXPECT_GE(slowed, base - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rdcn
