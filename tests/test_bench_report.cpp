// BenchReport emits one JSON object per row into the BENCH_*.json
// trajectory; downstream tooling parses those lines, so every emitted
// line must be strictly valid JSON. Historically NaN (from, e.g.,
// Summary::min()/max() on an empty summary) leaked through as the bare
// token `nan`, which no JSON parser accepts -- non-finite numbers must
// come out as null.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common.hpp"  // bench/common.hpp (header-only report harness)
#include "util/stats.hpp"

namespace rdcn {
namespace {

/// Minimal strict JSON validator (objects/arrays/strings/numbers/bools/
/// null) -- enough to prove a line parses without hauling in a library.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse() {
    skip_space();
    if (!value()) return false;
    skip_space();
    return position_ == text_.size();
  }

 private:
  bool value() {
    if (position_ >= text_.size()) return false;
    switch (text_[position_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++position_;  // '{'
    skip_space();
    if (consume('}')) return true;
    while (true) {
      skip_space();
      if (!string()) return false;
      skip_space();
      if (!consume(':')) return false;
      skip_space();
      if (!value()) return false;
      skip_space();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    ++position_;  // '['
    skip_space();
    if (consume(']')) return true;
    while (true) {
      skip_space();
      if (!value()) return false;
      skip_space();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (position_ < text_.size() && text_[position_] != '"') {
      if (text_[position_] == '\\') {
        ++position_;
        if (position_ >= text_.size()) return false;
      }
      ++position_;
    }
    return consume('"');
  }

  bool number() {
    const std::size_t start = position_;
    consume('-');
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E' || text_[position_] == '+' ||
            text_[position_] == '-')) {
      ++position_;
    }
    if (position_ == start) return false;
    // Re-parse with strtod to reject malformed shapes like "1.2.3" / "-".
    std::size_t consumed = 0;
    try {
      (void)std::stod(text_.substr(start, position_ - start), &consumed);
    } catch (...) {
      return false;
    }
    return consumed == position_ - start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(position_, w.size(), w) != 0) return false;
    position_ += w.size();
    return true;
  }

  bool consume(char c) {
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  void skip_space() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  const std::string& text_;
  std::size_t position_ = 0;
};

TEST(BenchReport, EveryEmittedLineParsesAsJson) {
  bench::BenchReport report("json_validity");
  report.add("plain", 12.5, 0.25).param("rho", 0.9).param("reps", std::int64_t{3});
  report.add("escaped \"name\"\n", 1.0, 2.0).param("note", "tab\there \\ quote\"");
  report.add("extras", 3.0, 4.0).value("p99", 17.0).value("throughput", 0.125);
  for (const std::string& line : report.json_lines()) {
    EXPECT_TRUE(JsonParser(line).parse()) << line;
  }
}

TEST(BenchReport, NonFiniteNumbersBecomeNull) {
  // The empty-Summary path that used to leak `nan` into the JSON.
  Summary empty;
  ASSERT_TRUE(std::isnan(empty.min()));
  ASSERT_TRUE(std::isnan(empty.max()));

  bench::BenchReport report("nan_regression");
  report.add("empty-summary", empty.min(), empty.max())
      .param("positive_infinity", std::numeric_limits<double>::infinity())
      .value("negative_infinity", -std::numeric_limits<double>::infinity())
      .value("not_a_number", std::numeric_limits<double>::quiet_NaN())
      .value("fine", 1.25);
  const auto lines = report.json_lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines.front();
  EXPECT_TRUE(JsonParser(line).parse()) << line;
  // No bare non-finite tokens anywhere in the emitted values.
  EXPECT_EQ(line.find(":nan"), std::string::npos) << line;
  EXPECT_EQ(line.find(":inf"), std::string::npos) << line;
  EXPECT_EQ(line.find(":-inf"), std::string::npos) << line;
  EXPECT_NE(line.find("\"total_cost\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"wall_ms\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"not_a_number\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"fine\":1.25"), std::string::npos) << line;
}

TEST(BenchReport, MetaLineIsEmittedFirstAndIsRemovable) {
  // ISSUE 7: the run-metadata line leads the report so tooling can stamp a
  // whole BENCH_*.json with its provenance; perf_diff skips lines carrying
  // a "meta" key, and --no-meta (clear_meta) restores byte-deterministic
  // output for committed goldens.
  bench::BenchReport report("meta_bench");
  report.set_meta("abc1234-dirty", "RelWithDebInfo", "2026-08-08T00:00:00Z");
  report.add("row", 1.0, 2.0).param("shape", "crossbar16");
  const auto lines = report.json_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(JsonParser(lines[0]).parse()) << lines[0];
  EXPECT_NE(lines[0].find("\"meta\":{"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"git\":\"abc1234-dirty\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"build\":\"RelWithDebInfo\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"generated\":\"2026-08-08T00:00:00Z\""), std::string::npos);
  // Data rows never carry the key the meta skip matches on.
  EXPECT_EQ(lines[1].find("\"meta\""), std::string::npos) << lines[1];

  report.clear_meta();
  const auto without = report.json_lines();
  ASSERT_EQ(without.size(), 1u);
  EXPECT_EQ(without[0], lines[1]);
}

TEST(BenchReport, JsonNumberFormatsFinitesAndRejectsNonFinites) {
  EXPECT_EQ(bench::json_number(2.5), "2.5");
  EXPECT_EQ(bench::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(bench::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(bench::json_number(-std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace rdcn
