// Workload generator tests: determinism, packet-count and ordering
// invariants, skew shapes (Zipf concentration, hotspot share, permutation
// support, incast sink), weight distributions, burst modulation, and the
// multi-unit flow reduction.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "net/builders.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace rdcn {
namespace {

Topology test_topology() {
  Rng rng(101);
  TwoTierConfig config;
  config.racks = 6;
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  return build_two_tier(config, rng);
}

TEST(Workload, DeterministicUnderSeed) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 50;
  config.seed = 7;
  const Instance a = generate_workload(g, config);
  const Instance b = generate_workload(g, config);
  EXPECT_EQ(a.to_string(), b.to_string());
  config.seed = 8;
  const Instance c = generate_workload(g, config);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Workload, ProducesValidInstances) {
  const Topology g = test_topology();
  for (int skew = 0; skew < 5; ++skew) {
    for (int weights = 0; weights < 4; ++weights) {
      WorkloadConfig config;
      config.num_packets = 30;
      config.skew = static_cast<PairSkew>(skew);
      config.weights = static_cast<WeightDist>(weights);
      config.seed = static_cast<std::uint64_t>(skew * 10 + weights + 1);
      const Instance instance = generate_workload(g, config);
      EXPECT_EQ(instance.validate(), "") << to_string(config.skew) << "/"
                                         << to_string(config.weights);
      EXPECT_EQ(instance.num_packets(), 30u);
    }
  }
}

TEST(Workload, ZipfConcentratesTraffic) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 2000;
  config.skew = PairSkew::Zipf;
  config.zipf_exponent = 1.5;
  config.seed = 3;
  const Instance instance = generate_workload(g, config);

  std::map<std::pair<NodeIndex, NodeIndex>, std::size_t> counts;
  for (const Packet& p : instance.packets()) ++counts[{p.source, p.destination}];
  std::size_t top = 0;
  for (const auto& [pair, count] : counts) top = std::max(top, count);
  // The hottest pair carries far more than a uniform share (30 pairs).
  EXPECT_GT(top, instance.num_packets() / 10);
}

TEST(Workload, HotspotShareRespected) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 2000;
  config.skew = PairSkew::Hotspot;
  config.hotspot_fraction = 0.6;
  config.seed = 4;
  const Instance instance = generate_workload(g, config);
  std::map<std::pair<NodeIndex, NodeIndex>, std::size_t> counts;
  for (const Packet& p : instance.packets()) ++counts[{p.source, p.destination}];
  std::size_t top = 0;
  for (const auto& [pair, count] : counts) top = std::max(top, count);
  EXPECT_GT(static_cast<double>(top), 0.5 * 2000);
  EXPECT_LT(static_cast<double>(top), 0.75 * 2000);
}

TEST(Workload, PermutationUsesOneDestinationPerSource) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 500;
  config.skew = PairSkew::Permutation;
  config.seed = 5;
  const Instance instance = generate_workload(g, config);
  std::map<NodeIndex, std::set<NodeIndex>> dest_of_source;
  for (const Packet& p : instance.packets()) dest_of_source[p.source].insert(p.destination);
  for (const auto& [source, dests] : dest_of_source) {
    EXPECT_EQ(dests.size(), 1u) << "source " << source;
  }
}

TEST(Workload, IncastFunnelsToOneRack) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 200;
  config.skew = PairSkew::Incast;
  config.seed = 6;
  const Instance instance = generate_workload(g, config);
  std::set<NodeIndex> destinations;
  for (const Packet& p : instance.packets()) destinations.insert(p.destination);
  EXPECT_EQ(destinations.size(), 1u);
}

TEST(Workload, WeightDistributionsShapeCorrectly) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 1000;
  config.seed = 9;

  config.weights = WeightDist::Unit;
  const Instance unit = generate_workload(g, config);
  for (const Packet& p : unit.packets()) {
    EXPECT_DOUBLE_EQ(p.weight, 1.0);
  }

  config.weights = WeightDist::UniformInt;
  config.weight_max = 5;
  const Instance uniform_int = generate_workload(g, config);
  for (const Packet& p : uniform_int.packets()) {
    EXPECT_GE(p.weight, 1.0);
    EXPECT_LE(p.weight, 5.0);
    EXPECT_EQ(p.weight, std::floor(p.weight));
  }

  config.weights = WeightDist::Bimodal;
  config.weight_max = 50;
  config.elephant_fraction = 0.2;
  std::size_t elephants = 0;
  const Instance bimodal = generate_workload(g, config);
  for (const Packet& p : bimodal.packets()) {
    EXPECT_TRUE(p.weight == 1.0 || p.weight == 50.0);
    elephants += (p.weight == 50.0) ? 1 : 0;
  }
  EXPECT_GT(elephants, 100u);
  EXPECT_LT(elephants, 320u);

  config.weights = WeightDist::Pareto;
  const Instance pareto = generate_workload(g, config);
  bool heavy_seen = false;
  for (const Packet& p : pareto.packets()) {
    EXPECT_GE(p.weight, 1.0);
    EXPECT_EQ(p.weight, std::floor(p.weight));
    heavy_seen = heavy_seen || p.weight >= 5.0;
  }
  EXPECT_TRUE(heavy_seen);
}

TEST(Workload, BurstyPreservesApproxRateButClumps) {
  const Topology g = test_topology();
  WorkloadConfig config;
  config.num_packets = 3000;
  config.arrival_rate = 2.0;
  config.seed = 10;

  config.bursty = false;
  const Instance smooth = generate_workload(g, config);
  config.bursty = true;
  config.burst_off_prob = 0.7;
  const Instance bursty = generate_workload(g, config);

  // Similar span (rates match on average)...
  const Time span_smooth = smooth.packets().back().arrival;
  const Time span_bursty = bursty.packets().back().arrival;
  EXPECT_NEAR(static_cast<double>(span_bursty), static_cast<double>(span_smooth),
              0.4 * static_cast<double>(span_smooth));

  // ...but much higher per-step peaks when ON.
  std::map<Time, std::size_t> per_step;
  for (const Packet& p : bursty.packets()) ++per_step[p.arrival];
  std::size_t peak = 0;
  for (const auto& [step, count] : per_step) peak = std::max(peak, count);
  EXPECT_GE(peak, 10u);
}

TEST(Workload, AppendFlowSplitsEvenly) {
  Topology g = figure2_topology();
  Instance instance(std::move(g), {});
  append_flow(instance, 1, 6.0, 4, 0, 0);
  ASSERT_EQ(instance.num_packets(), 4u);
  for (const Packet& p : instance.packets()) {
    EXPECT_DOUBLE_EQ(p.weight, 1.5);
    EXPECT_EQ(p.arrival, 1);
  }
  EXPECT_THROW(append_flow(instance, 1, 1.0, 0, 0, 0), std::invalid_argument);
}

TEST(Workload, LabelsRoundTrip) {
  EXPECT_STREQ(to_string(PairSkew::Zipf), "zipf");
  EXPECT_STREQ(to_string(WeightDist::Bimodal), "bimodal");
}

}  // namespace
}  // namespace rdcn
