// Engine mechanics: dispatch/schedule sequencing, matching enforcement,
// latency accounting identities, gap fast-forwarding, speedup rounds, and
// guard rails (invalid policies, starvation detection).

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

/// A scheduler that transmits nothing -- used to exercise the starvation
/// guard.
class IdleScheduler final : public SchedulePolicy {
 public:
  void select(const Engine&, Time, const std::vector<Candidate>&, Selection&) override {}
};

/// A scheduler that tries to double-book a transmitter.
class CheatingScheduler final : public SchedulePolicy {
 public:
  void select(const Engine&, Time, const std::vector<Candidate>& candidates,
              Selection& out) override {
    for (std::size_t i = 0; i < candidates.size(); ++i) out.push(i);
  }
};

TEST(Engine, SingleChunkPacketCompletesImmediately) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 2.0, 0, 0);

  const RunResult run = run_alg(instance);
  EXPECT_EQ(run.outcomes[0].completion, 2);
  EXPECT_DOUBLE_EQ(run.total_cost, 2.0);  // weight 2 * latency 1
}

TEST(Engine, MultiChunkPacketStaircase) {
  // One packet on an edge of delay 3: chunks at steps 1, 2, 3;
  // fractional latency = w/3 * (1 + 2 + 3) = 2w.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 3);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 3.0, 0, 0);

  const RunResult run = run_alg(instance);
  EXPECT_EQ(run.outcomes[0].chunk_transmit_steps,
            (std::vector<Time>{1, 2, 3}));
  EXPECT_EQ(run.outcomes[0].completion, 4);
  EXPECT_DOUBLE_EQ(run.total_cost, 6.0);
  // Matches the base term of Delta: w * (d+1)/2 = 3 * 2 = 6.
}

TEST(Engine, AttachDelaysShiftCompletion) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0, /*attach_delay=*/2);
  const NodeIndex r = g.add_receiver(0, /*attach_delay=*/1);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);

  const RunResult run = run_alg(instance);
  EXPECT_EQ(run.outcomes[0].completion, 1 + 1 + 2 + 1);  // tau+1+du+dv
  EXPECT_DOUBLE_EQ(run.total_cost, 4.0);
}

TEST(Engine, FastForwardsOverArrivalGaps) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1000, 1.0, 0, 0);

  const RunResult run = run_alg(instance);
  EXPECT_EQ(run.outcomes[1].completion, 1001);
  EXPECT_LT(run.steps_simulated, 10);  // did not tick through the gap
}

TEST(Engine, StarvationGuardThrows) {
  Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  IdleScheduler idle;
  EngineOptions options;
  options.max_steps = 100;
  EXPECT_THROW(simulate(instance, dispatcher, idle, options), std::runtime_error);
}

TEST(Engine, RejectsNonMatchingSelections) {
  // Two packets through the same transmitter; the cheating scheduler
  // returns both, which must be rejected.
  Topology g;
  g.add_sources(1);
  g.add_destinations(2);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r1 = g.add_receiver(0);
  const NodeIndex r2 = g.add_receiver(1);
  g.add_edge(t, r1, 1);
  g.add_edge(t, r2, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 0, 1);

  ImpactDispatcher dispatcher;
  CheatingScheduler cheat;
  EXPECT_THROW(simulate(instance, dispatcher, cheat, {}), std::logic_error);
}

TEST(Engine, SpeedupRoundsAcceleratesDraining) {
  // Heavy contention: one (t, r) pair, several packets. With k rounds per
  // step the queue drains k times faster.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  for (int i = 0; i < 6; ++i) instance.add_packet(1, 1.0, 0, 0);

  EngineOptions slow;
  slow.speedup_rounds = 1;
  EngineOptions fast;
  fast.speedup_rounds = 3;
  ImpactDispatcher d1, d2;
  StableMatchingScheduler s1, s2;
  const RunResult run_slow = simulate(instance, d1, s1, slow);
  const RunResult run_fast = simulate(instance, d2, s2, fast);
  EXPECT_LT(run_fast.total_cost, run_slow.total_cost);
  EXPECT_LE(run_fast.makespan, run_slow.makespan);
  // Serial drain: latencies 1..6 sum to 21; with 3 rounds/step: 1,1,1,2,2,2.
  EXPECT_DOUBLE_EQ(run_slow.total_cost, 21.0);
  EXPECT_DOUBLE_EQ(run_fast.total_cost, 9.0);
}

TEST(Engine, TraceRequiresUnitSpeed) {
  const Instance instance = figure2_instance_pi();
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  EngineOptions options;
  options.speedup_rounds = 2;
  options.record_trace = true;
  EXPECT_THROW(Engine(instance, dispatcher, scheduler, options), std::invalid_argument);
}

TEST(Engine, CostIdentitiesOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = testing::make_varied_instance(seed);
    const RunResult run = run_alg(instance);
    EXPECT_TRUE(all_delivered(instance, run)) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-6) << "seed " << seed;
    EXPECT_NEAR(run.total_cost, recompute_cost_active_form(instance, run), 1e-6)
        << "seed " << seed;
    EXPECT_NEAR(run.total_cost, run.reconfig_cost + run.fixed_cost, 1e-6);
    EXPECT_GE(run.total_cost, instance.ideal_cost() - 1e-6);
    const ScheduleSummary summary = summarize(instance, run);
    EXPECT_GT(summary.mean_weighted_latency, 0.0);
    EXPECT_GE(summary.makespan, 1);
  }
}

}  // namespace
}  // namespace rdcn
