// Tests of the structured adversarial instance families and the exact
// closed-form behaviour of ALG on them (these closed forms anchor the
// tightness experiment EXP-TGT).

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/exact_certificate.hpp"
#include "sim/metrics.hpp"
#include "workload/adversarial.hpp"

namespace rdcn {
namespace {

TEST(Adversarial, SingleEdgeBatchStaircase) {
  for (const std::size_t n : {1u, 5u, 20u}) {
    const Instance instance = adversarial_single_edge_batch(n);
    EXPECT_EQ(instance.validate(), "");
    const RunResult run = run_alg(instance);
    EXPECT_TRUE(all_delivered(instance, run));
    // Serial staircase: 1 + 2 + ... + n.
    EXPECT_DOUBLE_EQ(run.total_cost, static_cast<double>(n * (n + 1)) / 2.0);
  }
}

TEST(Adversarial, SingleEdgeBatchCertifiedRatioExactlySix) {
  const Instance instance = adversarial_single_edge_batch(15);
  const RunResult run = run_alg(instance);
  const ExactCertificate certificate =
      build_exact_certificate(instance, run, ExactEps{1, 1});
  // ALG == 6 * D/2 exactly: the certificate chain is saturated.
  EXPECT_EQ(certificate.alg_cost, Rational(6) * certificate.lower_bound);
}

TEST(Adversarial, WeightGradientServesHeaviestFirst) {
  const Instance instance = adversarial_weight_gradient(6);
  EXPECT_EQ(instance.validate(), "");
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  // One arrival per step, one transmitter slot per step: every packet
  // transmits in its own arrival step, so ALG's cost is sum of weights and
  // every alpha_p equals w_p (empty B_p at each dispatch) -- the other
  // family that saturates the certificate chain at exactly 6 in EXP-TGT.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(run.outcomes[i].chunk_transmit_steps.at(0),
              static_cast<Time>(i + 1))
        << "packet " << i;
  }
  EXPECT_DOUBLE_EQ(run.total_cost, 1 + 2 + 3 + 4 + 5 + 6);
}

TEST(Adversarial, DelayTrapDivertsSomePacketsToSlowEdges) {
  const Instance instance = adversarial_delay_trap(8);
  EXPECT_EQ(instance.validate(), "");
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  std::size_t via_slow = 0;
  for (const PacketOutcome& outcome : run.outcomes) {
    const ReconfigEdge& edge = instance.topology().edge(outcome.route.edge);
    via_slow += (edge.delay == 4) ? 1 : 0;
  }
  // The shared fast receiver serializes; the impact rule must divert a
  // nontrivial share (but not everything) to the private slow edges.
  EXPECT_GT(via_slow, 0u);
  EXPECT_LT(via_slow, instance.num_packets());
}

TEST(Adversarial, BurstStormValidAndDeliverable) {
  Rng rng(13);
  const Instance instance = adversarial_burst_storm(10, rng);
  EXPECT_EQ(instance.validate(), "");
  const RunResult run = run_alg(instance);
  EXPECT_TRUE(all_delivered(instance, run));
  EXPECT_NEAR(run.total_cost, recompute_cost(instance, run), 1e-9);
}

}  // namespace
}  // namespace rdcn
