// Tests of the ASCII Gantt renderer: glyph placement, windows, receiver
// rows, fixed-route listing, and width clipping.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "net/builders.hpp"
#include "sim/gantt.hpp"

namespace rdcn {
namespace {

TEST(Gantt, PlacesChunksAtTransmitSteps) {
  // One packet, edge delay 3: chunks at steps 1, 2, 3 on transmitter 0.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 3);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  const RunResult run = run_alg(instance);

  const std::string chart = render_gantt(instance, run);
  EXPECT_NE(chart.find("t0\t|000"), std::string::npos) << chart;
}

TEST(Gantt, ReceiverRowsOptional) {
  const Instance instance = figure2_instance_pi();
  const RunResult run = run_alg(instance);
  const std::string without = render_gantt(instance, run);
  EXPECT_EQ(without.find("r0\t"), std::string::npos);
  const std::string with = render_gantt(instance, run, {.show_receivers = true});
  EXPECT_NE(with.find("r0\t"), std::string::npos);
}

TEST(Gantt, ListsFixedRoutedPackets) {
  const Instance instance = figure1_instance();
  Topology g;  // build an all-fixed variant to force a fixed route
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 4);
  Instance fixed_only(std::move(g), {});
  fixed_only.add_packet(1, 1.0, 0, 0);
  const RunResult run = run_alg(fixed_only);
  const std::string chart = render_gantt(fixed_only, run);
  EXPECT_NE(chart.find("fixed p0: 1 .. 5"), std::string::npos) << chart;
  const std::string hidden = render_gantt(fixed_only, run, {.show_fixed = false});
  EXPECT_EQ(hidden.find("fixed p0"), std::string::npos);
}

TEST(Gantt, WindowAndClipping) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  for (int i = 0; i < 10; ++i) instance.add_packet(1, 1.0, 0, 0);
  const RunResult run = run_alg(instance);

  GanttOptions window;
  window.from = 3;
  window.until = 5;
  const std::string chart = render_gantt(instance, run, window);
  EXPECT_NE(chart.find("time 3 .. 5"), std::string::npos);

  GanttOptions clipped;
  clipped.max_width = 4;
  const std::string short_chart = render_gantt(instance, run, clipped);
  EXPECT_NE(short_chart.find("time 1 .. 4"), std::string::npos);
}

TEST(Gantt, Figure2MatchingVisible) {
  // On Pi', step 1 transmits p2 (glyph '1') on t1 and p4 ('3') on t2.
  const Instance instance = figure2_instance_pi_prime();
  const RunResult run = run_alg(instance);
  const std::string chart = render_gantt(instance, run);
  EXPECT_NE(chart.find("t0\t|10."), std::string::npos) << chart;  // p2 then p1
  EXPECT_NE(chart.find("t1\t|32."), std::string::npos) << chart;  // p4 then p3
}

}  // namespace
}  // namespace rdcn
