// Concurrency stress tests (ISSUE 8): the ThreadSanitizer workout the
// sharded parallel engine will have to keep passing. Everything here runs
// under the ordinary suite too, but the CI tsan job (RDCN_SANITIZE=thread,
// ctest -L concurrency) is where these earn their keep: they hammer the
// thread pool's submit/teardown/exception paths under contention, fan
// BatchRunner / StreamRunner / SuiteRunner grids out over many workers,
// and cross-check every parallel result against a sequential baseline --
// both for races TSan flags directly and for the silent kind that only
// shows up as nondeterministic numbers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "run/stream.hpp"
#include "run/suite.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {
namespace {

ScenarioSpec stress_spec(std::size_t repetitions = 6) {
  ScenarioSpec spec;
  spec.name = "concurrency-stress";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.workload.num_packets = 40;
  spec.workload.arrival_rate = 4.0;
  spec.workload.weights = WeightDist::UniformInt;
  spec.repetitions = repetitions;
  // Probe on: every repetition carries a ProbeReport that the aggregation
  // layer merges, so report plumbing is part of the race surface.
  spec.engine.probe.enabled = true;
  return spec;
}

// ------------------------------------------------------------ ThreadPool --

TEST(ConcurrencyStress, ThreadPoolConcurrentSubmitters) {
  // submit() racing from many external threads against the workers'
  // dequeues: the queue, in_flight_ accounting, and both condition
  // variables all see real contention here.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum, s] {
      for (int t = 0; t < kTasksEach; ++t) {
        pool.submit([&sum, s, t] {
          sum.fetch_add(static_cast<std::uint64_t>(s * kTasksEach + t),
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  pool.wait_idle();
  const std::uint64_t n = kSubmitters * kTasksEach;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ConcurrencyStress, ThreadPoolRepeatedTeardownWhileBusy) {
  // Construct, load, and destroy pools in a tight loop without wait_idle:
  // the destructor races stopping_ against workers mid-dequeue. Some tasks
  // are discarded by contract; the ones that did run must be complete
  // (no torn increments), and teardown must never hang or terminate.
  std::atomic<int> ran{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    for (int t = 0; t < 32; ++t) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor joins current tasks and discards the
    // rest of the queue.
  }
  EXPECT_GE(ran.load(), 0);
}

TEST(ConcurrencyStress, ThreadPoolExceptionStorm) {
  // Half the tasks throw; the pool must capture exactly one failure per
  // wait_idle, finish the other half, and stay reusable round after round.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> survived{0};
    for (int t = 0; t < 16; ++t) {
      if (t % 2 == 0) {
        pool.submit([] { throw std::runtime_error("storm"); });
      } else {
        pool.submit([&survived] { survived.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error) << "round " << round;
    EXPECT_EQ(survived.load(), 8) << "round " << round;
    // The failure was collected; the next round starts clean.
    EXPECT_NO_THROW(pool.wait_idle());
  }
}

TEST(ConcurrencyStress, ParallelForManyWaves) {
  ThreadPool pool(4);
  std::vector<std::uint32_t> cells(512, 0);
  for (int wave = 0; wave < 25; ++wave) {
    parallel_for(pool, cells.size(), [&cells](std::size_t i) { ++cells[i]; });
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_EQ(cells[i], 25u) << "cell " << i;
  }
}

// ----------------------------------------------------------- BatchRunner --

TEST(ConcurrencyStress, BatchGridManyThreadsMatchesSequential) {
  // Six policies x six repetitions across eight workers, probe enabled:
  // every repetition runs a full engine in its own task and the merged
  // ProbeReports ride the aggregation. Costs and merged counters must be
  // bit-identical to the sequential baseline -- scheduling must not leak
  // into results.
  const std::vector<PolicyFactory> policies = {
      named_policy("alg"),      named_policy("maxweight"), named_policy("fifo"),
      named_policy("impact"),   named_policy("jsq"),       named_policy("random"),
  };
  BatchRunner batch(8);
  batch.add_grid(stress_spec(), policies);
  const auto parallel = batch.run();
  ASSERT_EQ(parallel.size(), policies.size());

  const ScenarioRunner runner(stress_spec());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const ScenarioResult sequential = runner.run(policies[p]);
    ASSERT_EQ(parallel[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(parallel[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost)
          << policies[p].name << " rep " << i;
      EXPECT_EQ(parallel[p].repetitions[i].makespan, sequential.repetitions[i].makespan)
          << policies[p].name << " rep " << i;
    }
    // Merged probe counters are sums of per-repetition monotone counters,
    // so they are scheduling-independent too.
    ASSERT_TRUE(parallel[p].probe.enabled);
    EXPECT_EQ(parallel[p].probe.counters, sequential.probe.counters)
        << policies[p].name;
  }
}

TEST(ConcurrencyStress, BatchFailureUnderLoadRethrowsAndRecovers) {
  // One poisoned cell among healthy ones, repeatedly, on a wide pool: the
  // exception path (capture, all-or-nothing rethrow, queue clear) runs
  // while sibling repetitions are still executing.
  ScenarioSpec poison = stress_spec(4);
  poison.name = "poisoned";
  poison.make_instance = [](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 3) throw std::runtime_error("poisoned repetition");
    return ScenarioRunner(stress_spec(4)).instance(rep_seed);
  };
  BatchRunner batch(8);
  for (int round = 0; round < 5; ++round) {
    batch.add(stress_spec(4), named_policy("alg"));
    batch.add(poison, named_policy("fifo"));
    batch.add(stress_spec(4), named_policy("maxweight"));
    EXPECT_THROW(batch.run(), std::runtime_error) << "round " << round;
    EXPECT_EQ(batch.cells(), 0u);
  }
  // After five failure rounds the runner still produces correct results.
  batch.add(stress_spec(4), named_policy("alg"));
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  const ScenarioResult expected = ScenarioRunner(stress_spec(4)).run(named_policy("alg"));
  EXPECT_DOUBLE_EQ(results.front().cost.mean(), expected.cost.mean());
}

// ---------------------------------------------------------- StreamRunner --

TEST(ConcurrencyStress, StreamGridManyThreadsMatchesSequential) {
  StreamSpec spec;
  spec.name = "stream-stress";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.traffic.rho = 0.6;
  spec.repetitions = 4;
  spec.warmup_packets = 50;
  spec.measure_packets = 300;
  spec.engine.probe.enabled = true;

  const std::vector<PolicyFactory> policies = {named_policy("alg"),
                                               named_policy("fifo")};
  BatchRunner batch(8);
  batch.add_stream_grid(spec, policies);
  const auto parallel = batch.run_streams();
  ASSERT_EQ(parallel.size(), policies.size());

  const StreamRunner runner(spec);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const StreamResult sequential = runner.run(policies[p]);
    ASSERT_EQ(parallel[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(parallel[p].repetitions[i].served, sequential.repetitions[i].served);
      EXPECT_EQ(parallel[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost)
          << policies[p].name << " rep " << i;
      EXPECT_EQ(parallel[p].repetitions[i].mean_latency,
                sequential.repetitions[i].mean_latency)
          << policies[p].name << " rep " << i;
    }
    EXPECT_EQ(parallel[p].probe.counters, sequential.probe.counters);
  }
}

// ----------------------------------------------------------- SuiteRunner --

TEST(ConcurrencyStress, SuiteRunnerParallelMatchesSingleThread) {
  // The whole declarative path at once: JSON parse, grid expansion, the
  // BatchRunner fan-out, probe merging ("profile": true), and JSON line
  // rendering. Lines are compared metric by metric (wall-clock and phase
  // self-times are measurements, not results, so only their presence is
  // checked).
  const std::string suite_json = R"({
    "suite": "concurrency-suite",
    "mode": "batch",
    "seeds": {"base": 5, "repetitions": 3},
    "policies": ["alg", "fifo"],
    "engines": [{"name": "profiled", "profile": true}],
    "topologies": [
      {"name": "pod", "kind": "two_tier", "racks": 4, "lasers": 2,
       "photodetectors": 2, "density": 0.8, "max_edge_delay": 2},
      {"name": "xbar", "kind": "crossbar", "ports": 4}
    ],
    "workloads": [
      {"name": "uniform", "packets": 40, "rate": 4.0, "skew": "uniform"},
      {"name": "zipf", "packets": 40, "rate": 4.0, "skew": "zipf",
       "zipf_exponent": 1.2}
    ]
  })";
  const SuiteRunner suite(parse_suite(suite_json));
  const std::vector<std::string> wide = suite.run(8);
  const std::vector<std::string> narrow = suite.run(1);
  ASSERT_EQ(wide.size(), narrow.size());
  ASSERT_EQ(wide.size(), suite.cells());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const json::Value a = json::parse(wide[i]);
    const json::Value b = json::parse(narrow[i]);
    for (const auto& [key, value] : a.as_object()) {
      const json::Value* other = b.find(key);
      ASSERT_NE(other, nullptr) << "line " << i << " key " << key;
      if (key == "wall_ms" || key.rfind("phase_", 0) == 0) continue;
      EXPECT_EQ(json::dump(value), json::dump(*other)) << "line " << i << " key " << key;
    }
  }
}

}  // namespace
}  // namespace rdcn
