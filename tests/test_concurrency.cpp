// Concurrency stress tests (ISSUE 8): the ThreadSanitizer workout the
// sharded parallel engine will have to keep passing. Everything here runs
// under the ordinary suite too, but the CI tsan job (RDCN_SANITIZE=thread,
// ctest -L concurrency) is where these earn their keep: they hammer the
// thread pool's submit/teardown/exception paths under contention, fan
// BatchRunner / StreamRunner / SuiteRunner grids out over many workers,
// and cross-check every parallel result against a sequential baseline --
// both for races TSan flags directly and for the silent kind that only
// shows up as nondeterministic numbers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/fault.hpp"

#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "run/stream.hpp"
#include "run/suite.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {
namespace {

ScenarioSpec stress_spec(std::size_t repetitions = 6) {
  ScenarioSpec spec;
  spec.name = "concurrency-stress";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.workload.num_packets = 40;
  spec.workload.arrival_rate = 4.0;
  spec.workload.weights = WeightDist::UniformInt;
  spec.repetitions = repetitions;
  // Probe on: every repetition carries a ProbeReport that the aggregation
  // layer merges, so report plumbing is part of the race surface.
  spec.engine.probe.enabled = true;
  return spec;
}

// ------------------------------------------------------------ ThreadPool --

TEST(ConcurrencyStress, ThreadPoolConcurrentSubmitters) {
  // submit() racing from many external threads against the workers'
  // dequeues: the queue, in_flight_ accounting, and both condition
  // variables all see real contention here.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum, s] {
      for (int t = 0; t < kTasksEach; ++t) {
        pool.submit([&sum, s, t] {
          sum.fetch_add(static_cast<std::uint64_t>(s * kTasksEach + t),
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  pool.wait_idle();
  const std::uint64_t n = kSubmitters * kTasksEach;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ConcurrencyStress, ThreadPoolRepeatedTeardownWhileBusy) {
  // Construct, load, and destroy pools in a tight loop without wait_idle:
  // the destructor races stopping_ against workers mid-dequeue. Some tasks
  // are discarded by contract; the ones that did run must be complete
  // (no torn increments), and teardown must never hang or terminate.
  std::atomic<int> ran{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    for (int t = 0; t < 32; ++t) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor joins current tasks and discards the
    // rest of the queue.
  }
  EXPECT_GE(ran.load(), 0);
}

TEST(ConcurrencyStress, ThreadPoolExceptionStorm) {
  // Half the tasks throw; the pool must capture exactly one failure per
  // wait_idle, finish the other half, and stay reusable round after round.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> survived{0};
    for (int t = 0; t < 16; ++t) {
      if (t % 2 == 0) {
        pool.submit([] { throw std::runtime_error("storm"); });
      } else {
        pool.submit([&survived] { survived.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error) << "round " << round;
    EXPECT_EQ(survived.load(), 8) << "round " << round;
    // The failure was collected; the next round starts clean.
    EXPECT_NO_THROW(pool.wait_idle());
  }
}

TEST(ConcurrencyStress, ParallelForManyWaves) {
  ThreadPool pool(4);
  std::vector<std::uint32_t> cells(512, 0);
  for (int wave = 0; wave < 25; ++wave) {
    parallel_for(pool, cells.size(), [&cells](std::size_t i) { ++cells[i]; });
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_EQ(cells[i], 25u) << "cell " << i;
  }
}

// ----------------------------------------------------------- BatchRunner --

TEST(ConcurrencyStress, BatchGridManyThreadsMatchesSequential) {
  // Six policies x six repetitions across eight workers, probe enabled:
  // every repetition runs a full engine in its own task and the merged
  // ProbeReports ride the aggregation. Costs and merged counters must be
  // bit-identical to the sequential baseline -- scheduling must not leak
  // into results.
  const std::vector<PolicyFactory> policies = {
      named_policy("alg"),      named_policy("maxweight"), named_policy("fifo"),
      named_policy("impact"),   named_policy("jsq"),       named_policy("random"),
  };
  BatchRunner batch(8);
  batch.add_grid(stress_spec(), policies);
  const auto parallel = batch.run();
  ASSERT_EQ(parallel.size(), policies.size());

  const ScenarioRunner runner(stress_spec());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const ScenarioResult sequential = runner.run(policies[p]);
    ASSERT_EQ(parallel[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(parallel[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost)
          << policies[p].name << " rep " << i;
      EXPECT_EQ(parallel[p].repetitions[i].makespan, sequential.repetitions[i].makespan)
          << policies[p].name << " rep " << i;
    }
    // Merged probe counters are sums of per-repetition monotone counters,
    // so they are scheduling-independent too.
    ASSERT_TRUE(parallel[p].probe.enabled);
    EXPECT_EQ(parallel[p].probe.counters, sequential.probe.counters)
        << policies[p].name;
  }
}

TEST(ConcurrencyStress, BatchFailureUnderLoadRethrowsAndRecovers) {
  // One poisoned cell among healthy ones, repeatedly, on a wide pool: the
  // exception path (capture, all-or-nothing rethrow, queue clear) runs
  // while sibling repetitions are still executing.
  ScenarioSpec poison = stress_spec(4);
  poison.name = "poisoned";
  poison.make_instance = [](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 3) throw std::runtime_error("poisoned repetition");
    return ScenarioRunner(stress_spec(4)).instance(rep_seed);
  };
  BatchRunner batch(8);
  for (int round = 0; round < 5; ++round) {
    batch.add(stress_spec(4), named_policy("alg"));
    batch.add(poison, named_policy("fifo"));
    batch.add(stress_spec(4), named_policy("maxweight"));
    EXPECT_THROW(batch.run(), std::runtime_error) << "round " << round;
    EXPECT_EQ(batch.cells(), 0u);
  }
  // After five failure rounds the runner still produces correct results.
  batch.add(stress_spec(4), named_policy("alg"));
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  const ScenarioResult expected = ScenarioRunner(stress_spec(4)).run(named_policy("alg"));
  EXPECT_DOUBLE_EQ(results.front().cost.mean(), expected.cost.mean());
}

// --------------------------------------------- fault tolerance (PR 10) ---

TEST(ConcurrencyStress, IsolateWideFanOutMatchesSequential) {
  // Isolate mode on a wide pool with one poisoned cell per round: the
  // FailureLedger, the per-cell countdown, and the healthy cells' result
  // slots all see contention, and the healthy cells must still come out
  // metric-for-metric identical to sequential runs (probes on).
  ScenarioSpec poison = stress_spec(4);
  poison.name = "poisoned";
  poison.make_instance = [](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 3) throw std::runtime_error("poisoned repetition");
    return ScenarioRunner(stress_spec(4)).instance(rep_seed);
  };
  RunPolicy isolate;
  isolate.failure = FailurePolicy::Isolate;
  const std::vector<PolicyFactory> policies = {
      named_policy("alg"), named_policy("maxweight"), named_policy("fifo"),
      named_policy("jsq")};
  BatchRunner batch(8);
  batch.set_policy(isolate);
  for (int round = 0; round < 3; ++round) {
    batch.add_grid(stress_spec(4), policies);
    batch.add(poison, named_policy("alg"));
    const auto results = batch.run();
    ASSERT_EQ(results.size(), policies.size() + 1) << "round " << round;
    EXPECT_TRUE(results.back().error.failed) << "round " << round;
    EXPECT_EQ(results.back().error.type, "std::runtime_error");
    const ScenarioRunner runner(stress_spec(4));
    for (std::size_t p = 0; p < policies.size(); ++p) {
      ASSERT_FALSE(results[p].error.failed) << policies[p].name;
      const ScenarioResult sequential = runner.run(policies[p]);
      ASSERT_EQ(results[p].repetitions.size(), sequential.repetitions.size());
      for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
        EXPECT_EQ(results[p].repetitions[i].total_cost,
                  sequential.repetitions[i].total_cost)
            << policies[p].name << " rep " << i;
      }
      EXPECT_EQ(results[p].probe.counters, sequential.probe.counters)
          << policies[p].name;
    }
  }
}

TEST(ConcurrencyStress, DeadlineFiresWhileThePoolIsBusy) {
  // The watchdog thread cancels tokens while eight workers are mid-run:
  // the arm/disarm handshake, the token's atomic store, and the engine's
  // step-boundary load all race under TSan here. One cell's fault hook
  // stalls every repetition past the deadline; its siblings must finish
  // healthy and the stalled cell must report CancelledError.
  ScenarioSpec stalled = stress_spec(4);
  stalled.name = "stalled";
  RunPolicy policy;
  policy.failure = FailurePolicy::Isolate;
  // Generous enough that healthy repetitions never trip it, even under
  // TSan's slowdown; the stalled cell's hook outwaits it by construction.
  policy.deadline_ms = 150.0;
  policy.fault_hook = [](const std::string& cell, std::size_t,
                         const CancelToken* cancel) {
    if (cell.find("stalled") == std::string::npos || cancel == nullptr) return;
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!cancel->cancelled() && std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  BatchRunner batch(8);
  batch.set_policy(policy);
  batch.add(stress_spec(4), named_policy("alg"));
  batch.add(stalled, named_policy("fifo"));
  batch.add(stress_spec(4), named_policy("maxweight"));
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[1].error.failed);
  EXPECT_EQ(results[1].error.type, "rdcn::CancelledError");
  EXPECT_FALSE(results[0].error.failed);
  EXPECT_FALSE(results[2].error.failed);
  const ScenarioResult expected =
      ScenarioRunner(stress_spec(4)).run(named_policy("alg"));
  ASSERT_EQ(results[0].repetitions.size(), expected.repetitions.size());
  for (std::size_t i = 0; i < expected.repetitions.size(); ++i) {
    EXPECT_EQ(results[0].repetitions[i].total_cost,
              expected.repetitions[i].total_cost);
  }
}

TEST(ConcurrencyStress, HungCellIsCancelledAndSiblingsDrain) {
  // A hook that hangs until cancellation and then throws (the CLI's
  // "hang" injection): the pool must drain every sibling repetition, the
  // watchdog must reclaim the stuck worker, and repeated rounds must not
  // leak tokens or watchdog state across runs.
  RunPolicy policy;
  policy.failure = FailurePolicy::Isolate;
  policy.deadline_ms = 150.0;
  policy.fault_hook = [](const std::string& cell, std::size_t,
                         const CancelToken* cancel) {
    if (cell.find("hung") == std::string::npos) return;
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cancel != nullptr && !cancel->cancelled() &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw CancelledError("hung cell cancelled");
  };
  ScenarioSpec hung = stress_spec(2);
  hung.name = "hung";
  BatchRunner batch(8);
  batch.set_policy(policy);
  for (int round = 0; round < 3; ++round) {
    batch.add(hung, named_policy("alg"));
    batch.add(stress_spec(2), named_policy("fifo"));
    const auto results = batch.run();
    ASSERT_EQ(results.size(), 2u) << "round " << round;
    ASSERT_TRUE(results[0].error.failed) << "round " << round;
    EXPECT_EQ(results[0].error.type, "rdcn::CancelledError");
    EXPECT_EQ(results[0].error.message, "hung cell cancelled");
    EXPECT_FALSE(results[1].error.failed) << "round " << round;
    EXPECT_EQ(results[1].repetitions.size(), 2u);
  }
}

// ---------------------------------------------------------- StreamRunner --

TEST(ConcurrencyStress, StreamGridManyThreadsMatchesSequential) {
  StreamSpec spec;
  spec.name = "stream-stress";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.traffic.rho = 0.6;
  spec.repetitions = 4;
  spec.warmup_packets = 50;
  spec.measure_packets = 300;
  spec.engine.probe.enabled = true;

  const std::vector<PolicyFactory> policies = {named_policy("alg"),
                                               named_policy("fifo")};
  BatchRunner batch(8);
  batch.add_stream_grid(spec, policies);
  const auto parallel = batch.run_streams();
  ASSERT_EQ(parallel.size(), policies.size());

  const StreamRunner runner(spec);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const StreamResult sequential = runner.run(policies[p]);
    ASSERT_EQ(parallel[p].repetitions.size(), sequential.repetitions.size());
    for (std::size_t i = 0; i < sequential.repetitions.size(); ++i) {
      EXPECT_EQ(parallel[p].repetitions[i].served, sequential.repetitions[i].served);
      EXPECT_EQ(parallel[p].repetitions[i].total_cost,
                sequential.repetitions[i].total_cost)
          << policies[p].name << " rep " << i;
      EXPECT_EQ(parallel[p].repetitions[i].mean_latency,
                sequential.repetitions[i].mean_latency)
          << policies[p].name << " rep " << i;
    }
    EXPECT_EQ(parallel[p].probe.counters, sequential.probe.counters);
  }
}

// ----------------------------------------------------------- SuiteRunner --

TEST(ConcurrencyStress, SuiteRunnerParallelMatchesSingleThread) {
  // The whole declarative path at once: JSON parse, grid expansion, the
  // BatchRunner fan-out, probe merging ("profile": true), and JSON line
  // rendering. Lines are compared metric by metric (wall-clock and phase
  // self-times are measurements, not results, so only their presence is
  // checked).
  const std::string suite_json = R"({
    "suite": "concurrency-suite",
    "mode": "batch",
    "seeds": {"base": 5, "repetitions": 3},
    "policies": ["alg", "fifo"],
    "engines": [{"name": "profiled", "profile": true}],
    "topologies": [
      {"name": "pod", "kind": "two_tier", "racks": 4, "lasers": 2,
       "photodetectors": 2, "density": 0.8, "max_edge_delay": 2},
      {"name": "xbar", "kind": "crossbar", "ports": 4}
    ],
    "workloads": [
      {"name": "uniform", "packets": 40, "rate": 4.0, "skew": "uniform"},
      {"name": "zipf", "packets": 40, "rate": 4.0, "skew": "zipf",
       "zipf_exponent": 1.2}
    ]
  })";
  const SuiteRunner suite(parse_suite(suite_json));
  const std::vector<std::string> wide = suite.run(8);
  const std::vector<std::string> narrow = suite.run(1);
  ASSERT_EQ(wide.size(), narrow.size());
  ASSERT_EQ(wide.size(), suite.cells());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const json::Value a = json::parse(wide[i]);
    const json::Value b = json::parse(narrow[i]);
    for (const auto& [key, value] : a.as_object()) {
      const json::Value* other = b.find(key);
      ASSERT_NE(other, nullptr) << "line " << i << " key " << key;
      if (key == "wall_ms" || key.rfind("phase_", 0) == 0) continue;
      EXPECT_EQ(json::dump(value), json::dump(*other)) << "line " << i << " key " << key;
    }
  }
}

}  // namespace
}  // namespace rdcn
