// Tests of the network model: topology invariants, candidate-edge lookup,
// fixed links, instance validation, serialization round-trips, and the
// parameterized builders.

#include <gtest/gtest.h>

#include <sstream>

#include "net/builders.hpp"
#include "net/instance.hpp"
#include "util/rng.hpp"

namespace rdcn {
namespace {

TEST(Topology, BasicConstruction) {
  Topology g;
  EXPECT_EQ(g.add_sources(2), 0);
  EXPECT_EQ(g.add_destinations(2), 0);
  const NodeIndex t0 = g.add_transmitter(0, 1);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1, 2);
  const EdgeIndex e = g.add_edge(t0, r1, 3);

  EXPECT_EQ(g.num_transmitters(), 2);
  EXPECT_EQ(g.num_receivers(), 2);
  EXPECT_EQ(g.source_of(t1), 1);
  EXPECT_EQ(g.destination_of(r0), 0);
  EXPECT_EQ(g.transmitter_attach_delay(t0), 1);
  EXPECT_EQ(g.receiver_attach_delay(r1), 2);
  EXPECT_EQ(g.total_edge_delay(e), 1 + 3 + 2);
  EXPECT_EQ(g.validate(), "");
}

TEST(Topology, CandidateEdgesFilterBySourceAndDestination) {
  const Instance instance = figure1_instance();
  const Figure1Ids ids = figure1_ids();
  const auto& g = instance.topology();
  EXPECT_EQ(g.candidate_edges(ids.s1, ids.d1), (std::vector<EdgeIndex>{ids.t1r1}));
  EXPECT_EQ(g.candidate_edges(ids.s1, ids.d2), (std::vector<EdgeIndex>{ids.t1r2}));
  EXPECT_EQ(g.candidate_edges(ids.s2, ids.d2), (std::vector<EdgeIndex>{ids.t3r3}));
  EXPECT_EQ(g.candidate_edges(ids.s2, ids.d3), (std::vector<EdgeIndex>{ids.t3r4}));
  EXPECT_TRUE(g.candidate_edges(ids.s1, ids.d3).empty());
}

TEST(Topology, FixedLinkKeepsMinimumDelay) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 9);
  g.add_fixed_link(0, 0, 4);
  g.add_fixed_link(0, 0, 7);
  EXPECT_EQ(g.fixed_link_delay(0, 0), std::optional<Delay>(4));
  EXPECT_EQ(g.fixed_links().size(), 1u);
}

TEST(Topology, RejectsInvalidArguments) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  EXPECT_THROW(g.add_transmitter(5), std::out_of_range);
  EXPECT_THROW(g.add_receiver(-1), std::out_of_range);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  EXPECT_THROW(g.add_edge(t, r, 0), std::invalid_argument);
  EXPECT_THROW(g.add_fixed_link(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_transmitter(0, -1), std::invalid_argument);
}

TEST(Instance, ValidateCatchesBrokenInputs) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);

  {
    Instance instance(g, {});
    instance.add_packet(1, 1.0, 0, 0);
    EXPECT_EQ(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(0, 1.0, 0, 0);  // arrival < 1
    EXPECT_NE(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(1, 0.0, 0, 0);  // weight 0
    EXPECT_NE(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(2, 1.0, 0, 0);
    EXPECT_THROW(instance.add_packet(1, 1.0, 0, 0), std::invalid_argument);  // out of order
  }
}

TEST(Instance, SerializationRoundTrips) {
  const Instance original = figure1_instance();
  const std::string text = original.to_string();
  const Instance loaded = Instance::from_string(text);
  EXPECT_EQ(loaded.validate(), "");
  EXPECT_EQ(loaded.num_packets(), original.num_packets());
  EXPECT_EQ(loaded.topology().num_edges(), original.topology().num_edges());
  EXPECT_EQ(loaded.to_string(), text);  // canonical form is a fixpoint
}

TEST(Instance, SerializationRejectsGarbage) {
  std::istringstream bad("not-an-instance v1\n");
  EXPECT_THROW(Instance::load(bad), std::runtime_error);
}

TEST(Instance, IdealCostOnFigure1) {
  // p1..p4: best path latency 1 each; p5: min(reconfig 1, fixed 4) = 1.
  EXPECT_DOUBLE_EQ(figure1_instance().ideal_cost(), 5.0);
}

TEST(Instance, IntegerWeightDetection) {
  Instance instance = figure1_instance();
  EXPECT_TRUE(instance.has_integer_weights());
  instance.add_packet(5, 1.5, 0, 0);
  EXPECT_FALSE(instance.has_integer_weights());
}

TEST(Builders, TwoTierKeepsPairsRoutable) {
  Rng rng(17);
  TwoTierConfig config;
  config.racks = 5;
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  config.density = 0.3;  // sparse: forces the routability fallback
  const Topology g = build_two_tier(config, rng);
  EXPECT_EQ(g.validate(), "");
  for (NodeIndex s = 0; s < 5; ++s) {
    for (NodeIndex d = 0; d < 5; ++d) {
      if (s == d) continue;
      EXPECT_TRUE(g.routable(s, d)) << s << "->" << d;
    }
  }
}

TEST(Builders, TwoTierHybridAddsAllFixedLinks) {
  Rng rng(18);
  TwoTierConfig config;
  config.racks = 4;
  config.density = 0.0;  // no reconfigurable edges at all
  config.fixed_link_delay = 8;
  const Topology g = build_two_tier(config, rng);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.fixed_links().size(), 4u * 3u);
  EXPECT_TRUE(g.routable(0, 3));
}

TEST(Builders, TwoTierDelaysInRange) {
  Rng rng(19);
  TwoTierConfig config;
  config.racks = 4;
  config.max_edge_delay = 5;
  const Topology g = build_two_tier(config, rng);
  for (const auto& edge : g.edges()) {
    EXPECT_GE(edge.delay, 1);
    EXPECT_LE(edge.delay, 5);
  }
}

TEST(Builders, CrossbarIsCompleteBipartite) {
  const Topology g = build_crossbar(4);
  EXPECT_EQ(g.num_transmitters(), 4);
  EXPECT_EQ(g.num_receivers(), 4);
  EXPECT_EQ(g.num_edges(), 16);
  EXPECT_EQ(g.validate(), "");
  for (const auto& edge : g.edges()) EXPECT_EQ(edge.delay, 1);
  // Port i's transmitter reaches every output.
  EXPECT_EQ(g.candidate_edges(0, 3).size(), 1u);
}

TEST(Builders, Figure2TopologyShape) {
  const Topology g = figure2_topology();
  EXPECT_EQ(g.num_transmitters(), 2);
  EXPECT_EQ(g.num_receivers(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.fixed_links().empty());
}

TEST(Instance, HorizonBoundDominatesArrivalsAndWork) {
  const Instance instance = figure1_instance();
  EXPECT_GE(instance.horizon_bound(), 2 + 5 * 4);  // arrivals + n * max delay
}

}  // namespace
}  // namespace rdcn
