// Tests of the network model: topology invariants, candidate-edge lookup,
// fixed links, instance validation, serialization round-trips, and the
// parameterized builders.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "net/builders.hpp"
#include "net/instance.hpp"
#include "util/rng.hpp"

namespace rdcn {
namespace {

TEST(Topology, BasicConstruction) {
  Topology g;
  EXPECT_EQ(g.add_sources(2), 0);
  EXPECT_EQ(g.add_destinations(2), 0);
  const NodeIndex t0 = g.add_transmitter(0, 1);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1, 2);
  const EdgeIndex e = g.add_edge(t0, r1, 3);

  EXPECT_EQ(g.num_transmitters(), 2);
  EXPECT_EQ(g.num_receivers(), 2);
  EXPECT_EQ(g.source_of(t1), 1);
  EXPECT_EQ(g.destination_of(r0), 0);
  EXPECT_EQ(g.transmitter_attach_delay(t0), 1);
  EXPECT_EQ(g.receiver_attach_delay(r1), 2);
  EXPECT_EQ(g.total_edge_delay(e), 1 + 3 + 2);
  EXPECT_EQ(g.validate(), "");
}

TEST(Topology, CandidateEdgesFilterBySourceAndDestination) {
  const Instance instance = figure1_instance();
  const Figure1Ids ids = figure1_ids();
  const auto& g = instance.topology();
  EXPECT_EQ(g.candidate_edges(ids.s1, ids.d1), (std::vector<EdgeIndex>{ids.t1r1}));
  EXPECT_EQ(g.candidate_edges(ids.s1, ids.d2), (std::vector<EdgeIndex>{ids.t1r2}));
  EXPECT_EQ(g.candidate_edges(ids.s2, ids.d2), (std::vector<EdgeIndex>{ids.t3r3}));
  EXPECT_EQ(g.candidate_edges(ids.s2, ids.d3), (std::vector<EdgeIndex>{ids.t3r4}));
  EXPECT_TRUE(g.candidate_edges(ids.s1, ids.d3).empty());
}

TEST(Topology, FixedLinkKeepsMinimumDelay) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  g.add_fixed_link(0, 0, 9);
  g.add_fixed_link(0, 0, 4);
  g.add_fixed_link(0, 0, 7);
  EXPECT_EQ(g.fixed_link_delay(0, 0), std::optional<Delay>(4));
  EXPECT_EQ(g.fixed_links().size(), 1u);
}

TEST(Topology, RejectsInvalidArguments) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  EXPECT_THROW(g.add_transmitter(5), std::out_of_range);
  EXPECT_THROW(g.add_receiver(-1), std::out_of_range);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  EXPECT_THROW(g.add_edge(t, r, 0), std::invalid_argument);
  EXPECT_THROW(g.add_fixed_link(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_transmitter(0, -1), std::invalid_argument);
}

TEST(Instance, ValidateCatchesBrokenInputs) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);

  {
    Instance instance(g, {});
    instance.add_packet(1, 1.0, 0, 0);
    EXPECT_EQ(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(0, 1.0, 0, 0);  // arrival < 1
    EXPECT_NE(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(1, 0.0, 0, 0);  // weight 0
    EXPECT_NE(instance.validate(), "");
  }
  {
    Instance instance(g, {});
    instance.add_packet(2, 1.0, 0, 0);
    EXPECT_THROW(instance.add_packet(1, 1.0, 0, 0), std::invalid_argument);  // out of order
  }
}

TEST(Instance, SerializationRoundTrips) {
  const Instance original = figure1_instance();
  const std::string text = original.to_string();
  const Instance loaded = Instance::from_string(text);
  EXPECT_EQ(loaded.validate(), "");
  EXPECT_EQ(loaded.num_packets(), original.num_packets());
  EXPECT_EQ(loaded.topology().num_edges(), original.topology().num_edges());
  EXPECT_EQ(loaded.to_string(), text);  // canonical form is a fixpoint
}

TEST(Instance, SerializationRejectsGarbage) {
  std::istringstream bad("not-an-instance v1\n");
  EXPECT_THROW(Instance::load(bad), std::runtime_error);
}

TEST(Instance, IdealCostOnFigure1) {
  // p1..p4: best path latency 1 each; p5: min(reconfig 1, fixed 4) = 1.
  EXPECT_DOUBLE_EQ(figure1_instance().ideal_cost(), 5.0);
}

TEST(Instance, IntegerWeightDetection) {
  Instance instance = figure1_instance();
  EXPECT_TRUE(instance.has_integer_weights());
  instance.add_packet(5, 1.5, 0, 0);
  EXPECT_FALSE(instance.has_integer_weights());
}

TEST(Builders, TwoTierKeepsPairsRoutable) {
  Rng rng(17);
  TwoTierConfig config;
  config.racks = 5;
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  config.density = 0.3;  // sparse: forces the routability fallback
  const Topology g = build_two_tier(config, rng);
  EXPECT_EQ(g.validate(), "");
  for (NodeIndex s = 0; s < 5; ++s) {
    for (NodeIndex d = 0; d < 5; ++d) {
      if (s == d) continue;
      EXPECT_TRUE(g.routable(s, d)) << s << "->" << d;
    }
  }
}

TEST(Builders, TwoTierHybridAddsAllFixedLinks) {
  Rng rng(18);
  TwoTierConfig config;
  config.racks = 4;
  config.density = 0.0;  // no reconfigurable edges at all
  config.fixed_link_delay = 8;
  const Topology g = build_two_tier(config, rng);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.fixed_links().size(), 4u * 3u);
  EXPECT_TRUE(g.routable(0, 3));
}

TEST(Builders, TwoTierDelaysInRange) {
  Rng rng(19);
  TwoTierConfig config;
  config.racks = 4;
  config.max_edge_delay = 5;
  const Topology g = build_two_tier(config, rng);
  for (const auto& edge : g.edges()) {
    EXPECT_GE(edge.delay, 1);
    EXPECT_LE(edge.delay, 5);
  }
}

TEST(Builders, CrossbarIsCompleteBipartite) {
  const Topology g = build_crossbar(4);
  EXPECT_EQ(g.num_transmitters(), 4);
  EXPECT_EQ(g.num_receivers(), 4);
  EXPECT_EQ(g.num_edges(), 16);
  EXPECT_EQ(g.validate(), "");
  for (const auto& edge : g.edges()) EXPECT_EQ(edge.delay, 1);
  // Port i's transmitter reaches every output.
  EXPECT_EQ(g.candidate_edges(0, 3).size(), 1u);
}

TEST(Builders, Figure2TopologyShape) {
  const Topology g = figure2_topology();
  EXPECT_EQ(g.num_transmitters(), 2);
  EXPECT_EQ(g.num_receivers(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.fixed_links().empty());
}

TEST(Instance, HorizonBoundDominatesArrivalsAndWork) {
  const Instance instance = figure1_instance();
  EXPECT_GE(instance.horizon_bound(), 2 + 5 * 4);  // arrivals + n * max delay
}

// --- topology zoo -----------------------------------------------------------

namespace zoo {

/// Canonical edge-list fingerprint: (transmitter, receiver, delay) triples
/// in construction order, plus the fixed links.
std::vector<std::tuple<NodeIndex, NodeIndex, Delay>> edge_list(const Topology& g) {
  std::vector<std::tuple<NodeIndex, NodeIndex, Delay>> list;
  for (const ReconfigEdge& edge : g.edges()) {
    list.emplace_back(edge.transmitter, edge.receiver, edge.delay);
  }
  for (const FixedLink& link : g.fixed_links()) {
    list.emplace_back(-1 - link.source, -1 - link.destination, link.delay);
  }
  return list;
}

std::vector<std::size_t> rack_out_degrees(const Topology& g) {
  std::vector<std::size_t> degrees(static_cast<std::size_t>(g.num_sources()), 0);
  for (const ReconfigEdge& edge : g.edges()) {
    ++degrees[static_cast<std::size_t>(g.source_of(edge.transmitter))];
  }
  return degrees;
}

std::vector<std::size_t> rack_in_degrees(const Topology& g) {
  std::vector<std::size_t> degrees(static_cast<std::size_t>(g.num_destinations()), 0);
  for (const ReconfigEdge& edge : g.edges()) {
    ++degrees[static_cast<std::size_t>(g.destination_of(edge.receiver))];
  }
  return degrees;
}

}  // namespace zoo

TEST(Oversubscribed, PortAsymmetryAndDelayClasses) {
  OversubscribedConfig config;
  config.racks = 6;
  config.hot_racks = 2;
  config.hot_lasers = 4;
  config.hot_photodetectors = 2;
  config.cold_lasers = 1;
  config.cold_photodetectors = 1;
  config.density = 0.8;
  config.fast_delay = 1;
  config.slow_delay = 5;
  config.slow_fraction = 0.5;
  Rng rng(23);
  const Topology g = build_oversubscribed(config, rng);
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.num_transmitters(), 2 * 4 + 4 * 1);
  EXPECT_EQ(g.num_receivers(), 2 * 2 + 4 * 1);
  // Every edge belongs to exactly one delay class.
  for (const ReconfigEdge& edge : g.edges()) {
    EXPECT_TRUE(edge.delay == 1 || edge.delay == 5) << edge.delay;
  }
}

TEST(Oversubscribed, FixedLayerScaledByOversubscription) {
  OversubscribedConfig config;
  config.racks = 4;
  config.fixed_base_delay = 3;
  config.oversubscription = 4.0;
  Rng rng(24);
  const Topology g = build_oversubscribed(config, rng);
  ASSERT_EQ(g.fixed_links().size(), 4u * 3u);
  for (const FixedLink& link : g.fixed_links()) EXPECT_EQ(link.delay, 12);
  // Hybrid layer present: every ordered rack pair is routable.
  for (NodeIndex s = 0; s < 4; ++s) {
    for (NodeIndex d = 0; d < 4; ++d) {
      if (s != d) {
        EXPECT_TRUE(g.routable(s, d)) << s << "->" << d;
      }
    }
  }
}

TEST(Oversubscribed, RoutablePatchWithoutFixedLayer) {
  OversubscribedConfig config;
  config.racks = 5;
  config.density = 0.05;  // sparse: forces the patch path
  config.fixed_base_delay = 0;
  Rng rng(25);
  const Topology g = build_oversubscribed(config, rng);
  EXPECT_TRUE(g.fixed_links().empty());
  for (NodeIndex s = 0; s < 5; ++s) {
    for (NodeIndex d = 0; d < 5; ++d) {
      if (s != d) {
        EXPECT_TRUE(g.routable(s, d)) << s << "->" << d;
      }
    }
  }
}

TEST(Oversubscribed, RejectsInvalidConfigs) {
  Rng rng(1);
  OversubscribedConfig config;
  config.racks = 1;
  EXPECT_THROW(build_oversubscribed(config, rng), std::invalid_argument);
  config = {};
  config.hot_racks = config.racks + 1;
  EXPECT_THROW(build_oversubscribed(config, rng), std::invalid_argument);
  config = {};
  config.slow_delay = 0;
  EXPECT_THROW(build_oversubscribed(config, rng), std::invalid_argument);
  config = {};
  config.oversubscription = 0.5;
  EXPECT_THROW(build_oversubscribed(config, rng), std::invalid_argument);
}

TEST(Expander, ExactRackRegularity) {
  ExpanderConfig config;
  config.racks = 9;
  config.degree = 3;
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  config.fixed_link_delay = 0;
  Rng rng(31);
  const Topology g = build_expander(config, rng);
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.num_edges(), 9 * 3);
  // d-regular at rack level: every rack sends and receives exactly d edges.
  for (const std::size_t degree : zoo::rack_out_degrees(g)) EXPECT_EQ(degree, 3u);
  for (const std::size_t degree : zoo::rack_in_degrees(g)) EXPECT_EQ(degree, 3u);
  // Derangements: no self-rack edge.
  for (const ReconfigEdge& edge : g.edges()) {
    EXPECT_NE(g.source_of(edge.transmitter), g.destination_of(edge.receiver));
  }
}

TEST(Expander, HybridFallbackGuaranteesRoutability) {
  ExpanderConfig config;
  config.racks = 8;
  config.degree = 2;
  config.fixed_link_delay = 8;
  Rng rng(32);
  const Topology g = build_expander(config, rng);
  for (NodeIndex s = 0; s < 8; ++s) {
    for (NodeIndex d = 0; d < 8; ++d) {
      if (s != d) {
        EXPECT_TRUE(g.routable(s, d)) << s << "->" << d;
      }
    }
  }
}

TEST(Expander, WithoutFixedLayerRoutabilityEqualsWiring) {
  // Pure expander (no hybrid fallback): a pair is routable exactly when a
  // permutation wired it, and every rack reaches between 1 and degree
  // distinct destination racks (permutations may collide on a target).
  ExpanderConfig config;
  config.racks = 5;
  config.degree = 4;
  config.fixed_link_delay = 0;
  Rng rng(33);
  const Topology g = build_expander(config, rng);
  for (NodeIndex s = 0; s < 5; ++s) {
    std::size_t reachable = 0;
    for (NodeIndex d = 0; d < 5; ++d) {
      if (s == d) continue;
      EXPECT_EQ(g.routable(s, d), !g.candidate_edges(s, d).empty());
      if (g.routable(s, d)) ++reachable;
    }
    EXPECT_GE(reachable, 1u);
    EXPECT_LE(reachable, 4u);
  }
}

TEST(Expander, RejectsInvalidConfigs) {
  Rng rng(1);
  ExpanderConfig config;
  config.degree = 0;
  EXPECT_THROW(build_expander(config, rng), std::invalid_argument);
  config = {};
  config.racks = 4;
  config.degree = 4;  // > racks - 1
  EXPECT_THROW(build_expander(config, rng), std::invalid_argument);
  config = {};
  config.max_edge_delay = 0;
  EXPECT_THROW(build_expander(config, rng), std::invalid_argument);
}

TEST(Rotor, FullCoverageWiresEveryOrderedPairOnce) {
  RotorConfig config;
  config.racks = 6;
  config.ports_per_rack = 2;
  config.num_matchings = 0;  // racks - 1
  const Topology g = build_rotor(config);
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(rotor_matchings(config), 5);
  EXPECT_EQ(g.num_edges(), 6 * 5);
  std::set<std::pair<NodeIndex, NodeIndex>> wired;
  for (const ReconfigEdge& edge : g.edges()) {
    const auto pair = std::make_pair(g.source_of(edge.transmitter),
                                     g.destination_of(edge.receiver));
    EXPECT_NE(pair.first, pair.second);
    EXPECT_TRUE(wired.insert(pair).second) << "duplicate rack pair";
  }
  EXPECT_EQ(wired.size(), 6u * 5u);
}

TEST(Rotor, SparseMatchingsCoverExactlyTheRoundRobinOffsets) {
  RotorConfig config;
  config.racks = 7;
  config.num_matchings = 3;
  const Topology g = build_rotor(config);
  EXPECT_EQ(g.num_edges(), 7 * 3);
  for (NodeIndex s = 0; s < 7; ++s) {
    for (NodeIndex d = 0; d < 7; ++d) {
      if (s == d) continue;
      const NodeIndex offset = (d - s + 7) % 7;
      EXPECT_EQ(g.routable(s, d), offset <= 3) << s << "->" << d;
    }
  }
}

TEST(Rotor, DeterministicWithoutRandomness) {
  RotorConfig config;
  config.racks = 5;
  config.ports_per_rack = 2;
  EXPECT_EQ(zoo::edge_list(build_rotor(config)), zoo::edge_list(build_rotor(config)));
}

TEST(Rotor, RejectsInvalidConfigs) {
  RotorConfig config;
  config.racks = 1;
  EXPECT_THROW(build_rotor(config), std::invalid_argument);
  config = {};
  config.racks = 4;
  config.num_matchings = 4;  // > racks - 1
  EXPECT_THROW(build_rotor(config), std::invalid_argument);
  config = {};
  config.ports_per_rack = 0;
  EXPECT_THROW(build_rotor(config), std::invalid_argument);
}

}  // namespace
}  // namespace rdcn
