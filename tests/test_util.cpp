// Tests for the utility substrate: RNG determinism and distribution
// sanity, summary statistics, table rendering, thread pool, and exact
// rational arithmetic.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/rational.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {
namespace {

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, DoublesInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(5);
  for (const double mean : {0.5, 3.0, 50.0}) {
    double total = 0.0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) total += static_cast<double>(rng.next_poisson(mean));
    EXPECT_NEAR(total / samples, mean, mean * 0.1 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double total = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) total += rng.next_exponential(2.0);
  EXPECT_NEAR(total / samples, 0.5, 0.03);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.next_pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng fork_a = parent.fork(0);
  Rng fork_b = parent.fork(1);
  Rng fork_a_again = Rng(99).fork(0);
  EXPECT_EQ(fork_a.next_u64(), fork_a_again.next_u64());
  EXPECT_NE(fork_a.next_u64(), fork_b.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  Rng rng(13);
  ZipfSampler zipf(100, 1.5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 10);  // rank 0 carries a large share
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(14);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

// ----------------------------------------------------------------- stats --

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
}

TEST(Summary, EmptyThrowsOnPercentile) {
  Summary s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(GeometricMean, MatchesHandValue) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

// ----------------------------------------------------------------- table --

TEST(Table, AsciiAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("| name   | value |"), std::string::npos);
  EXPECT_NE(ascii.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a", "b"});
  table.add_row({"has,comma", "has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtFormats) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(static_cast<std::int64_t>(-7)), "-7");
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ThreadPool pool(4);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&counter](std::size_t) { ++counter; });
  parallel_for(pool, 5, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 15);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

// -------------------------------------------------------------- rational --

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -4);
  EXPECT_EQ(r.numerator(), -3);
  EXPECT_EQ(r.denominator(), 2);
  EXPECT_EQ(Rational(0, 5), Rational(0));
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, ThrowsOnZeroDenominatorAndDivZero) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, DetectsOverflow) {
  const Rational huge(INT64_MAX, 1);
  EXPECT_THROW(huge + huge, RationalOverflow);
  EXPECT_THROW(huge * Rational(2), RationalOverflow);
}

TEST(Rational, ExactAccumulationOfChunks) {
  // Sum of 7 chunks of weight 3/7 equals exactly 3 -- the property the
  // exact charging audit relies on.
  Rational total(0);
  for (int i = 0; i < 7; ++i) total += Rational(3, 7);
  EXPECT_EQ(total, Rational(3));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

// -------------------------------------------------------- log histogram --

TEST(LatencyHistogram, ExactRegionBucketsAreSingletons) {
  // With sub_bucket_bits = 5 every value below 2 * 32 = 64 has its own
  // bucket: [v, v].
  for (std::int64_t v : {0, 1, 17, 63}) {
    const std::size_t index = LatencyHistogram::bucket_index(v, 5);
    EXPECT_EQ(index, static_cast<std::size_t>(v));
    const auto [lower, upper] = LatencyHistogram::bucket_range(index, 5);
    EXPECT_EQ(lower, v);
    EXPECT_EQ(upper, v);
  }
}

TEST(LatencyHistogram, BucketBoundariesTileWithoutGaps) {
  // Consecutive buckets cover adjacent, non-overlapping ranges, and every
  // value maps into the bucket whose range contains it.
  for (std::size_t index = 0; index < 300; ++index) {
    const auto [lower, upper] = LatencyHistogram::bucket_range(index, 5);
    EXPECT_LE(lower, upper);
    if (index > 0) {
      EXPECT_EQ(lower, LatencyHistogram::bucket_range(index - 1, 5).second + 1);
    }
    EXPECT_EQ(LatencyHistogram::bucket_index(lower, 5), index);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper, 5), index);
  }
}

TEST(LatencyHistogram, RelativeQuantizationErrorIsBounded) {
  // Octave sub-buckets bound the error by 2^-bits of the true value.
  for (std::int64_t v : {64, 100, 1000, 123456, 99999999}) {
    const auto [lower, upper] = LatencyHistogram::bucket_range(
        LatencyHistogram::bucket_index(v, 5), 5);
    EXPECT_LE(lower, v);
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - lower),
              static_cast<double>(v) / 32.0 + 1.0);
  }
}

TEST(LatencyHistogram, SmallSamplePercentilesAreExact) {
  // Values inside the exact region: nearest-rank percentiles equal the
  // exact order statistics.
  LatencyHistogram histogram;
  for (std::int64_t v : {5, 1, 9, 3, 7}) histogram.add(v);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.min(), 1);
  EXPECT_EQ(histogram.max(), 9);
  EXPECT_DOUBLE_EQ(histogram.mean(), 5.0);
  EXPECT_EQ(histogram.percentile(0.0), 1);   // ceil clamps to rank 1
  EXPECT_EQ(histogram.percentile(20.0), 1);  // rank 1
  EXPECT_EQ(histogram.percentile(40.0), 3);  // rank 2
  EXPECT_EQ(histogram.p50(), 5);             // rank 3
  EXPECT_EQ(histogram.percentile(80.0), 7);  // rank 4
  EXPECT_EQ(histogram.percentile(100.0), 9); // rank 5
  EXPECT_EQ(histogram.p999(), 9);
}

TEST(LatencyHistogram, PercentileClampsToObservedMax) {
  LatencyHistogram histogram;
  histogram.add(1000);  // bucket upper bound exceeds the sample
  EXPECT_EQ(histogram.p999(), 1000);
}

TEST(LatencyHistogram, LowQuantilesNeverExceedTheMinimum) {
  // Regression: with coarse buckets, q = 0 used to answer with the first
  // bucket's UPPER bound -- exceeding every recorded sample in it. Bits 0
  // puts 5 into bucket [4, 7]; alongside 1000, p0 must still be exactly 5.
  LatencyHistogram histogram(0);
  histogram.add(5);
  histogram.add(1000);
  EXPECT_EQ(histogram.percentile(0.0), 5);
  EXPECT_EQ(histogram.min(), 5);
  EXPECT_EQ(histogram.percentile(100.0), 1000);
}

TEST(LatencyHistogram, SingleSamplePercentilesAreTheSample) {
  for (const std::int64_t sample :
       {std::int64_t{0}, std::int64_t{6}, std::int64_t{777}, std::int64_t{1} << 33}) {
    LatencyHistogram histogram(2);
    histogram.add(sample);
    for (const double q : {0.0, 17.0, 50.0, 99.9, 100.0}) {
      EXPECT_EQ(histogram.percentile(q), sample) << "q=" << q << " sample=" << sample;
    }
  }
}

TEST(LatencyHistogram, CrossOctaveQuantilesStayInsideTheSampleRange) {
  // Samples spanning several octaves at every sub-bucket resolution: each
  // quantile must land in [min, max] -- the quantized answer may round up
  // within a bucket, never past the observed extremes.
  for (const int bits : {0, 2, 5}) {
    LatencyHistogram histogram(bits);
    for (const std::int64_t v : {3, 17, 150, 4097, 70000}) histogram.add(v);
    for (const double q : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      const std::int64_t answer = histogram.percentile(q);
      EXPECT_GE(answer, histogram.min()) << "bits=" << bits << " q=" << q;
      EXPECT_LE(answer, histogram.max()) << "bits=" << bits << " q=" << q;
    }
    EXPECT_EQ(histogram.percentile(0.0), 3) << "bits=" << bits;
    EXPECT_EQ(histogram.percentile(100.0), 70000) << "bits=" << bits;
  }
}

TEST(LatencyHistogram, MergeEqualsCombinedStream) {
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(100000));
    ((i % 2) ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {1.0, 50.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << q;
  }
  // Merging an empty histogram is a no-op.
  const std::uint64_t before = a.count();
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.count(), before);
}

TEST(LatencyHistogram, MergeRejectsMismatchedLayouts) {
  LatencyHistogram a(5), b(6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogram, NegativesClampAndEmptyThrows) {
  LatencyHistogram histogram;
  EXPECT_THROW(histogram.percentile(50.0), std::logic_error);
  histogram.add(-5);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.p50(), 0);
}

TEST(LatencyHistogram, BoundedMemoryForHugeValues) {
  LatencyHistogram histogram;
  for (std::int64_t v = 1; v < (std::int64_t{1} << 40); v *= 3) histogram.add(v);
  // ~40 octaves x 32 sub-buckets tops out in the low thousands of buckets.
  EXPECT_LT(histogram.num_buckets(), 2500u);
}

}  // namespace
}  // namespace rdcn
