// Tests of the declarative suite subsystem (run/suite.hpp) and the
// topology-zoo integration behind it: the strict JSON layer, parse-error
// quality (distinct, path-qualified, actionable), the normalized-form
// golden round-trip, grid expansion, runner output, and property tests of
// make_topology across the full extended TopologySpec grid.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "run/random.hpp"
#include "run/stream.hpp"
#include "run/suite.hpp"
#include "util/json.hpp"
#include "workload/generator.hpp"

namespace rdcn {
namespace {

// --- json utility -----------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const json::Value value = json::parse(
      R"({"a": 1, "b": -2.5, "c": true, "d": null, "e": "x\n\"y\"", "f": [1, 2]})");
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.find("a")->as_integer(), 1);
  EXPECT_TRUE(value.find("a")->is_integer());
  EXPECT_DOUBLE_EQ(value.find("b")->as_number(), -2.5);
  EXPECT_FALSE(value.find("b")->is_integer());
  EXPECT_TRUE(value.find("c")->as_bool());
  EXPECT_TRUE(value.find("d")->is_null());
  EXPECT_EQ(value.find("e")->as_string(), "x\n\"y\"");
  EXPECT_EQ(value.find("f")->as_array().size(), 2u);
  EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(Json, DumpParsesBackToItself) {
  const std::string text =
      R"({"name":"zoo","values":[1,2.5,true,null,"s"],"nested":{"k":-7}})";
  const json::Value value = json::parse(text);
  EXPECT_EQ(json::dump(value), text);
  // Pretty form reparses to the same compact form.
  EXPECT_EQ(json::dump(json::parse(json::dump(value, 2))), text);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse("{"), json::ParseError);
  EXPECT_THROW(json::parse("[1,]"), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1,}"), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\" 1}"), json::ParseError);
  EXPECT_THROW(json::parse("01"), json::ParseError);
  EXPECT_THROW(json::parse("nul"), json::ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), json::ParseError);
  EXPECT_THROW(json::parse("{} trailing"), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1, \"a\": 2}"), json::ParseError);  // duplicate key
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected ParseError";
  } catch (const json::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos);
  }
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(json::dump(json::Value(std::nan(""))), "null");
  EXPECT_EQ(json::dump(json::Value(1.0 / 0.0)), "null");
}

TEST(Json, DoublesRoundTripBitExactAndShortest) {
  for (const double value : {0.1, 1.0 / 3.0, 0.30000000000000004, 6.02214076e23}) {
    const std::string text = json::dump(json::Value(value));
    EXPECT_EQ(json::parse(text).as_number(), value) << text;
  }
  EXPECT_EQ(json::dump(json::Value(0.1)), "0.1");  // shortest form, not %.17g
}

// --- suite parsing: positive paths ------------------------------------------

const char* kMinimalBatch = R"({
  "suite": "mini",
  "policies": ["alg"],
  "topologies": [{"kind": "crossbar", "ports": 4}],
  "workloads": [{"packets": 10, "rate": 2.0}]
})";

const char* kZooStream = R"({
  "suite": "zoo-stream",
  "mode": "stream",
  "seeds": {"base": 5, "repetitions": 2},
  "policies": ["alg", "fifo"],
  "engines": [{"name": "fast", "speedup": 2}],
  "topologies": [
    {"name": "rot", "kind": "rotor", "racks": 5, "ports": 2},
    {"name": "exp", "kind": "expander", "racks": 6, "degree": 2,
     "fixed_link_delay": 0}
  ],
  "traffic": [
    {"name": "p6", "process": "poisson", "rho": 0.6},
    {"name": "oo", "process": "onoff", "rho": 0.9, "on_stay": 0.85}
  ],
  "stream": {"warmup": 50, "measure": 400, "window": 64, "step_cap_factor": 3.0}
})";

TEST(SuiteParse, MinimalBatchDefaults) {
  const SuiteSpec suite = parse_suite(kMinimalBatch);
  EXPECT_EQ(suite.name, "mini");
  EXPECT_EQ(suite.mode, SuiteSpec::Mode::Batch);
  EXPECT_EQ(suite.base_seed, 1u);
  EXPECT_EQ(suite.repetitions, 3u);
  ASSERT_EQ(suite.engines.size(), 1u);  // default engine materialized
  EXPECT_EQ(suite.engines[0].label, "s1c1r0");
  ASSERT_EQ(suite.topologies.size(), 1u);
  EXPECT_EQ(suite.topologies[0].label, "crossbar");  // label defaults to kind
  EXPECT_EQ(suite.topologies[0].spec.kind, TopologySpec::Kind::Crossbar);
  EXPECT_EQ(suite.topologies[0].spec.crossbar_ports, 4);
  ASSERT_EQ(suite.workloads.size(), 1u);
  EXPECT_EQ(suite.workloads[0].config.num_packets, 10u);
}

TEST(SuiteParse, StreamSuiteFullGrid) {
  const SuiteSpec suite = parse_suite(kZooStream);
  EXPECT_EQ(suite.mode, SuiteSpec::Mode::Stream);
  EXPECT_EQ(suite.base_seed, 5u);
  EXPECT_EQ(suite.warmup_packets, 50u);
  EXPECT_EQ(suite.measure_packets, 400u);
  ASSERT_EQ(suite.traffic.size(), 2u);
  EXPECT_EQ(suite.traffic[1].config.process, ArrivalProcess::OnOff);
  EXPECT_DOUBLE_EQ(suite.traffic[1].config.on_stay, 0.85);

  const std::vector<StreamSpec> grid = suite_stream_grid(suite);
  ASSERT_EQ(grid.size(), 2u * 2u * 1u);
  EXPECT_EQ(grid[0].name, "zoo-stream/rot/p6/fast");
  // The engine's speedup propagates into the traffic calibration.
  EXPECT_EQ(grid[0].traffic.speedup_rounds, 2);
  EXPECT_EQ(grid[0].engine.speedup_rounds, 2);
  EXPECT_EQ(grid[3].name, "zoo-stream/exp/oo/fast");
}

TEST(SuiteParse, ProfileKeyEnablesTheEngineProbe) {
  // ISSUE 7: the "profile" engine key switches on the probe (aggregates
  // only; the event ring stays with rdcn_cli profile) and survives the
  // normalize -> reparse round trip like every other engine key.
  const SuiteSpec suite = parse_suite(R"({
    "suite": "probed",
    "policies": ["alg"],
    "engines": [{"profile": true}],
    "topologies": [{"kind": "crossbar", "ports": 4}],
    "workloads": [{"packets": 10, "rate": 2.0}]
  })");
  ASSERT_EQ(suite.engines.size(), 1u);
  EXPECT_TRUE(suite.engines[0].options.probe.enabled);
  EXPECT_EQ(suite.engines[0].label, "s1c1r0-profile");
  const std::string normalized = suite_to_json(suite);
  EXPECT_NE(normalized.find("\"profile\": true"), std::string::npos) << normalized;
  const SuiteSpec reparsed = parse_suite(normalized);
  ASSERT_EQ(reparsed.engines.size(), 1u);
  EXPECT_TRUE(reparsed.engines[0].options.probe.enabled);
  EXPECT_EQ(suite_to_json(reparsed), normalized);
}

const char* kStagedStream = R"({
  "suite": "staged",
  "mode": "stream",
  "policies": ["alg"],
  "topologies": [{"kind": "two_tier", "racks": 5}],
  "traffic": [{"rho": 0.6}],
  "stream": {"warmup": 50, "measure": 400},
  "stages": [
    {"duration": 60},
    {"duration": 60, "kill_edges": [1, 2], "kill_racks": [0],
     "dead": "requeue", "rho": 0.4, "speedup": 2},
    {"duration": 0, "restore_edges": [1, 2], "restore_racks": [0]}
  ]
})";

TEST(SuiteParse, StagesParseIntoEveryStreamCell) {
  const SuiteSpec suite = parse_suite(kStagedStream);
  ASSERT_EQ(suite.stages.size(), 3u);
  EXPECT_EQ(suite.stages[0].duration, 60);
  EXPECT_DOUBLE_EQ(suite.stages[0].rho, -1.0);  // inherit
  EXPECT_TRUE(suite.stages[0].mutation.is_noop());
  EXPECT_EQ(suite.stages[1].mutation.kill_edges, (std::vector<EdgeIndex>{1, 2}));
  EXPECT_EQ(suite.stages[1].mutation.kill_racks, (std::vector<NodeIndex>{0}));
  EXPECT_EQ(suite.stages[1].mutation.dead_policy, DeadPolicy::Requeue);
  EXPECT_EQ(suite.stages[1].mutation.speedup_rounds, 2);
  EXPECT_DOUBLE_EQ(suite.stages[1].rho, 0.4);
  EXPECT_EQ(suite.stages[2].duration, 0);
  EXPECT_EQ(suite.stages[2].mutation.restore_edges, (std::vector<EdgeIndex>{1, 2}));
  // The schedule is copied into every expanded grid cell.
  const std::vector<StreamSpec> grid = suite_stream_grid(suite);
  ASSERT_EQ(grid.size(), 1u);
  ASSERT_EQ(grid[0].stages.size(), 3u);
  EXPECT_EQ(grid[0].stages[1].mutation.kill_edges.size(), 2u);
}

TEST(SuiteParse, StandaloneStagesDocumentMatchesTheSuiteKey) {
  const std::vector<StageSpec> stages = parse_stages_json(R"([
    {"duration": 10},
    {"duration": 0, "kill_edges": [0], "dead": "drop"}
  ])");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[1].mutation.kill_edges, (std::vector<EdgeIndex>{0}));
  EXPECT_EQ(stages[1].mutation.dead_policy, DeadPolicy::Drop);
  EXPECT_THROW(load_stages_file("/nonexistent/stages.json"), SuiteError);
}

TEST(SuiteParse, GoldenRoundTripIsAFixpoint) {
  for (const char* text : {kMinimalBatch, kZooStream, kStagedStream}) {
    const SuiteSpec suite = parse_suite(text);
    const std::string normalized = suite_to_json(suite);
    const SuiteSpec reparsed = parse_suite(normalized);
    EXPECT_EQ(suite_to_json(reparsed), normalized);
    // The round trip preserves the expanded grid cell for cell.
    if (suite.mode == SuiteSpec::Mode::Batch) {
      const auto a = suite_batch_grid(suite);
      const auto b = suite_batch_grid(reparsed);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].name, b[i].name);
    }
  }
}

// --- suite parsing: negative paths ------------------------------------------

/// Expects parse_suite(text) to throw a SuiteError whose path equals
/// `path` and whose message mentions `needle`.
void expect_suite_error(const std::string& text, const std::string& path,
                        const std::string& needle) {
  try {
    parse_suite(text);
    FAIL() << "expected SuiteError(" << path << ")";
  } catch (const SuiteError& error) {
    EXPECT_EQ(error.path(), path) << error.what();
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message: " << error.what() << "\nwanted: " << needle;
  }
}

TEST(SuiteParse, MalformedJsonReportsPosition) {
  expect_suite_error("{\"suite\": \"x\",,}", "", "malformed JSON");
  expect_suite_error("{\"suite\": \"x\",,}", "", "line 1");
  expect_suite_error("", "", "malformed JSON");
}

TEST(SuiteParse, UnknownKeysAreRejectedWithTheAcceptedList) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar", "ports": 4, "portz": 5}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].portz", "unknown key");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "workloads": [{"packets": 10, "packet": 1}]
  })", "workloads[0].packet", "accepts");
  // Kind-specific keys of another kind are unknown too.
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "rotor", "racks": 4, "density": 0.5}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].density", "unknown key");
}

TEST(SuiteParse, OutOfRangeValuesNameThePathAndRange) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "two_tier", "density": 1.5}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].density", "out of range [0, 1]");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar", "ports": 1}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].ports", "out of range");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "expander", "racks": 4, "degree": 5}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].degree", "exceeds racks - 1");
  expect_suite_error(R"({
    "suite": "x", "seeds": {"repetitions": 0}, "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}], "workloads": [{"packets": 10}]
  })", "seeds.repetitions", "out of range");
}

TEST(SuiteParse, TypeMismatchesNameTheFoundType) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar", "ports": "eight"}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].ports", "expected an integer, found string");
  expect_suite_error(R"({
    "suite": "x", "policies": "alg",
    "topologies": [{"kind": "crossbar"}], "workloads": [{"packets": 10}]
  })", "policies", "expected an array, found string");
}

TEST(SuiteParse, BadEnumsListTheKnownValues) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "torus"}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].kind", "two_tier crossbar oversubscribed expander rotor");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "workloads": [{"packets": 10, "skew": "ziggurat"}]
  })", "workloads[0].skew", "known:");
}

TEST(SuiteParse, UnknownPoliciesListTheRegistry) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["algg"],
    "topologies": [{"kind": "crossbar"}], "workloads": [{"packets": 10}]
  })", "policies[0]", "registry:");
}

TEST(SuiteParse, MissingRequiredKeys) {
  expect_suite_error(R"({"policies": ["alg"], "topologies": [{"kind": "crossbar"}],
                         "workloads": [{}]})",
                     "suite", "required key is missing");
  expect_suite_error(R"({"suite": "x", "policies": ["alg"],
                         "workloads": [{}]})",
                     "topologies", "required key is missing");
  expect_suite_error(R"({"suite": "x", "policies": ["alg"],
                         "topologies": [{"kind": "crossbar"}]})",
                     "workloads", "required key is missing");
  expect_suite_error(R"({"suite": "x", "policies": ["alg"],
                         "topologies": [{"ports": 4}],
                         "workloads": [{"packets": 5}]})",
                     "topologies[0].kind", "required key is missing");
}

TEST(SuiteParse, WrongModeAxesAreActionable) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "workloads": [{"packets": 10}],
    "traffic": [{"rho": 0.5}]
  })", "traffic", "only valid when mode is \"stream\"");
  expect_suite_error(R"({
    "suite": "x", "mode": "stream", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "traffic": [{"rho": 0.5}],
    "stream": {"warmup": 1},
    "workloads": [{"packets": 10}]
  })", "workloads", "only valid when mode is \"batch\"");
}

TEST(SuiteParse, StageErrorsNameTheExactPath) {
  // Stages are a stream-mode axis.
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "workloads": [{"packets": 10}],
    "stages": [{"duration": 5}]
  })", "stages", "only valid when mode is \"stream\"");
  const std::string stream_prefix = R"({
    "suite": "x", "mode": "stream", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "traffic": [{"rho": 0.5}],
    "stream": {"measure": 100},)";
  expect_suite_error(stream_prefix + R"("stages": []})",
                     "stages", "at least one stage");
  expect_suite_error(stream_prefix + R"("stages": [{"duration": 0}, {"duration": 5}]})",
                     "stages[0].duration", "last stage only");
  expect_suite_error(stream_prefix + R"("stages": [{"duration": 5, "rho": -0.3}]})",
                     "stages[0].rho", "must be positive");
  expect_suite_error(stream_prefix + R"("stages": [{"duration": 5, "kill_edges": [-1]}]})",
                     "stages[0].kill_edges[0]", "out of range");
  expect_suite_error(stream_prefix + R"("stages": [{"duration": 5, "dead": "panic"}]})",
                     "stages[0].dead", "known:");
  expect_suite_error(stream_prefix + R"("stages": [{"duration": 5, "durration": 6}]})",
                     "stages[0].durration", "unknown key");
}

TEST(SuiteParse, CrossFieldConstraints) {
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "engines": [{"capacity": 2, "reconfig_delay": 1}],
    "topologies": [{"kind": "crossbar"}], "workloads": [{"packets": 10}]
  })", "engines[0].reconfig_delay", "requires capacity == 1");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg", "alg"],
    "topologies": [{"kind": "crossbar"}], "workloads": [{"packets": 10}]
  })", "policies[1]", "duplicate policy");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}, {"kind": "crossbar", "ports": 6}],
    "workloads": [{"packets": 10}]
  })", "topologies[1].name", "duplicate label");
  expect_suite_error(R"({
    "suite": "x", "policies": ["alg"],
    "topologies": [{"kind": "crossbar", "name": "a/b"}],
    "workloads": [{"packets": 10}]
  })", "topologies[0].name", "may not contain '/'");
  // The suite name prefixes every cell name, so it obeys the same rule.
  expect_suite_error(R"({
    "suite": "x/y", "policies": ["alg"],
    "topologies": [{"kind": "crossbar"}],
    "workloads": [{"packets": 10}]
  })", "suite", "may not contain '/'");
}

TEST(SuiteParse, DistinctFailuresProduceDistinctMessages) {
  // One representative per failure class; all six must differ pairwise.
  const std::vector<std::string> inputs = {
      "{\"suite\": ",  // malformed
      R"({"suite": "x", "policies": ["alg"], "topologies": [{"kind": "xbar"}],
          "workloads": [{}]})",  // bad enum
      R"({"suite": "x", "policies": ["alg"], "topologies": [{"kind": "crossbar",
          "portz": 1}], "workloads": [{}]})",  // unknown key
      R"({"suite": "x", "policies": ["alg"], "topologies": [{"kind": "crossbar",
          "ports": 9999}], "workloads": [{}]})",  // out of range
      R"({"suite": "x", "policies": ["alg"], "topologies": [{"kind": "crossbar",
          "ports": true}], "workloads": [{}]})",  // type mismatch
      R"({"suite": "x", "policies": ["alg"], "topologies": [{"kind":
          "crossbar"}]})",  // missing axis
  };
  std::set<std::string> messages;
  for (const std::string& text : inputs) {
    try {
      parse_suite(text);
      FAIL() << "expected SuiteError for: " << text;
    } catch (const SuiteError& error) {
      messages.insert(error.what());
    }
  }
  EXPECT_EQ(messages.size(), inputs.size());
}

TEST(SuiteParse, LoadFileReportsMissingFiles) {
  EXPECT_THROW(load_suite_file("/nonexistent/suite.json"), SuiteError);
}

// --- grid expansion and runner ----------------------------------------------

TEST(SuiteRun, BatchLinesAreValidBenchReportJson) {
  SuiteSpec suite = parse_suite(R"({
    "suite": "smoke",
    "seeds": {"base": 1, "repetitions": 2},
    "policies": ["alg", "fifo"],
    "topologies": [
      {"kind": "crossbar", "ports": 4},
      {"name": "rot", "kind": "rotor", "racks": 4}
    ],
    "workloads": [{"packets": 12, "rate": 3.0}]
  })");
  const SuiteRunner runner(suite);
  EXPECT_EQ(runner.grid_cells(), 2u);
  EXPECT_EQ(runner.cells(), 4u);
  ASSERT_EQ(runner.cell_names().size(), 4u);
  EXPECT_EQ(runner.cell_names()[0], "smoke/crossbar/uniform/s1c1r0 x alg");

  const std::vector<std::string> lines = runner.run(2);
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    const json::Value parsed = json::parse(line);  // throws on invalid JSON
    EXPECT_EQ(parsed.find("bench")->as_string(), "smoke");
    EXPECT_GT(parsed.find("total_cost")->as_number(), 0.0);
    EXPECT_TRUE(parsed.find("params")->find("topology") != nullptr);
    EXPECT_EQ(parsed.find("params")->find("reps")->as_integer(), 2);
  }
  EXPECT_EQ(json::parse(lines[0]).find("name")->as_string(), "alg");
  EXPECT_EQ(json::parse(lines[1]).find("name")->as_string(), "fifo");
  EXPECT_EQ(json::parse(lines[2]).find("params")->find("kind")->as_string(), "rotor");
}

TEST(SuiteRun, StreamLinesCarryLatencyPercentiles) {
  SuiteSpec suite = parse_suite(R"({
    "suite": "stream-smoke",
    "mode": "stream",
    "seeds": {"base": 2, "repetitions": 1},
    "policies": ["alg"],
    "topologies": [{"kind": "rotor", "racks": 4, "ports": 2}],
    "traffic": [{"rho": 0.5}],
    "stream": {"warmup": 20, "measure": 300, "window": 64}
  })");
  const std::vector<std::string> lines = SuiteRunner(suite).run(1);
  ASSERT_EQ(lines.size(), 1u);
  const json::Value parsed = json::parse(lines[0]);
  EXPECT_EQ(parsed.find("params")->find("mode")->as_string(), "stream");
  EXPECT_GE(parsed.find("p95")->as_integer(), parsed.find("p50")->as_integer());
  EXPECT_GT(parsed.find("throughput")->as_number(), 0.0);
  EXPECT_EQ(parsed.find("truncated_reps")->as_integer(), 0);
}

TEST(SuiteRun, GridOrderIsDeterministic) {
  const SuiteSpec suite = parse_suite(kZooStream);
  const auto names_a = SuiteRunner(suite).cell_names();
  const auto names_b = SuiteRunner(suite).cell_names();
  EXPECT_EQ(names_a, names_b);
  const std::vector<StreamSpec> grid = suite_stream_grid(suite);
  ASSERT_EQ(names_a.size(), grid.size() * suite.policies.size());
}

// --- fault tolerance, journal, resume ---------------------------------------

const char* kJournalSuite = R"({
  "suite": "journal-smoke",
  "seeds": {"base": 1, "repetitions": 2},
  "policies": ["alg", "fifo"],
  "topologies": [{"kind": "crossbar", "ports": 4}],
  "workloads": [
    {"name": "a", "packets": 12, "rate": 3.0},
    {"name": "b", "packets": 12, "rate": 3.0, "skew": "zipf"}
  ]
})";

std::string journal_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// Wall-clock fields are measurements, not results: two runs of the same
/// cell agree on every metric but never on wall_ms, so cross-run row
/// comparisons strip it first (same convention as the check.sh smokes).
std::string strip_wall(std::string row) {
  const std::string key = "\"wall_ms\":";
  const std::size_t at = row.find(key);
  if (at == std::string::npos) return row;
  std::size_t end = row.find_first_of(",}", at + key.size());
  if (end != std::string::npos && row[end] == ',') ++end;
  row.erase(at, end - at);
  return row;
}

std::vector<std::string> strip_wall(std::vector<std::string> rows) {
  for (std::string& row : rows) row = strip_wall(std::move(row));
  return rows;
}

TEST(SuiteFault, JournalRecordsEveryCellAndLoadsBack) {
  const SuiteSpec suite = parse_suite(kJournalSuite);
  const SuiteRunner runner(suite);
  SuiteRunOptions options;
  options.threads = 2;
  options.journal = journal_path("suite_roundtrip.journal");
  const std::vector<std::string> rows = runner.run(options);
  ASSERT_EQ(rows.size(), 4u);
  const SuiteJournal journal = load_suite_journal(options.journal);
  EXPECT_EQ(journal.spec_json, suite_to_json(suite));
  EXPECT_EQ(journal.rows, rows);
}

TEST(SuiteFault, ResumeSkipsRecordedCellsAndMergesBitIdentical) {
  const SuiteSpec suite = parse_suite(kJournalSuite);
  const SuiteRunner runner(suite);
  const std::vector<std::string> reference = runner.run(1);
  SuiteRunOptions options;
  options.threads = 1;
  options.journal = journal_path("suite_resume.journal");
  runner.run(options);
  // Blank two rows to fake a run killed mid-suite, then resume: only the
  // missing cells re-run and the merge is bit-identical to the reference.
  SuiteJournal partial = load_suite_journal(options.journal);
  partial.rows[1].clear();
  partial.rows[3].clear();
  const std::vector<std::string> merged = runner.run(options, &partial);
  EXPECT_EQ(strip_wall(merged), strip_wall(reference));
  // The journaled rows survive the merge verbatim -- the resumed cells'
  // rows in the output ARE the journal's bytes, not re-runs.
  EXPECT_EQ(merged[0], partial.rows[0]);
  EXPECT_EQ(merged[2], partial.rows[2]);
  // The journal on disk is complete again after the resumed run.
  EXPECT_EQ(load_suite_journal(options.journal).rows, merged);
}

TEST(SuiteFault, ResumeRefusesAForeignJournal) {
  const SuiteRunner runner(parse_suite(kJournalSuite));
  SuiteRunOptions options;
  options.threads = 1;
  options.journal = journal_path("suite_foreign.journal");
  runner.run(options);
  const SuiteJournal journal = load_suite_journal(options.journal);
  const SuiteRunner other(parse_suite(kMinimalBatch));
  SuiteRunOptions plain;
  plain.threads = 1;
  EXPECT_THROW(other.run(plain, &journal), SuiteError);
}

TEST(SuiteFault, JournalLoaderIsStrict) {
  EXPECT_THROW(load_suite_journal("/nonexistent/file.journal"), SuiteError);
  const std::string garbage = journal_path("suite_garbage.journal");
  {
    std::ofstream out(garbage);
    out << "this is not json\n";
  }
  EXPECT_THROW(load_suite_journal(garbage), SuiteError);
  const std::string untagged = journal_path("suite_untagged.journal");
  {
    std::ofstream out(untagged);
    out << R"({"x": 1})" << "\n";
  }
  EXPECT_THROW(load_suite_journal(untagged), SuiteError);
}

TEST(SuiteFault, IsolateRendersStructuredErrorRows) {
  const SuiteSpec suite = parse_suite(kJournalSuite);
  const SuiteRunner runner(suite);
  const std::vector<std::string> reference = runner.run(1);
  SuiteRunOptions options;
  options.threads = 2;
  options.policy.failure = FailurePolicy::Isolate;
  options.policy.fault_hook = [](const std::string& cell, std::size_t,
                                 const CancelToken*) {
    if (cell.find(" x fifo") != std::string::npos) {
      throw std::runtime_error("injected suite fault");
    }
  };
  const std::vector<std::string> rows = runner.run(options);
  const std::vector<std::string> names = runner.cell_names();
  ASSERT_EQ(rows.size(), names.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (names[i].find(" x fifo") != std::string::npos) {
      const json::Value parsed = json::parse(rows[i]);
      EXPECT_EQ(parsed.find("status")->as_string(), "failed");
      EXPECT_EQ(parsed.find("error_type")->as_string(), "std::runtime_error");
      EXPECT_EQ(parsed.find("error_message")->as_string(), "injected suite fault");
      EXPECT_EQ(parsed.find("attempts")->as_integer(), 1);
      // The reported repetition is the lowest failing one -- deterministic
      // regardless of worker scheduling.
      EXPECT_EQ(parsed.find("repetition")->as_integer(), 0);
      EXPECT_EQ(parsed.find("total_cost"), nullptr);
    } else {
      // Healthy cells match the fault-free run on every metric.
      EXPECT_EQ(strip_wall(rows[i]), strip_wall(reference[i])) << names[i];
    }
  }
}

TEST(SuiteFault, FailFastAbortsTheSuite) {
  const SuiteRunner runner(parse_suite(kJournalSuite));
  SuiteRunOptions options;
  options.threads = 2;
  options.policy.fault_hook = [](const std::string& cell, std::size_t,
                                 const CancelToken*) {
    if (cell.find(" x fifo") != std::string::npos) {
      throw std::runtime_error("injected suite fault");
    }
  };
  EXPECT_THROW(runner.run(options), std::runtime_error);
}

// --- make_topology across the extended TopologySpec grid --------------------

std::vector<std::tuple<NodeIndex, NodeIndex, Delay>> edge_list(const Topology& g) {
  std::vector<std::tuple<NodeIndex, NodeIndex, Delay>> list;
  for (const ReconfigEdge& edge : g.edges()) {
    list.emplace_back(edge.transmitter, edge.receiver, edge.delay);
  }
  for (const FixedLink& link : g.fixed_links()) {
    list.emplace_back(-1 - link.source, -1 - link.destination, link.delay);
  }
  return list;
}

/// The full extended grid: every kind with a few config corners each.
std::vector<TopologySpec> topology_grid() {
  std::vector<TopologySpec> grid;
  {
    TopologySpec spec;  // dense two-tier
    spec.two_tier.racks = 5;
    grid.push_back(spec);
    spec.two_tier.density = 0.3;  // sparse + hybrid
    spec.two_tier.fixed_link_delay = 9;
    spec.seed_salt = 7;
    grid.push_back(spec);
  }
  {
    TopologySpec spec;
    spec.kind = TopologySpec::Kind::Crossbar;
    spec.crossbar_ports = 6;
    grid.push_back(spec);
  }
  {
    TopologySpec spec;
    spec.kind = TopologySpec::Kind::Oversubscribed;
    spec.oversubscribed.racks = 6;
    grid.push_back(spec);
    spec.oversubscribed.fixed_base_delay = 0;  // patch path
    spec.oversubscribed.density = 0.2;
    grid.push_back(spec);
  }
  {
    TopologySpec spec;
    spec.kind = TopologySpec::Kind::Expander;
    spec.expander.racks = 7;
    spec.expander.degree = 3;
    grid.push_back(spec);
    spec.expander.fixed_link_delay = 0;  // pure expander
    spec.seed_salt = 11;
    grid.push_back(spec);
  }
  {
    TopologySpec spec;
    spec.kind = TopologySpec::Kind::Rotor;
    spec.rotor.racks = 6;
    spec.rotor.ports_per_rack = 2;
    grid.push_back(spec);
    spec.rotor.num_matchings = 2;  // sparse offsets
    grid.push_back(spec);
  }
  return grid;
}

/// True when the spec's builder contract guarantees every ordered rack
/// pair is routable.
bool guarantees_full_routability(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologySpec::Kind::TwoTier:
    case TopologySpec::Kind::Crossbar:
    case TopologySpec::Kind::Oversubscribed:
      return true;
    case TopologySpec::Kind::Expander:
      return spec.expander.fixed_link_delay > 0;
    case TopologySpec::Kind::Rotor:
      return spec.rotor.fixed_link_delay > 0 || spec.rotor.num_matchings == 0;
  }
  return false;
}

class TopologyGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyGrid, SameSeedIsBitIdentical) {
  const TopologySpec spec = topology_grid()[GetParam()];
  for (const std::uint64_t seed : {1ULL, 42ULL, 12345ULL}) {
    EXPECT_EQ(edge_list(make_topology(spec, seed)), edge_list(make_topology(spec, seed)));
  }
}

TEST_P(TopologyGrid, ValidatesAndHonorsRoutabilityContract) {
  const TopologySpec spec = topology_grid()[GetParam()];
  const Topology g = make_topology(spec, 3);
  EXPECT_EQ(g.validate(), "");
  ASSERT_GT(g.num_edges() + static_cast<EdgeIndex>(g.fixed_links().size()), 0);
  if (guarantees_full_routability(spec)) {
    for (NodeIndex s = 0; s < g.num_sources(); ++s) {
      for (NodeIndex d = 0; d < g.num_destinations(); ++d) {
        if (s == d) continue;
        EXPECT_TRUE(g.routable(s, d))
            << to_string(spec.kind) << " " << s << "->" << d;
      }
    }
  }
}

TEST_P(TopologyGrid, PortAndDegreeBoundsRespected) {
  const TopologySpec spec = topology_grid()[GetParam()];
  const Topology g = make_topology(spec, 9);
  // Per-port degree can never exceed the opposite side's port count, and
  // the kind-specific caps hold.
  for (NodeIndex t = 0; t < g.num_transmitters(); ++t) {
    EXPECT_LE(static_cast<NodeIndex>(g.edges_of_transmitter(t).size()), g.num_receivers());
  }
  switch (spec.kind) {
    case TopologySpec::Kind::Crossbar:
      EXPECT_EQ(g.num_edges(), spec.crossbar_ports * spec.crossbar_ports);
      break;
    case TopologySpec::Kind::Expander: {
      std::vector<std::size_t> out(static_cast<std::size_t>(g.num_sources()), 0);
      std::vector<std::size_t> in(static_cast<std::size_t>(g.num_destinations()), 0);
      for (const ReconfigEdge& edge : g.edges()) {
        ++out[static_cast<std::size_t>(g.source_of(edge.transmitter))];
        ++in[static_cast<std::size_t>(g.destination_of(edge.receiver))];
      }
      for (const std::size_t degree : out) {
        EXPECT_EQ(degree, static_cast<std::size_t>(spec.expander.degree));
      }
      for (const std::size_t degree : in) {
        EXPECT_EQ(degree, static_cast<std::size_t>(spec.expander.degree));
      }
      break;
    }
    case TopologySpec::Kind::Rotor:
      EXPECT_EQ(g.num_edges(), spec.rotor.racks * rotor_matchings(spec.rotor));
      break;
    case TopologySpec::Kind::TwoTier:
    case TopologySpec::Kind::Oversubscribed:
      break;  // stochastic counts; validate() + routability cover them
  }
}

TEST_P(TopologyGrid, FixedWiringSharesOneTopologyAcrossSeeds) {
  TopologySpec spec = topology_grid()[GetParam()];
  spec.fixed_wiring = true;
  EXPECT_EQ(edge_list(make_topology(spec, 1)), edge_list(make_topology(spec, 999)));
}

TEST_P(TopologyGrid, WorkloadsGenerateOnEveryKind) {
  const TopologySpec spec = topology_grid()[GetParam()];
  WorkloadConfig workload;
  workload.num_packets = 15;
  workload.seed = 4;
  const Instance instance = generate_workload(make_topology(spec, 4), workload);
  EXPECT_EQ(instance.validate(), "");
  EXPECT_EQ(instance.num_packets(), 15u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, TopologyGrid,
                         ::testing::Range<std::size_t>(0, topology_grid().size()));

// --- fuzz grid coverage ------------------------------------------------------

TEST(FuzzGrid, FirstHundredSeedsDrawEveryTopologyKind) {
  std::set<TopologySpec::Kind> batch_kinds;
  std::set<TopologySpec::Kind> stream_kinds;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    batch_kinds.insert(random_scenario_spec(seed).topology.kind);
    stream_kinds.insert(random_stream_spec(seed).topology.kind);
  }
  EXPECT_EQ(batch_kinds.size(), 5u);
  EXPECT_EQ(stream_kinds.size(), 5u);
}

TEST(FuzzGrid, StreamSpecsDrawStagedSchedulesWithBothDeadPolicies) {
  std::size_t staged = 0;
  bool saw_drop = false;
  bool saw_requeue = false;
  bool saw_kill = false;
  bool saw_restore = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const StreamSpec spec = random_stream_spec(seed);
    if (spec.stages.empty()) continue;
    ++staged;
    StreamRunner{spec};  // every drawn schedule passes the runner's validation
    for (const StageSpec& stage : spec.stages) {
      saw_drop |= stage.mutation.dead_policy == DeadPolicy::Drop;
      saw_requeue |= stage.mutation.dead_policy == DeadPolicy::Requeue;
      saw_kill |= !stage.mutation.kill_edges.empty() || !stage.mutation.kill_racks.empty();
      saw_restore |=
          !stage.mutation.restore_edges.empty() || !stage.mutation.restore_racks.empty();
    }
  }
  EXPECT_GT(staged, 15u);  // ~35% of 100 specs carry a schedule
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_requeue);
  EXPECT_TRUE(saw_kill);
  EXPECT_TRUE(saw_restore);
}

TEST(FuzzGrid, RandomSpecsProduceValidInstances) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ScenarioSpec spec = random_scenario_spec(seed);
    const Instance instance = ScenarioRunner(spec).instance(spec.base_seed);
    EXPECT_EQ(instance.validate(), "") << "seed " << seed;
    EXPECT_GT(instance.num_packets(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rdcn