// Exact rational LP pipeline: the rational simplex agrees with the double
// solver, and the full Theorem-1 certificate chain is verified with ZERO
// floating-point tolerance on small instances:
//   ALG * eps/(2+eps) <= D   (Lemma 3, exact)
//   D / 2 <= LP-OPT(eps)     (Lemma 5 + weak duality, exact)

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/exact_certificate.hpp"
#include "helpers.hpp"
#include "lp/exact_paper_lp.hpp"
#include "lp/exact_simplex.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"
#include "net/builders.hpp"

namespace rdcn {
namespace {

TEST(ExactSimplex, TextbookMaximization) {
  lp::ExactModel model;
  model.set_maximize(true);
  const auto x = model.add_variable(Rational(3));
  const auto y = model.add_variable(Rational(5));
  model.add_constraint({{x, Rational(1)}}, lp::ExactRelation::LessEq, Rational(4));
  model.add_constraint({{y, Rational(2)}}, lp::ExactRelation::LessEq, Rational(12));
  model.add_constraint({{x, Rational(3)}, {y, Rational(2)}}, lp::ExactRelation::LessEq,
                       Rational(18));
  const lp::ExactSolution solution = lp::solve_exact(model);
  ASSERT_EQ(solution.status, lp::ExactStatus::Optimal);
  EXPECT_EQ(solution.objective, Rational(36));
  EXPECT_EQ(solution.values[x], Rational(2));
  EXPECT_EQ(solution.values[y], Rational(6));
  EXPECT_TRUE(model.is_feasible(solution.values));
}

TEST(ExactSimplex, FractionalOptimum) {
  // max x + y s.t. 2x + y <= 3, x + 2y <= 3 => optimum 2 at (1, 1);
  // perturb: max 2x + y, same rows => vertex (3/2, 0) value 3.
  lp::ExactModel model;
  model.set_maximize(true);
  const auto x = model.add_variable(Rational(2));
  const auto y = model.add_variable(Rational(1));
  model.add_constraint({{x, Rational(2)}, {y, Rational(1)}}, lp::ExactRelation::LessEq,
                       Rational(3));
  model.add_constraint({{x, Rational(1)}, {y, Rational(2)}}, lp::ExactRelation::LessEq,
                       Rational(3));
  const lp::ExactSolution solution = lp::solve_exact(model);
  ASSERT_EQ(solution.status, lp::ExactStatus::Optimal);
  EXPECT_EQ(solution.objective, Rational(3));
}

TEST(ExactSimplex, InfeasibleAndUnbounded) {
  {
    lp::ExactModel model;
    const auto x = model.add_variable(Rational(1));
    model.add_constraint({{x, Rational(1)}}, lp::ExactRelation::LessEq, Rational(1));
    model.add_constraint({{x, Rational(1)}}, lp::ExactRelation::GreaterEq, Rational(2));
    EXPECT_EQ(lp::solve_exact(model).status, lp::ExactStatus::Infeasible);
  }
  {
    lp::ExactModel model;
    model.set_maximize(true);
    const auto x = model.add_variable(Rational(1));
    const auto y = model.add_variable(Rational(0));
    model.add_constraint({{y, Rational(1)}}, lp::ExactRelation::LessEq, Rational(5));
    (void)x;
    EXPECT_EQ(lp::solve_exact(model).status, lp::ExactStatus::Unbounded);
  }
}

TEST(ExactSimplex, EqualityWithNegativeRhs) {
  // min x + y s.t. -x - 2y == -4, x - y >= -1.  (x, y) = (2/3, 5/3)? Check:
  // x + 2y = 4 and y - x <= 1 -> at y - x = 1: x + 2(x+1) = 4 -> x = 2/3.
  // objective 2/3 + 5/3 = 7/3... but pushing y down is better: objective
  // falls along x + 2y = 4 as y shrinks until y - x >= -inf (no floor) --
  // y >= 0: at y = 0, x = 4, obj 4; at y = 2, x = 0, obj 2 (and x-y=-2 < -1
  // infeasible). Binding y - x <= ... x - y >= -1 means y <= x + 1:
  // minimize x + y on x + 2y = 4 with y <= x + 1, x,y >= 0: obj = 4 - y,
  // maximize y: y = x + 1 -> x = 2/3, y = 5/3, obj = 7/3.
  lp::ExactModel model;
  const auto x = model.add_variable(Rational(1));
  const auto y = model.add_variable(Rational(1));
  model.add_constraint({{x, Rational(-1)}, {y, Rational(-2)}}, lp::ExactRelation::Equal,
                       Rational(-4));
  model.add_constraint({{x, Rational(1)}, {y, Rational(-1)}}, lp::ExactRelation::GreaterEq,
                       Rational(-1));
  const lp::ExactSolution solution = lp::solve_exact(model);
  ASSERT_EQ(solution.status, lp::ExactStatus::Optimal);
  EXPECT_EQ(solution.objective, Rational(7, 3));
}

TEST(ExactPaperLp, AgreesWithDoubleSolverOnFigure1) {
  const Instance instance = figure1_instance();
  const ExactEps eps{1, 1};
  const Time horizon = default_lp_horizon(instance, 1.0);
  const Rational exact = exact_lp_opt(instance, eps, horizon);
  const double approx = lp_opt_lower_bound(instance, 1.0, horizon);
  EXPECT_NEAR(exact.to_double(), approx, 1e-6);
}

TEST(ExactPaperLp, BudgetRationalIsExact) {
  EXPECT_EQ((ExactEps{1, 1}).budget(), Rational(1, 3));
  EXPECT_EQ((ExactEps{1, 2}).budget(), Rational(2, 5));  // eps = 1/2 -> 1/(5/2)
  EXPECT_EQ((ExactEps{3, 1}).budget(), Rational(1, 5));
}

class ExactCertificateChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactCertificateChain, FloatFreeTheorem1Chain) {
  testing::RandomInstanceSpec spec;
  spec.seed = GetParam();
  spec.racks = 3;
  spec.lasers = 1;
  spec.photodetectors = 1;
  spec.packets = 4;
  spec.max_edge_delay = 1 + static_cast<Delay>(GetParam() % 2);
  spec.fixed_link_delay = (GetParam() % 2 == 0) ? 5 : 0;
  spec.weights = WeightDist::UniformInt;
  spec.weight_max = 4;
  const Instance instance = testing::make_random_instance(spec);
  ASSERT_TRUE(instance.has_integer_weights());

  const RunResult run = run_alg(instance);
  const ExactEps eps{1, 1};
  const ExactCertificate certificate = build_exact_certificate(instance, run, eps);

  // The exact cost agrees with the engine's double accounting.
  EXPECT_NEAR(certificate.alg_cost.to_double(), run.total_cost, 1e-9);

  // Lemma 3, exactly: ALG * eps/(2+eps) <= D.
  EXPECT_TRUE(certificate.lemma3_holds(eps));

  // ALG <= sum alpha, exactly (Lemma 2 summed).
  EXPECT_TRUE(certificate.alg_cost <= certificate.sum_alpha);

  // Lemma 5 + weak duality, exactly: D/2 <= LP optimum. Both sides are
  // exact rationals -- no epsilon anywhere.
  const Rational lp_value = exact_lp_opt(instance, eps);
  EXPECT_TRUE(certificate.lower_bound <= lp_value)
      << "D/2 = " << certificate.lower_bound.to_string()
      << " vs LP = " << lp_value.to_string();

  // Theorem 1, exactly: ALG <= 2(2+eps)/eps * LP.
  EXPECT_TRUE(certificate.alg_cost * Rational(eps.num) <=
              Rational(2) * Rational(2 * eps.den + eps.num) * lp_value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactCertificateChain,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ExactCertificate, SaturatedChainOnSingleEdgeBatch) {
  // The tightness instance: n unit packets on one edge. ALG = n(n+1)/2,
  // sum alpha = ALG, all cost reconfigurable, so at eps=1:
  // D = ALG - (1/3)(2 ALG) = ALG/3 and ALG / (D/2) = 6 EXACTLY.
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  for (int i = 0; i < 12; ++i) instance.add_packet(1, 1.0, 0, 0);

  const RunResult run = run_alg(instance);
  const ExactCertificate certificate =
      build_exact_certificate(instance, run, ExactEps{1, 1});
  EXPECT_EQ(certificate.alg_cost, Rational(78));  // 12*13/2
  EXPECT_EQ(certificate.sum_alpha, Rational(78));
  EXPECT_EQ(certificate.dual_objective, Rational(26));
  EXPECT_EQ(certificate.alg_cost, Rational(6) * certificate.lower_bound);  // exactly 6x
}

}  // namespace
}  // namespace rdcn
