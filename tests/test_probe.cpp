// The observability layer's own contracts (ISSUE 7):
//  * RAII phase spans: per-phase call counts, inclusive (total) vs
//    exclusive (self) time with exact child subtraction, so the self times
//    partition the instrumented wall clock;
//  * the raw-span ring: pre-sized, drop-oldest on overflow with the
//    discards counted in Counter::DroppedEvents, chronological read-out;
//  * Chrome trace export: strict JSON by construction (round-trips through
//    util/json's parser), complete events only, monotone timestamps;
//  * StreamTelemetry folding: window phase_ns deltas sum back to the
//    probe's cumulative phase_self_ns;
//  * merge_report: repetition aggregation semantics (add / max / last).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/probe.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace rdcn {
namespace {

std::size_t index_of(Phase phase) { return static_cast<std::size_t>(phase); }
std::size_t index_of(Counter counter) { return static_cast<std::size_t>(counter); }

/// Spins until the steady clock advances, so every span has nonzero width
/// even on coarse clocks.
void burn() {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() == start) {
  }
}

TEST(Probe, SpanSelfTimeExcludesChildrenExactly) {
  Probe probe(ProbeConfig{true, 0});
  {
    Probe::Span dispatch(&probe, Phase::Dispatch);
    burn();
    {
      Probe::Span index(&probe, Phase::IndexMaintenance);
      burn();
    }
    burn();
  }
  const ProbeReport report = probe.report();
  EXPECT_EQ(report.phase_calls[index_of(Phase::Dispatch)], 1u);
  EXPECT_EQ(report.phase_calls[index_of(Phase::IndexMaintenance)], 1u);
  EXPECT_EQ(report.phase_calls[index_of(Phase::Select)], 0u);
  const std::uint64_t dispatch_self = report.phase_self_ns[index_of(Phase::Dispatch)];
  const std::uint64_t dispatch_total = report.phase_total_ns[index_of(Phase::Dispatch)];
  const std::uint64_t index_total =
      report.phase_total_ns[index_of(Phase::IndexMaintenance)];
  // The child is the only span closed inside the parent, so the subtraction
  // is exact, not approximate: parent self + child total == parent total.
  EXPECT_EQ(dispatch_self + index_total, dispatch_total);
  EXPECT_GT(dispatch_self, 0u);
  EXPECT_GT(index_total, 0u);
  // Leaf spans have no children: self == total.
  EXPECT_EQ(report.phase_self_ns[index_of(Phase::IndexMaintenance)], index_total);
  EXPECT_EQ(report.instrumented_ns(), dispatch_self + index_total);
  EXPECT_GE(report.wall_ns, report.instrumented_ns());
}

TEST(Probe, NullProbeSpansAreNoOps) {
  // Instrumentation sites pass the engine's nullable pointer
  // unconditionally; a null probe must cost one branch and nothing else.
  Probe::Span outer(nullptr, Phase::Dispatch);
  Probe::Span inner(nullptr, Phase::Select);
  SUCCEED();
}

TEST(Probe, RingDropsOldestAndCountsDiscards) {
  Probe probe(ProbeConfig{true, 4});
  // Ten sequential top-level spans with alternating phases into a ring of
  // four: the first six are discarded (and counted), the last four survive.
  for (int i = 0; i < 10; ++i) {
    Probe::Span span(&probe, i % 2 == 0 ? Phase::Dispatch : Phase::Select);
    burn();
  }
  EXPECT_EQ(probe.dropped_events(), 6u);
  EXPECT_EQ(probe.counter(Counter::DroppedEvents), 6u);
  const std::vector<trace::TraceEvent> events = probe.events();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are spans 6..9 (0-based), oldest first: dispatch, select,
  // dispatch, select -- and chronological (start_ns nondecreasing).
  EXPECT_STREQ(events[0].name, "dispatch");
  EXPECT_STREQ(events[1].name, "select");
  EXPECT_STREQ(events[2].name, "dispatch");
  EXPECT_STREQ(events[3].name, "select");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns) << i;
  }
}

TEST(Probe, ZeroCapacityRingKeepsAggregatesOnly) {
  Probe probe(ProbeConfig{true, 0});
  for (int i = 0; i < 5; ++i) {
    Probe::Span span(&probe, Phase::Service);
    burn();
  }
  EXPECT_EQ(probe.events().size(), 0u);
  EXPECT_EQ(probe.dropped_events(), 0u);  // no ring: nothing was ever staged
  EXPECT_EQ(probe.report().phase_calls[index_of(Phase::Service)], 5u);
}

TEST(Probe, ChromeTraceRoundTripsAsStrictJson) {
  Probe probe(ProbeConfig{true, 64});
  probe.count(Counter::Rounds, 3);
  probe.gauge(Gauge::InFlight, 7);
  for (int i = 0; i < 3; ++i) {
    Probe::Span outer(&probe, Phase::Dispatch);
    burn();
    Probe::Span inner(&probe, Phase::IndexMaintenance);
    burn();
  }
  const std::string text = probe.chrome_trace_json(1);
  // util/json's parser is strict (RFC 8259, duplicate keys rejected): a
  // successful parse is the validity proof.
  const json::Value document = json::parse(text);
  ASSERT_TRUE(document.is_object());
  const json::Value* unit = document.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->as_string(), "ms");
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 6u);  // 3 parents + 3 children
  double last_ts = -1.0;
  for (const json::Value& event : events->as_array()) {
    const json::Value* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");  // complete events only
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("dur"), nullptr);
    const json::Value* ts = event.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->as_number(), last_ts) << "timestamps must be monotone";
    last_ts = ts->as_number();
  }
  // The registry rides along under otherData.probe.
  const json::Value* other = document.find("otherData");
  ASSERT_NE(other, nullptr);
  const json::Value* report = other->find("probe");
  ASSERT_NE(report, nullptr);
  const json::Value* counters = report->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* rounds = counters->find("rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->as_number(), 3.0);
}

TEST(Trace, ParentsPrecedeChildrenRegardlessOfInputOrder) {
  // The probe's ring is completion-ordered (children close before their
  // parents); the exporter must re-sort by (start asc, duration desc) so
  // viewers nest by containment and ts stays monotone.
  std::vector<trace::TraceEvent> events;
  events.push_back({"child", 1500, 200, 1});
  events.push_back({"parent", 1000, 2000, 0});
  events.push_back({"early", 500, 100, 0});
  const json::Value document = trace::chrome_trace(std::move(events));
  const json::Value* list = document.find("traceEvents");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->as_array().size(), 3u);
  EXPECT_EQ(list->as_array()[0].find("name")->as_string(), "early");
  EXPECT_EQ(list->as_array()[1].find("name")->as_string(), "parent");
  EXPECT_EQ(list->as_array()[2].find("name")->as_string(), "child");
}

TEST(Probe, EngineRunPopulatesCoherentReport) {
  const Instance instance = testing::make_varied_instance(101);
  const PolicyFactory policy = named_policy("alg");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  EngineOptions options;
  options.probe.enabled = true;
  options.probe.event_capacity = 256;
  const RunResult run = simulate(instance, *dispatcher, *scheduler, options);
  const ProbeReport& probe = run.probe;
  ASSERT_TRUE(probe.enabled);
  const auto packets = static_cast<std::uint64_t>(instance.num_packets());
  EXPECT_EQ(probe.counters[index_of(Counter::PacketsDispatched)], packets);
  EXPECT_EQ(probe.counters[index_of(Counter::PacketsRetired)], packets);
  EXPECT_GT(probe.counters[index_of(Counter::Rounds)], 0u);
  EXPECT_GT(probe.counters[index_of(Counter::ChunksTransmitted)], 0u);
  EXPECT_GT(probe.phase_calls[index_of(Phase::Select)], 0u);
  EXPECT_GT(probe.phase_calls[index_of(Phase::Service)], 0u);
  EXPECT_GE(probe.wall_ns, probe.instrumented_ns());
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    EXPECT_GE(probe.phase_total_ns[i], probe.phase_self_ns[i]) << i;
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    EXPECT_GE(probe.gauge_max[i], probe.gauge_last[i]) << i;
  }
  // A probe-off run leaves the default-constructed (disabled, all-zero)
  // report in place.
  const RunResult off = simulate(instance, *dispatcher, *scheduler, {});
  EXPECT_FALSE(off.probe.enabled);
  EXPECT_EQ(off.probe.counters[index_of(Counter::Rounds)], 0u);
}

TEST(Probe, TelemetryWindowsPartitionPhaseTime) {
  Probe probe(ProbeConfig{true, 0});
  StreamTelemetry telemetry(2);  // two steps per window
  for (int step = 0; step < 5; ++step) {
    {
      Probe::Span span(&probe, Phase::Select);
      burn();
    }
    telemetry.on_step(static_cast<Time>(step + 1), 0, 0, 0, &probe);
  }
  const std::vector<StreamWindow>& windows = telemetry.finish();
  ASSERT_EQ(windows.size(), 3u);  // 2 + 2 + trailing partial 1
  std::uint64_t folded = 0;
  for (const StreamWindow& window : windows) {
    folded += window.phase_ns[index_of(Phase::Select)];
    EXPECT_EQ(window.phase_ns[index_of(Phase::Dispatch)], 0u);
  }
  // The window deltas partition the probe's cumulative self time exactly.
  EXPECT_EQ(folded, probe.report().phase_self_ns[index_of(Phase::Select)]);
  EXPECT_GT(folded, 0u);
}

TEST(Probe, MergeReportAddsTimesMaxesGauges) {
  ProbeReport a, b;
  a.enabled = true;
  a.phase_self_ns[0] = 100;
  a.phase_total_ns[0] = 150;
  a.phase_calls[0] = 2;
  a.counters[0] = 5;
  a.gauge_last[0] = 3;
  a.gauge_max[0] = 9;
  a.wall_ns = 1000;
  b.enabled = true;
  b.phase_self_ns[0] = 40;
  b.phase_total_ns[0] = 60;
  b.phase_calls[0] = 1;
  b.counters[0] = 7;
  b.gauge_last[0] = 4;
  b.gauge_max[0] = 6;
  b.wall_ns = 500;
  ProbeReport merged;
  merge_report(merged, a);
  merge_report(merged, b);
  EXPECT_TRUE(merged.enabled);
  EXPECT_EQ(merged.phase_self_ns[0], 140u);
  EXPECT_EQ(merged.phase_total_ns[0], 210u);
  EXPECT_EQ(merged.phase_calls[0], 3u);
  EXPECT_EQ(merged.counters[0], 12u);
  EXPECT_EQ(merged.gauge_last[0], 4u);  // last merge wins
  EXPECT_EQ(merged.gauge_max[0], 9u);   // high-water across repetitions
  EXPECT_EQ(merged.wall_ns, 1500u);
}

}  // namespace
}  // namespace rdcn
