// Tests for the output-queueing relaxation bound: hand-checked values,
// validity as a lower bound against every scheduler at unit speed, and
// the crossbar/CIOQ shape of [21].

#include <gtest/gtest.h>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "opt/output_queueing.hpp"

namespace rdcn {
namespace {

TEST(OutputQueueing, SinglePacketPaysOneStep) {
  const Topology g = build_crossbar(2);
  Instance instance(g, {});
  instance.add_packet(1, 3.0, 0, 1);
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance), 3.0);
}

TEST(OutputQueueing, ContendingPacketsServeHeaviestFirst) {
  // Three packets to one output, weights 3, 1, 2, same arrival:
  // order 3, 2, 1 -> latencies 1, 2, 3 -> cost 3*1 + 2*2 + 1*3 = 10.
  const Topology g = build_crossbar(4);
  Instance instance(g, {});
  instance.add_packet(1, 3.0, 0, 3);
  instance.add_packet(1, 1.0, 1, 3);
  instance.add_packet(1, 2.0, 2, 3);
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance), 10.0);
}

TEST(OutputQueueing, MultipleReceiversRaiseCapacity) {
  // Destination with two receivers absorbs two packets per step.
  Topology g;
  g.add_sources(2);
  g.add_destinations(1);
  const NodeIndex t0 = g.add_transmitter(0);
  const NodeIndex t1 = g.add_transmitter(1);
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(0);
  g.add_edge(t0, r0, 1);
  g.add_edge(t1, r1, 1);
  Instance instance(std::move(g), {});
  instance.add_packet(1, 1.0, 0, 0);
  instance.add_packet(1, 1.0, 1, 0);
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance), 2.0);  // both in step 1
}

TEST(OutputQueueing, ServiceSpeedOptionScales) {
  const Topology g = build_crossbar(2);
  Instance instance(g, {});
  for (int i = 0; i < 4; ++i) instance.add_packet(1, 1.0, 0, 1);
  // capacity 1: 1+2+3+4 = 10; capacity 2: 1+1+2+2 = 6.
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance), 10.0);
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance, {2}), 6.0);
  EXPECT_THROW(output_queueing_bound(instance, {0}), std::invalid_argument);
}

TEST(OutputQueueing, RespectsArrivalGaps) {
  const Topology g = build_crossbar(2);
  Instance instance(g, {});
  instance.add_packet(1, 1.0, 0, 1);
  instance.add_packet(10, 1.0, 0, 1);
  EXPECT_DOUBLE_EQ(output_queueing_bound(instance), 2.0);
}

TEST(OutputQueueing, LowerBoundsEverySchedulerOnCrossbars) {
  // At unit speed on a crossbar with d(e)=1 everywhere, every real
  // schedule obeys the per-output service constraint, so the OQ optimum
  // is a true lower bound.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Topology topology = build_crossbar(6);
    WorkloadConfig traffic;
    traffic.num_packets = 40;
    traffic.arrival_rate = 4.0;
    traffic.skew = PairSkew::Hotspot;
    traffic.weights = WeightDist::UniformInt;
    traffic.seed = seed;
    const Instance instance = generate_workload(topology, traffic);
    const double oq = output_queueing_bound(instance);

    {
      const RunResult run = run_alg(instance);
      EXPECT_GE(run.total_cost, oq - 1e-6) << "ALG, seed " << seed;
    }
    {
      MinDelayDispatcher dispatcher;
      FifoScheduler scheduler;
      const RunResult run = simulate(instance, dispatcher, scheduler, {});
      EXPECT_GE(run.total_cost, oq - 1e-6) << "FIFO, seed " << seed;
    }
  }
}

TEST(OutputQueueing, SpeedupTwoApproachesTheBound) {
  // The CIOQ phenomenon of [21]: with 2 matchings per step, ALG's cost
  // drops to (or below) the unit-speed OQ optimum.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Topology topology = build_crossbar(8);
    WorkloadConfig traffic;
    traffic.num_packets = 80;
    traffic.arrival_rate = 6.0;
    traffic.skew = PairSkew::Uniform;
    traffic.weights = WeightDist::UniformInt;
    traffic.seed = seed * 3;
    const Instance instance = generate_workload(topology, traffic);
    const double oq = output_queueing_bound(instance);

    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.speedup_rounds = 2;
    const RunResult run = simulate(instance, dispatcher, scheduler, options);
    EXPECT_LE(run.total_cost, oq * 1.10 + 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rdcn
