// End-to-end validation of Theorem 1: for every eps > 0,
//   ALG <= 2 (2/eps + 1) * OPT(1/(2+eps)-speed),
// using the primal LP of Figure 3 as the (exact) value of the relaxed OPT
// and the dual witness as the scalable certificate. Also checks the chain
//   D/2 <= LP-OPT  and  LP-OPT(eps) is monotone in eps.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/dual_witness.hpp"
#include "helpers.hpp"
#include "lp/paper_lps.hpp"
#include "net/builders.hpp"
#include "opt/brute_force.hpp"

namespace rdcn {
namespace {

Instance small_instance(std::uint64_t seed) {
  testing::RandomInstanceSpec spec;
  spec.seed = seed;
  spec.racks = 3;
  spec.lasers = 1 + static_cast<NodeIndex>(seed % 2);
  spec.photodetectors = 1;
  spec.density = 1.0;
  spec.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
  spec.fixed_link_delay = (seed % 2 == 0) ? 5 : 0;
  spec.packets = 5;
  spec.arrival_rate = 2.0;
  spec.weights = WeightDist::UniformInt;
  spec.weight_max = 4;
  return testing::make_random_instance(spec);
}

class Theorem1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Property, CompetitiveBoundAgainstLp) {
  const Instance instance = small_instance(GetParam());
  const RunResult run = run_alg(instance);
  const DualWitness witness = build_dual_witness(instance, run);

  for (const double eps : {0.5, 1.0, 2.0}) {
    const double opt_lp = lp_opt_lower_bound(instance, eps);
    ASSERT_GT(opt_lp, 0.0);
    const double bound = 2.0 * (2.0 / eps + 1.0);
    EXPECT_LE(run.total_cost, bound * opt_lp + 1e-6)
        << "Theorem 1 violated at eps=" << eps;
    // Lemma 5: the halved witness is dual-feasible, so D/2 <= LP optimum.
    EXPECT_LE(witness.lower_bound(eps), opt_lp + 1e-6) << "weak duality at eps=" << eps;
  }
}

TEST_P(Theorem1Property, LpOptMonotoneInEps) {
  // A slower OPT (larger eps) can only cost more.
  const Instance instance = small_instance(GetParam());
  const double lp_half = lp_opt_lower_bound(instance, 0.5);
  const double lp_one = lp_opt_lower_bound(instance, 1.0);
  const double lp_two = lp_opt_lower_bound(instance, 2.0);
  EXPECT_LE(lp_half, lp_one + 1e-7);
  EXPECT_LE(lp_one, lp_two + 1e-7);
}

TEST_P(Theorem1Property, BruteForceDominatesLp) {
  // The LP (speed-1, i.e. eps -> -1 limit is not modeled; use budget with
  // eps giving 1/(2+eps) <= 1): any integral unit-speed schedule is
  // feasible for P only when its per-step usage is within budget, so we
  // check the weaker, always-valid chain: LP(eps) <= brute-force OPT *
  // anything >= 1 is NOT generally true; instead we verify the brute
  // force equals or exceeds the trivial bound and ALG >= OPT.
  const Instance instance = small_instance(GetParam());
  const auto opt = brute_force_opt(instance);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GE(opt->cost, instance.ideal_cost() - 1e-9);
  const RunResult run = run_alg(instance);
  EXPECT_GE(run.total_cost, opt->cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property, ::testing::Range<std::uint64_t>(1, 13));

TEST(Theorem1Figure1, BoundHoldsOnPaperInstance) {
  const Instance instance = figure1_instance();
  const RunResult run = run_alg(instance);
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double opt_lp = lp_opt_lower_bound(instance, eps);
    EXPECT_LE(run.total_cost, 2.0 * (2.0 / eps + 1.0) * opt_lp + 1e-6);
  }
}

}  // namespace
}  // namespace rdcn
