// Machine-checks the analysis of Section IV on randomized instance
// families:
//   Lemma 1 -- the beta ledgers balance and equal ALG's reconfigurable cost;
//   Lemma 2 -- charges partition ALG's cost and stay within alpha_p
//              (exactly, in rational arithmetic, for integer weights);
//   Lemma 3 -- ALG <= (2+eps)/eps * D for the witness objective D;
//   Lemma 4/5 -- the halved witness is dual-feasible (violation factor < 2).

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/charging.hpp"
#include "core/dual_witness.hpp"
#include "helpers.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

class DualityProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    instance_ = testing::make_varied_instance(GetParam());
    run_ = run_alg(instance_);
    witness_ = build_dual_witness(instance_, run_);
  }

  Instance instance_;
  RunResult run_;
  DualWitness witness_;
};

TEST_P(DualityProperty, AllPacketsDelivered) {
  EXPECT_TRUE(all_delivered(instance_, run_));
  EXPECT_NEAR(run_.total_cost, recompute_cost(instance_, run_), 1e-6);
  EXPECT_NEAR(run_.total_cost, recompute_cost_active_form(instance_, run_), 1e-6);
}

TEST_P(DualityProperty, Lemma1BetaLedgersBalance) {
  EXPECT_NEAR(lemma1_gap(witness_, run_), 0.0, 1e-6);
  // beta never exceeds ALG's cost (Lemma 1's inequality).
  EXPECT_LE(witness_.sum_beta_t, run_.total_cost + 1e-6);
}

TEST_P(DualityProperty, Lemma2ChargesWithinAlpha) {
  const ChargingAudit audit = audit_charging(instance_, run_);
  EXPECT_LE(audit.max_overcharge, 1e-7) << "some packet charged above alpha_p";
  EXPECT_NEAR(audit.cover_gap, 0.0, 1e-6) << "charges do not partition ALG's cost";
}

TEST_P(DualityProperty, Lemma2ExactRationalAudit) {
  ASSERT_TRUE(instance_.has_integer_weights());
  const ExactChargingAudit audit = audit_charging_exact(instance_, run_);
  EXPECT_TRUE(audit.charges_cover_cost);
  EXPECT_TRUE(audit.within_alpha);
  // The engine's double alphas agree with the exact recomputation.
  for (std::size_t i = 0; i < instance_.num_packets(); ++i) {
    EXPECT_NEAR(run_.outcomes[i].route.alpha, audit.alpha[i].to_double(), 1e-9);
  }
  // And the exact total cost matches the engine's accounting.
  EXPECT_NEAR(audit.total_cost.to_double(), run_.total_cost, 1e-6);
}

TEST_P(DualityProperty, Lemma3AlgWithinDualObjective) {
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double dual_objective = witness_.objective(eps);
    // ALG <= (2+eps)/eps * D  (Lemma 3). Rearranged to avoid dividing by a
    // possibly tiny D.
    EXPECT_LE(run_.total_cost * eps / (2.0 + eps), dual_objective + 1e-6)
        << "eps=" << eps;
  }
}

TEST_P(DualityProperty, Lemma4HalvedWitnessFeasible) {
  const DualFeasibilityReport report = check_dual_feasibility(instance_, witness_);
  EXPECT_TRUE(report.halved_feasible);
  EXPECT_LT(report.max_violation_ratio, 2.0 + 1e-9);
  EXPECT_GT(report.constraints_checked, 0u);
}

TEST_P(DualityProperty, AlphaSumDominatesCost) {
  // Summing Lemma 2 over packets: ALG <= sum_p alpha_p.
  EXPECT_LE(run_.total_cost, witness_.sum_alpha + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityProperty, ::testing::Range<std::uint64_t>(1, 41));
// Larger, congested shapes (60-100 packets, deeper queues, attach delays).
INSTANTIATE_TEST_SUITE_P(LargeSeeds, DualityProperty,
                         ::testing::Range<std::uint64_t>(101, 113));

}  // namespace
}  // namespace rdcn
