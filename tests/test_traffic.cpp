// Tests for the traffic/ subsystem: arrival determinism per source, id /
// arrival sequencing invariants, rho calibration landing near the measured
// offered load, and trace capture/replay round trips.

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "net/builders.hpp"
#include "traffic/source.hpp"
#include "workload/generator.hpp"

namespace rdcn {
namespace {

Topology test_topology(std::uint64_t seed = 7) {
  TwoTierConfig config;
  config.racks = 6;
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  config.density = 0.8;
  config.max_edge_delay = 2;
  Rng rng(seed);
  return build_two_tier(config, rng);
}

TrafficConfig poisson_config(double rho = 0.7) {
  TrafficConfig config;
  config.process = ArrivalProcess::Poisson;
  config.rho = rho;
  config.shape.skew = PairSkew::Uniform;
  config.shape.weights = WeightDist::UniformInt;
  config.shape.weight_max = 10;
  config.shape.seed = 11;
  return config;
}

void expect_same_sequence(TrafficSource& a, TrafficSource& b, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_TRUE(pa.has_value());
    ASSERT_TRUE(pb.has_value());
    EXPECT_EQ(pa->id, pb->id);
    EXPECT_EQ(pa->arrival, pb->arrival);
    EXPECT_EQ(pa->weight, pb->weight);
    EXPECT_EQ(pa->source, pb->source);
    EXPECT_EQ(pa->destination, pb->destination);
  }
}

// ------------------------------------------------------------ determinism --

TEST(TrafficSource, PoissonRegeneratesIdenticalSequenceFromSeed) {
  const Topology topology = test_topology();
  const TrafficConfig config = poisson_config();
  auto a = make_source(topology, config);
  auto b = make_source(topology, config);
  expect_same_sequence(*a, *b, 500);
}

TEST(TrafficSource, OnOffRegeneratesIdenticalSequenceFromSeed) {
  const Topology topology = test_topology();
  TrafficConfig config = poisson_config();
  config.process = ArrivalProcess::OnOff;
  auto a = make_source(topology, config);
  auto b = make_source(topology, config);
  expect_same_sequence(*a, *b, 500);
}

TEST(TrafficSource, DifferentSeedsDiverge) {
  const Topology topology = test_topology();
  TrafficConfig config = poisson_config();
  auto a = make_source(topology, config);
  config.shape.seed = 12;
  auto b = make_source(topology, config);
  bool differs = false;
  for (std::size_t i = 0; i < 200 && !differs; ++i) {
    const auto pa = a->next();
    const auto pb = b->next();
    differs = pa->arrival != pb->arrival || pa->weight != pb->weight ||
              pa->source != pb->source || pa->destination != pb->destination;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficSource, IdsSequentialArrivalsNondecreasingFromOne) {
  const Topology topology = test_topology();
  for (const ArrivalProcess process : {ArrivalProcess::Poisson, ArrivalProcess::OnOff}) {
    TrafficConfig config = poisson_config();
    config.process = process;
    auto source = make_source(topology, config);
    Time last_arrival = 1;
    for (PacketIndex expected_id = 0; expected_id < 400; ++expected_id) {
      const auto packet = source->next();
      ASSERT_TRUE(packet.has_value());
      EXPECT_EQ(packet->id, expected_id);
      EXPECT_GE(packet->arrival, last_arrival);
      EXPECT_GT(packet->weight, 0.0);
      EXPECT_TRUE(topology.routable(packet->source, packet->destination));
      last_arrival = packet->arrival;
    }
  }
}

// ------------------------------------------------------------ calibration --

TEST(TrafficSource, RhoTargetingMatchesMeasuredOfferedLoad) {
  const Topology topology = test_topology();
  for (const double rho : {0.5, 0.9}) {
    TrafficConfig config = poisson_config(rho);
    auto source = make_source(topology, config);
    const std::vector<Packet> packets = record_arrivals(*source, 20000);
    ASSERT_EQ(packets.size(), 20000u);
    double demand = 0.0;
    for (const Packet& p : packets) {
      demand += static_cast<double>(cheapest_demand(topology, p.source, p.destination));
    }
    const auto span = static_cast<double>(packets.back().arrival);
    const double measured = demand / (span * service_capacity(topology));
    EXPECT_NEAR(measured, rho, 0.1 * rho) << "rho " << rho;
  }
}

TEST(TrafficSource, OnOffPreservesLongRunRate) {
  const Topology topology = test_topology();
  TrafficConfig config = poisson_config(0.7);
  config.process = ArrivalProcess::OnOff;
  auto source = make_source(topology, config);
  const std::vector<Packet> packets = record_arrivals(*source, 30000);
  double demand = 0.0;
  for (const Packet& p : packets) {
    demand += static_cast<double>(cheapest_demand(topology, p.source, p.destination));
  }
  const auto span = static_cast<double>(packets.back().arrival);
  const double measured = demand / (span * service_capacity(topology));
  // The modulated chain mixes more slowly than iid Poisson; allow 15%.
  EXPECT_NEAR(measured, 0.7, 0.15 * 0.7);
}

TEST(TrafficSource, CalibratedRateScalesWithRhoAndSpeedup) {
  const Topology topology = test_topology();
  TrafficConfig config = poisson_config(0.5);
  const double base = calibrate_rate(topology, config);
  EXPECT_GT(base, 0.0);
  config.rho = 1.0;
  EXPECT_NEAR(calibrate_rate(topology, config), 2.0 * base, 1e-9);
  config.speedup_rounds = 2;
  EXPECT_NEAR(calibrate_rate(topology, config), 4.0 * base, 1e-9);
}

TEST(TrafficSource, ServiceCapacityIsPortBound) {
  const Topology topology = test_topology();
  const auto ports = std::min(topology.num_transmitters(), topology.num_receivers());
  EXPECT_DOUBLE_EQ(service_capacity(topology), static_cast<double>(ports));
  EXPECT_DOUBLE_EQ(service_capacity(topology, 3), 3.0 * static_cast<double>(ports));
}

TEST(TrafficSource, CheapestDemandIsMinEdgeDelay) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 3);
  g.add_edge(t, r, 2);
  EXPECT_EQ(cheapest_demand(g, 0, 0), 2);
  g.add_fixed_link(0, 0, 1);
  EXPECT_EQ(cheapest_demand(g, 0, 0), 2);  // fixed layer never counts
}

/// A mostly-fixed-layer topology: one reconfigurable pair among many pairs
/// routable only over fixed links (all of those have cheapest demand 0).
/// The sampler excludes same-index (intra-rack) pairs, so the
/// reconfigurable edge sits on the cross pair (0, 1).
Topology mostly_fixed_topology() {
  Topology g;
  g.add_sources(4);
  g.add_destinations(4);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(1);
  g.add_edge(t, r, 2);
  for (NodeIndex s = 0; s < 4; ++s) {
    for (NodeIndex d = 0; d < 4; ++d) g.add_fixed_link(s, d, 5);
  }
  return g;
}

TEST(TrafficSource, DemandEstimateSurfacesZeroDemandPairs) {
  const Topology g = mostly_fixed_topology();
  WorkloadConfig shape;
  shape.skew = PairSkew::Uniform;
  shape.seed = 3;
  const DemandEstimate estimate = estimate_service_demand(g, shape);
  // 1 of the 12 cross-rack uniform pairs touches the reconfigurable layer.
  EXPECT_NEAR(estimate.zero_fraction, 11.0 / 12.0, 0.03);
  EXPECT_GT(estimate.mean_demand, 0.0);
  // The plain mean wrapper agrees with the profile's mean.
  EXPECT_DOUBLE_EQ(mean_service_demand(g, shape), estimate.mean_demand);
  // A fully reconfigurable topology reports no zero-demand draws.
  EXPECT_DOUBLE_EQ(estimate_service_demand(test_topology(), shape).zero_fraction, 0.0);
}

TEST(TrafficSource, CalibrationRejectsMostlyZeroDemandShapes) {
  // rho over a shape where ~94% of pairs never touch the reconfigurable
  // layer would silently describe a sliver of the traffic: reject by
  // default, allow with an explicit opt-in.
  const Topology g = mostly_fixed_topology();
  TrafficConfig config = poisson_config(0.7);
  EXPECT_THROW(calibrate_rate(g, config), std::invalid_argument);
  config.max_zero_demand_fraction = 1.0;  // explicit opt-in
  EXPECT_GT(calibrate_rate(g, config), 0.0);
  config.max_zero_demand_fraction = 2.0;  // nonsensical bound
  EXPECT_THROW(calibrate_rate(g, config), std::invalid_argument);
}

// ------------------------------------------------------------------ trace --

TEST(TrafficSource, TraceSourceReplaysRecordedPacketsVerbatim) {
  const Topology topology = test_topology();
  auto live = make_source(topology, poisson_config());
  const std::vector<Packet> recorded = record_arrivals(*live, 300);
  auto replay = make_trace_source(recorded);
  for (const Packet& expected : recorded) {
    const auto packet = replay->next();
    ASSERT_TRUE(packet.has_value());
    EXPECT_EQ(packet->id, expected.id);
    EXPECT_EQ(packet->arrival, expected.arrival);
    EXPECT_EQ(packet->weight, expected.weight);
    EXPECT_EQ(packet->source, expected.source);
    EXPECT_EQ(packet->destination, expected.destination);
  }
  EXPECT_FALSE(replay->next().has_value());
}

TEST(TrafficSource, RecordedArrivalsFormAValidInstance) {
  const Topology topology = test_topology();
  auto source = make_source(topology, poisson_config());
  const Instance instance(topology, record_arrivals(*source, 500));
  EXPECT_TRUE(instance.validate().empty()) << instance.validate();
  // Round trip through the text format stays bit-exact.
  const Instance reloaded = Instance::from_string(instance.to_string());
  EXPECT_EQ(reloaded.to_string(), instance.to_string());
}

TEST(TrafficSource, MakeSourceRejectsTraceProcess) {
  TrafficConfig config = poisson_config();
  config.process = ArrivalProcess::Trace;
  EXPECT_THROW(make_source(test_topology(), config), std::invalid_argument);
}

TEST(TrafficSource, PoissonMatchesBatchGeneratorDistributions) {
  // The streaming source reuses workload/'s PairSampler and sample_weight
  // with the same seed discipline, so with the batch generator's rate it
  // reproduces generate_workload's packet sequence exactly.
  const Topology topology = test_topology();
  TrafficConfig config;
  config.rho = 0.6;
  config.shape.skew = PairSkew::Zipf;
  config.shape.zipf_exponent = 1.1;
  config.shape.weights = WeightDist::UniformInt;
  config.shape.weight_max = 10;
  config.shape.seed = 21;

  WorkloadConfig batch_config = config.shape;
  batch_config.num_packets = 400;
  // Pin the batch generator to the exact calibrated double, so the two
  // Poisson draws see bit-identical means.
  batch_config.arrival_rate = calibrate_rate(topology, config);
  const Instance batch = generate_workload(topology, batch_config);

  auto source = make_source(topology, config);
  for (const Packet& expected : batch.packets()) {
    const auto packet = source->next();
    ASSERT_TRUE(packet.has_value());
    EXPECT_EQ(packet->id, expected.id);
    EXPECT_EQ(packet->arrival, expected.arrival);
    EXPECT_EQ(packet->weight, expected.weight);
    EXPECT_EQ(packet->source, expected.source);
    EXPECT_EQ(packet->destination, expected.destination);
  }
}

// ----------------------------------------- calibration over the topology zoo --

TEST(TrafficZoo, MatchingCapacityEqualsPortsOnDenseFabrics) {
  const Topology crossbar = build_crossbar(6);
  EXPECT_DOUBLE_EQ(matching_capacity(crossbar), service_capacity(crossbar));
  const Topology pod = test_topology();
  EXPECT_DOUBLE_EQ(matching_capacity(pod), service_capacity(pod));
  EXPECT_DOUBLE_EQ(matching_capacity(crossbar, 2), 2.0 * matching_capacity(crossbar));
}

TEST(TrafficZoo, MatchingCapacityExposesDarkPortsOnSparseRotor) {
  // One rotor matching over two ports per rack: port 1 never gets an edge,
  // so at most `racks` chunks move per step -- half the Ports bound.
  RotorConfig config;
  config.racks = 4;
  config.ports_per_rack = 2;
  config.num_matchings = 1;
  const Topology g = build_rotor(config);
  EXPECT_DOUBLE_EQ(service_capacity(g), 8.0);
  EXPECT_DOUBLE_EQ(matching_capacity(g), 4.0);
}

TEST(TrafficZoo, MatchingCapacityExposesDarkPortsOnLowDegreeExpander) {
  ExpanderConfig config;
  config.racks = 6;
  config.degree = 1;  // one permutation: only laser port 0 is wired
  config.lasers_per_rack = 2;
  config.photodetectors_per_rack = 2;
  config.fixed_link_delay = 0;
  Rng rng(5);
  const Topology g = build_expander(config, rng);
  EXPECT_DOUBLE_EQ(service_capacity(g), 12.0);
  EXPECT_DOUBLE_EQ(matching_capacity(g), 6.0);
}

TEST(TrafficZoo, MaxMatchingModelScalesTheCalibratedRate) {
  RotorConfig rotor;
  rotor.racks = 4;
  rotor.ports_per_rack = 2;
  rotor.num_matchings = 1;
  const Topology g = build_rotor(rotor);
  TrafficConfig config = poisson_config(0.8);
  const double ports_rate = calibrate_rate(g, config);
  config.capacity_model = CapacityModel::MaxMatching;
  const double matching_rate = calibrate_rate(g, config);
  // Same demand estimate, half the capacity: exactly half the rate.
  EXPECT_NEAR(matching_rate, 0.5 * ports_rate, 1e-12);
}

TEST(TrafficZoo, CalibrationTargetsMeasuredLoadOnEveryZooShape) {
  std::vector<Topology> fabrics;
  {
    Rng rng(41);
    fabrics.push_back(build_oversubscribed(OversubscribedConfig{}, rng));
  }
  {
    ExpanderConfig config;
    config.fixed_link_delay = 0;  // pure expander: zero-demand fraction 0
    Rng rng(42);
    fabrics.push_back(build_expander(config, rng));
  }
  fabrics.push_back(build_rotor(RotorConfig{}));

  for (std::size_t i = 0; i < fabrics.size(); ++i) {
    TrafficConfig config = poisson_config(0.7);
    // Oversubscribed pods route a sizable minority of pairs fixed-only.
    config.max_zero_demand_fraction = 0.75;
    const double rate = calibrate_rate(fabrics[i], config);
    ASSERT_GT(rate, 0.0) << "fabric " << i;
    auto source = make_source(fabrics[i], config);
    const std::vector<Packet> packets = record_arrivals(*source, 4000);
    ASSERT_EQ(packets.size(), 4000u);
    const double span = static_cast<double>(packets.back().arrival);
    const double measured = static_cast<double>(packets.size()) / span;
    EXPECT_NEAR(measured, rate, 0.08 * rate) << "fabric " << i;
  }
}

}  // namespace
}  // namespace rdcn
