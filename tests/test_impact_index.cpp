// The incremental impact index (sim/impact_index.hpp), pinned at three
// levels:
//
//  1. unit: ImpactAggregate against hand-built multisets, including the
//     canonical-shape guarantee -- any insertion/removal history of the
//     same multiset yields BIT-identical counts and weight sums;
//  2. differential: check_impact_index replays ALG over the topology zoo
//     and the random instance family, cross-validating the live index
//     against the naive scan and a fresh canonical rebuild at every
//     candidate edge of every dispatch;
//  3. golden: schedule hashes of all 12 registry policies over four zoo
//     shapes, captured from pre-index main -- the index refactor changed
//     no schedule anywhere.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "sim/impact_index.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace rdcn {
namespace {

// --------------------------------------------------------------------------
// 1. ImpactAggregate units

TEST(ImpactAggregate, HandMultiset) {
  // Chunks: 3 @ 0.5, 2 @ 1.0, 4 @ 2.0.
  ImpactAggregate agg;
  agg.add(1.0, 2);
  agg.add(0.5, 3);
  agg.add(2.0, 4);
  EXPECT_EQ(agg.chunks(), 9);

  const WeightBelow none = agg.below(0.25);
  EXPECT_EQ(none.chunks, 0);
  EXPECT_DOUBLE_EQ(none.weight, 0.0);

  // Strictly below 1.0: only the 0.5s; the 1.0s tie upward (>= is H).
  const WeightBelow below_one = agg.below(1.0);
  EXPECT_EQ(below_one.chunks, 3);
  EXPECT_DOUBLE_EQ(below_one.weight, 1.5);

  const WeightBelow below_all = agg.below(3.0);
  EXPECT_EQ(below_all.chunks, 9);
  EXPECT_DOUBLE_EQ(below_all.weight, 1.5 + 2.0 + 8.0);
}

TEST(ImpactAggregate, CanonicalShapeIsHistoryIndependent) {
  // The same final multiset reached through three different histories
  // (sorted inserts; reverse inserts; overshoot-then-remove with key
  // churn) must produce bit-identical sums at every threshold.
  const std::vector<double> keys = {0.125, 0.2, 1.0 / 3.0, 0.5, 0.7, 1.0, 1.5, 4.0};
  const std::vector<std::int64_t> counts = {3, 1, 7, 2, 5, 1, 4, 2};

  ImpactAggregate sorted, reversed, churned;
  for (std::size_t i = 0; i < keys.size(); ++i) sorted.add(keys[i], counts[i]);
  for (std::size_t i = keys.size(); i-- > 0;) reversed.add(keys[i], counts[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    churned.add(keys[i], counts[i] + 5);
    churned.add(keys[(i + 3) % keys.size()], 2);  // transient extra mass
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    churned.add(keys[i], -5);
    churned.add(keys[(i + 3) % keys.size()], -2);
  }

  for (const double threshold : {0.1, 0.2, 0.4, 0.5, 0.9, 1.0, 2.0, 10.0}) {
    const WeightBelow a = sorted.below(threshold);
    const WeightBelow b = reversed.below(threshold);
    const WeightBelow c = churned.below(threshold);
    EXPECT_EQ(a.chunks, b.chunks) << threshold;
    EXPECT_EQ(a.chunks, c.chunks) << threshold;
    // Bitwise, not NEAR: the canonical treap shape fixes the bracketing.
    EXPECT_EQ(a.weight, b.weight) << threshold;
    EXPECT_EQ(a.weight, c.weight) << threshold;
  }
  EXPECT_EQ(sorted.chunks(), reversed.chunks());
  EXPECT_EQ(sorted.chunks(), churned.chunks());
}

TEST(ImpactAggregate, RemovalToEmptyAndReuse) {
  ImpactAggregate agg;
  for (int round = 0; round < 3; ++round) {
    agg.add(0.5, 2);
    agg.add(1.5, 1);
    EXPECT_EQ(agg.chunks(), 3);
    agg.add(0.5, -2);
    agg.add(1.5, -1);
    EXPECT_EQ(agg.chunks(), 0);
    EXPECT_EQ(agg.below(10.0).chunks, 0);
    EXPECT_DOUBLE_EQ(agg.below(10.0).weight, 0.0);
  }
}

TEST(ImpactAggregate, RandomizedAgainstFlatReference) {
  // Counts are exact against a flat reference at every probe; the weight
  // sum agrees with a flat double sum to reassociation tolerance and with
  // an independently-ordered aggregate bitwise.
  Rng rng(7);
  ImpactAggregate agg;
  std::vector<std::pair<double, std::int64_t>> reference;  // key -> count
  for (int step = 0; step < 4000; ++step) {
    // Keys from a small pool so removals hit existing keys.
    const double key =
        static_cast<double>(1 + rng.next_below(40)) / static_cast<double>(1 + rng.next_below(7));
    auto it = std::find_if(reference.begin(), reference.end(),
                           [&](const auto& kv) { return kv.first == key; });
    const bool remove = it != reference.end() && rng.next_below(3) == 0;
    if (remove) {
      agg.add(key, -it->second);
      reference.erase(it);
    } else {
      const auto delta = static_cast<std::int64_t>(1 + rng.next_below(5));
      agg.add(key, delta);
      if (it == reference.end()) {
        reference.emplace_back(key, delta);
      } else {
        it->second += delta;
      }
    }
    if (step % 97 != 0) continue;
    const double threshold =
        static_cast<double>(1 + rng.next_below(40)) / static_cast<double>(1 + rng.next_below(7));
    std::int64_t want_chunks = 0, want_total = 0;
    double want_weight = 0.0;
    for (const auto& [k, count] : reference) {
      want_total += count;
      if (k < threshold) {
        want_chunks += count;
        want_weight += static_cast<double>(count) * k;
      }
    }
    const WeightBelow got = agg.below(threshold);
    EXPECT_EQ(got.chunks, want_chunks);
    EXPECT_EQ(agg.chunks(), want_total);
    EXPECT_NEAR(got.weight, want_weight, 1e-9 * (1.0 + want_weight));

    ImpactAggregate rebuilt;  // sorted-order rebuild: bitwise equal
    std::vector<std::pair<double, std::int64_t>> sorted = reference;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [k, count] : sorted) rebuilt.add(k, count);
    EXPECT_EQ(rebuilt.below(threshold).weight, got.weight);
  }
}

// --------------------------------------------------------------------------
// 2. Differential: live index vs scan vs fresh rebuild, over real runs

struct ZooCase {
  const char* name;
  Topology topology;
  PairSkew skew;
};

std::vector<ZooCase> zoo_cases() {
  std::vector<ZooCase> cases;
  cases.push_back({"crossbar6", build_crossbar(6), PairSkew::Uniform});
  {
    TwoTierConfig net;
    net.racks = 8;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.5;
    net.max_edge_delay = 3;
    Rng rng(5);
    cases.push_back({"two_tier8x2", build_two_tier(net, rng), PairSkew::Hotspot});
  }
  {
    TwoTierConfig net;
    net.racks = 6;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.6;
    net.max_edge_delay = 2;
    net.fixed_link_delay = 6;
    Rng rng(11);
    cases.push_back({"hybrid6x2", build_two_tier(net, rng), PairSkew::Incast});
  }
  {
    ExpanderConfig net;
    net.racks = 10;
    net.degree = 3;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.max_edge_delay = 2;
    Rng rng(9);
    cases.push_back({"expander10d3", build_expander(net, rng), PairSkew::Uniform});
  }
  return cases;
}

Instance zoo_instance(const ZooCase& shape) {
  WorkloadConfig workload;
  workload.num_packets = 120;
  workload.arrival_rate = 4.0;
  workload.skew = shape.skew;
  workload.weights = WeightDist::UniformInt;
  workload.weight_max = 10;
  workload.seed = 29;
  return generate_workload(shape.topology, workload);
}

TEST(ImpactIndexDifferential, ZooShapes) {
  for (const ZooCase& shape : zoo_cases()) {
    check::DiffReport report;
    check::check_impact_index(zoo_instance(shape), report);
    EXPECT_TRUE(report.ok()) << shape.name << ": " << report.to_string();
  }
}

class ImpactIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImpactIndexProperty, IndexMatchesOraclesEverywhere) {
  check::DiffReport report;
  check::check_impact_index(testing::make_varied_instance(GetParam()), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(VariedInstances, ImpactIndexProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 101, 104,
                                           107, 110, 113, 116, 119, 122));

TEST(ImpactIndexLifecycle, NonImpactPoliciesNeverEnableWeightStructures) {
  // JSQ reads only the O(1) counters; the weight treaps must stay off for
  // the entire run (no rebuilds, no deferred events, no decay churn).
  const Instance instance = testing::make_varied_instance(105);
  const PolicyFactory policy = named_policy("jsq");
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  Engine engine(instance, *dispatcher, *scheduler, {});
  ASSERT_FALSE(engine.impact_index().weight_ready());
  engine.run();
  EXPECT_FALSE(engine.impact_index().weight_ready());
  EXPECT_EQ(engine.impact_index().deferred_events(), 0u);
  EXPECT_EQ(engine.impact_index().live_weight_nodes(), 0u);
}

TEST(ImpactIndexLifecycle, CountersDrainToZero) {
  for (const char* name : {"alg", "jsq", "fifo"}) {
    const Instance instance = testing::make_varied_instance(103);
    const PolicyFactory policy = named_policy(name);
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    Engine engine(instance, *dispatcher, *scheduler, {});
    engine.run();
    const ImpactIndex& index = engine.impact_index();
    for (EdgeIndex e = 0; e < instance.topology().num_edges(); ++e) {
      EXPECT_EQ(index.edge_load(e), 0) << name << " edge " << e;
    }
  }
}

// --------------------------------------------------------------------------
// 3. Schedule goldens: all 12 registry policies, captured pre-index

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t schedule_hash(const std::vector<PacketOutcome>& outcomes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const PacketOutcome& o : outcomes) {
    h = mix64(h, o.route.use_fixed ? 1u : 0u);
    h = mix64(h, static_cast<std::uint64_t>(o.route.use_fixed ? -1 : o.route.edge));
    h = mix64(h, static_cast<std::uint64_t>(o.completion));
    h = mix64(h, o.chunk_transmit_steps.size());
    for (Time t : o.chunk_transmit_steps) h = mix64(h, static_cast<std::uint64_t>(t));
  }
  return h;
}

struct ZooGolden {
  const char* shape;
  const char* policy;
  double cost;
  Time makespan;
  std::uint64_t hash;
};

// Captured on pre-index main (PR 5 head) with the identical zoo_cases /
// zoo_instance code above. The index must not flip a single decision.
constexpr ZooGolden kZooGoldens[] = {
    {"crossbar6", "alg", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "maxweight", 1280, 34, 0xb77adf6f2b8d70e4ULL},
    {"crossbar6", "islip", 2079, 35, 0x88c35e53096bfe00ULL},
    {"crossbar6", "rotor", 5334, 63, 0xfec60f08de77a9d0ULL},
    {"crossbar6", "random", 1900, 34, 0x931e86ca6e3a0062ULL},
    {"crossbar6", "fifo", 1810, 33, 0xc299fb7a27dbcefcULL},
    {"crossbar6", "impact", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "random-dispatch", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "round-robin", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "jsq", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "min-delay", 1339, 33, 0x2b059e493820232cULL},
    {"crossbar6", "direct-only", 1339, 33, 0x2b059e493820232cULL},
    {"two_tier8x2", "alg", 4346.8333333333339, 72, 0x60663b809d9a9907ULL},
    {"two_tier8x2", "maxweight", 6321.6666666666661, 92, 0x6c011c3729d76c2eULL},
    {"two_tier8x2", "islip", 9736.3333333333339, 93, 0x4d6eff3c969ecb13ULL},
    {"two_tier8x2", "rotor", 115884.99999999999, 985, 0xcdd9dc546acded1eULL},
    {"two_tier8x2", "random", 10151, 92, 0xbbe2e23a5231289fULL},
    {"two_tier8x2", "fifo", 9751, 92, 0x803d06a7363a5022ULL},
    {"two_tier8x2", "impact", 4346.8333333333339, 72, 0x60663b809d9a9907ULL},
    {"two_tier8x2", "random-dispatch", 7039.5, 110, 0xf8db88a254fffdebULL},
    {"two_tier8x2", "round-robin", 6159.6666666666661, 92, 0xb39744b330e2c42cULL},
    {"two_tier8x2", "jsq", 6416.8333333333339, 92, 0xa587a15dede17af3ULL},
    {"two_tier8x2", "min-delay", 8148.1666666666661, 115, 0x1154a25965cb5ea4ULL},
    {"two_tier8x2", "direct-only", 15613.500000000002, 178, 0xbddbcb4d04e6d1d7ULL},
    {"hybrid6x2", "alg", 2962, 37, 0x3da31161e8671838ULL},
    {"hybrid6x2", "maxweight", 8911.5, 80, 0x13b58b99163f6605ULL},
    {"hybrid6x2", "islip", 17151, 80, 0x52ea1e04ad5f9bd9ULL},
    {"hybrid6x2", "rotor", 54588, 229, 0xef809f2bb66013ccULL},
    {"hybrid6x2", "random", 17110.5, 80, 0xa2cda0f76a924ff5ULL},
    {"hybrid6x2", "fifo", 17132.5, 80, 0xc365ec5f0dac759fULL},
    {"hybrid6x2", "impact", 2962, 37, 0x3da31161e8671838ULL},
    {"hybrid6x2", "random-dispatch", 9569.5, 84, 0xfbd4dacb22a993deULL},
    {"hybrid6x2", "round-robin", 8911.5, 84, 0xaf9ba44c89992b83ULL},
    {"hybrid6x2", "jsq", 8911.5, 80, 0x13b58b99163f6605ULL},
    {"hybrid6x2", "min-delay", 12363.5, 116, 0xa455878950165301ULL},
    {"hybrid6x2", "direct-only", 3948, 34, 0x0a48d037b4d131e8ULL},
    {"expander10d3", "alg", 3747, 36, 0xcf1a9024e33c165eULL},
    {"expander10d3", "maxweight", 3750, 36, 0x5f8e46eb15384d5bULL},
    {"expander10d3", "islip", 3752, 36, 0xf716a01d864f4b98ULL},
    {"expander10d3", "rotor", 3956, 36, 0x8f9901048d544d2dULL},
    {"expander10d3", "random", 3751, 36, 0x57fa3246c4a1489bULL},
    {"expander10d3", "fifo", 3752, 36, 0xf716a01d864f4b98ULL},
    {"expander10d3", "impact", 3747, 36, 0xcf1a9024e33c165eULL},
    {"expander10d3", "random-dispatch", 3749, 36, 0xfe63af9467f26337ULL},
    {"expander10d3", "round-robin", 3751, 36, 0x5418dbe8cfb8a562ULL},
    {"expander10d3", "jsq", 3750, 36, 0x5f8e46eb15384d5bULL},
    {"expander10d3", "min-delay", 3747, 36, 0xcf1a9024e33c165eULL},
    {"expander10d3", "direct-only", 5264, 36, 0x849b5a6b01f7e0c4ULL},
};

TEST(ImpactIndexGoldens, AllRegistryPoliciesUnchanged) {
  const std::vector<ZooCase> cases = zoo_cases();
  const std::vector<std::string> names = policy_names();
  ASSERT_EQ(names.size(), 12u);
  std::size_t row = 0;
  for (const ZooCase& shape : cases) {
    const Instance instance = zoo_instance(shape);
    for (const std::string& name : names) {
      ASSERT_LT(row, std::size(kZooGoldens));
      const ZooGolden& want = kZooGoldens[row++];
      ASSERT_STREQ(want.shape, shape.name);
      ASSERT_STREQ(want.policy, name.c_str());
      const PolicyFactory policy = named_policy(name);
      auto dispatcher = policy.dispatcher();
      auto scheduler = policy.scheduler(instance.topology());
      const RunResult run = simulate(instance, *dispatcher, *scheduler, {});
      EXPECT_NEAR(run.total_cost, want.cost, 1e-9 * (1.0 + want.cost))
          << shape.name << "/" << name;
      EXPECT_EQ(run.makespan, want.makespan) << shape.name << "/" << name;
      EXPECT_EQ(schedule_hash(run.outcomes), want.hash) << shape.name << "/" << name;
    }
  }
  EXPECT_EQ(row, std::size(kZooGoldens));
}

}  // namespace
}  // namespace rdcn
