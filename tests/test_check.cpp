// Tests for the check/ validation subsystem: the per-step invariant
// auditor (positive runs under every engine extension, negative runs with
// deliberately broken schedulers), the differential checker's oracles on
// golden instance families and streaming specs, the seed-derived fuzz
// entry points, and the failure minimizer's bisection.
//
// DifferentialRegression is the landing pad for minimized reproducers
// emitted by tools/rdcn_fuzz (paste the printed TEST(...) here verbatim).

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/differential.hpp"
#include "check/minimize.hpp"
#include "core/alg.hpp"
#include "helpers.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "run/random.hpp"
#include "run/scenario.hpp"
#include "sim/metrics.hpp"

namespace rdcn {
namespace {

// --------------------------------------------------------------- auditor --

TEST(InvariantAuditor, ObservationOnlyAcrossPoliciesAndShapes) {
  // Audited runs must neither throw nor perturb the schedule.
  for (const std::uint64_t seed : {1ULL, 3ULL, 7ULL, 103ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    for (const char* name : {"alg", "maxweight", "fifo", "islip", "random", "rotor"}) {
      const PolicyFactory policy = named_policy(name);
      auto d0 = policy.dispatcher();
      auto s0 = policy.scheduler(instance.topology());
      const RunResult plain = simulate(instance, *d0, *s0, {});
      auto d1 = policy.dispatcher();
      auto s1 = policy.scheduler(instance.topology());
      EngineOptions audited;
      audited.audit = true;
      const RunResult checked = simulate(instance, *d1, *s1, audited);
      EXPECT_EQ(plain.total_cost, checked.total_cost) << name << " seed " << seed;
      EXPECT_EQ(plain.makespan, checked.makespan) << name << " seed " << seed;
    }
  }
}

TEST(InvariantAuditor, PassesUnderEveryEngineExtension) {
  const Instance instance = testing::make_varied_instance(101);
  EngineOptions speedup;
  speedup.speedup_rounds = 2;
  EngineOptions capacity;
  capacity.endpoint_capacity = 2;
  EngineOptions reconfig;
  reconfig.reconfig_delay = 1;
  for (EngineOptions options : {speedup, capacity, reconfig}) {
    options.audit = true;
    ImpactDispatcher dispatcher;
    StableMatchingScheduler scheduler;
    EXPECT_TRUE(all_delivered(instance, simulate(instance, dispatcher, scheduler, options)));
  }
}

/// Selects the first two candidates regardless of conflicts -- on an
/// instance where both pend on one transmitter, an infeasible "matching".
class DoubleBookingScheduler final : public SchedulePolicy {
 public:
  void select(const Engine&, Time, const std::vector<Candidate>& candidates,
              Selection& out) override {
    if (!candidates.empty()) out.push(0);
    if (candidates.size() >= 2) out.push(1);
  }
};

class DuplicateIndexScheduler final : public SchedulePolicy {
 public:
  void select(const Engine&, Time, const std::vector<Candidate>& candidates,
              Selection& out) override {
    if (!candidates.empty()) {
      out.push(0);
      out.push(0);
    }
  }
};

class OutOfRangeScheduler final : public SchedulePolicy {
 public:
  void select(const Engine&, Time, const std::vector<Candidate>& candidates,
              Selection& out) override {
    out.push(candidates.size() + 7);
  }
};

/// One source feeding one transmitter with edges to two receivers, two
/// same-step packets: any two-element selection double-books transmitter 0.
Instance shared_transmitter_instance() {
  Topology topology;
  const NodeIndex source = topology.add_sources(1);
  const NodeIndex destinations = topology.add_destinations(2);
  const NodeIndex transmitter = topology.add_transmitter(source);
  const NodeIndex r0 = topology.add_receiver(destinations);
  const NodeIndex r1 = topology.add_receiver(destinations + 1);
  topology.add_edge(transmitter, r0, 1);
  topology.add_edge(transmitter, r1, 1);
  Instance instance(std::move(topology), {});
  instance.add_packet(1, 2.0, source, destinations);
  instance.add_packet(1, 1.0, source, destinations + 1);
  return instance;
}

TEST(InvariantAuditor, CatchesInfeasibleMatchingBeforeTheEngine) {
  const Instance instance = shared_transmitter_instance();
  ImpactDispatcher dispatcher;
  DoubleBookingScheduler scheduler;
  EngineOptions audited;
  audited.audit = true;
  // With the audit on, the independent validator fires first and the
  // violation surfaces as AuditFailure, not the engine's logic_error.
  EXPECT_THROW(simulate(instance, dispatcher, scheduler, audited), AuditFailure);
}

TEST(InvariantAuditor, CatchesDuplicateAndOutOfRangeSelections) {
  const Instance instance = shared_transmitter_instance();
  {
    ImpactDispatcher dispatcher;
    DuplicateIndexScheduler scheduler;
    EngineOptions audited;
    audited.audit = true;
    EXPECT_THROW(simulate(instance, dispatcher, scheduler, audited), AuditFailure);
  }
  {
    ImpactDispatcher dispatcher;
    OutOfRangeScheduler scheduler;
    EngineOptions audited;
    audited.audit = true;
    EXPECT_THROW(simulate(instance, dispatcher, scheduler, audited), AuditFailure);
  }
}

TEST(InvariantAuditor, WithoutAuditTheEngineBackstopStillThrows) {
  const Instance instance = shared_transmitter_instance();
  ImpactDispatcher dispatcher;
  DoubleBookingScheduler scheduler;
  try {
    simulate(instance, dispatcher, scheduler, {});
    FAIL() << "engine accepted an infeasible matching";
  } catch (const AuditFailure&) {
    FAIL() << "no auditor is attached without EngineOptions::audit";
  } catch (const std::logic_error&) {
    SUCCEED();  // the engine's own validation
  }
}

// -------------------------------------------------------- differential --

TEST(DifferentialChecker, CleanOnGoldenInstanceFamilies) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 103ULL}) {
    const Instance instance = testing::make_varied_instance(seed);
    check::DiffOptions options;
    options.policies = {"alg", "maxweight", "fifo", "random"};
    const check::DiffReport report = check::check_instance(instance, options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.to_string();
    EXPECT_GT(report.checks, 4u);
  }
}

TEST(DifferentialChecker, BruteForceAnchorsTheFigure1Instance) {
  // Tiny enough for the exhaustive optimum: every oracle engages.
  const check::DiffReport report = check::check_instance(figure1_instance());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.skipped.empty());
}

TEST(DifferentialChecker, FlagsAnInvalidInstance) {
  Topology topology;
  topology.add_sources(1);
  topology.add_destinations(1);  // no transmitters/receivers, no links
  Instance instance(std::move(topology), {});
  instance.add_packet(1, 1.0, 0, 0);  // unroutable
  const check::DiffReport report = check::check_instance(instance);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string(), "no violations");
}

TEST(DifferentialChecker, StreamSpecCleanAndMeasuredConsistent) {
  StreamSpec spec = random_stream_spec(11);
  spec.warmup_packets = 20;
  spec.measure_packets = 250;
  check::DiffOptions options;
  options.policies = {"alg", "fifo"};
  const check::DiffReport report = check::check_stream(spec, spec.base_seed, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(DifferentialChecker, RejectsMostlyFixedLayerSpecsAsSkipped) {
  // Nearly every pair is fixed-layer only: rho calibration must refuse
  // (zero-demand guard), landing in `skipped`, never in `violations`.
  StreamSpec spec;
  spec.topology.two_tier.racks = 6;
  spec.topology.two_tier.lasers_per_rack = 1;
  spec.topology.two_tier.photodetectors_per_rack = 1;
  spec.topology.two_tier.density = 0.02;
  spec.topology.two_tier.fixed_link_delay = 6;
  spec.measure_packets = 100;
  const check::DiffReport report = check::check_stream(spec, 1);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_FALSE(report.skipped.empty());
}

// ------------------------------------------------------ fuzz entry points --

TEST(FuzzSeeds, BatchAndStreamSeedChecksAreClean) {
  for (const std::uint64_t seed : {2ULL, 9ULL}) {
    const check::DiffReport batch = check::check_scenario_seed(seed);
    EXPECT_TRUE(batch.ok()) << "batch seed " << seed << ":\n" << batch.to_string();
    const check::DiffReport stream = check::check_stream_seed(seed, 200);
    EXPECT_TRUE(stream.ok()) << "stream seed " << seed << ":\n" << stream.to_string();
  }
}

TEST(FuzzSeeds, SpecDerivationIsDeterministic) {
  const ScenarioSpec a = random_scenario_spec(42);
  const ScenarioSpec b = random_scenario_spec(42);
  EXPECT_EQ(a.workload.num_packets, b.workload.num_packets);
  EXPECT_EQ(a.topology.seed_salt, b.topology.seed_salt);
  const Instance ia = ScenarioRunner(a).instance(a.base_seed);
  const Instance ib = ScenarioRunner(b).instance(b.base_seed);
  EXPECT_EQ(ia.to_string(), ib.to_string());
  EXPECT_NE(ia.to_string(), ScenarioRunner(random_scenario_spec(43))
                                .instance(43)
                                .to_string());
}

TEST(FuzzSeeds, TruncateKeepsAValidPrefix) {
  const Instance full = testing::make_varied_instance(7);
  const Instance prefix = check::truncate_packets(full, 5);
  ASSERT_EQ(prefix.num_packets(), 5u);
  EXPECT_TRUE(prefix.validate().empty());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(prefix.packets()[i].id, full.packets()[i].id);
    EXPECT_EQ(prefix.packets()[i].arrival, full.packets()[i].arrival);
  }
  EXPECT_EQ(check::truncate_packets(full, 10'000).num_packets(), full.num_packets());
}

// ----------------------------------------------------------- minimizer --

TEST(Minimizer, BisectionFindsTheMonotoneThreshold) {
  int probes = 0;
  const std::size_t smallest = check::bisect_smallest_failing(1000, [&](std::size_t n) {
    ++probes;
    return n >= 137;
  });
  EXPECT_EQ(smallest, 137u);
  EXPECT_LT(probes, 14);  // logarithmic, not linear
}

TEST(Minimizer, BisectionNeverSettlesOnAPassingSize) {
  // Non-monotone failure: the result may overshoot the true minimum but
  // must itself fail (the documented invariant).
  const auto fails = [](std::size_t n) { return n >= 3 && n != 5 && n != 6; };
  const std::size_t smallest = check::bisect_smallest_failing(64, fails);
  EXPECT_TRUE(fails(smallest));
  EXPECT_EQ(check::bisect_smallest_failing(1, [](std::size_t) { return true; }), 1u);
}

// Minimized reproducers from rdcn_fuzz land below (see tools/rdcn_fuzz).

}  // namespace
}  // namespace rdcn
