// Tests of the Figure-3 / Figure-4 LP builders: strong duality between the
// generated primal and dual models, feasibility of the LP relaxation
// against known schedules, and sanity of the derived horizon.

#include <gtest/gtest.h>

#include "core/alg.hpp"
#include "core/dual_witness.hpp"
#include "helpers.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"
#include "net/builders.hpp"

namespace rdcn {
namespace {

TEST(PaperLps, HorizonCoversSerialSchedule) {
  const Instance instance = figure1_instance();
  const Time horizon = default_lp_horizon(instance, 1.0);
  EXPECT_GE(horizon, 2 + 3 * 5);  // max arrival + (2+eps) * n * max d(e)
}

TEST(PaperLps, PrimalSolvesOnFigure1) {
  const Instance instance = figure1_instance();
  const PrimalLp primal = build_primal_lp(instance, PaperLpOptions{1.0, 0});
  const lp::Solution solution = lp::solve(primal.model);
  ASSERT_EQ(solution.status, lp::SolveStatus::Optimal);
  EXPECT_GT(solution.objective, 0.0);
  // A relaxation of a speed-limited OPT: at eps=1 OPT is 3x slower than
  // unit speed, but fractional; it must still pay at least the trivial
  // per-packet path latency.
  EXPECT_GE(solution.objective, instance.ideal_cost() - 1e-6);
  EXPECT_LE(primal.model.max_violation(solution.values), 1e-7);
}

TEST(PaperLps, StrongDualityBetweenFigure3And4) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    testing::RandomInstanceSpec spec;
    spec.seed = seed;
    spec.racks = 3;
    spec.lasers = 1;
    spec.photodetectors = 1;
    spec.packets = 4;
    spec.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
    spec.fixed_link_delay = (seed % 2 == 0) ? 4 : 0;
    const Instance instance = testing::make_random_instance(spec);

    const PaperLpOptions options{1.0, 0};
    const PrimalLp primal = build_primal_lp(instance, options);
    const DualLp dual = build_dual_lp(instance, options);
    const lp::Solution primal_solution = lp::solve(primal.model);
    const lp::Solution dual_solution = lp::solve(dual.model);
    ASSERT_EQ(primal_solution.status, lp::SolveStatus::Optimal) << "seed " << seed;
    ASSERT_EQ(dual_solution.status, lp::SolveStatus::Optimal) << "seed " << seed;
    EXPECT_NEAR(primal_solution.objective, dual_solution.objective,
                1e-5 * (1.0 + primal_solution.objective))
        << "Figure 3 vs Figure 4 strong duality, seed " << seed;
  }
}

TEST(PaperLps, WitnessValueBelowDualOptimum) {
  // The witness is one (half-)feasible dual point; the dual LP optimum
  // dominates its value.
  const Instance instance = figure1_instance();
  const RunResult run = run_alg(instance);
  const DualWitness witness = build_dual_witness(instance, run);
  const double eps = 1.0;
  const DualLp dual = build_dual_lp(instance, PaperLpOptions{eps, 0});
  const lp::Solution dual_solution = lp::solve(dual.model);
  ASSERT_EQ(dual_solution.status, lp::SolveStatus::Optimal);
  EXPECT_LE(witness.lower_bound(eps), dual_solution.objective + 1e-6);
}

TEST(PaperLps, BudgetTightensWithEps) {
  const Instance instance = figure1_instance();
  // Same horizon for comparability.
  const Time horizon = default_lp_horizon(instance, 4.0);
  const double v_half = lp_opt_lower_bound(instance, 0.5, horizon);
  const double v_two = lp_opt_lower_bound(instance, 2.0, horizon);
  const double v_four = lp_opt_lower_bound(instance, 4.0, horizon);
  EXPECT_LE(v_half, v_two + 1e-7);
  EXPECT_LE(v_two, v_four + 1e-7);
}

TEST(PaperLps, XVarBookkeepingConsistent) {
  const Instance instance = figure1_instance();
  const PrimalLp primal = build_primal_lp(instance, PaperLpOptions{1.0, 0});
  ASSERT_EQ(primal.x_vars.size(), primal.x_indices.size());
  for (std::size_t k = 0; k < primal.x_vars.size(); ++k) {
    const auto& x = primal.x_vars[k];
    EXPECT_GE(x.tau, instance.packets()[static_cast<std::size_t>(x.packet)].arrival);
    EXPECT_LE(x.tau, primal.horizon);
    EXPECT_LT(primal.x_indices[k], primal.model.num_variables());
  }
  // p5 has a fixed link; p1 does not.
  EXPECT_NE(primal.y_index[4], std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(primal.y_index[0], std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace rdcn
