// Fixture: the sanctioned hot-path patterns -- presize-to-high-water and
// a justified allow() escape -- must pass hot-alloc with exit 0.

#include <memory>
#include <vector>

namespace fixture {

struct State {
  std::vector<int> presized;
  std::vector<int> high_water;
};

void init(State& state) {
  state.presized.reserve(1024);
}

// rdcn-lint: hot
void per_round(State& state, int value) {
  state.presized.push_back(value);  // fine: presized in init()
  // fine with a justification:
  state.high_water.push_back(value);  // rdcn-lint: allow(hot-alloc) -- capacity pinned by caller
}

// Cold code may allocate freely.
std::unique_ptr<State> make_state() { return std::make_unique<State>(); }

}  // namespace fixture
