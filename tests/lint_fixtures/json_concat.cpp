// Fixture: hand-rolled JSON concatenation outside src/util/json must trip
// json-concat. Not part of the build -- scanned by rdcn_lint.

#include <string>

namespace fixture {

std::string render(double cost) {
  // planted: JSON scaffolding glued together by hand
  return std::string("{\"cost\":") + std::to_string(cost) + "}";
}

std::string fine_error_message(const std::string& mode) {
  // An ordinary quoted word in an error message must NOT be flagged.
  return "unknown mode \"" + mode + "\"; expected batch or stream";
}

}  // namespace fixture
