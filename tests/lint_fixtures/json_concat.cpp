// Fixture: hand-rolled JSON concatenation outside src/util/json must trip
// json-concat. Not part of the build -- scanned by rdcn_lint.

#include <cstddef>
#include <string>

namespace fixture {

std::string render(double cost) {
  // planted: JSON scaffolding glued together by hand
  return std::string("{\"cost\":") + std::to_string(cost) + "}";
}

std::string journal_header(const std::string& suite, std::size_t cells) {
  // planted: a hand-rolled suite-journal manifest line. The real writer
  // (run/suite.cpp) builds a json::Object and dump()s it; this pins that
  // a regression back to string glue trips the rule.
  return std::string("{\"rdcn_suite_journal\":1,\"suite\":\"") + suite +
         "\",\"cells\":" + std::to_string(cells) + "}";
}

std::string fine_error_message(const std::string& mode) {
  // An ordinary quoted word in an error message must NOT be flagged.
  return "unknown mode \"" + mode + "\"; expected batch or stream";
}

}  // namespace fixture
