// Fixture: a phase_<name>_ns string that names no registered probe phase
// must trip probe-registry. Not part of the build -- scanned by rdcn_lint.

#include <string>

namespace fixture {

std::string bogus_key() {
  return "phase_quantum_teleport_ns";  // planted: not in sim/probe.hpp
}

std::string real_key() {
  return "phase_dispatch_ns";  // registered phase: must NOT be flagged
}

}  // namespace fixture
