// Fixture: push_back on a never-presized container inside a hot region
// must trip hot-alloc. Not part of the build -- scanned by rdcn_lint.

#include <vector>

namespace fixture {

struct State {
  std::vector<int> grows_unbounded;
};

// rdcn-lint: hot
void per_round(State& state, int value) {
  state.grows_unbounded.push_back(value);  // planted: no presize in file
}

}  // namespace fixture
