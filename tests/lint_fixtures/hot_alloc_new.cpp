// Fixture: `new` inside a hot-annotated function must trip hot-alloc.
// Not part of the build -- scanned by rdcn_lint from test_lint.cpp.

#include <cstddef>

namespace fixture {

// rdcn-lint: hot
int* allocate_per_round(std::size_t n) {
  return new int[n];  // planted: heap allocation in a hot region
}

// Outside the hot region: the same expression must NOT be flagged.
int* allocate_cold(std::size_t n) { return new int[n]; }

}  // namespace fixture
