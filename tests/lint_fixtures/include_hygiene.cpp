// Fixture: includes that bypass the src/-rooted public include path must
// trip include-hygiene. Not part of the build -- scanned by rdcn_lint
// (which never preprocesses, so these paths need not resolve).

#include "src/sim/probe.hpp"     // planted: src/ prefix
#include "../util/json.hpp"      // planted: relative escape
#include "util/thread_pool.hpp"  // public path: must NOT be flagged

namespace fixture {}
