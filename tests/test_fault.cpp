// Tests of the fault-tolerance layer (PR 10): the util/fault primitives
// (CancelToken, DeadlineWatchdog, transient classification, demangled
// failure descriptions, backoff), the atomic write-temp-fsync-rename file
// helper, and BatchRunner's RunPolicy semantics -- isolate-vs-fail_fast,
// seed-preserving retry with bounded attempts, deadline cancellation at
// engine step boundaries, and the fault-injection hook.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "util/atomic_file.hpp"
#include "util/fault.hpp"

namespace rdcn {
namespace {

// ------------------------------------------------------- util/fault ------

TEST(Fault, BackoffDoublesAndCaps) {
  EXPECT_DOUBLE_EQ(backoff_delay_ms(10.0, 1), 10.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(10.0, 2), 20.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(10.0, 3), 40.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(10.0, 30), 1000.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_ms(0.0, 5), 0.0);
}

TEST(Fault, TransientClassification) {
  EXPECT_TRUE(is_transient_failure(
      std::make_exception_ptr(TransientError("network hiccup"))));
  EXPECT_TRUE(is_transient_failure(
      std::make_exception_ptr(CancelledError("deadline"))));
  EXPECT_FALSE(is_transient_failure(
      std::make_exception_ptr(std::runtime_error("deterministic"))));
  EXPECT_FALSE(is_transient_failure(
      std::make_exception_ptr(std::logic_error("contract"))));
  EXPECT_FALSE(is_transient_failure(std::make_exception_ptr(42)));
  EXPECT_FALSE(is_transient_failure(nullptr));
}

TEST(Fault, DescribeFailureDemanglesTheType) {
  const FailureInfo cancelled =
      describe_failure(std::make_exception_ptr(CancelledError("took too long")));
  EXPECT_EQ(cancelled.type, "rdcn::CancelledError");
  EXPECT_EQ(cancelled.message, "took too long");
  const FailureInfo logic =
      describe_failure(std::make_exception_ptr(std::logic_error("broken")));
  EXPECT_EQ(logic.type, "std::logic_error");
  const FailureInfo odd = describe_failure(std::make_exception_ptr(42));
  EXPECT_EQ(odd.message, "non-standard exception");
}

TEST(Fault, WatchdogCancelsAfterTheDeadline) {
  DeadlineWatchdog watchdog;
  CancelToken token;
  const DeadlineWatchdog::Guard guard = watchdog.arm(token, 20.0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token.cancelled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(Fault, DisarmedGuardNeverFires) {
  DeadlineWatchdog watchdog;
  CancelToken token;
  { const DeadlineWatchdog::Guard guard = watchdog.arm(token, 20.0); }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(token.cancelled());
}

// ------------------------------------------------- util/atomic_file ------

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFile, WritesAndOverwrites) {
  const std::string path = temp_path("atomic_file_test.txt");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second, longer contents\n");
  EXPECT_EQ(slurp(path), "second, longer contents\n");
  // No temp residue once the rename landed.
  std::ifstream temp(path + ".tmp");
  EXPECT_FALSE(temp.good());
}

TEST(AtomicFile, MissingDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir/x/y.txt", "data"),
               std::runtime_error);
}

// --------------------------------------------- BatchRunner + RunPolicy ---

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "small";
  auto& net = spec.topology.two_tier;
  net.racks = 4;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  spec.workload.num_packets = 30;
  spec.workload.arrival_rate = 3.0;
  spec.workload.weights = WeightDist::UniformInt;
  spec.repetitions = 3;
  return spec;
}

/// Repetition with rep_seed == 2 (repetition index 1) throws `what`.
ScenarioSpec failing_spec(const std::string& what) {
  ScenarioSpec spec = small_spec();
  spec.name = "failing";
  spec.make_instance = [what](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 2) throw std::runtime_error(what);
    return ScenarioRunner(small_spec()).instance(rep_seed);
  };
  return spec;
}

RunPolicy isolate_policy() {
  RunPolicy policy;
  policy.failure = FailurePolicy::Isolate;
  return policy;
}

TEST(RunPolicy, IsolateTurnsAFailureIntoAStructuredErrorRow) {
  BatchRunner batch(2);
  batch.set_policy(isolate_policy());
  batch.add(small_spec(), alg_policy());
  batch.add(failing_spec("cell exploded"), alg_policy());
  batch.add(small_spec(), named_policy("fifo"));
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 3u);

  EXPECT_TRUE(results[1].error.failed);
  EXPECT_EQ(results[1].error.type, "std::runtime_error");
  EXPECT_EQ(results[1].error.message, "cell exploded");
  EXPECT_EQ(results[1].error.repetition, 1u);  // rep_seed 2 = repetition 1
  EXPECT_EQ(results[1].error.attempts, 1);
  EXPECT_TRUE(results[1].repetitions.empty());

  // Healthy siblings are bit-identical to a fault-free sequential run.
  const std::vector<std::pair<std::size_t, std::string>> healthy = {
      {0, "alg"}, {2, "fifo"}};
  for (const auto& [index, policy] : healthy) {
    EXPECT_FALSE(results[index].error.failed);
    const ScenarioResult expected =
        ScenarioRunner(small_spec()).run(named_policy(policy));
    ASSERT_EQ(results[index].repetitions.size(), expected.repetitions.size());
    for (std::size_t r = 0; r < expected.repetitions.size(); ++r) {
      EXPECT_EQ(results[index].repetitions[r].total_cost,
                expected.repetitions[r].total_cost);
      EXPECT_EQ(results[index].repetitions[r].makespan,
                expected.repetitions[r].makespan);
    }
  }
}

TEST(RunPolicy, FailFastReportsTheSuppressedCellCount) {
  BatchRunner batch(2);
  batch.add(failing_spec("first boom"), alg_policy());
  batch.add(failing_spec("second boom"), named_policy("fifo"));
  try {
    batch.run();
    FAIL() << "run() swallowed the failures";
  } catch (const BatchError& error) {
    // Primary = lowest cell; the sibling is counted, not lost.
    EXPECT_NE(std::string(error.what()).find("first boom"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("and 1 more cell failed"),
              std::string::npos)
        << error.what();
  }
}

TEST(RunPolicy, SingleFailureStillRethrowsTheOriginalType) {
  // The historical contract (pinned by test_run.cpp as well): one failed
  // cell rethrows the original exception unwrapped -- no BatchError shim.
  BatchRunner batch(2);
  batch.add(failing_spec("solo"), alg_policy());
  try {
    batch.run();
    FAIL() << "run() swallowed the failure";
  } catch (const BatchError&) {
    FAIL() << "single failure must not be wrapped";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "solo");
  }
}

TEST(RunPolicy, TransientFailuresRetryWithTheSameSeed) {
  // First attempt at rep_seed 2 throws TransientError; the retry re-runs
  // the same seed and must land bit-identical to a fault-free run.
  auto tripped = std::make_shared<std::atomic<bool>>(false);
  ScenarioSpec spec = small_spec();
  spec.make_instance = [tripped](std::uint64_t rep_seed) -> Instance {
    if (rep_seed == 2 && !tripped->exchange(true)) {
      throw TransientError("spurious");
    }
    return ScenarioRunner(small_spec()).instance(rep_seed);
  };
  RunPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_ms = 1.0;
  BatchRunner batch(2);
  batch.set_policy(policy);
  batch.add(spec, alg_policy());
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].error.failed);
  const ScenarioResult expected = ScenarioRunner(small_spec()).run(alg_policy());
  ASSERT_EQ(results[0].repetitions.size(), expected.repetitions.size());
  for (std::size_t r = 0; r < expected.repetitions.size(); ++r) {
    EXPECT_EQ(results[0].repetitions[r].total_cost, expected.repetitions[r].total_cost);
  }
}

TEST(RunPolicy, TransientBudgetExhaustionRecordsTheAttemptCount) {
  ScenarioSpec spec = small_spec();
  spec.make_instance = [](std::uint64_t) -> Instance {
    throw TransientError("always flaky");
  };
  RunPolicy policy = isolate_policy();
  policy.max_attempts = 3;
  policy.backoff_base_ms = 1.0;
  BatchRunner batch(1);
  batch.set_policy(policy);
  batch.add(spec, alg_policy());
  const auto results = batch.run();
  ASSERT_TRUE(results[0].error.failed);
  EXPECT_EQ(results[0].error.type, "rdcn::TransientError");
  EXPECT_EQ(results[0].error.attempts, 3);
}

TEST(RunPolicy, DeterministicFailuresAreNeverRetried) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  ScenarioSpec spec = small_spec();
  spec.repetitions = 1;
  spec.make_instance = [calls](std::uint64_t) -> Instance {
    calls->fetch_add(1);
    throw std::logic_error("contract violation");
  };
  RunPolicy policy = isolate_policy();
  policy.max_attempts = 5;
  BatchRunner batch(1);
  batch.set_policy(policy);
  batch.add(spec, alg_policy());
  const auto results = batch.run();
  ASSERT_TRUE(results[0].error.failed);
  EXPECT_EQ(results[0].error.type, "std::logic_error");
  EXPECT_EQ(results[0].error.attempts, 1);
  EXPECT_EQ(calls->load(), 1);
}

TEST(RunPolicy, DeadlineCancelsAtTheNextStepBoundary) {
  // The hook outlasts the deadline without throwing; the engine then
  // observes the cancelled token at its first step boundary and throws
  // CancelledError -- the cooperative-cancellation path end to end.
  RunPolicy policy = isolate_policy();
  policy.deadline_ms = 20.0;
  policy.fault_hook = [](const std::string&, std::size_t, const CancelToken* cancel) {
    ASSERT_NE(cancel, nullptr);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!cancel->cancelled() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  BatchRunner batch(2);
  batch.set_policy(policy);
  batch.add(small_spec(), alg_policy());
  const auto results = batch.run();
  ASSERT_TRUE(results[0].error.failed);
  EXPECT_EQ(results[0].error.type, "rdcn::CancelledError");
  EXPECT_NE(results[0].error.message.find("step boundary"), std::string::npos)
      << results[0].error.message;
}

TEST(RunPolicy, FaultHookSeesCellNamesAndRepetitions) {
  std::mutex mutex;
  std::set<std::pair<std::string, std::size_t>> seen;
  RunPolicy policy;
  policy.fault_hook = [&](const std::string& cell, std::size_t rep,
                          const CancelToken*) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert({cell, rep});
  };
  BatchRunner batch(2);
  batch.set_policy(policy);
  batch.add(small_spec(), alg_policy());
  batch.run();
  EXPECT_EQ(seen.size(), 3u);  // one per repetition
  EXPECT_TRUE(seen.count({"small x alg", 0}));
  EXPECT_TRUE(seen.count({"small x alg", 2}));
}

TEST(RunPolicy, IsolateStreamCellReportsErrorToo) {
  StreamSpec spec;
  spec.name = "failing-stream";
  spec.warmup_packets = 0;
  spec.measure_packets = 10;
  spec.make_trace = [](std::uint64_t) -> Instance {
    throw std::runtime_error("trace failed");
  };
  BatchRunner batch(2);
  batch.set_policy(isolate_policy());
  batch.add_stream(spec, alg_policy());
  const auto results = batch.run_streams();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].error.failed);
  EXPECT_EQ(results[0].error.message, "trace failed");
  EXPECT_EQ(results[0].scenario, "failing-stream");
}

TEST(RunPolicy, CellDoneCallbackFiresOncePerCell) {
  std::mutex mutex;
  std::vector<std::size_t> done;
  BatchRunner batch(2);
  batch.add(small_spec(), alg_policy());
  batch.add(small_spec(), named_policy("fifo"));
  batch.run([&](std::size_t cell, const ScenarioResult& result) {
    EXPECT_FALSE(result.error.failed);
    const std::lock_guard<std::mutex> lock(mutex);
    done.push_back(cell);
  });
  std::sort(done.begin(), done.end());
  EXPECT_EQ(done, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace rdcn
