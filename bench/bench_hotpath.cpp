// EXP-P2 -- scheduling-round hot-path microbench (ISSUE 5). For every
// registry scheduler across topology-zoo shapes, inject a contended burst
// into a streaming engine and time the pure drain: no arrivals, so every
// measured step is exactly one scheduling round plus retirement -- the
// steady-state inner loop the Selection API and active-endpoint
// compression target. Each row is the MEDIAN of N timed repetitions
// (quick 3, full 5) -- medians keep CI's hard perf gate stable against
// scheduler-noise outliers where best-of rewards them -- and the
// repetitions must agree on total_cost/rounds bit-for-bit (determinism
// cross-check; a mismatch aborts). Emits BenchReport JSON lines
// (ns_per_round, rounds, total_cost); the committed baseline lives in
// BENCH_hotpath.json and tools/perf_diff gates CI against it.
//
//   bench_hotpath [--json] [--quick] [--phases] [--no-meta]
//
//   --json     print only the JSON lines (what BENCH_hotpath.json stores)
//   --quick    fewer repetitions, crossbar shape only (the CI perf-smoke
//              subset; same burst size so row keys match the baseline)
//   --phases   additionally run probe-enabled drains and emit one row per
//              round phase (params gain "phase"; metric phase_ns_per_round
//              = phase self-time / rounds). The gated rows above stay
//              probe-OFF; phase rows are diffed warn-only against
//              BENCH_hotpath_phases.json. The probed drain must reproduce
//              the probe-off total_cost/rounds bit-for-bit (the
//              observability layer may not perturb the schedule).
//   --no-meta  suppress the BenchReport run-metadata line (regenerating a
//              committed baseline needs deterministic bytes)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "sim/probe.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

struct Shape {
  const char* name;
  Topology topology;
};

std::vector<Shape> zoo_shapes(bool quick) {
  std::vector<Shape> shapes;
  shapes.push_back({"crossbar16", build_crossbar(16)});
  if (quick) return shapes;
  {
    TwoTierConfig net;
    net.racks = 12;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.5;
    net.max_edge_delay = 3;
    Rng rng(7);
    shapes.push_back({"two_tier12x2", build_two_tier(net, rng)});
  }
  {
    ExpanderConfig net;
    net.racks = 16;
    net.degree = 3;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.max_edge_delay = 2;
    Rng rng(7);
    shapes.push_back({"expander16d3", build_expander(net, rng)});
  }
  return shapes;
}

std::vector<Packet> burst(const Topology& topology, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Packet> packets;
  packets.reserve(count);
  while (packets.size() < count) {
    Packet p;
    p.id = static_cast<PacketIndex>(packets.size());
    p.arrival = 1;
    p.weight = rng.next_double(0.5, 8.0);
    p.source =
        static_cast<NodeIndex>(rng.next_below(static_cast<std::uint64_t>(topology.num_sources())));
    p.destination = static_cast<NodeIndex>(
        rng.next_below(static_cast<std::uint64_t>(topology.num_destinations())));
    if (!topology.routable(p.source, p.destination)) continue;
    packets.push_back(p);
  }
  return packets;
}

struct DrainResult {
  double ns_per_round = 0.0;
  double wall_ms = 0.0;
  std::int64_t rounds = 0;
  double total_cost = 0.0;
  ProbeReport probe;  ///< populated only by probed drains
};

DrainResult drain_once(const Topology& topology, const PolicyFactory& policy,
                       const std::vector<Packet>& packets, bool probed = false) {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  EngineOptions options;
  options.probe.enabled = probed;  // aggregates only: no event ring
  Engine engine(topology, *dispatcher, *scheduler, options, [](RetiredPacket&&) {});
  const Time arrival = 1;
  engine.begin_step(&arrival);
  for (const Packet& p : packets) engine.inject(p);
  engine.finish_step();

  const auto start = std::chrono::steady_clock::now();
  std::int64_t rounds = 0;
  while (engine.busy()) {
    engine.begin_step(nullptr);
    engine.finish_step();
    ++rounds;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DrainResult result;
  result.rounds = rounds;
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
  result.ns_per_round =
      rounds > 0 ? std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(elapsed)
                           .count() /
                       static_cast<double>(rounds)
                 : 0.0;
  result.total_cost = engine.aggregates().total_cost;
  if (engine.probe() != nullptr) result.probe = engine.probe()->report();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  bool quick = false;
  bool phases = false;
  bool meta = true;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--phases") == 0) {
      phases = true;
    } else if (std::strcmp(argv[i], "--no-meta") == 0) {
      meta = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--json] [--quick] [--phases] [--no-meta] "
                   "[--out PATH]\n");
      return 2;
    }
  }
  // --quick trims shapes and repetitions but keeps the burst size, so its
  // rows carry the same (bench, name, params) keys as the committed
  // BENCH_hotpath.json baseline and perf_diff can match them.
  const std::size_t packets = 400;
  const int repetitions = quick ? 3 : 5;  // median-of-N; N >= 3 even in CI
  const std::vector<const char*> policies = {"alg",   "maxweight", "islip",
                                             "rotor", "random",    "fifo"};

  BenchReport report("hotpath");
  if (meta) stamp_meta(report);
  Table table({"shape", "policy", "rounds", "ns/round", "total cost"});
  Table phase_table({"shape", "policy", "phase", "ns/round", "share"});
  for (const Shape& shape : zoo_shapes(quick)) {
    const std::vector<Packet> load = burst(shape.topology, packets, 11);
    for (const char* name : policies) {
      const PolicyFactory policy = named_policy(name);
      std::vector<DrainResult> reps;
      reps.reserve(static_cast<std::size_t>(repetitions));
      for (int rep = 0; rep < repetitions; ++rep) {
        reps.push_back(drain_once(shape.topology, policy, load));
        // Determinism cross-check: identical engine state per repetition,
        // so schedule-derived quantities must agree bit-for-bit.
        if (reps.back().total_cost != reps.front().total_cost ||
            reps.back().rounds != reps.front().rounds) {
          std::fprintf(stderr, "bench_hotpath: %s/%s nondeterministic across reps\n",
                       shape.name, name);
          return 3;
        }
      }
      std::sort(reps.begin(), reps.end(), [](const DrainResult& a, const DrainResult& b) {
        return a.ns_per_round < b.ns_per_round;
      });
      const DrainResult& median = reps[reps.size() / 2];
      report.add(name, median.total_cost, median.wall_ms)
          .param("shape", std::string(shape.name))
          .param("packets", static_cast<std::int64_t>(packets))
          .value("ns_per_round", median.ns_per_round)
          .value("rounds", static_cast<double>(median.rounds));
      table.add_row({shape.name, name, Table::fmt(median.rounds),
                     Table::fmt(median.ns_per_round, 1), Table::fmt(median.total_cost, 1)});

      if (!phases) continue;
      // Separate probe-ON drains: the gated rows above stay probe-OFF, and
      // the probed run doubles as a schedule-invariance check (identical
      // total_cost/rounds, or the probe perturbed the engine).
      std::vector<DrainResult> probed;
      probed.reserve(static_cast<std::size_t>(repetitions));
      for (int rep = 0; rep < repetitions; ++rep) {
        probed.push_back(drain_once(shape.topology, policy, load, /*probed=*/true));
        if (probed.back().total_cost != median.total_cost ||
            probed.back().rounds != median.rounds) {
          std::fprintf(stderr,
                       "bench_hotpath: %s/%s probe-on drain diverged from probe-off\n",
                       shape.name, name);
          return 3;
        }
      }
      std::sort(probed.begin(), probed.end(),
                [](const DrainResult& a, const DrainResult& b) {
                  return a.ns_per_round < b.ns_per_round;
                });
      const DrainResult& probed_median = probed[probed.size() / 2];
      const double rounds_d = static_cast<double>(probed_median.rounds);
      for (std::size_t p = 0; p < kNumPhases; ++p) {
        const char* phase_name = to_string(static_cast<Phase>(p));
        const double self_ns =
            static_cast<double>(probed_median.probe.phase_self_ns[p]);
        const double per_round = rounds_d > 0.0 ? self_ns / rounds_d : 0.0;
        const double share = probed_median.probe.wall_ns > 0
                                 ? self_ns / static_cast<double>(probed_median.probe.wall_ns)
                                 : 0.0;
        report.add(name, probed_median.total_cost, probed_median.wall_ms)
            .param("shape", std::string(shape.name))
            .param("packets", static_cast<std::int64_t>(packets))
            .param("phase", std::string(phase_name))
            .value("phase_ns_per_round", per_round)
            .value("phase_share", share);
        phase_table.add_row({shape.name, name, phase_name, Table::fmt(per_round, 1),
                             Table::fmt(share * 100.0, 1) + "%"});
      }
    }
  }
  if (json_only) {
    for (const std::string& line : report.json_lines()) std::printf("%s\n", line.c_str());
  } else {
    table.print("EXP-P2: scheduling-round drain cost (median of repetitions)");
    if (phases) {
      phase_table.print("EXP-P2: per-phase self time (probe-on drains, median rep)");
    }
    report.print();
  }
  // Baselines are written atomically (write-temp-fsync-rename): a CI
  // runner killed mid-bench can never corrupt BENCH_hotpath.json.
  if (!out_path.empty()) report.write_json(out_path);
  return 0;
}
