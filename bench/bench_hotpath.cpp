// EXP-P2 -- scheduling-round hot-path microbench (ISSUE 5). For every
// registry scheduler across topology-zoo shapes, inject a contended burst
// into a streaming engine and time the pure drain: no arrivals, so every
// measured step is exactly one scheduling round plus retirement -- the
// steady-state inner loop the Selection API and active-endpoint
// compression target. Each row is the MEDIAN of N timed repetitions
// (quick 3, full 5) -- medians keep CI's hard perf gate stable against
// scheduler-noise outliers where best-of rewards them -- and the
// repetitions must agree on total_cost/rounds bit-for-bit (determinism
// cross-check; a mismatch aborts). Emits BenchReport JSON lines
// (ns_per_round, rounds, total_cost); the committed baseline lives in
// BENCH_hotpath.json and tools/perf_diff gates CI against it.
//
//   bench_hotpath [--json] [--quick]
//
//   --json   print only the JSON lines (what BENCH_hotpath.json stores)
//   --quick  fewer repetitions, crossbar shape only (the CI perf-smoke
//            subset; same burst size so row keys match the baseline)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/builders.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

struct Shape {
  const char* name;
  Topology topology;
};

std::vector<Shape> zoo_shapes(bool quick) {
  std::vector<Shape> shapes;
  shapes.push_back({"crossbar16", build_crossbar(16)});
  if (quick) return shapes;
  {
    TwoTierConfig net;
    net.racks = 12;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.5;
    net.max_edge_delay = 3;
    Rng rng(7);
    shapes.push_back({"two_tier12x2", build_two_tier(net, rng)});
  }
  {
    ExpanderConfig net;
    net.racks = 16;
    net.degree = 3;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.max_edge_delay = 2;
    Rng rng(7);
    shapes.push_back({"expander16d3", build_expander(net, rng)});
  }
  return shapes;
}

std::vector<Packet> burst(const Topology& topology, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Packet> packets;
  packets.reserve(count);
  while (packets.size() < count) {
    Packet p;
    p.id = static_cast<PacketIndex>(packets.size());
    p.arrival = 1;
    p.weight = rng.next_double(0.5, 8.0);
    p.source =
        static_cast<NodeIndex>(rng.next_below(static_cast<std::uint64_t>(topology.num_sources())));
    p.destination = static_cast<NodeIndex>(
        rng.next_below(static_cast<std::uint64_t>(topology.num_destinations())));
    if (!topology.routable(p.source, p.destination)) continue;
    packets.push_back(p);
  }
  return packets;
}

struct DrainResult {
  double ns_per_round = 0.0;
  double wall_ms = 0.0;
  std::int64_t rounds = 0;
  double total_cost = 0.0;
};

DrainResult drain_once(const Topology& topology, const PolicyFactory& policy,
                       const std::vector<Packet>& packets) {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);
  Engine engine(topology, *dispatcher, *scheduler, {}, [](RetiredPacket&&) {});
  const Time arrival = 1;
  engine.begin_step(&arrival);
  for (const Packet& p : packets) engine.inject(p);
  engine.finish_step();

  const auto start = std::chrono::steady_clock::now();
  std::int64_t rounds = 0;
  while (engine.busy()) {
    engine.begin_step(nullptr);
    engine.finish_step();
    ++rounds;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DrainResult result;
  result.rounds = rounds;
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
  result.ns_per_round =
      rounds > 0 ? std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(elapsed)
                           .count() /
                       static_cast<double>(rounds)
                 : 0.0;
  result.total_cost = engine.aggregates().total_cost;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_hotpath [--json] [--quick]\n");
      return 2;
    }
  }
  // --quick trims shapes and repetitions but keeps the burst size, so its
  // rows carry the same (bench, name, params) keys as the committed
  // BENCH_hotpath.json baseline and perf_diff can match them.
  const std::size_t packets = 400;
  const int repetitions = quick ? 3 : 5;  // median-of-N; N >= 3 even in CI
  const std::vector<const char*> policies = {"alg",   "maxweight", "islip",
                                             "rotor", "random",    "fifo"};

  BenchReport report("hotpath");
  Table table({"shape", "policy", "rounds", "ns/round", "total cost"});
  for (const Shape& shape : zoo_shapes(quick)) {
    const std::vector<Packet> load = burst(shape.topology, packets, 11);
    for (const char* name : policies) {
      const PolicyFactory policy = named_policy(name);
      std::vector<DrainResult> reps;
      reps.reserve(static_cast<std::size_t>(repetitions));
      for (int rep = 0; rep < repetitions; ++rep) {
        reps.push_back(drain_once(shape.topology, policy, load));
        // Determinism cross-check: identical engine state per repetition,
        // so schedule-derived quantities must agree bit-for-bit.
        if (reps.back().total_cost != reps.front().total_cost ||
            reps.back().rounds != reps.front().rounds) {
          std::fprintf(stderr, "bench_hotpath: %s/%s nondeterministic across reps\n",
                       shape.name, name);
          return 3;
        }
      }
      std::sort(reps.begin(), reps.end(), [](const DrainResult& a, const DrainResult& b) {
        return a.ns_per_round < b.ns_per_round;
      });
      const DrainResult& median = reps[reps.size() / 2];
      report.add(name, median.total_cost, median.wall_ms)
          .param("shape", std::string(shape.name))
          .param("packets", static_cast<std::int64_t>(packets))
          .value("ns_per_round", median.ns_per_round)
          .value("rounds", static_cast<double>(median.rounds));
      table.add_row({shape.name, name, Table::fmt(median.rounds),
                     Table::fmt(median.ns_per_round, 1), Table::fmt(median.total_cost, 1)});
    }
  }
  if (json_only) {
    for (const std::string& line : report.json_lines()) std::printf("%s\n", line.c_str());
  } else {
    table.print("EXP-P2: scheduling-round drain cost (median of repetitions)");
    report.print();
  }
  return 0;
}
