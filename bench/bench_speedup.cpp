// EXP-S1 -- algorithm-side speed augmentation ablation: Theorem 1 gives
// ALG a (2+eps) speedup; here we realize integral speedups k = 1..4 as k
// scheduling rounds per step and measure the cost reduction, next to the
// theory's view (the same augmentation taken as an OPT slowdown).

#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-S1: integral algorithm-side speedup (k matchings per step)\n");
  std::printf("(congested pod: 8 racks, 1x1 per rack, hotspot; 12 seeds per row)\n");

  Table table({"speedup k", "ALG_k cost", "vs ALG_1", "theory bound at k=2+eps",
               "certified ratio ALG_1/(D/2)"});
  Summary base_cost;
  std::vector<double> costs_k(5, 0.0);
  Summary certified;

  for (int k = 1; k <= 4; ++k) {
    Summary cost_k;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 83);
      TwoTierConfig net;
      net.racks = 8;
      net.lasers_per_rack = 1;
      net.photodetectors_per_rack = 1;
      net.density = 1.0;
      net.max_edge_delay = 2;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = 150;
      traffic.arrival_rate = 6.0;
      traffic.skew = PairSkew::Hotspot;
      traffic.hotspot_fraction = 0.5;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 8;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      EngineOptions options;
      options.speedup_rounds = k;
      options.record_trace = false;
      const double cost = run_policy_cost(instance, alg_policy(), options);
      cost_k.add(cost);
      if (k == 1) {
        base_cost.add(cost);
        const RunResult run = run_alg(instance);
        const DualWitness witness = build_dual_witness(instance, run);
        const double lb = witness.lower_bound(1.0);
        if (lb > 0) certified.add(run.total_cost / lb);
      }
    }
    costs_k[static_cast<std::size_t>(k)] = cost_k.mean();
    const double eps = static_cast<double>(k) - 2.0;  // k = 2 + eps
    const std::string bound =
        eps > 0 ? Table::fmt(2.0 * (2.0 / eps + 1.0), 1) + "x OPT" : "n/a (needs k > 2)";
    table.add_row({Table::fmt(static_cast<std::int64_t>(k)), Table::fmt(cost_k.mean(), 1),
                   Table::fmt(costs_k[static_cast<std::size_t>(k)] / costs_k[1], 2) + "x",
                   bound,
                   k == 1 ? Table::fmt(certified.mean(), 2) + "x (mean)" : ""});
  }
  table.print("speedup ablation");

  std::printf(
      "\nExpected shape: cost decreases monotonically in k with diminishing returns;\n"
      "k >= 3 (i.e. eps >= 1) is where Theorem 1's guarantee becomes nontrivial,\n"
      "mirroring the impossibility result [22] for unaugmented algorithms.\n");
  return 0;
}
