// EXP-S1 -- algorithm-side speed augmentation ablation: Theorem 1 gives
// ALG a (2+eps) speedup; here we realize integral speedups k = 1..4 as k
// scheduling rounds per step and measure the cost reduction, next to the
// theory's view (the same augmentation taken as an OPT slowdown).

#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-S1: integral algorithm-side speedup (k matchings per step)\n");
  std::printf("(congested pod: 8 racks, 1x1 per rack, hotspot; 12 seeds per row)\n");

  BenchReport report("speedup");
  Table table({"speedup k", "ALG_k cost", "vs ALG_1", "theory bound at k=2+eps",
               "certified ratio ALG_1/(D/2)"});
  std::vector<double> costs_k(5, 0.0);
  Summary certified;

  for (int k = 1; k <= 4; ++k) {
    ScenarioSpec spec = two_tier_scenario("speedup-k" + std::to_string(k), 8, 1, 1.0);
    spec.topology.seed_salt = 83;
    spec.workload.num_packets = 150;
    spec.workload.arrival_rate = 6.0;
    spec.workload.skew = PairSkew::Hotspot;
    spec.workload.hotspot_fraction = 0.5;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 8;
    spec.engine.speedup_rounds = k;
    spec.repetitions = 12;
    const ScenarioRunner runner(spec);

    const ScenarioResult result = runner.run(alg_policy());
    costs_k[static_cast<std::size_t>(k)] = result.cost.mean();

    if (k == 1) {
      // Certify the unit-speed run with the dual witness (needs a trace).
      ScenarioSpec traced = spec;
      traced.engine.speedup_rounds = 1;
      traced.engine.record_trace = true;
      const ScenarioRunner traced_runner(traced);
      for (const std::uint64_t seed : traced_runner.seeds()) {
        const Instance instance = traced_runner.instance(seed);
        const RunResult run = traced_runner.run_once(alg_policy(), seed);
        const DualWitness witness = build_dual_witness(instance, run);
        const double lb = witness.lower_bound(1.0);
        if (lb > 0) certified.add(run.total_cost / lb);
      }
    }

    const double eps = static_cast<double>(k) - 2.0;  // k = 2 + eps
    const std::string bound =
        eps > 0 ? Table::fmt(2.0 * (2.0 / eps + 1.0), 1) + "x OPT" : "n/a (needs k > 2)";
    table.add_row({Table::fmt(static_cast<std::int64_t>(k)),
                   Table::fmt(result.cost.mean(), 1),
                   Table::fmt(costs_k[static_cast<std::size_t>(k)] / costs_k[1], 2) + "x",
                   bound,
                   k == 1 ? Table::fmt(certified.mean(), 2) + "x (mean)" : ""});
    report.add(result).param("speedup", static_cast<std::int64_t>(k));
  }
  table.print("speedup ablation");

  std::printf(
      "\nExpected shape: cost decreases monotonically in k with diminishing returns;\n"
      "k >= 3 (i.e. eps >= 1) is where Theorem 1's guarantee becomes nontrivial,\n"
      "mirroring the impossibility result [22] for unaugmented algorithms.\n");
  report.print();
  return 0;
}
