// EXP-R1 -- reconfiguration-delay extension: retargeting a laser/
// photodetector keeps it dark for delta steps (the cost model of
// Venkatakrishnan et al. [15] / Schwartz et al. [48], which the paper
// explicitly leaves out of its base model). Measures how ALG and the
// baselines degrade as delta grows; schedulers that churn the matching
// (MaxWeight) should degrade faster than sticky ones.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-R1: reconfiguration delay delta (endpoint dark while retuning)\n");
  std::printf("(10 racks, 2x2, zipf traffic; 10 seeds per cell; cost normalized to delta=0)\n");

  std::vector<PolicyFactory> policies;
  policies.push_back(alg_policy());
  policies.back().name = "ALG";
  {
    auto grid = scheduler_baselines();
    policies.push_back(grid[1]);  // MaxWeight
    policies.push_back(grid[5]);  // FIFO
  }

  const Delay deltas[] = {0, 1, 2, 4};
  BatchRunner batch;
  for (const PolicyFactory& policy : policies) {
    for (const Delay delta : deltas) {
      ScenarioSpec spec =
          two_tier_scenario("reconfig-delta" + std::to_string(delta), 10, 2, 0.5);
      spec.topology.seed_salt = 163;
      spec.workload.num_packets = 120;
      spec.workload.arrival_rate = 4.0;
      spec.workload.skew = PairSkew::Zipf;
      spec.workload.weights = WeightDist::UniformInt;
      spec.workload.weight_max = 8;
      spec.engine.reconfig_delay = delta;
      spec.repetitions = 10;
      batch.add(spec, policy);
    }
  }
  const auto results = batch.run();

  BenchReport report("reconfig");
  Table table({"policy", "delta=0", "delta=1", "delta=2", "delta=4"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row = {policies[p].name};
    const double base = results[p * 4].cost.mean();
    for (std::size_t d = 0; d < 4; ++d) {
      const ScenarioResult& result = results[p * 4 + d];
      row.push_back(Table::fmt(result.cost.mean() / base, 2) + "x");
      report.add(result).param("delta", static_cast<std::int64_t>(deltas[d]));
    }
    table.add_row(row);
  }
  table.print("cost inflation vs reconfiguration delay");

  std::printf(
      "\nExpected shape: every policy degrades with delta; once retuning costs a few\n"
      "steps, sticky configurations win -- the regime where rotor-style designs [8]\n"
      "and the offline circuit-scheduling line [15], [48] become the right tools.\n");
  report.print();
  return 0;
}
