// EXP-R1 -- reconfiguration-delay extension: retargeting a laser/
// photodetector keeps it dark for delta steps (the cost model of
// Venkatakrishnan et al. [15] / Schwartz et al. [48], which the paper
// explicitly leaves out of its base model). Measures how ALG and the
// baselines degrade as delta grows; schedulers that churn the matching
// (MaxWeight) should degrade faster than sticky ones.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-R1: reconfiguration delay delta (endpoint dark while retuning)\n");
  std::printf("(10 racks, 2x2, zipf traffic; 10 seeds per cell; cost normalized to delta=0)\n");

  struct Policy {
    const char* name;
    PolicyFactory factory;
  };
  std::vector<Policy> policies;
  policies.push_back({"ALG", alg_policy()});
  {
    auto grid = scheduler_baselines();
    policies.push_back({"MaxWeight", grid[1]});
    policies.push_back({"FIFO", grid[5]});
  }

  Table table({"policy", "delta=0", "delta=1", "delta=2", "delta=4"});
  for (const Policy& policy : policies) {
    std::vector<std::string> row = {policy.name};
    double base = 0.0;
    for (const Delay delta : {0, 1, 2, 4}) {
      Summary cost;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed * 163);
        TwoTierConfig net;
        net.racks = 10;
        net.lasers_per_rack = 2;
        net.photodetectors_per_rack = 2;
        net.density = 0.5;
        net.max_edge_delay = 2;
        const Topology topology = build_two_tier(net, rng);
        WorkloadConfig traffic;
        traffic.num_packets = 120;
        traffic.arrival_rate = 4.0;
        traffic.skew = PairSkew::Zipf;
        traffic.weights = WeightDist::UniformInt;
        traffic.weight_max = 8;
        traffic.seed = seed;
        const Instance instance = generate_workload(topology, traffic);

        EngineOptions options;
        options.reconfig_delay = delta;
        options.record_trace = false;
        cost.add(run_policy_cost(instance, policy.factory, options));
      }
      if (delta == 0) base = cost.mean();
      row.push_back(Table::fmt(cost.mean() / base, 2) + "x");
    }
    table.add_row(row);
  }
  table.print("cost inflation vs reconfiguration delay");

  std::printf(
      "\nExpected shape: every policy degrades with delta; once retuning costs a few\n"
      "steps, sticky configurations win -- the regime where rotor-style designs [8]\n"
      "and the offline circuit-scheduling line [15], [48] become the right tools.\n");
  return 0;
}
