// EXP-Z1: topology-zoo shootout, routed through the declarative suite
// subsystem (run/suite.hpp) end to end -- the suite definition below is
// the same JSON a user would put in examples/suites/, parsed with the
// same strict loader the CLI uses, expanded to a topology x workload x
// policy grid and fanned through the BatchRunner. Every emitted row is a
// BenchReport-schema JSON line, so this bench's output lands in the
// BENCH_*.json trajectory like every other driver.

#include <cstdio>
#include <stdexcept>

#include "run/suite.hpp"

namespace {

// Batch shootout across all five wiring families at matched port budgets:
// ~16 transmitters / 16 receivers per fabric, identical traffic.
constexpr const char* kZooSuite = R"json({
  "suite": "topology-zoo",
  "mode": "batch",
  "seeds": {"base": 1, "repetitions": 5},
  "policies": ["alg", "maxweight", "fifo"],
  "topologies": [
    {"name": "two-tier", "kind": "two_tier", "racks": 8, "lasers": 2,
     "photodetectors": 2, "density": 0.6, "max_edge_delay": 2},
    {"name": "crossbar", "kind": "crossbar", "ports": 16},
    {"name": "oversub", "kind": "oversubscribed", "racks": 8, "hot_racks": 2,
     "hot_lasers": 4, "hot_photodetectors": 2, "cold_lasers": 1,
     "cold_photodetectors": 1, "density": 0.7, "slow_fraction": 0.25,
     "fixed_base_delay": 4, "oversubscription": 4.0},
    {"name": "expander", "kind": "expander", "racks": 8, "degree": 3,
     "lasers": 2, "photodetectors": 2, "fixed_link_delay": 0},
    {"name": "rotor", "kind": "rotor", "racks": 8, "ports": 2}
  ],
  "workloads": [
    {"name": "zipf", "packets": 150, "rate": 4.0, "skew": "zipf",
     "zipf_exponent": 1.2, "weights": "uniform-int", "weight_max": 10},
    {"name": "permutation", "packets": 150, "rate": 4.0,
     "skew": "permutation", "weights": "uniform-int", "weight_max": 10}
  ]
})json";

}  // namespace

int main() {
  using namespace rdcn;
  SuiteRunner runner{[] {
    try {
      return parse_suite(kZooSuite);
    } catch (const SuiteError& error) {
      // The embedded suite is part of the binary; a parse failure is a bug.
      std::fprintf(stderr, "bench_suite: embedded suite rejected: %s\n", error.what());
      throw;
    }
  }()};

  std::printf("EXP-Z1: topology zoo shootout (%zu grid cells x %zu policies)\n",
              runner.grid_cells(), runner.spec().policies.size());
  std::printf("\n--- machine-readable (JSON lines) ---\n");
  for (const std::string& line : runner.run()) std::printf("%s\n", line.c_str());
  return 0;
}
