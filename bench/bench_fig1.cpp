// EXP-F1 -- Figure 1 of the paper: the worked example instance.
// Regenerates the figure's table (packets, paths, arrivals, transmission
// steps / edges) for three schedules: the paper's example schedule (cost
// 9), the exact offline optimum (cost 7, brute force), and ALG's actual
// schedule. Paper-expected values are printed alongside.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/alg.hpp"
#include "net/builders.hpp"
#include "opt/brute_force.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  // The figure's fixed instance, routed through the scenario layer like
  // every other bench (record_trace mirrors run_alg's analysis default).
  ScenarioSpec spec;
  spec.name = "figure1";
  spec.make_instance = [](std::uint64_t) { return figure1_instance(); };
  spec.engine.record_trace = true;
  ScenarioRunner runner(spec);
  const Instance instance = runner.instance(1);
  std::printf("EXP-F1: Figure 1 worked example\n");
  std::printf("graph: S={s1,s2}, T={t1,t2,t3}, R={r1..r4}, D={d1,d2,d3}; "
              "d(e)=1 on dashed edges, d(s2,d3)=4 on the fixed link\n");

  // The figure's own table (the feasible example schedule).
  Table paper({"packet", "path", "arrival", "transmission", "edge"});
  paper.add_row({"p1", "s1->d1", "1", "1", "(t1,r1)"});
  paper.add_row({"p2", "s1->d2", "1", "2", "(t1,r2)"});
  paper.add_row({"p3", "s2->d2", "1", "1", "(t3,r3)"});
  paper.add_row({"p4", "s2->d2", "2", "2", "(t3,r3)"});
  paper.add_row({"p5", "s2->d3", "2", "2", "(s2,d3)"});
  paper.print("paper's example schedule (cost 9)");

  const auto opt = brute_force_opt(instance);
  const RunResult alg = runner.run_once(alg_policy(), 1);

  const Figure1Ids ids = figure1_ids();
  auto edge_name = [&ids](EdgeIndex e) -> std::string {
    if (e == ids.t1r1) return "(t1,r1)";
    if (e == ids.t1r2) return "(t1,r2)";
    if (e == ids.t3r3) return "(t3,r3)";
    if (e == ids.t3r4) return "(t3,r4)";
    return "edge#" + std::to_string(e);
  };

  Table mine({"packet", "path", "arrival", "transmission", "edge"});
  const char* paths[] = {"s1->d1", "s1->d2", "s2->d2", "s2->d2", "s2->d3"};
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const PacketOutcome& outcome = alg.outcomes[i];
    std::string when, where;
    if (outcome.route.use_fixed) {
      when = std::to_string(instance.packets()[i].arrival);
      where = "(s2,d3)";
    } else {
      when = std::to_string(outcome.chunk_transmit_steps.at(0));
      where = edge_name(outcome.route.edge);
    }
    mine.add_row({"p" + std::to_string(i + 1), paths[i],
                  std::to_string(instance.packets()[i].arrival), when, where});
  }
  mine.print("ALG's schedule on the same instance");

  Table costs({"schedule", "cost", "paper expects"});
  costs.add_row({"paper's example", "9.000", "9"});
  costs.add_row({"exact optimum (brute force)",
                 opt ? Table::fmt(opt->cost) : "n/a", "7"});
  costs.add_row({"ALG (online)", Table::fmt(alg.total_cost), "<= 9 (not below 7)"});
  costs.print("EXP-F1 cost summary");

  const bool ok = opt.has_value() && std::abs(opt->cost - 7.0) < 1e-9 &&
                  alg.total_cost >= 7.0 - 1e-9 && alg.total_cost <= 9.0 + 1e-9;
  std::printf("\nEXP-F1 %s\n", ok ? "REPRODUCED" : "MISMATCH");

  BenchReport report("fig1");
  report.add("alg", alg.total_cost, 0.0).param("instance", "figure1");
  if (opt) report.add("brute-force-opt", opt->cost, 0.0).param("instance", "figure1");
  report.print();
  return ok ? 0 : 1;
}
