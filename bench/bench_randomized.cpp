// EXP-RND -- randomized scheduling (the paper's Section-VI future-work
// question): does randomizing the stable-matching priorities help?
// Compares deterministic ALG against log-normal priority perturbation
// (several sigmas) and uniform random serial dictatorship, reporting the
// mean and spread over scheduler coin flips.

#include <cstdio>

#include "common.hpp"
#include "core/randomized.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-RND: randomized scheduling vs deterministic ALG\n");
  std::printf("(12 instance seeds x 8 coin seeds; cost normalized to deterministic ALG)\n");

  BenchReport report("randomized");
  Table table({"scheduler", "mean", "stddev over coins", "worst", "best"});

  struct Variant {
    std::string name;
    double sigma;    // < 0 encodes the serial dictator
  };
  const Variant variants[] = {
      {"deterministic ALG", 0.0},
      {"perturbed sigma=0.1", 0.1},
      {"perturbed sigma=0.5", 0.5},
      {"perturbed sigma=2.0", 2.0},
      {"random serial dictator", -1.0},
  };

  ScenarioSpec spec = two_tier_scenario("randomized", 10, 2, 0.5);
  spec.topology.seed_salt = 211;
  spec.workload.num_packets = 150;
  spec.workload.arrival_rate = 5.0;
  spec.workload.skew = PairSkew::Zipf;
  spec.workload.weights = WeightDist::UniformInt;
  spec.workload.weight_max = 9;
  spec.repetitions = 12;
  const ScenarioRunner runner(spec);

  for (const Variant& variant : variants) {
    // One policy factory per coin flip: same dispatcher, reseeded scheduler.
    auto coin_policy = [&variant](std::uint64_t coin) {
      PolicyFactory policy = alg_policy();
      policy.name = variant.name;
      if (variant.sigma < 0) {
        policy.scheduler = [coin](const Topology&) {
          return std::make_unique<RandomSerialDictatorScheduler>(coin * 7919);
        };
      } else if (variant.sigma > 0) {
        const double sigma = variant.sigma;
        policy.scheduler = [sigma, coin](const Topology&) {
          return std::make_unique<PerturbedStableScheduler>(sigma, coin * 7919);
        };
      }
      return policy;
    };

    Summary ratio;
    for (const std::uint64_t seed : runner.seeds()) {
      const double baseline = runner.run_once(alg_policy(), seed).total_cost;
      const std::size_t coins = variant.sigma == 0.0 ? 1 : 8;
      for (std::uint64_t coin = 1; coin <= coins; ++coin) {
        ratio.add(runner.run_once(coin_policy(coin), seed).total_cost / baseline);
      }
    }
    table.add_row({variant.name, Table::fmt(ratio.mean(), 3), Table::fmt(ratio.stddev(), 3),
                   Table::fmt(ratio.max(), 3), Table::fmt(ratio.min(), 3)});
    report.add(variant.name, ratio.mean(), 0.0)
        .param("sigma", variant.sigma)
        .value("stddev", ratio.stddev());
  }
  table.print("randomization ablation");

  std::printf(
      "\nExpected shape: small perturbations track deterministic ALG (near-ties are\n"
      "interchangeable); heavy noise and weight-blind dictatorship lose ground --\n"
      "evidence that the weight order, not tie-breaking, carries ALG's power. The\n"
      "open question in Section VI is whether randomization can beat the 2(2/eps+1)\n"
      "bound in the worst case; on average it does not help here.\n");
  report.print();
  return 0;
}
