// EXP-RND -- randomized scheduling (the paper's Section-VI future-work
// question): does randomizing the stable-matching priorities help?
// Compares deterministic ALG against log-normal priority perturbation
// (several sigmas) and uniform random serial dictatorship, reporting the
// mean and spread over scheduler coin flips.

#include <cstdio>

#include "common.hpp"
#include "core/randomized.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-RND: randomized scheduling vs deterministic ALG\n");
  std::printf("(12 instance seeds x 8 coin seeds; cost normalized to deterministic ALG)\n");

  Table table({"scheduler", "mean", "stddev over coins", "worst", "best"});

  struct Variant {
    std::string name;
    double sigma;    // < 0 encodes the serial dictator
  };
  const Variant variants[] = {
      {"deterministic ALG", 0.0},
      {"perturbed sigma=0.1", 0.1},
      {"perturbed sigma=0.5", 0.5},
      {"perturbed sigma=2.0", 2.0},
      {"random serial dictator", -1.0},
  };

  for (const Variant& variant : variants) {
    Summary ratio;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 211);
      TwoTierConfig net;
      net.racks = 10;
      net.lasers_per_rack = 2;
      net.photodetectors_per_rack = 2;
      net.density = 0.5;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = 150;
      traffic.arrival_rate = 5.0;
      traffic.skew = PairSkew::Zipf;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 9;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      ImpactDispatcher reference_dispatcher;
      StableMatchingScheduler reference;
      const double baseline =
          simulate(instance, reference_dispatcher, reference, {}).total_cost;

      const std::size_t coins = variant.sigma == 0.0 ? 1 : 8;
      for (std::uint64_t coin = 1; coin <= coins; ++coin) {
        ImpactDispatcher dispatcher;
        double cost = 0.0;
        if (variant.sigma == 0.0) {
          StableMatchingScheduler scheduler;
          cost = simulate(instance, dispatcher, scheduler, {}).total_cost;
        } else if (variant.sigma < 0) {
          RandomSerialDictatorScheduler scheduler(coin * 7919);
          cost = simulate(instance, dispatcher, scheduler, {}).total_cost;
        } else {
          PerturbedStableScheduler scheduler(variant.sigma, coin * 7919);
          cost = simulate(instance, dispatcher, scheduler, {}).total_cost;
        }
        ratio.add(cost / baseline);
      }
    }
    table.add_row({variant.name, Table::fmt(ratio.mean(), 3), Table::fmt(ratio.stddev(), 3),
                   Table::fmt(ratio.max(), 3), Table::fmt(ratio.min(), 3)});
  }
  table.print("randomization ablation");

  std::printf(
      "\nExpected shape: small perturbations track deterministic ALG (near-ties are\n"
      "interchangeable); heavy noise and weight-blind dictatorship lose ground --\n"
      "evidence that the weight order, not tie-breaking, carries ALG's power. The\n"
      "open question in Section VI is whether randomization can beat the 2(2/eps+1)\n"
      "bound in the worst case; on average it does not help here.\n");
  return 0;
}
