// EXP-TGT -- how tight is the analysis? Theorem 1 bounds ALG by
// 2(2/eps+1) x OPT(1/(2+eps)); this experiment hunts for instances that
// push the *certified* ratio ALG / (D/2) toward the bound, using (a) the
// structured adversarial families and (b) random search over hotspot
// workloads, and reports the frontier. The certified ratio uses the dual
// witness, i.e. exactly the quantity the proof controls:
//   ALG / (D/2) <= 2 (2+eps)/eps  (Lemmas 3 + 5 combined).

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"
#include "workload/adversarial.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

double certified_ratio(const ScenarioRunner& runner, std::uint64_t seed, double eps) {
  const Instance instance = runner.instance(seed);
  const RunResult run = runner.run_once(alg_policy(), instance);
  const DualWitness witness = build_dual_witness(instance, run);
  const double lower = witness.lower_bound(eps);
  return lower > 0 ? run.total_cost / lower : 0.0;
}

/// Wraps a fixed adversarial instance as a single-repetition scenario.
ScenarioRunner fixed_scenario(const char* name, Instance instance) {
  ScenarioSpec spec;
  spec.name = name;
  auto shared = std::make_shared<Instance>(std::move(instance));
  spec.make_instance = [shared](std::uint64_t) { return *shared; };
  spec.engine.record_trace = true;
  return ScenarioRunner(std::move(spec));
}

}  // namespace

int main() {
  const double eps = 1.0;
  const double bound = 2.0 * (2.0 + eps) / eps;  // certified-form bound = 6
  std::printf("EXP-TGT: tightness of the dual-fitting analysis at eps = 1\n");
  std::printf("certified ratio = ALG / (D_witness/2); proof guarantees <= %.1f\n\n", bound);

  BenchReport report("tightness");
  Table structured({"family", "parameters", "certified ratio", "fraction of bound"});
  struct Structured {
    const char* family;
    const char* parameters;
    ScenarioRunner runner;
  };
  Rng storm_rng(5);
  Structured cases[] = {
      {"single-edge batch", "n=20",
       fixed_scenario("single-edge-batch", adversarial_single_edge_batch(20))},
      {"weight gradient", "n=20",
       fixed_scenario("weight-gradient", adversarial_weight_gradient(20))},
      {"delay trap", "waves=8", fixed_scenario("delay-trap", adversarial_delay_trap(8))},
      {"burst storm", "bursts=12",
       fixed_scenario("burst-storm", adversarial_burst_storm(12, storm_rng))},
  };
  for (Structured& c : cases) {
    const double r = certified_ratio(c.runner, 1, eps);
    structured.add_row({c.family, c.parameters, Table::fmt(r, 3),
                        Table::fmt(100.0 * r / bound, 1) + "%"});
    report.add(c.family, r, 0.0).param("family", c.family).value("bound", bound);
  }
  structured.print("structured adversarial families");

  // Random search over congested hotspot workloads for the worst ratio.
  // Repetition seeds drive the whole shape: racks, delay spread and skew
  // all derive from the seed inside one scenario family.
  ScenarioSpec search_spec;
  search_spec.name = "hotspot-search";
  search_spec.engine.record_trace = true;
  search_spec.repetitions = 400;
  search_spec.make_instance = [](std::uint64_t seed) {
    Rng rng(seed * 9176);
    TwoTierConfig net;
    net.racks = 3 + static_cast<NodeIndex>(seed % 5);
    net.lasers_per_rack = 1 + static_cast<NodeIndex>(seed % 2);
    net.photodetectors_per_rack = 1;
    net.density = 0.6;
    net.max_edge_delay = 1 + static_cast<Delay>(seed % 3);
    const Topology topology = build_two_tier(net, rng);
    WorkloadConfig traffic;
    traffic.num_packets = 40 + (seed % 40);
    traffic.arrival_rate = 6.0;
    traffic.skew = (seed % 2 == 0) ? PairSkew::Hotspot : PairSkew::Incast;
    traffic.weights = WeightDist::UniformInt;
    traffic.weight_max = 10;
    traffic.seed = seed;
    return generate_workload(topology, traffic);
  };
  const ScenarioRunner search_runner(search_spec);

  struct Hit {
    double ratio;
    std::uint64_t seed;
  };
  std::vector<Hit> hits(400);
  parallel_for(hits.size(), [&](std::size_t i) {
    const std::uint64_t seed = i + 1;
    hits[i] = Hit{certified_ratio(search_runner, seed, eps), seed};
  });
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.ratio > b.ratio; });

  Table search({"rank", "seed", "certified ratio", "fraction of bound"});
  for (std::size_t k = 0; k < 5; ++k) {
    search.add_row({Table::fmt(static_cast<std::uint64_t>(k + 1)), Table::fmt(hits[k].seed),
                    Table::fmt(hits[k].ratio, 3),
                    Table::fmt(100.0 * hits[k].ratio / bound, 1) + "%"});
    report.add("hotspot-search", hits[k].ratio, 0.0)
        .param("rank", static_cast<std::int64_t>(k + 1))
        .param("seed", static_cast<std::int64_t>(hits[k].seed));
  }
  search.print("random search over 400 congested workloads: worst certified ratios");

  const bool ok = hits.front().ratio <= bound + 1e-6;
  std::printf("\nEXP-TGT %s: worst observed certified ratio %.3f vs proof bound %.1f\n"
              "(the certificate chain ALG <= (2+eps)/eps * D, D <= 2*OPT is nearly\n"
              "saturated by single-bottleneck storms -- the analysis is not loose).\n",
              ok ? "REPRODUCED" : "MISMATCH", hits.front().ratio, bound);
  report.print();
  return ok ? 0 : 1;
}
