// EXP-TGT -- how tight is the analysis? Theorem 1 bounds ALG by
// 2(2/eps+1) x OPT(1/(2+eps)); this experiment hunts for instances that
// push the *certified* ratio ALG / (D/2) toward the bound, using (a) the
// structured adversarial families and (b) random search over hotspot
// workloads, and reports the frontier. The certified ratio uses the dual
// witness, i.e. exactly the quantity the proof controls:
//   ALG / (D/2) <= 2 (2+eps)/eps  (Lemmas 3 + 5 combined).

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"
#include "workload/adversarial.hpp"

namespace {

using namespace rdcn;

double certified_ratio(const Instance& instance, double eps) {
  const RunResult run = run_alg(instance);
  const DualWitness witness = build_dual_witness(instance, run);
  const double lower = witness.lower_bound(eps);
  return lower > 0 ? run.total_cost / lower : 0.0;
}

}  // namespace

int main() {
  using namespace rdcn::bench;

  const double eps = 1.0;
  const double bound = 2.0 * (2.0 + eps) / eps;  // certified-form bound = 6
  std::printf("EXP-TGT: tightness of the dual-fitting analysis at eps = 1\n");
  std::printf("certified ratio = ALG / (D_witness/2); proof guarantees <= %.1f\n\n", bound);

  Table structured({"family", "parameters", "certified ratio", "fraction of bound"});
  {
    const Instance a = adversarial_single_edge_batch(20);
    const double r = certified_ratio(a, eps);
    structured.add_row({"single-edge batch", "n=20", Table::fmt(r, 3),
                        Table::fmt(100.0 * r / bound, 1) + "%"});
  }
  {
    const Instance a = adversarial_weight_gradient(20);
    const double r = certified_ratio(a, eps);
    structured.add_row({"weight gradient", "n=20", Table::fmt(r, 3),
                        Table::fmt(100.0 * r / bound, 1) + "%"});
  }
  {
    const Instance a = adversarial_delay_trap(8);
    const double r = certified_ratio(a, eps);
    structured.add_row({"delay trap", "waves=8", Table::fmt(r, 3),
                        Table::fmt(100.0 * r / bound, 1) + "%"});
  }
  {
    Rng rng(5);
    const Instance a = adversarial_burst_storm(12, rng);
    const double r = certified_ratio(a, eps);
    structured.add_row({"burst storm", "bursts=12", Table::fmt(r, 3),
                        Table::fmt(100.0 * r / bound, 1) + "%"});
  }
  structured.print("structured adversarial families");

  // Random search over congested hotspot workloads for the worst ratio.
  struct Hit {
    double ratio;
    std::uint64_t seed;
  };
  std::vector<Hit> hits(400);
  parallel_for(hits.size(), [&](std::size_t i) {
    const std::uint64_t seed = i + 1;
    Rng rng(seed * 9176);
    TwoTierConfig net;
    net.racks = 3 + static_cast<NodeIndex>(seed % 5);
    net.lasers_per_rack = 1 + static_cast<NodeIndex>(seed % 2);
    net.photodetectors_per_rack = 1;
    net.density = 0.6;
    net.max_edge_delay = 1 + static_cast<Delay>(seed % 3);
    const Topology topology = build_two_tier(net, rng);
    WorkloadConfig traffic;
    traffic.num_packets = 40 + (seed % 40);
    traffic.arrival_rate = 6.0;
    traffic.skew = (seed % 2 == 0) ? PairSkew::Hotspot : PairSkew::Incast;
    traffic.weights = WeightDist::UniformInt;
    traffic.weight_max = 10;
    traffic.seed = seed;
    hits[i] = Hit{certified_ratio(generate_workload(topology, traffic), eps), seed};
  });
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.ratio > b.ratio; });

  Table search({"rank", "seed", "certified ratio", "fraction of bound"});
  for (std::size_t k = 0; k < 5; ++k) {
    search.add_row({Table::fmt(static_cast<std::uint64_t>(k + 1)), Table::fmt(hits[k].seed),
                    Table::fmt(hits[k].ratio, 3),
                    Table::fmt(100.0 * hits[k].ratio / bound, 1) + "%"});
  }
  search.print("random search over 400 congested workloads: worst certified ratios");

  const bool ok = hits.front().ratio <= bound + 1e-6;
  std::printf("\nEXP-TGT %s: worst observed certified ratio %.3f vs proof bound %.1f\n"
              "(the certificate chain ALG <= (2+eps)/eps * D, D <= 2*OPT is nearly\n"
              "saturated by single-bottleneck storms -- the analysis is not loose).\n",
              ok ? "REPRODUCED" : "MISMATCH", hits.front().ratio, bound);
  return ok ? 0 : 1;
}
