#pragma once

// Shared harness for the experiment binaries. Scenario construction,
// policy wiring, repetition and aggregation all live in the library's
// run/ subsystem (ScenarioSpec / ScenarioRunner / BatchRunner and the
// policy registry); this header only adds presentation: the paper-style
// ASCII tables of util/table.hpp plus a machine-readable JSON report so
// every bench's rows land in the BENCH_*.json perf trajectory. Rows in
// EXPERIMENTS.md can be regenerated with `for b in build/bench/*; do $b; done`.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "run/batch.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace rdcn::bench {

/// The recurring experiment shape: a two-tier pod with symmetric
/// lasers/photodetectors per rack. Traffic, engine options, seeds and
/// repetitions are set on the returned spec.
inline ScenarioSpec two_tier_scenario(std::string name, NodeIndex racks,
                                      NodeIndex per_rack, double density,
                                      Delay max_edge_delay = 2) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  auto& net = spec.topology.two_tier;
  net.racks = racks;
  net.lasers_per_rack = per_rack;
  net.photodetectors_per_rack = per_rack;
  net.density = density;
  net.max_edge_delay = max_edge_delay;
  return spec;
}

/// Cost of one scenario repetition under a policy (convenience for
/// benches that feed a bespoke, already-built instance).
inline double run_policy_cost(const Instance& instance, const PolicyFactory& policy,
                              EngineOptions options = {}) {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  return simulate(instance, *dispatcher, *scheduler, options).total_cost;
}

/// mean over seeds of metric(instance(seed)), computed in parallel.
inline Summary sweep_seeds(std::size_t seeds,
                           const std::function<double(std::uint64_t)>& metric) {
  Summary summary;
  std::vector<double> values(seeds);
  parallel_for(seeds, [&](std::size_t i) {
    values[i] = metric(static_cast<std::uint64_t>(i + 1));
  });
  for (double value : values) summary.add(value);
  return summary;
}

// --- machine-readable output ------------------------------------------------

// Report rendering goes through util/json (see json_lines below); this
// numeric formatter remains public for benches that print ad-hoc numbers
// outside a report. NaN / inf have no JSON representation ("nan" breaks
// every parser); they reach here e.g. through Summary::min()/max() on an
// empty summary -- util/json's dump() applies the same null mapping.
inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

/// Accumulates one bench's results and prints them as JSON lines -- one
/// object per row, greppable via '^{':
///   {"bench":"baselines","name":"ALG","params":{"zipf":0.8,"rate":2},
///    "total_cost":123.4,"wall_ms":5.67}
class BenchReport {
 public:
  class Row {
   public:
    Row& param(const std::string& key, const std::string& value) {
      params_.emplace_back(key, json::Value(value));
      return *this;
    }
    Row& param(const std::string& key, double value) {
      params_.emplace_back(key, json::Value(value));
      return *this;
    }
    Row& param(const std::string& key, std::int64_t value) {
      params_.emplace_back(key, json::Value(value));
      return *this;
    }
    /// Extra top-level metric next to total_cost / wall_ms.
    Row& value(const std::string& key, double metric) {
      extra_.emplace_back(key, metric);
      return *this;
    }

   private:
    friend class BenchReport;
    std::string name_;
    json::Object params_;  ///< insertion order preserved in the output
    double total_cost_ = 0.0;
    double wall_ms_ = 0.0;
    std::vector<std::pair<std::string, double>> extra_;
  };

  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Attaches a run-metadata line emitted before the rows:
  ///   {"bench":"hotpath","meta":{"git":...,"build":...,"generated":...}}
  /// perf_diff skips lines carrying a "meta" key, so metadata never
  /// perturbs row matching; goldens that must be byte-stable are produced
  /// with the benches' --no-meta flag instead.
  void set_meta(std::string git, std::string build, std::string timestamp) {
    meta_git_ = std::move(git);
    meta_build_ = std::move(build);
    meta_timestamp_ = std::move(timestamp);
    has_meta_ = true;
  }
  void clear_meta() { has_meta_ = false; }

  Row& add(const std::string& name, double total_cost, double wall_ms) {
    rows_.emplace_back();
    rows_.back().name_ = name;
    rows_.back().total_cost_ = total_cost;
    rows_.back().wall_ms_ = wall_ms;
    return rows_.back();
  }

  /// Standard row from an aggregated scenario x policy result: mean cost
  /// and mean per-repetition wall clock.
  Row& add(const ScenarioResult& result) {
    Row& row = add(result.policy, result.cost.mean(), result.wall_ms.mean());
    row.param("scenario", result.scenario);
    row.param("reps", static_cast<std::int64_t>(result.repetitions.size()));
    return row;
  }

  /// The report as JSON lines (exposed so tests can parse every line).
  /// Rendering goes through util/json: one json::Object per row, dumped
  /// compact, so escaping / non-finite handling / number formatting have
  /// exactly one implementation in the tree.
  std::vector<std::string> json_lines() const {
    std::vector<std::string> lines;
    lines.reserve(rows_.size() + (has_meta_ ? 1 : 0));
    if (has_meta_) {
      json::Object meta;
      meta.emplace_back("git", json::Value(meta_git_));
      meta.emplace_back("build", json::Value(meta_build_));
      meta.emplace_back("generated", json::Value(meta_timestamp_));
      json::Object line;
      line.emplace_back("bench", json::Value(bench_));
      line.emplace_back("meta", json::Value(std::move(meta)));
      lines.push_back(json::dump(json::Value(std::move(line))));
    }
    for (const Row& row : rows_) {
      json::Object line;
      line.emplace_back("bench", json::Value(bench_));
      line.emplace_back("name", json::Value(row.name_));
      if (!row.params_.empty()) line.emplace_back("params", json::Value(row.params_));
      line.emplace_back("total_cost", json::Value(row.total_cost_));
      line.emplace_back("wall_ms", json::Value(row.wall_ms_));
      for (const auto& [key, value] : row.extra_) {
        line.emplace_back(key, json::Value(value));
      }
      lines.push_back(json::dump(json::Value(std::move(line))));
    }
    return lines;
  }

  /// Prints every row as one JSON object per line.
  void print() const {
    std::printf("\n--- machine-readable (JSON lines) ---\n");
    for (const std::string& line : json_lines()) std::printf("%s\n", line.c_str());
  }

  /// Writes the JSON lines to `path` via util/atomic_file's
  /// write-temp-fsync-rename: a bench killed mid-write can never leave a
  /// truncated or interleaved BENCH_*.json baseline behind (throws
  /// std::runtime_error on I/O failure).
  void write_json(const std::string& path) const {
    std::string text;
    for (const std::string& line : json_lines()) {
      text += line;
      text += '\n';
    }
    atomic_write_file(path, text);
  }

 private:
  std::string bench_;
  std::deque<Row> rows_;  ///< deque: add() hands out stable Row references
  bool has_meta_ = false;
  std::string meta_git_;
  std::string meta_build_;
  std::string meta_timestamp_;
};

// CMake injects the configure-time `git describe --always --dirty` output
// and build type into the bench targets; other consumers of this header
// (the test suite) fall back to "unknown".
#ifndef RDCN_GIT_DESCRIBE
#define RDCN_GIT_DESCRIBE "unknown"
#endif
#ifndef RDCN_BUILD_TYPE
#define RDCN_BUILD_TYPE "unknown"
#endif

/// Stamps the report's meta line from the build identity above plus the
/// current UTC wall clock. Benches call this unless invoked with --no-meta
/// (regenerating a committed BENCH_*.json golden needs deterministic bytes).
inline void stamp_meta(BenchReport& report) {
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  report.set_meta(RDCN_GIT_DESCRIBE, RDCN_BUILD_TYPE, stamp);
}

}  // namespace rdcn::bench
