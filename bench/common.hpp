#pragma once

// Shared helpers for the experiment binaries: named policy factories,
// workload-suite construction, and parallel seed sweeps. Every bench
// prints paper-style ASCII tables via util/table.hpp so the rows in
// EXPERIMENTS.md can be regenerated with `for b in build/bench/*; do $b; done`.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"
#include "net/builders.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace rdcn::bench {

struct PolicyFactory {
  std::string name;
  std::function<std::unique_ptr<DispatchPolicy>()> dispatcher;
  std::function<std::unique_ptr<SchedulePolicy>(const Topology&)> scheduler;
};

inline PolicyFactory alg_policy() {
  return PolicyFactory{
      "ALG",
      [] { return std::make_unique<ImpactDispatcher>(); },
      [](const Topology&) { return std::make_unique<StableMatchingScheduler>(); },
  };
}

/// The baseline grid of EXP-B1 (scheduler alternatives under a sensible
/// shared dispatcher).
inline std::vector<PolicyFactory> scheduler_baselines() {
  std::vector<PolicyFactory> policies;
  policies.push_back(alg_policy());
  policies.push_back({"MaxWeight",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology&) { return std::make_unique<MaxWeightScheduler>(); }});
  policies.push_back({"iSLIP",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology&) { return std::make_unique<IslipScheduler>(); }});
  policies.push_back({"Rotor",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology& t) { return std::make_unique<RotorScheduler>(t); }});
  policies.push_back({"RandomMaximal",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<RandomMaximalScheduler>(99);
                      }});
  policies.push_back({"FIFO",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology&) { return std::make_unique<FifoScheduler>(); }});
  return policies;
}

/// The dispatcher-ablation grid of EXP-B2 (all under stable matching).
inline std::vector<PolicyFactory> dispatcher_ablations() {
  std::vector<PolicyFactory> policies;
  policies.push_back({"Impact (ALG)",
                      [] { return std::make_unique<ImpactDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  policies.push_back({"Random",
                      [] { return std::make_unique<RandomDispatcher>(5); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  policies.push_back({"RoundRobin",
                      [] { return std::make_unique<RoundRobinDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  policies.push_back({"JSQ",
                      [] { return std::make_unique<JsqDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  policies.push_back({"MinDelay",
                      [] { return std::make_unique<MinDelayDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  policies.push_back({"DirectOnly",
                      [] { return std::make_unique<DirectOnlyDispatcher>(); },
                      [](const Topology&) {
                        return std::make_unique<StableMatchingScheduler>();
                      }});
  return policies;
}

inline double run_policy_cost(const Instance& instance, const PolicyFactory& policy,
                              EngineOptions options = {}) {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  return simulate(instance, *dispatcher, *scheduler, options).total_cost;
}

/// mean over seeds of metric(instance(seed)), computed in parallel.
inline Summary sweep_seeds(std::size_t seeds,
                           const std::function<double(std::uint64_t)>& metric) {
  Summary summary;
  std::mutex mutex;
  parallel_for(seeds, [&](std::size_t i) {
    const double value = metric(static_cast<std::uint64_t>(i + 1));
    const std::lock_guard<std::mutex> lock(mutex);
    summary.add(value);
  });
  return summary;
}

}  // namespace rdcn::bench
