// EXP-F2 -- Figure 2 of the paper: realized impacts under the charging
// scheme on inputs Pi (3 packets) and Pi' (Pi + p4), and the stable-
// matching flip on p4's arrival. Paper-expected impacts: Pi -> 1, 2, 5;
// Pi' -> 1, 3, 3, 7.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/alg.hpp"
#include "core/charging.hpp"
#include "net/builders.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  // Both figure inputs run through one scenario: repetition seed 1 is Pi,
  // seed 2 is Pi' (the same instance family, one packet apart).
  ScenarioSpec spec;
  spec.name = "figure2";
  spec.make_instance = [](std::uint64_t seed) {
    return seed == 1 ? figure2_instance_pi() : figure2_instance_pi_prime();
  };
  spec.engine.record_trace = true;
  spec.base_seed = 1;
  spec.repetitions = 2;
  ScenarioRunner runner(spec);

  struct Case {
    const char* name;
    std::uint64_t seed;
    std::vector<double> expected;
    std::vector<const char*> expected_label;
  };
  Case cases[] = {
      {"Pi", 1, {1, 2, 5}, {"w1 = 1", "w2 = 2", "w2 + w3 = 5"}},
      {"Pi'", 2, {1, 3, 3, 7}, {"w1 = 1", "w1 + w2 = 3", "w3 = 3", "w3 + w4 = 7"}},
  };

  BenchReport report("fig2");
  bool ok = true;
  for (Case& c : cases) {
    const Instance instance = runner.instance(c.seed);
    const RunResult run = runner.run_once(alg_policy(), instance);
    const ChargingAudit audit = audit_charging(instance, run);
    report.add("alg", run.total_cost, 0.0).param("input", c.name);

    Table table({"packet", "path", "weight", "measured impact", "paper expects", "match"});
    const char* paths[] = {"s1->d1", "s1->d2", "s2->d2", "s2->d3"};
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      const bool row_ok = std::abs(audit.charge[i] - c.expected[i]) < 1e-9;
      ok = ok && row_ok;
      table.add_row({"p" + std::to_string(i + 1), paths[i],
                     Table::fmt(instance.packets()[i].weight, 0),
                     Table::fmt(audit.charge[i], 0), c.expected_label[i],
                     row_ok ? "yes" : "NO"});
    }
    table.print(std::string("Figure 2, input ") + c.name);
  }

  // The matching flip: p2 blocked on Pi (step 2), transmitted first on Pi'.
  const RunResult pi = runner.run_once(alg_policy(), 1);
  const RunResult pi_prime = runner.run_once(alg_policy(), 2);
  Table flip({"input", "step-1 matching", "paper expects"});
  auto step1 = [](const RunResult& run, std::size_t packets) {
    std::string result;
    for (std::size_t i = 0; i < packets; ++i) {
      if (!run.outcomes[i].chunk_transmit_steps.empty() &&
          run.outcomes[i].chunk_transmit_steps[0] == 1) {
        result += (result.empty() ? "p" : ", p") + std::to_string(i + 1);
      }
    }
    return result;
  };
  flip.add_row({"Pi", step1(pi, 3), "p1, p3"});
  flip.add_row({"Pi'", step1(pi_prime, 4), "p2, p4"});
  flip.print("stable matching before/after p4 arrives");

  ok = ok && step1(pi, 3) == "p1, p3" && step1(pi_prime, 4) == "p2, p4";
  std::printf("\nEXP-F2 %s\n", ok ? "REPRODUCED" : "MISMATCH");
  report.print();
  return ok ? 0 : 1;
}
