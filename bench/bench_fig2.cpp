// EXP-F2 -- Figure 2 of the paper: realized impacts under the charging
// scheme on inputs Pi (3 packets) and Pi' (Pi + p4), and the stable-
// matching flip on p4's arrival. Paper-expected impacts: Pi -> 1, 2, 5;
// Pi' -> 1, 3, 3, 7.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/alg.hpp"
#include "core/charging.hpp"
#include "net/builders.hpp"

int main() {
  using namespace rdcn;

  struct Case {
    const char* name;
    Instance instance;
    std::vector<double> expected;
    std::vector<const char*> expected_label;
  };
  Case cases[] = {
      {"Pi", figure2_instance_pi(), {1, 2, 5}, {"w1 = 1", "w2 = 2", "w2 + w3 = 5"}},
      {"Pi'",
       figure2_instance_pi_prime(),
       {1, 3, 3, 7},
       {"w1 = 1", "w1 + w2 = 3", "w3 = 3", "w3 + w4 = 7"}},
  };

  bool ok = true;
  for (Case& c : cases) {
    const RunResult run = run_alg(c.instance);
    const ChargingAudit audit = audit_charging(c.instance, run);

    Table table({"packet", "path", "weight", "measured impact", "paper expects", "match"});
    const char* paths[] = {"s1->d1", "s1->d2", "s2->d2", "s2->d3"};
    for (std::size_t i = 0; i < c.instance.num_packets(); ++i) {
      const bool row_ok = std::abs(audit.charge[i] - c.expected[i]) < 1e-9;
      ok = ok && row_ok;
      table.add_row({"p" + std::to_string(i + 1), paths[i],
                     Table::fmt(c.instance.packets()[i].weight, 0),
                     Table::fmt(audit.charge[i], 0), c.expected_label[i],
                     row_ok ? "yes" : "NO"});
    }
    table.print(std::string("Figure 2, input ") + c.name);
  }

  // The matching flip: p2 blocked on Pi (step 2), transmitted first on Pi'.
  const RunResult pi = run_alg(cases[0].instance);
  const RunResult pi_prime = run_alg(cases[1].instance);
  Table flip({"input", "step-1 matching", "paper expects"});
  auto step1 = [](const RunResult& run, std::size_t packets) {
    std::string result;
    for (std::size_t i = 0; i < packets; ++i) {
      if (!run.outcomes[i].chunk_transmit_steps.empty() &&
          run.outcomes[i].chunk_transmit_steps[0] == 1) {
        result += (result.empty() ? "p" : ", p") + std::to_string(i + 1);
      }
    }
    return result;
  };
  flip.add_row({"Pi", step1(pi, 3), "p1, p3"});
  flip.add_row({"Pi'", step1(pi_prime, 4), "p2, p4"});
  flip.print("stable matching before/after p4 arrives");

  ok = ok && step1(pi, 3) == "p1, p3" && step1(pi_prime, 4) == "p2, p4";
  std::printf("\nEXP-F2 %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
