// EXP-B1 -- ALG vs classic switch-scheduling baselines across traffic
// skew and load. The paper's motivation predicts the weight-aware,
// contention-aware ALG to dominate weight-blind (FIFO, Rotor, iSLIP,
// RandomMaximal) policies on skewed weighted traffic, with MaxWeight the
// closest competitor.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-B1: weighted latency vs scheduler, normalized to ALG = 1.00\n");
  std::printf("(16 racks, 2x2 lasers/photodetectors, 12 seeds per cell; lower is better)\n");

  const auto policies = scheduler_baselines();

  for (const double zipf : {0.0, 0.8, 1.6}) {
    Table table({"scheduler", "load 2/step", "load 4/step", "load 8/step"});
    std::vector<std::vector<double>> cost(policies.size());
    for (const double rate : {2.0, 4.0, 8.0}) {
      std::vector<Summary> per_policy(policies.size());
      for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 53 + static_cast<std::uint64_t>(zipf * 10));
        TwoTierConfig net;
        net.racks = 16;
        net.lasers_per_rack = 2;
        net.photodetectors_per_rack = 2;
        net.density = 0.4;
        net.max_edge_delay = 2;
        const Topology topology = build_two_tier(net, rng);
        WorkloadConfig traffic;
        traffic.num_packets = 250;
        traffic.arrival_rate = rate;
        traffic.skew = zipf > 0 ? PairSkew::Zipf : PairSkew::Uniform;
        traffic.zipf_exponent = zipf;
        traffic.weights = WeightDist::UniformInt;
        traffic.weight_max = 10;
        traffic.seed = seed;
        const Instance instance = generate_workload(topology, traffic);

        std::vector<double> costs(policies.size());
        parallel_for(policies.size(), [&](std::size_t p) {
          costs[p] = run_policy_cost(instance, policies[p]);
        });
        for (std::size_t p = 0; p < policies.size(); ++p) per_policy[p].add(costs[p]);
      }
      for (std::size_t p = 0; p < policies.size(); ++p) {
        cost[p].push_back(per_policy[p].mean());
      }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
      table.add_row({policies[p].name, Table::fmt(cost[p][0] / cost[0][0], 2) + "x",
                     Table::fmt(cost[p][1] / cost[0][1], 2) + "x",
                     Table::fmt(cost[p][2] / cost[0][2], 2) + "x"});
    }
    table.print("traffic skew: zipf exponent " + Table::fmt(zipf, 1));
  }

  std::printf(
      "\nExpected shape: ALG <= MaxWeight < iSLIP/RandomMaximal/FIFO << Rotor, with\n"
      "ALG's margin growing with skew and load (weight-aware stable matchings win\n"
      "exactly where the paper's motivation says they should).\n");
  return 0;
}
