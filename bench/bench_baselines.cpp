// EXP-B1 -- ALG vs classic switch-scheduling baselines across traffic
// skew and load. The paper's motivation predicts the weight-aware,
// contention-aware ALG to dominate weight-blind (FIFO, Rotor, iSLIP,
// RandomMaximal) policies on skewed weighted traffic, with MaxWeight the
// closest competitor.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-B1: weighted latency vs scheduler, normalized to ALG = 1.00\n");
  std::printf("(16 racks, 2x2 lasers/photodetectors, 12 seeds per cell; lower is better)\n");

  const auto policies = scheduler_baselines();
  const double rates[] = {2.0, 4.0, 8.0};
  BenchReport report("baselines");

  for (const double zipf : {0.0, 0.8, 1.6}) {
    BatchRunner batch;
    for (const double rate : rates) {
      ScenarioSpec spec = two_tier_scenario(
          "zipf" + Table::fmt(zipf, 1) + "-load" + Table::fmt(rate, 0), 16, 2, 0.4);
      spec.topology.seed_salt = static_cast<std::uint64_t>(zipf * 10);
      spec.workload.num_packets = 250;
      spec.workload.arrival_rate = rate;
      spec.workload.skew = zipf > 0 ? PairSkew::Zipf : PairSkew::Uniform;
      spec.workload.zipf_exponent = zipf;
      spec.workload.weights = WeightDist::UniformInt;
      spec.workload.weight_max = 10;
      spec.repetitions = 12;
      batch.add_grid(spec, policies);
    }
    const auto results = batch.run();  // rate-major: results[rate][policy]
    auto cell = [&](std::size_t r, std::size_t p) -> const ScenarioResult& {
      return results[r * policies.size() + p];
    };

    Table table({"scheduler", "load 2/step", "load 4/step", "load 8/step"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<std::string> row = {policies[p].name};
      for (std::size_t r = 0; r < 3; ++r) {
        row.push_back(Table::fmt(cell(r, p).cost.mean() / cell(r, 0).cost.mean(), 2) + "x");
        report.add(cell(r, p)).param("zipf", zipf).param("rate", rates[r]);
      }
      table.add_row(row);
    }
    table.print("traffic skew: zipf exponent " + Table::fmt(zipf, 1));
  }

  std::printf(
      "\nExpected shape: ALG <= MaxWeight < iSLIP/RandomMaximal/FIFO << Rotor, with\n"
      "ALG's margin growing with skew and load (weight-aware stable matchings win\n"
      "exactly where the paper's motivation says they should).\n");
  report.print();
  return 0;
}
