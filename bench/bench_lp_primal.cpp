// EXP-F3 -- Figure 3 of the paper: the primal LP relaxation P.
// Builds and solves P on the Figure-1 instance and on random small
// instances, across the eps sweep, and reports LP size, optimum, and its
// position in the bound chain  trivial <= LP(eps) and LP monotone in eps.

#include <cstdio>

#include "common.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"
#include "opt/brute_force.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-F3: primal LP P (Figure 3), budget 1/(2+eps) per endpoint per step\n");

  BenchReport report("lp_primal");

  // --- Figure-1 instance across eps --------------------------------------
  {
    const Instance instance = figure1_instance();
    const auto opt = brute_force_opt(instance);
    Table table({"eps", "LP vars", "LP rows", "LP optimum", "trivial bound", "unit-speed OPT"});
    for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const PrimalLp primal = build_primal_lp(instance, PaperLpOptions{eps, 0});
      const lp::Solution solution = lp::solve(primal.model);
      table.add_row({Table::fmt(eps, 2),
                     Table::fmt(static_cast<std::uint64_t>(primal.model.num_variables())),
                     Table::fmt(static_cast<std::uint64_t>(primal.model.num_constraints())),
                     solution.status == lp::SolveStatus::Optimal
                         ? Table::fmt(solution.objective)
                         : "FAILED",
                     Table::fmt(instance.ideal_cost()),
                     opt ? Table::fmt(opt->cost) : "n/a"});
      if (solution.status == lp::SolveStatus::Optimal) {
        report.add("lp-figure1", solution.objective, 0.0).param("eps", eps);
      }
    }
    table.print("Figure-1 instance: LP optimum vs eps (monotone non-decreasing)");
  }

  // --- Random small instances: LP vs exact OPT vs ALG ---------------------
  {
    ScenarioSpec spec = two_tier_scenario("lp-primal", 3, 1, 0.8, 1);
    spec.topology.seed_salt = 977;
    spec.workload.num_packets = 5;
    spec.workload.arrival_rate = 2.0;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 4;
    spec.repetitions = 6;
    const ScenarioRunner runner(spec);

    ScenarioSpec hybrid = spec;  // even seeds: deeper delays + fixed links
    hybrid.topology.two_tier.max_edge_delay = 2;
    hybrid.topology.two_tier.fixed_link_delay = 5;
    const ScenarioRunner hybrid_runner(hybrid);

    Table table({"seed", "packets", "LP(eps=1)", "exact OPT (speed 1)", "ALG", "ALG/LP"});
    for (const std::uint64_t seed : runner.seeds()) {
      const ScenarioRunner& chosen = (seed % 2 == 0) ? hybrid_runner : runner;
      const Instance instance = chosen.instance(seed);
      const double lp_value = lp_opt_lower_bound(instance, 1.0);
      const auto opt = brute_force_opt(instance);
      const double alg = chosen.run_once(alg_policy(), instance).total_cost;
      table.add_row({Table::fmt(seed),
                     Table::fmt(static_cast<std::uint64_t>(instance.num_packets())),
                     Table::fmt(lp_value), opt ? Table::fmt(opt->cost) : "n/a",
                     Table::fmt(alg), Table::fmt(alg / lp_value, 2)});
      report.add("alg", alg, 0.0)
          .param("seed", static_cast<std::int64_t>(seed))
          .value("lp_lower_bound", lp_value);
    }
    table.print("random 5-packet instances: LP lower bound vs exact OPT vs ALG");
  }

  std::printf("\nEXP-F3 done: the LP is the OPT stand-in of Theorem 1's analysis;\n"
              "ALG/LP stays far below the worst-case bound 2(2/eps+1) = 6 at eps=1.\n");
  report.print();
  return 0;
}
