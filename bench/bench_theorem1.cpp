// EXP-T1 -- the headline result (Theorem 1): ALG is 2(2/eps+1)-competitive
// against an optimum with transmission budget 1/(2+eps).
//
// For each eps and workload family, over many random instances:
//   measured ratio = ALG cost / certified lower bound on OPT(1/(2+eps)),
// where the certificate is max(LP optimum of Figure 3 [exact, small
// instances], dual-witness D/2 [Lemma 5], trivial path bound). The
// measured ratio must stay below the theorem's bound -- and in practice
// sits far below it (the bound is worst-case).

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"
#include "opt/brute_force.hpp"
#include "opt/lower_bounds.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-T1: Theorem 1 -- ALG <= 2(2/eps+1) x OPT(1/(2+eps)-speed)\n");
  std::printf("ratios are geometric means over 24 seeds; 'max' is the worst seed\n");

  struct Family {
    const char* name;
    PairSkew skew;
    WeightDist weights;
    bool bursty;
  };
  const Family families[] = {
      {"uniform", PairSkew::Uniform, WeightDist::UniformInt, false},
      {"zipf-skewed", PairSkew::Zipf, WeightDist::UniformInt, false},
      {"hotspot-bursty", PairSkew::Hotspot, WeightDist::UniformInt, true},
      {"permutation-elephants", PairSkew::Permutation, WeightDist::Bimodal, false},
  };

  bool all_ok = true;
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double bound = 2.0 * (2.0 / eps + 1.0);
    Table table({"workload", "geo-mean ratio", "max ratio", "bound 2(2/eps+1)", "within"});
    for (const Family& family : families) {
      std::vector<double> ratios(24);
      parallel_for(ratios.size(), [&](std::size_t i) {
        const std::uint64_t seed = i + 1;
        Rng rng(seed * 31 + 7);
        TwoTierConfig net;
        net.racks = 3;
        net.lasers_per_rack = 1;
        net.photodetectors_per_rack = 1;
        net.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
        if (seed % 2 == 0) net.fixed_link_delay = 6;
        const Topology topology = build_two_tier(net, rng);

        WorkloadConfig traffic;
        traffic.num_packets = 5;
        traffic.arrival_rate = 2.0;
        traffic.skew = family.skew;
        traffic.weights = family.weights;
        traffic.weight_max = 6;
        traffic.bursty = family.bursty;
        traffic.seed = seed;
        const Instance instance = generate_workload(topology, traffic);

        const double alg_cost = run_policy_cost(instance, alg_policy());
        LowerBoundOptions options;
        options.eps = eps;
        const LowerBounds bounds = compute_lower_bounds(instance, options);
        ratios[i] = alg_cost / bounds.best();
      });
      double max_ratio = 0.0;
      for (double r : ratios) max_ratio = std::max(max_ratio, r);
      const double geo = geometric_mean(ratios);
      const bool within = max_ratio <= bound + 1e-6;
      all_ok = all_ok && within;
      table.add_row({family.name, Table::fmt(geo, 3), Table::fmt(max_ratio, 3),
                     Table::fmt(bound, 2), within ? "yes" : "NO"});
    }
    table.print("eps = " + Table::fmt(eps, 2) + "  (OPT budget 1/" +
                Table::fmt(2.0 + eps, 2) + ")");
  }

  // Companion view: the "real" online-vs-offline gap against the exact
  // UNIT-SPEED optimum (no augmentation on either side). Theorem 1 does
  // not bound this -- [22] proves no algorithm can be constant-competitive
  // here in the worst case -- but on stochastic workloads ALG stays close.
  {
    Table table({"workload", "geo-mean ALG/OPT", "max ALG/OPT", "OPT solved"});
    for (const Family& family : families) {
      std::vector<double> ratios;
      std::size_t solved = 0;
      std::mutex mutex;
      parallel_for(24, [&](std::size_t i) {
        const std::uint64_t seed = i + 1;
        Rng rng(seed * 31 + 7);
        TwoTierConfig net;
        net.racks = 3;
        net.lasers_per_rack = 1;
        net.photodetectors_per_rack = 1;
        net.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
        if (seed % 2 == 0) net.fixed_link_delay = 6;
        const Topology topology = build_two_tier(net, rng);
        WorkloadConfig traffic;
        traffic.num_packets = 5;
        traffic.arrival_rate = 2.0;
        traffic.skew = family.skew;
        traffic.weights = family.weights;
        traffic.weight_max = 6;
        traffic.bursty = family.bursty;
        traffic.seed = seed;
        const Instance instance = generate_workload(topology, traffic);
        const auto opt = brute_force_opt(instance);
        if (!opt || opt->cost <= 0) return;
        const double alg_cost = run_policy_cost(instance, alg_policy());
        const std::lock_guard<std::mutex> lock(mutex);
        ratios.push_back(alg_cost / opt->cost);
        ++solved;
      });
      double max_ratio = 0.0;
      for (double r : ratios) max_ratio = std::max(max_ratio, r);
      table.add_row({family.name, Table::fmt(geometric_mean(ratios), 3),
                     Table::fmt(max_ratio, 3),
                     Table::fmt(static_cast<std::uint64_t>(solved)) + "/24"});
    }
    table.print("companion: ALG vs exact unit-speed OPT (no augmentation)");
  }

  std::printf("\nEXP-T1 %s: measured competitive ratios respect Theorem 1's bound at "
              "every eps,\nand shrink as eps grows (more augmentation -> easier bound), "
              "matching the theory's shape.\n",
              all_ok ? "REPRODUCED" : "MISMATCH");
  return all_ok ? 0 : 1;
}
