// EXP-T1 -- the headline result (Theorem 1): ALG is 2(2/eps+1)-competitive
// against an optimum with transmission budget 1/(2+eps).
//
// For each eps and workload family, over many random instances:
//   measured ratio = ALG cost / certified lower bound on OPT(1/(2+eps)),
// where the certificate is max(LP optimum of Figure 3 [exact, small
// instances], dual-witness D/2 [Lemma 5], trivial path bound). The
// measured ratio must stay below the theorem's bound -- and in practice
// sits far below it (the bound is worst-case).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "opt/brute_force.hpp"
#include "opt/lower_bounds.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

struct Family {
  const char* name;
  PairSkew skew;
  WeightDist weights;
  bool bursty;
};

/// The small-instance family (3 racks, 5 packets) every Theorem-1 sweep
/// uses; even seeds carry deeper delays and a hybrid fixed layer.
ScenarioRunner family_runner(const Family& family, bool deep) {
  ScenarioSpec spec = two_tier_scenario(family.name, 3, 1, 0.8, deep ? 2 : 1);
  if (deep) spec.topology.two_tier.fixed_link_delay = 6;
  spec.topology.seed_salt = 31;
  spec.workload.num_packets = 5;
  spec.workload.arrival_rate = 2.0;
  spec.workload.skew = family.skew;
  spec.workload.weights = family.weights;
  spec.workload.weight_max = 6;
  spec.workload.bursty = family.bursty;
  spec.engine.record_trace = true;  // the dual-witness certificate needs it
  spec.repetitions = 24;
  return ScenarioRunner(std::move(spec));
}

}  // namespace

int main() {
  std::printf("EXP-T1: Theorem 1 -- ALG <= 2(2/eps+1) x OPT(1/(2+eps)-speed)\n");
  std::printf("ratios are geometric means over 24 seeds; 'max' is the worst seed\n");

  const Family families[] = {
      {"uniform", PairSkew::Uniform, WeightDist::UniformInt, false},
      {"zipf-skewed", PairSkew::Zipf, WeightDist::UniformInt, false},
      {"hotspot-bursty", PairSkew::Hotspot, WeightDist::UniformInt, true},
      {"permutation-elephants", PairSkew::Permutation, WeightDist::Bimodal, false},
  };

  BenchReport report("theorem1");
  bool all_ok = true;
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double bound = 2.0 * (2.0 / eps + 1.0);
    Table table({"workload", "geo-mean ratio", "max ratio", "bound 2(2/eps+1)", "within"});
    for (const Family& family : families) {
      const ScenarioRunner shallow = family_runner(family, false);
      const ScenarioRunner deep = family_runner(family, true);
      std::vector<double> ratios(24);
      parallel_for(ratios.size(), [&](std::size_t i) {
        const std::uint64_t seed = i + 1;
        const ScenarioRunner& runner = (seed % 2 == 0) ? deep : shallow;
        const Instance instance = runner.instance(seed);
        const double alg_cost = runner.run_once(alg_policy(), instance).total_cost;
        LowerBoundOptions options;
        options.eps = eps;
        const LowerBounds bounds = compute_lower_bounds(instance, options);
        ratios[i] = alg_cost / bounds.best();
      });
      double max_ratio = 0.0;
      for (double r : ratios) max_ratio = std::max(max_ratio, r);
      const double geo = geometric_mean(ratios);
      const bool within = max_ratio <= bound + 1e-6;
      all_ok = all_ok && within;
      table.add_row({family.name, Table::fmt(geo, 3), Table::fmt(max_ratio, 3),
                     Table::fmt(bound, 2), within ? "yes" : "NO"});
      report.add(family.name, geo, 0.0)
          .param("eps", eps)
          .value("max_ratio", max_ratio)
          .value("bound", bound);
    }
    table.print("eps = " + Table::fmt(eps, 2) + "  (OPT budget 1/" +
                Table::fmt(2.0 + eps, 2) + ")");
  }

  // Companion view: the "real" online-vs-offline gap against the exact
  // UNIT-SPEED optimum (no augmentation on either side). Theorem 1 does
  // not bound this -- [22] proves no algorithm can be constant-competitive
  // here in the worst case -- but on stochastic workloads ALG stays close.
  {
    Table table({"workload", "geo-mean ALG/OPT", "max ALG/OPT", "OPT solved"});
    for (const Family& family : families) {
      const ScenarioRunner shallow = family_runner(family, false);
      const ScenarioRunner deep = family_runner(family, true);
      std::vector<double> per_seed(24, 0.0);
      parallel_for(per_seed.size(), [&](std::size_t i) {
        const std::uint64_t seed = i + 1;
        const ScenarioRunner& runner = (seed % 2 == 0) ? deep : shallow;
        const Instance instance = runner.instance(seed);
        const auto opt = brute_force_opt(instance);
        if (!opt || opt->cost <= 0) return;
        per_seed[i] = runner.run_once(alg_policy(), instance).total_cost / opt->cost;
      });
      std::vector<double> ratios;
      for (double r : per_seed) {
        if (r > 0) ratios.push_back(r);
      }
      double max_ratio = 0.0;
      for (double r : ratios) max_ratio = std::max(max_ratio, r);
      table.add_row({family.name, Table::fmt(geometric_mean(ratios), 3),
                     Table::fmt(max_ratio, 3),
                     Table::fmt(static_cast<std::uint64_t>(ratios.size())) + "/24"});
    }
    table.print("companion: ALG vs exact unit-speed OPT (no augmentation)");
  }

  std::printf("\nEXP-T1 %s: measured competitive ratios respect Theorem 1's bound at "
              "every eps,\nand shrink as eps grows (more augmentation -> easier bound), "
              "matching the theory's shape.\n",
              all_ok ? "REPRODUCED" : "MISMATCH");
  report.print();
  return all_ok ? 0 : 1;
}
