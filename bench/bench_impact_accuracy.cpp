// EXP-ACC -- how conservative is the worst-case impact estimate? The
// dispatcher freezes alpha_p = Delta_p(e_p) at arrival; the charging
// auditor recovers each packet's REALIZED impact c_p <= alpha_p (Lemma 2).
// This experiment measures the gap: mean utilization c_p / alpha_p, its
// distribution, and how it moves with load -- quantifying Figure 2's
// point that realized impacts drift below the frozen estimates as later
// arrivals reshuffle the stable matchings.

#include <cstdio>

#include "common.hpp"
#include "core/charging.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-ACC: realized charge c_p vs frozen worst-case impact alpha_p\n");
  std::printf("(10 racks, 2x2, zipf; 12 seeds per row; Lemma 2 guarantees ratio <= 1)\n");

  BenchReport report("impact_accuracy");
  Table table({"load/step", "mean c/alpha", "p50", "p90", "max", "share at 1.0",
               "sum c / sum alpha"});
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    ScenarioSpec spec = two_tier_scenario("load" + Table::fmt(rate, 0), 10, 2, 0.5);
    spec.topology.seed_salt = 271;
    spec.workload.num_packets = 150;
    spec.workload.arrival_rate = rate;
    spec.workload.skew = PairSkew::Zipf;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 8;
    spec.engine.record_trace = true;  // the charging auditor needs the trace
    spec.repetitions = 12;
    const ScenarioRunner runner(spec);

    Summary ratio_all, totals;
    std::size_t saturated = 0, counted = 0;
    for (const std::uint64_t seed : runner.seeds()) {
      const Instance instance = runner.instance(seed);
      const RunResult run = runner.run_once(alg_policy(), instance);
      const ChargingAudit audit = audit_charging(instance, run);
      double sum_alpha = 0.0;
      for (std::size_t i = 0; i < instance.num_packets(); ++i) {
        const double alpha = run.outcomes[i].route.alpha;
        if (alpha <= 0) continue;
        const double ratio = audit.charge[i] / alpha;
        ratio_all.add(ratio);
        saturated += (ratio > 0.999) ? 1 : 0;
        ++counted;
        sum_alpha += alpha;
      }
      totals.add(audit.total_charge / sum_alpha);
    }
    table.add_row({Table::fmt(rate, 0), Table::fmt(ratio_all.mean(), 3),
                   Table::fmt(ratio_all.percentile(50), 3),
                   Table::fmt(ratio_all.percentile(90), 3), Table::fmt(ratio_all.max(), 3),
                   Table::fmt(100.0 * static_cast<double>(saturated) /
                                  static_cast<double>(counted),
                              1) +
                       "%",
                   Table::fmt(totals.mean(), 3)});
    report.add("alg", ratio_all.mean(), 0.0)
        .param("rate", rate)
        .value("charge_over_alpha", totals.mean());
  }
  table.print("impact-estimate utilization vs load");

  std::printf(
      "\nReading: at light load most packets realize their full estimate (they are\n"
      "alone: c = alpha = base latency). As load grows, later arrivals restructure\n"
      "the matchings and realized charges fall below the frozen worst case -- yet\n"
      "the max never crosses 1.0, which is Lemma 2 observed packet by packet.\n");
  report.print();
  return 0;
}
