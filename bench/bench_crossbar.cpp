// EXP-C1 -- the classic-switch special case: on a single-tier crossbar
// the paper's model degenerates to CIOQ switch scheduling, where Chuang,
// Goel, McKeown, Prabhakar [21] showed a speedup of 2 suffices to emulate
// pure output queueing. We measure ALG at integral speedups k = 1..3
// against the exact output-queueing relaxation optimum: at k = 2 the gap
// should (nearly) close -- the two-tier algorithm recovers the classic
// single-tier phenomenon.

#include <cstdio>

#include "common.hpp"
#include "opt/output_queueing.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-C1: crossbar special case -- ALG vs output queueing ([21])\n");
  std::printf("(16-port crossbar, 12 seeds per cell; ratio = cost / OQ bound)\n");

  BenchReport report("crossbar");
  Table table({"workload", "k=1", "k=2", "k=3", "expected"});
  struct Load {
    const char* name;
    PairSkew skew;
    double rate;
  };
  const Load loads[] = {
      {"uniform, moderate", PairSkew::Uniform, 6.0},
      {"uniform, heavy", PairSkew::Uniform, 12.0},
      {"permutation, heavy", PairSkew::Permutation, 12.0},
      {"hotspot (output contention)", PairSkew::Hotspot, 8.0},
  };

  for (const Load& load : loads) {
    std::vector<std::string> row = {load.name};
    for (int k = 1; k <= 3; ++k) {
      ScenarioSpec spec;
      spec.name = std::string(load.name) + "-k" + std::to_string(k);
      spec.topology.kind = TopologySpec::Kind::Crossbar;
      spec.topology.crossbar_ports = 16;
      spec.workload.num_packets = 300;
      spec.workload.arrival_rate = load.rate;
      spec.workload.skew = load.skew;
      spec.workload.weights = WeightDist::UniformInt;
      spec.workload.weight_max = 8;
      spec.engine.speedup_rounds = k;
      spec.repetitions = 12;

      const ScenarioResult result = ScenarioRunner(spec).run(
          alg_policy(), [](const Instance& instance, const RunResult& run) {
            return run.total_cost / output_queueing_bound(instance);
          });
      row.push_back(Table::fmt(result.metric.mean(), 3) + "x");
      report.add(result)
          .param("workload", load.name)
          .param("speedup", static_cast<std::int64_t>(k))
          .value("oq_ratio", result.metric.mean());
    }
    row.push_back("k=1 >= 1x, k=2 <= 1x");
    table.add_row(row);
  }
  table.print("ALG cost / output-queueing optimum vs speedup k");

  std::printf(
      "\nExpected shape: at k=1 input contention keeps ALG at or above the OQ optimum\n"
      "(exactly 1x on contention-free permutations); at k=2 the ratio drops below 1\n"
      "-- a 2-speed CIOQ matches output queueing, the emulation threshold of [21] --\n"
      "and further speedup only buys surplus over the unit-speed OQ reference.\n");
  report.print();
  return 0;
}
