// EXP-H1 -- the hybrid-topology claim (Sections I-II): fixed direct links
// complement the scarce reconfigurable layer. Sweeps the fixed-link delay
// dl and reports ALG's cost, the share of packets offloaded, and the cost
// of the two degenerate policies (pure-optical dispatch, direct-only
// dispatch) on the same instances.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-H1: value of the hybrid fixed layer (elephants/mice on 8 racks,\n");
  std::printf("1 laser+photodetector per rack; 12 seeds per row)\n");

  Table table({"fixed dl", "ALG cost", "ALG offload %", "optical-only cost", "direct-only cost",
               "ALG vs best degenerate"});

  // dl = 0 encodes "no fixed layer" (optical-only by construction).
  for (const Delay dl : {0, 2, 4, 8, 16, 32}) {
    Summary alg_cost, offload, optical_cost, direct_cost;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 67 + static_cast<std::uint64_t>(dl));
      TwoTierConfig net;
      net.racks = 8;
      net.lasers_per_rack = 1;
      net.photodetectors_per_rack = 1;
      net.density = 1.0;
      net.max_edge_delay = 2;
      net.fixed_link_delay = dl;
      const Topology topology = build_two_tier(net, rng);

      WorkloadConfig traffic;
      traffic.num_packets = 200;
      traffic.arrival_rate = 6.0;
      traffic.skew = PairSkew::Hotspot;
      traffic.hotspot_fraction = 0.5;
      traffic.weights = WeightDist::Bimodal;
      traffic.weight_max = 20;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      const RunResult run = run_alg(instance);
      alg_cost.add(run.total_cost);
      std::size_t via_fixed = 0;
      for (const PacketOutcome& outcome : run.outcomes) {
        via_fixed += outcome.route.use_fixed ? 1 : 0;
      }
      offload.add(100.0 * static_cast<double>(via_fixed) /
                  static_cast<double>(instance.num_packets()));

      // Degenerate comparisons: ignore the fixed layer entirely / always
      // use it when available.
      {
        MinDelayDispatcher pure_optical_like;  // prefers edges unless dl smaller
        auto policies = dispatcher_ablations();
        optical_cost.add(run_policy_cost(instance, policies[4]));  // MinDelay
        direct_cost.add(run_policy_cost(instance, policies[5]));   // DirectOnly
      }
    }
    const double best_degenerate = std::min(optical_cost.mean(), direct_cost.mean());
    table.add_row({dl == 0 ? "none" : Table::fmt(static_cast<std::int64_t>(dl)),
                   Table::fmt(alg_cost.mean(), 1), Table::fmt(offload.mean(), 1) + "%",
                   Table::fmt(optical_cost.mean(), 1), Table::fmt(direct_cost.mean(), 1),
                   Table::fmt(alg_cost.mean() / best_degenerate, 2) + "x"});
  }
  table.print("fixed-link delay sweep");

  std::printf(
      "\nExpected shape: with fast fixed links (small dl) ALG offloads heavily and\n"
      "crushes optical-only; as dl grows the offload share decays to ~0 and ALG\n"
      "converges to the optical-only cost -- the dispatcher's w*dl <= Delta rule\n"
      "finds the crossover automatically.\n");
  return 0;
}
