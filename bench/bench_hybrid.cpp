// EXP-H1 -- the hybrid-topology claim (Sections I-II): fixed direct links
// complement the scarce reconfigurable layer. Sweeps the fixed-link delay
// dl and reports ALG's cost, the share of packets offloaded, and the cost
// of the two degenerate policies (pure-optical dispatch, direct-only
// dispatch) on the same instances.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-H1: value of the hybrid fixed layer (elephants/mice on 8 racks,\n");
  std::printf("1 laser+photodetector per rack; 12 seeds per row)\n");

  BenchReport report("hybrid");
  Table table({"fixed dl", "ALG cost", "ALG offload %", "optical-only cost", "direct-only cost",
               "ALG vs best degenerate"});

  // dl = 0 encodes "no fixed layer" (optical-only by construction).
  for (const Delay dl : {0, 2, 4, 8, 16, 32}) {
    ScenarioSpec spec = two_tier_scenario("fixed-dl" + std::to_string(dl), 8, 1, 1.0);
    spec.topology.two_tier.fixed_link_delay = dl;
    spec.topology.seed_salt = static_cast<std::uint64_t>(dl);
    spec.workload.num_packets = 200;
    spec.workload.arrival_rate = 6.0;
    spec.workload.skew = PairSkew::Hotspot;
    spec.workload.hotspot_fraction = 0.5;
    spec.workload.weights = WeightDist::Bimodal;
    spec.workload.weight_max = 20;
    spec.repetitions = 12;

    // Metric on the ALG cell: share of packets offloaded to fixed links.
    const RepMetric offload_share = [](const Instance& instance, const RunResult& run) {
      std::size_t via_fixed = 0;
      for (const PacketOutcome& outcome : run.outcomes) {
        via_fixed += outcome.route.use_fixed ? 1 : 0;
      }
      return 100.0 * static_cast<double>(via_fixed) /
             static_cast<double>(instance.num_packets());
    };
    BatchRunner batch;
    batch.add(spec, alg_policy(), offload_share);
    batch.add(spec, named_policy("min-delay"));    // degenerate: optical-leaning
    batch.add(spec, named_policy("direct-only"));  // degenerate: always fixed
    const auto results = batch.run();

    const double alg = results[0].cost.mean();
    const double optical = results[1].cost.mean();
    const double direct = results[2].cost.mean();
    const double best_degenerate = std::min(optical, direct);
    table.add_row({dl == 0 ? "none" : Table::fmt(static_cast<std::int64_t>(dl)),
                   Table::fmt(alg, 1), Table::fmt(results[0].metric.mean(), 1) + "%",
                   Table::fmt(optical, 1), Table::fmt(direct, 1),
                   Table::fmt(alg / best_degenerate, 2) + "x"});
    for (const ScenarioResult& result : results) {
      report.add(result).param("fixed_dl", static_cast<std::int64_t>(dl));
    }
  }
  table.print("fixed-link delay sweep");

  std::printf(
      "\nExpected shape: with fast fixed links (small dl) ALG offloads heavily and\n"
      "crushes optical-only; as dl grows the offload share decays to ~0 and ALG\n"
      "converges to the optical-only cost -- the dispatcher's w*dl <= Delta rule\n"
      "finds the crossover automatically.\n");
  report.print();
  return 0;
}
