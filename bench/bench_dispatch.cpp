// EXP-B2 -- dispatcher ablation: the paper's worst-case-impact dispatch
// rule vs uninformed alternatives (random / round-robin / JSQ / min-delay
// / direct-only), all under the same stable-matching scheduler. Isolates
// the value of the dispatch half of ALG.
//
// ISSUE 6 adds the dispatch MICRObench: per-decision latency of the
// impact and JSQ rules at 256-endpoint shapes with deep pending queues,
// comparing the engine's incremental impact index (O(log n) per edge;
// O(1) for JSQ's load) against the pre-index naive queue scans kept in
// core/impact.hpp as oracles. Emits BenchReport JSON (ns_per_dispatch
// rows; committed baseline in BENCH_dispatch.json) and prints the
// indexed-vs-scan speedup per shape.
//
//   bench_dispatch [--json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "baseline/dispatchers.hpp"
#include "common.hpp"
#include "core/alg.hpp"
#include "core/impact.hpp"
#include "net/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

/// ImpactDispatcher's exact decision rule, resolved through the naive
/// O(pending) queue scan -- the pre-index hot path, timed as the probe
/// baseline. Decisions are identical to the indexed rule up to l_weight
/// reassociation ulps.
class ScanImpactDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override {
    const Topology& topology = engine.topology();
    topology.candidate_edges_into(packet.source, packet.destination, edges_);
    double best_delta = std::numeric_limits<double>::infinity();
    EdgeIndex best_edge = kInvalidEdge;
    for (EdgeIndex e : edges_) {
      const double delta = impact_of_scan(engine, packet, e).delta;
      if (delta < best_delta) {
        best_delta = delta;
        best_edge = e;
      }
    }
    const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
    RouteDecision decision;
    if (best_edge == kInvalidEdge) {
      if (!direct) throw std::logic_error("packet has no route");
      decision.use_fixed = true;
      decision.alpha = packet.weight * static_cast<double>(*direct);
      return decision;
    }
    if (direct && packet.weight * static_cast<double>(*direct) <= best_delta) {
      decision.use_fixed = true;
      decision.alpha = packet.weight * static_cast<double>(*direct);
      return decision;
    }
    decision.use_fixed = false;
    decision.edge = best_edge;
    decision.alpha = best_delta;
    return decision;
  }

 private:
  std::vector<EdgeIndex> edges_;
};

/// JSQ through the pre-index queue scan (the load rule JsqDispatcher now
/// reads from the impact index's O(1) counters).
class ScanJsqDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override {
    const Topology& topology = engine.topology();
    topology.candidate_edges_into(packet.source, packet.destination, edges_);
    RouteDecision decision;
    if (edges_.empty()) {
      decision.use_fixed = true;
      return decision;
    }
    EdgeIndex best = edges_.front();
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    for (EdgeIndex e : edges_) {
      const ReconfigEdge& edge = topology.edge(e);
      std::int64_t load = 0;
      for (PacketIndex q : engine.pending_on_transmitter(edge.transmitter)) {
        load += engine.remaining_chunks(q);
      }
      for (PacketIndex q : engine.pending_on_receiver(edge.receiver)) {
        if (engine.assigned_transmitter(q) == edge.transmitter) continue;
        load += engine.remaining_chunks(q);
      }
      if (load < best_load) {
        best_load = load;
        best = e;
      }
    }
    decision.use_fixed = false;
    decision.edge = best;
    return decision;
  }

 private:
  std::vector<EdgeIndex> edges_;
};

struct ProbeShape {
  const char* name;
  Topology topology;
};

/// Two 256-endpoint shapes: a sparse wide pod and a parallel-link-heavy
/// pod (many edges per (t, r) pair -- the pair-overlap path).
std::vector<ProbeShape> probe_shapes() {
  std::vector<ProbeShape> shapes;
  {
    TwoTierConfig net;
    net.racks = 64;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.25;
    net.max_edge_delay = 3;
    Rng rng(7);
    shapes.push_back({"two_tier64x2", build_two_tier(net, rng)});
  }
  {
    TwoTierConfig net;
    net.racks = 32;
    net.lasers_per_rack = 4;
    net.photodetectors_per_rack = 4;
    net.density = 0.25;
    net.max_edge_delay = 3;
    Rng rng(7);
    shapes.push_back({"parallel32x4", build_two_tier(net, rng)});
  }
  return shapes;
}

std::vector<Packet> deep_burst(const Topology& topology, std::size_t count,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Packet> packets;
  packets.reserve(count);
  while (packets.size() < count) {
    Packet p;
    p.id = static_cast<PacketIndex>(packets.size());
    p.arrival = 1;
    p.weight = rng.next_double(0.5, 8.0);
    p.source = static_cast<NodeIndex>(
        rng.next_below(static_cast<std::uint64_t>(topology.num_sources())));
    p.destination = static_cast<NodeIndex>(
        rng.next_below(static_cast<std::uint64_t>(topology.num_destinations())));
    if (!topology.routable(p.source, p.destination)) continue;
    packets.push_back(p);
  }
  return packets;
}

/// Median per-dispatch latency of `dispatcher` probed against a frozen
/// engine holding a deep pending state. dispatch() is a pure reader, so
/// the probes replay identically per repetition; the first (untimed) pass
/// warms scratch buffers and the lazily-built index structures.
double probe_ns_per_dispatch(DispatchPolicy& dispatcher, const Engine& engine,
                             const std::vector<Packet>& probes, int reps) {
  for (const Packet& p : probes) (void)dispatcher.dispatch(engine, p);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const Packet& p : probes) (void)dispatcher.dispatch(engine, p);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    samples.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(elapsed)
            .count() /
        static_cast<double>(probes.size()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void run_probe_bench(BenchReport& report, bool json_only) {
  if (!json_only) {
    std::printf("\nper-dispatch latency at 256-endpoint shapes (deep pending state)\n");
  }
  Table table({"shape", "probe", "ns/dispatch", "speedup vs scan"});
  for (const ProbeShape& shape : probe_shapes()) {
    // Freeze one contended engine state: a deep burst dispatched by the
    // real impact rule, plus one scheduling round so the index has seen
    // per-chunk service too.
    ImpactDispatcher impact;
    StableMatchingScheduler scheduler;
    Engine engine(shape.topology, impact, scheduler, {}, [](RetiredPacket&&) {});
    const std::vector<Packet> load = deep_burst(shape.topology, 131072, 11);
    const Time arrival = 1;
    engine.begin_step(&arrival);
    for (const Packet& p : load) engine.inject(p);
    engine.finish_step();

    const std::vector<Packet> probes = deep_burst(shape.topology, 256, 23);
    const int reps = 7;
    ScanImpactDispatcher impact_scan;
    JsqDispatcher jsq;
    ScanJsqDispatcher jsq_scan;

    struct Probe {
      const char* name;
      DispatchPolicy* dispatcher;
      double ns = 0.0;
    };
    Probe rows[] = {{"impact-indexed", &impact},
                    {"impact-scan", &impact_scan},
                    {"jsq-indexed", &jsq},
                    {"jsq-scan", &jsq_scan}};
    for (Probe& row : rows) {
      row.ns = probe_ns_per_dispatch(*row.dispatcher, engine, probes, reps);
      report.add(row.name, 0.0, 0.0)
          .param("shape", std::string(shape.name))
          .param("pending", static_cast<std::int64_t>(load.size()))
          .value("ns_per_dispatch", row.ns);
    }
    const double impact_speedup = rows[1].ns / rows[0].ns;
    const double jsq_speedup = rows[3].ns / rows[2].ns;
    table.add_row({shape.name, "impact", Table::fmt(rows[0].ns, 1),
                   Table::fmt(impact_speedup, 1) + "x"});
    table.add_row({shape.name, "jsq", Table::fmt(rows[2].ns, 1),
                   Table::fmt(jsq_speedup, 1) + "x"});
  }
  if (!json_only) {
    table.print("dispatch microbench (median per decision; speedup = scan / indexed)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_dispatch [--json] [--out PATH]\n");
      return 2;
    }
  }

  if (!json_only) {
    std::printf("EXP-B2: dispatcher ablation under stable-matching scheduling\n");
    std::printf("(weighted latency normalized to Impact = 1.00; 12 seeds per cell)\n");
  }

  const auto policies = dispatcher_ablations();

  struct Scenario {
    const char* name;
    PairSkew skew;
    Delay fixed_delay;
    NodeIndex lasers;
  };
  const Scenario scenarios[] = {
      {"uniform, pure optical", PairSkew::Uniform, 0, 2},
      {"hotspot, pure optical", PairSkew::Hotspot, 0, 2},
      {"hotspot, hybrid (dl=8)", PairSkew::Hotspot, 8, 2},
      {"incast, parallel links", PairSkew::Incast, 0, 4},
  };

  BenchReport report("dispatch");
  BatchRunner batch;
  for (const Scenario& scenario : scenarios) {
    ScenarioSpec spec = two_tier_scenario(scenario.name, 10, scenario.lasers, 0.5, 3);
    spec.topology.two_tier.fixed_link_delay = scenario.fixed_delay;
    spec.workload.num_packets = 200;
    spec.workload.arrival_rate = 5.0;
    spec.workload.skew = scenario.skew;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 10;
    spec.repetitions = 12;
    batch.add_grid(spec, policies);
  }
  const auto results = batch.run();  // scenario-major: results[scenario][policy]
  auto cell = [&](std::size_t s, std::size_t p) -> const ScenarioResult& {
    return results[s * policies.size() + p];
  };

  Table table({"dispatcher", scenarios[0].name, scenarios[1].name, scenarios[2].name,
               scenarios[3].name});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row = {policies[p].name};
    for (std::size_t s = 0; s < 4; ++s) {
      row.push_back(Table::fmt(cell(s, p).cost.mean() / cell(s, 0).cost.mean(), 2) + "x");
      report.add(cell(s, p)).param("workload", scenarios[s].name);
    }
    table.add_row(row);
  }
  if (!json_only) {
    table.print("dispatch policy ablation (columns = scenarios)");
    std::printf(
        "\nExpected shape: the impact rule wins or ties everywhere; the gap is largest\n"
        "with parallel links under skew (where greedy-queue-blind dispatch collides)\n"
        "and in hybrid pods (where the Delta-vs-w*dl comparison offloads correctly).\n");
  }

  run_probe_bench(report, json_only);

  if (json_only) {
    for (const std::string& line : report.json_lines()) std::printf("%s\n", line.c_str());
  } else {
    report.print();
  }
  // Atomic baseline write: no truncated BENCH_dispatch.json on a kill.
  if (!out_path.empty()) report.write_json(out_path);
  return 0;
}
