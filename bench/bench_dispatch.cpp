// EXP-B2 -- dispatcher ablation: the paper's worst-case-impact dispatch
// rule vs uninformed alternatives (random / round-robin / JSQ / min-delay
// / direct-only), all under the same stable-matching scheduler. Isolates
// the value of the dispatch half of ALG.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-B2: dispatcher ablation under stable-matching scheduling\n");
  std::printf("(weighted latency normalized to Impact = 1.00; 12 seeds per cell)\n");

  const auto policies = dispatcher_ablations();

  struct Scenario {
    const char* name;
    PairSkew skew;
    Delay fixed_delay;
    NodeIndex lasers;
  };
  const Scenario scenarios[] = {
      {"uniform, pure optical", PairSkew::Uniform, 0, 2},
      {"hotspot, pure optical", PairSkew::Hotspot, 0, 2},
      {"hotspot, hybrid (dl=8)", PairSkew::Hotspot, 8, 2},
      {"incast, parallel links", PairSkew::Incast, 0, 4},
  };

  BenchReport report("dispatch");
  BatchRunner batch;
  for (const Scenario& scenario : scenarios) {
    ScenarioSpec spec = two_tier_scenario(scenario.name, 10, scenario.lasers, 0.5, 3);
    spec.topology.two_tier.fixed_link_delay = scenario.fixed_delay;
    spec.workload.num_packets = 200;
    spec.workload.arrival_rate = 5.0;
    spec.workload.skew = scenario.skew;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 10;
    spec.repetitions = 12;
    batch.add_grid(spec, policies);
  }
  const auto results = batch.run();  // scenario-major: results[scenario][policy]
  auto cell = [&](std::size_t s, std::size_t p) -> const ScenarioResult& {
    return results[s * policies.size() + p];
  };

  Table table({"dispatcher", scenarios[0].name, scenarios[1].name, scenarios[2].name,
               scenarios[3].name});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row = {policies[p].name};
    for (std::size_t s = 0; s < 4; ++s) {
      row.push_back(Table::fmt(cell(s, p).cost.mean() / cell(s, 0).cost.mean(), 2) + "x");
      report.add(cell(s, p)).param("workload", scenarios[s].name);
    }
    table.add_row(row);
  }
  table.print("dispatch policy ablation (columns = scenarios)");

  std::printf(
      "\nExpected shape: the impact rule wins or ties everywhere; the gap is largest\n"
      "with parallel links under skew (where greedy-queue-blind dispatch collides)\n"
      "and in hybrid pods (where the Delta-vs-w*dl comparison offloads correctly).\n");
  report.print();
  return 0;
}
