// EXP-B2 -- dispatcher ablation: the paper's worst-case-impact dispatch
// rule vs uninformed alternatives (random / round-robin / JSQ / min-delay
// / direct-only), all under the same stable-matching scheduler. Isolates
// the value of the dispatch half of ALG.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-B2: dispatcher ablation under stable-matching scheduling\n");
  std::printf("(weighted latency normalized to Impact = 1.00; 12 seeds per cell)\n");

  const auto policies = dispatcher_ablations();

  struct Scenario {
    const char* name;
    PairSkew skew;
    Delay fixed_delay;
    NodeIndex lasers;
  };
  const Scenario scenarios[] = {
      {"uniform, pure optical", PairSkew::Uniform, 0, 2},
      {"hotspot, pure optical", PairSkew::Hotspot, 0, 2},
      {"hotspot, hybrid (dl=8)", PairSkew::Hotspot, 8, 2},
      {"incast, parallel links", PairSkew::Incast, 0, 4},
  };

  Table table({"dispatcher", scenarios[0].name, scenarios[1].name, scenarios[2].name,
               scenarios[3].name});
  std::vector<std::vector<double>> cells(policies.size());

  for (const Scenario& scenario : scenarios) {
    std::vector<Summary> per_policy(policies.size());
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 19 + 3);
      TwoTierConfig net;
      net.racks = 10;
      net.lasers_per_rack = scenario.lasers;
      net.photodetectors_per_rack = scenario.lasers;
      net.density = 0.5;
      net.max_edge_delay = 3;
      net.fixed_link_delay = scenario.fixed_delay;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = 200;
      traffic.arrival_rate = 5.0;
      traffic.skew = scenario.skew;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 10;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      std::vector<double> costs(policies.size());
      parallel_for(policies.size(), [&](std::size_t p) {
        costs[p] = run_policy_cost(instance, policies[p]);
      });
      for (std::size_t p = 0; p < policies.size(); ++p) per_policy[p].add(costs[p]);
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
      cells[p].push_back(per_policy[p].mean());
    }
  }

  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row = {policies[p].name};
    for (std::size_t s = 0; s < 4; ++s) {
      row.push_back(Table::fmt(cells[p][s] / cells[0][s], 2) + "x");
    }
    table.add_row(row);
  }
  table.print("dispatch policy ablation (columns = scenarios)");

  std::printf(
      "\nExpected shape: the impact rule wins or ties everywhere; the gap is largest\n"
      "with parallel links under skew (where greedy-queue-blind dispatch collides)\n"
      "and in hybrid pods (where the Delta-vs-w*dl comparison offloads correctly).\n");
  return 0;
}
