// EXP-S1 -- steady-state latency vs load: the classic open-loop queueing
// curve the batch experiments cannot produce. Poisson arrivals at a target
// utilization rho of the reconfigurable layer stream through the engine in
// bounded memory (outcomes retire into a log-bucket histogram); after a
// warmup cutoff, each (rho, policy) point reports steady-state latency
// percentiles, throughput, and backlog over >= 100k served packets.
//
// Expected shape: every policy's percentiles blow up as rho -> 1, with the
// weight/contention-aware ALG holding lower p99 deeper into the load range
// than weight-blind baselines.

#include <cstdio>

#include "common.hpp"
#include "run/stream.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-S1: steady-state latency vs load (open-loop Poisson arrivals)\n");
  std::printf(
      "(8 racks, 2x2 lasers/photodetectors, uniform pairs, uniform-int weights;\n"
      " 20k warmup + 100k measured packets per point; latencies in steps.\n"
      " Overloaded (rho past a policy's capacity) points truncate at the step\n"
      " cap; their histograms cover the measured packets that did retire.)\n");

  const std::vector<PolicyFactory> policies = {
      named_policy("alg"), named_policy("maxweight"), named_policy("fifo")};
  const double rhos[] = {0.5, 0.7, 0.8, 0.9, 0.95};

  StreamSpec base;
  auto& net = base.topology.two_tier;
  net.racks = 8;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.8;
  net.max_edge_delay = 2;
  base.traffic.process = ArrivalProcess::Poisson;
  base.traffic.shape.skew = PairSkew::Uniform;
  base.traffic.shape.weights = WeightDist::UniformInt;
  base.traffic.shape.weight_max = 10;
  base.warmup_packets = 20000;
  base.measure_packets = 100000;
  base.telemetry_window = 512;
  base.repetitions = 1;
  // Overloaded points grow backlog (and per-step scheduling cost) without
  // bound; a tight cap keeps the whole sweep's wall clock sane while still
  // serving >= 100k packets per point.
  base.step_cap_factor = 2.0;

  BatchRunner batch;
  for (const double rho : rhos) {
    StreamSpec spec = base;
    spec.name = "rho" + Table::fmt(rho, 2);
    spec.traffic.rho = rho;
    batch.add_stream_grid(spec, policies);
  }
  const auto results = batch.run_streams();  // rho-major: results[rho][policy]
  auto cell = [&](std::size_t r, std::size_t p) -> const StreamResult& {
    return results[r * policies.size() + p];
  };

  BenchReport report("steady_state");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    Table table({"rho", "measured", "p50", "p95", "p99", "p999", "mean", "backlog",
                 "served/step", "peak resident"});
    for (std::size_t r = 0; r < std::size(rhos); ++r) {
      const StreamResult& result = cell(r, p);
      const StreamRepOutcome& rep = result.repetitions.front();
      // A fully-truncated overload point can measure nothing; report -1
      // instead of querying an empty histogram.
      auto pct = [&](double q) {
        return result.latency.empty() ? std::int64_t{-1} : result.latency.percentile(q);
      };
      table.add_row({Table::fmt(rhos[r], 2), Table::fmt(result.measured_rho.mean(), 3),
                     Table::fmt(pct(50)), Table::fmt(pct(95)), Table::fmt(pct(99)),
                     Table::fmt(pct(99.9)),
                     Table::fmt(result.latency.mean(), 1),
                     Table::fmt(result.backlog.mean(), 1),
                     Table::fmt(result.throughput.mean(), 2),
                     Table::fmt(static_cast<std::int64_t>(rep.peak_resident)) +
                         (result.truncated_reps > 0 ? " (truncated)" : "")});
      report.add(result.policy, rep.total_cost, result.wall_ms.mean())
          .param("rho", rhos[r])
          .param("measured_rho", result.measured_rho.mean())
          .param("served", static_cast<std::int64_t>(rep.served))
          .param("measured", static_cast<std::int64_t>(rep.measured))
          .param("truncated_reps", static_cast<std::int64_t>(result.truncated_reps))
          .param("zero_demand", static_cast<std::int64_t>(result.zero_demand))
          .param("peak_resident", static_cast<std::int64_t>(rep.peak_resident))
          .value("p50", static_cast<double>(pct(50)))
          .value("p95", static_cast<double>(pct(95)))
          .value("p99", static_cast<double>(pct(99)))
          .value("p999", static_cast<double>(pct(99.9)))
          .value("mean_latency", result.latency.mean())
          .value("throughput", result.throughput.mean())
          .value("backlog", result.backlog.mean());
    }
    table.print("policy: " + policies[p].name);
  }

  std::printf(
      "\nExpected shape: percentiles diverge as rho -> 1 (queueing-delay knee);\n"
      "ALG sustains lower tails deeper into the load range than weight-blind\n"
      "baselines. peak resident slots stay O(in-flight), far below served.\n");
  report.print();
  return 0;
}
