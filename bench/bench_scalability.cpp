// EXP-P1 -- engineering scalability of the algorithm itself
// (google-benchmark): per-step stable-matching cost, dispatch cost as a
// function of queue depth, end-to-end simulation throughput vs network
// size, and the LP/brute-force reference costs on small inputs.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "baseline/schedulers.hpp"
#include "common.hpp"
#include "core/alg.hpp"
#include "core/dual_witness.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"
#include "opt/brute_force.hpp"
#include "util/rng.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::bench;

ScenarioRunner scaled_runner(NodeIndex racks, std::size_t packets) {
  // Bespoke instance hook reproducing the historical generation exactly,
  // so throughput numbers stay comparable across the BENCH_*.json trail.
  ScenarioSpec spec;
  spec.name = "scalability";
  spec.base_seed = 5;
  spec.make_instance = [racks, packets](std::uint64_t seed) {
    Rng rng(seed);
    TwoTierConfig net;
    net.racks = racks;
    net.lasers_per_rack = 2;
    net.photodetectors_per_rack = 2;
    net.density = 0.4;
    net.max_edge_delay = 2;
    const Topology topology = build_two_tier(net, rng);
    WorkloadConfig traffic;
    traffic.num_packets = packets;
    traffic.arrival_rate = static_cast<double>(racks) / 2.0;
    traffic.skew = PairSkew::Zipf;
    traffic.weights = WeightDist::UniformInt;
    traffic.seed = seed;
    return generate_workload(topology, traffic);
  };
  return ScenarioRunner(std::move(spec));
}

Instance scaled_instance(NodeIndex racks, std::size_t packets, std::uint64_t seed = 5) {
  return scaled_runner(racks, packets).instance(seed);
}

void BM_AlgEndToEnd(benchmark::State& state) {
  const auto racks = static_cast<NodeIndex>(state.range(0));
  const auto packets = static_cast<std::size_t>(state.range(1));
  const ScenarioRunner runner = scaled_runner(racks, packets);
  const Instance instance = runner.instance(5);
  const PolicyFactory policy = alg_policy();
  EngineOptions options = runner.spec().engine;
  for (auto _ : state) {
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    benchmark::DoNotOptimize(
        simulate(instance, *dispatcher, *scheduler, options).total_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_AlgEndToEnd)
    ->Args({8, 200})
    ->Args({16, 500})
    ->Args({32, 1000})
    ->Args({64, 2000})
    ->Unit(benchmark::kMillisecond);

/// Random candidates at a given depth, pre-sorted by chunk priority (the
/// engine's SchedulePolicy contract).
std::vector<Candidate> step_candidates(const Topology& topology, std::size_t depth) {
  Rng rng(9);
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < depth; ++i) {
    Candidate c;
    c.packet = static_cast<PacketIndex>(i);
    c.edge = static_cast<EdgeIndex>(
        rng.next_below(static_cast<std::uint64_t>(topology.num_edges())));
    c.transmitter = topology.edge(c.edge).transmitter;
    c.receiver = topology.edge(c.edge).receiver;
    c.chunk_weight = rng.next_double(0.1, 10.0);
    c.arrival = 1;
    c.remaining = 1;
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(), chunk_higher_priority);
  return candidates;
}

void BM_StableMatchingStep(benchmark::State& state) {
  // Isolated per-step cost at a given pending-queue depth.
  const auto depth = static_cast<std::size_t>(state.range(0));
  const Topology topology = build_crossbar(32);
  const std::vector<Candidate> candidates = step_candidates(topology, depth);
  Instance instance(topology, {});
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  Engine engine(instance, dispatcher, scheduler, {});
  Selection selection;
  for (auto _ : state) {
    selection.clear();
    scheduler.select(engine, 1, candidates, selection);
    benchmark::DoNotOptimize(selection.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_StableMatchingStep)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_MaxWeightStep(benchmark::State& state) {
  // The Hungarian baseline's per-step cost, for contrast with greedy.
  const auto depth = static_cast<std::size_t>(state.range(0));
  const Topology topology = build_crossbar(32);
  const std::vector<Candidate> candidates = step_candidates(topology, depth);
  Instance instance(topology, {});
  ImpactDispatcher dispatcher;
  MaxWeightScheduler scheduler;
  Engine engine(instance, dispatcher, scheduler, {});
  Selection selection;
  for (auto _ : state) {
    selection.clear();
    scheduler.select(engine, 1, candidates, selection);
    benchmark::DoNotOptimize(selection.size());
  }
}
BENCHMARK(BM_MaxWeightStep)->Arg(16)->Arg(64)->Arg(256);

void BM_PrimalLpSolve(benchmark::State& state) {
  const auto packets = static_cast<std::size_t>(state.range(0));
  const Instance instance = scaled_instance(3, packets, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp_opt_lower_bound(instance, 1.0));
  }
}
BENCHMARK(BM_PrimalLpSolve)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_BruteForceOpt(benchmark::State& state) {
  const auto packets = static_cast<std::size_t>(state.range(0));
  const Instance instance = scaled_instance(3, packets, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_force_opt(instance));
  }
}
BENCHMARK(BM_BruteForceOpt)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_DualWitnessBuild(benchmark::State& state) {
  const auto packets = static_cast<std::size_t>(state.range(0));
  ScenarioRunner runner = scaled_runner(16, packets);
  const Instance instance = runner.instance(5);
  const RunResult run = run_alg(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_dual_witness(instance, run).sum_alpha);
  }
}
BENCHMARK(BM_DualWitnessBuild)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
