// EXP-D1 -- heterogeneous link delays (the "different link delays" claim
// of the abstract): sweeps the reconfigurable delay spread d(e) in
// {1..D} and compares ALG against delay-blind dispatch; also verifies
// chunking accounting (cost grows with the (d+1)/2 staircase, not d).

#include <algorithm>
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-D1: heterogeneous reconfigurable delays, d(e) ~ U{1..D}\n");
  std::printf("(10 racks, 2x2 per rack, zipf traffic, 12 seeds per row)\n");

  BenchReport report("delays");
  Table table({"max d(e)", "ALG cost", "random dispatch", "JSQ dispatch", "ALG advantage",
               "ideal (staircase)"});
  for (const Delay max_delay : {1, 2, 4, 8}) {
    ScenarioSpec spec = two_tier_scenario("spread-d" + std::to_string(max_delay), 10, 2,
                                          0.5, max_delay);
    spec.topology.seed_salt = static_cast<std::uint64_t>(max_delay);
    spec.workload.num_packets = 150;
    spec.workload.arrival_rate = 4.0;
    spec.workload.skew = PairSkew::Zipf;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 8;
    spec.repetitions = 12;

    // ideal_cost depends only on the instance; record it as the metric of
    // the ALG cell instead of re-running anything.
    const RepMetric ideal = [](const Instance& instance, const RunResult&) {
      return instance.ideal_cost();
    };
    BatchRunner batch;
    batch.add(spec, named_policy("impact"), ideal);
    batch.add(spec, named_policy("random-dispatch"));
    batch.add(spec, named_policy("jsq"));
    const auto results = batch.run();

    const double alg = results[0].cost.mean();
    const double random = results[1].cost.mean();
    const double jsq = results[2].cost.mean();
    const double best_blind = std::min(random, jsq);
    table.add_row({Table::fmt(static_cast<std::int64_t>(max_delay)), Table::fmt(alg, 1),
                   Table::fmt(random, 1), Table::fmt(jsq, 1),
                   Table::fmt(best_blind / alg, 2) + "x",
                   Table::fmt(results[0].metric.mean(), 1)});
    for (const ScenarioResult& result : results) {
      report.add(result).param("max_delay", static_cast<std::int64_t>(max_delay));
    }
  }
  table.print("delay-spread sweep (lower cost is better; advantage > 1x favours ALG)");

  std::printf(
      "\nExpected shape: with unit delays dispatchers differ little; as the delay\n"
      "spread grows, the impact rule's Delta(e) -- which weighs d(e) both in the\n"
      "staircase and in the blocking terms -- beats delay/queue-blind dispatch by a\n"
      "growing margin.\n");
  report.print();
  return 0;
}
