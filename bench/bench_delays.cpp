// EXP-D1 -- heterogeneous link delays (the "different link delays" claim
// of the abstract): sweeps the reconfigurable delay spread d(e) in
// {1..D} and compares ALG against delay-blind dispatch; also verifies
// chunking accounting (cost grows with the (d+1)/2 staircase, not d).

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-D1: heterogeneous reconfigurable delays, d(e) ~ U{1..D}\n");
  std::printf("(10 racks, 2x2 per rack, zipf traffic, 12 seeds per row)\n");

  const auto policies = dispatcher_ablations();
  Table table({"max d(e)", "ALG cost", "random dispatch", "JSQ dispatch", "ALG advantage",
               "ideal (staircase)"});
  for (const Delay max_delay : {1, 2, 4, 8}) {
    Summary alg_cost, random_cost, jsq_cost, ideal;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 7 + static_cast<std::uint64_t>(max_delay));
      TwoTierConfig net;
      net.racks = 10;
      net.lasers_per_rack = 2;
      net.photodetectors_per_rack = 2;
      net.density = 0.5;
      net.max_edge_delay = max_delay;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = 150;
      traffic.arrival_rate = 4.0;
      traffic.skew = PairSkew::Zipf;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 8;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      alg_cost.add(run_policy_cost(instance, policies[0]));     // Impact
      random_cost.add(run_policy_cost(instance, policies[1]));  // Random
      jsq_cost.add(run_policy_cost(instance, policies[3]));     // JSQ
      ideal.add(instance.ideal_cost());
    }
    const double best_blind = std::min(random_cost.mean(), jsq_cost.mean());
    table.add_row({Table::fmt(static_cast<std::int64_t>(max_delay)),
                   Table::fmt(alg_cost.mean(), 1), Table::fmt(random_cost.mean(), 1),
                   Table::fmt(jsq_cost.mean(), 1),
                   Table::fmt(best_blind / alg_cost.mean(), 2) + "x",
                   Table::fmt(ideal.mean(), 1)});
  }
  table.print("delay-spread sweep (lower cost is better; advantage > 1x favours ALG)");

  std::printf(
      "\nExpected shape: with unit delays dispatchers differ little; as the delay\n"
      "spread grows, the impact rule's Delta(e) -- which weighs d(e) both in the\n"
      "staircase and in the blocking terms -- beats delay/queue-blind dispatch by a\n"
      "growing margin.\n");
  return 0;
}
