// EXP-X1 -- b-matching extension: endpoints that can drive up to b edges
// simultaneously (the online dynamic b-matching setting of Bienkowski et
// al. [46], cited as related work). Measures how ALG's cost falls with b
// on a fan-in-heavy workload, and where the marginal laser stops paying.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-X1: endpoint capacity (b-matching) extension\n");
  std::printf("(incast-heavy pod: 8 racks, 2x2 per rack; 12 seeds per row)\n");

  BenchReport report("bmatching");
  Table table({"capacity b", "ALG_b cost", "vs b=1", "makespan", "marginal gain"});
  std::vector<double> costs;
  for (int b = 1; b <= 4; ++b) {
    ScenarioSpec spec = two_tier_scenario("incast-b" + std::to_string(b), 8, 2, 0.6);
    spec.workload.num_packets = 200;
    spec.workload.arrival_rate = 6.0;
    spec.workload.skew = PairSkew::Incast;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 8;
    spec.engine.endpoint_capacity = b;
    spec.repetitions = 12;

    const ScenarioResult result = ScenarioRunner(spec).run(alg_policy());
    Summary makespan;
    for (const RepetitionOutcome& rep : result.repetitions) {
      makespan.add(static_cast<double>(rep.makespan));
    }

    costs.push_back(result.cost.mean());
    const double marginal =
        costs.size() > 1 ? costs[costs.size() - 2] / costs.back() : 1.0;
    table.add_row({Table::fmt(static_cast<std::int64_t>(b)),
                   Table::fmt(result.cost.mean(), 1),
                   Table::fmt(result.cost.mean() / costs.front(), 2) + "x",
                   Table::fmt(makespan.mean(), 1), Table::fmt(marginal, 2) + "x"});
    report.add(result).param("capacity", static_cast<std::int64_t>(b));
  }
  table.print("capacity sweep under incast");

  std::printf(
      "\nExpected shape: cost drops steeply from b=1 to b=2 (the incast receiver is\n"
      "the bottleneck) and flattens once capacity exceeds the fan-in pressure --\n"
      "diminishing returns on extra lasers per rack.\n");
  report.print();
  return 0;
}
