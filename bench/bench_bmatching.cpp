// EXP-X1 -- b-matching extension: endpoints that can drive up to b edges
// simultaneously (the online dynamic b-matching setting of Bienkowski et
// al. [46], cited as related work). Measures how ALG's cost falls with b
// on a fan-in-heavy workload, and where the marginal laser stops paying.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-X1: endpoint capacity (b-matching) extension\n");
  std::printf("(incast-heavy pod: 8 racks, 2x2 per rack; 12 seeds per row)\n");

  Table table({"capacity b", "ALG_b cost", "vs b=1", "makespan", "marginal gain"});
  std::vector<double> costs;
  for (int b = 1; b <= 4; ++b) {
    Summary cost, makespan;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 101);
      TwoTierConfig net;
      net.racks = 8;
      net.lasers_per_rack = 2;
      net.photodetectors_per_rack = 2;
      net.density = 0.6;
      net.max_edge_delay = 2;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = 200;
      traffic.arrival_rate = 6.0;
      traffic.skew = PairSkew::Incast;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 8;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      ImpactDispatcher dispatcher;
      StableMatchingScheduler scheduler;
      EngineOptions options;
      options.endpoint_capacity = b;
      const RunResult run = simulate(instance, dispatcher, scheduler, options);
      cost.add(run.total_cost);
      makespan.add(static_cast<double>(run.makespan));
    }
    costs.push_back(cost.mean());
    const double marginal =
        costs.size() > 1 ? costs[costs.size() - 2] / costs.back() : 1.0;
    table.add_row({Table::fmt(static_cast<std::int64_t>(b)), Table::fmt(cost.mean(), 1),
                   Table::fmt(cost.mean() / costs.front(), 2) + "x",
                   Table::fmt(makespan.mean(), 1),
                   Table::fmt(marginal, 2) + "x"});
  }
  table.print("capacity sweep under incast");

  std::printf(
      "\nExpected shape: cost drops steeply from b=1 to b=2 (the incast receiver is\n"
      "the bottleneck) and flattens once capacity exceeds the fan-in pressure --\n"
      "diminishing returns on extra lasers per rack.\n");
  return 0;
}
