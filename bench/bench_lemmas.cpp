// EXP-L1 -- the analysis ledger (Lemmas 1-4) measured quantitatively on
// progressively larger instances: the beta-ledger identity gap, the
// charging slack (how much of the alpha budget the realized charges use),
// Lemma 3's slack, and the witness's worst constraint-violation factor.

#include <cstdio>

#include "common.hpp"
#include "core/charging.hpp"
#include "core/dual_witness.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-L1: machine-checked analysis ledger (means over 12 seeds)\n");

  Table table({"packets", "racks", "lemma1 gap", "charge/alpha (mean)", "overcharge",
               "violation factor (<2)", "halved feasible", "exact audit"});
  for (const auto& [packets, racks] : std::vector<std::pair<std::size_t, NodeIndex>>{
           {10, 3}, {25, 4}, {50, 6}, {100, 8}, {200, 10}}) {
    Summary gap, usage, overcharge, violation;
    bool feasible = true;
    bool exact_ok = true;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 131 + static_cast<std::uint64_t>(packets));
      TwoTierConfig net;
      net.racks = racks;
      net.lasers_per_rack = 2;
      net.photodetectors_per_rack = 2;
      net.density = 0.6;
      net.max_edge_delay = 3;
      if (seed % 2 == 0) net.fixed_link_delay = 12;
      const Topology topology = build_two_tier(net, rng);
      WorkloadConfig traffic;
      traffic.num_packets = packets;
      traffic.arrival_rate = 4.0;
      traffic.skew = PairSkew::Zipf;
      traffic.weights = WeightDist::UniformInt;
      traffic.weight_max = 9;
      traffic.seed = seed;
      const Instance instance = generate_workload(topology, traffic);

      const RunResult run = run_alg(instance);
      const DualWitness witness = build_dual_witness(instance, run);
      const ChargingAudit audit = audit_charging(instance, run);
      const DualFeasibilityReport report = check_dual_feasibility(instance, witness);
      const ExactChargingAudit exact = audit_charging_exact(instance, run);

      gap.add(lemma1_gap(witness, run));
      usage.add(audit.total_charge / witness.sum_alpha);
      overcharge.add(audit.max_overcharge);
      violation.add(report.max_violation_ratio);
      feasible = feasible && report.halved_feasible;
      exact_ok = exact_ok && exact.charges_cover_cost && exact.within_alpha;
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(packets)),
                   Table::fmt(static_cast<std::int64_t>(racks)), Table::fmt(gap.max(), 9),
                   Table::fmt(usage.mean(), 3), Table::fmt(overcharge.max(), 9),
                   Table::fmt(violation.max(), 4), feasible ? "yes" : "NO",
                   exact_ok ? "pass" : "FAIL"});
  }
  table.print("Lemmas 1-4 measured (gap/overcharge ~ 0 = identities hold)");

  std::printf(
      "\nReading: 'charge/alpha' is how much of the worst-case impact budget the\n"
      "realized schedule consumed (Lemma 2 guarantees <= 1); the violation factor\n"
      "stays below 2 exactly as Lemma 4 proves.\n");
  return 0;
}
