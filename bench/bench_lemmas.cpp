// EXP-L1 -- the analysis ledger (Lemmas 1-4) measured quantitatively on
// progressively larger instances: the beta-ledger identity gap, the
// charging slack (how much of the alpha budget the realized charges use),
// Lemma 3's slack, and the witness's worst constraint-violation factor.

#include <cstdio>

#include "common.hpp"
#include "core/charging.hpp"
#include "core/dual_witness.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-L1: machine-checked analysis ledger (means over 12 seeds)\n");

  BenchReport report("lemmas");
  Table table({"packets", "racks", "lemma1 gap", "charge/alpha (mean)", "overcharge",
               "violation factor (<2)", "halved feasible", "exact audit"});
  for (const auto& [packets, racks] : std::vector<std::pair<std::size_t, NodeIndex>>{
           {10, 3}, {25, 4}, {50, 6}, {100, 8}, {200, 10}}) {
    ScenarioSpec spec =
        two_tier_scenario("ledger-" + std::to_string(packets), racks, 2, 0.6, 3);
    spec.topology.seed_salt = 131 + packets;
    spec.workload.num_packets = packets;
    spec.workload.arrival_rate = 4.0;
    spec.workload.skew = PairSkew::Zipf;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 9;
    spec.engine.record_trace = true;
    spec.repetitions = 12;
    const ScenarioRunner runner(spec);

    // Alternate repetitions run the hybrid variant (fixed links present),
    // like the seed suite's even/odd split.
    ScenarioSpec hybrid = spec;
    hybrid.topology.two_tier.fixed_link_delay = 12;
    const ScenarioRunner hybrid_runner(hybrid);

    Summary gap, usage, overcharge, violation;
    bool feasible = true;
    bool exact_ok = true;
    for (const std::uint64_t seed : runner.seeds()) {
      const ScenarioRunner& chosen = (seed % 2 == 0) ? hybrid_runner : runner;
      const Instance instance = chosen.instance(seed);
      const RunResult run = chosen.run_once(alg_policy(), instance);
      const DualWitness witness = build_dual_witness(instance, run);
      const ChargingAudit audit = audit_charging(instance, run);
      const DualFeasibilityReport feasibility = check_dual_feasibility(instance, witness);
      const ExactChargingAudit exact = audit_charging_exact(instance, run);

      gap.add(lemma1_gap(witness, run));
      usage.add(audit.total_charge / witness.sum_alpha);
      overcharge.add(audit.max_overcharge);
      violation.add(feasibility.max_violation_ratio);
      feasible = feasible && feasibility.halved_feasible;
      exact_ok = exact_ok && exact.charges_cover_cost && exact.within_alpha;
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(packets)),
                   Table::fmt(static_cast<std::int64_t>(racks)), Table::fmt(gap.max(), 9),
                   Table::fmt(usage.mean(), 3), Table::fmt(overcharge.max(), 9),
                   Table::fmt(violation.max(), 4), feasible ? "yes" : "NO",
                   exact_ok ? "pass" : "FAIL"});
    report.add("alg", usage.mean(), 0.0)
        .param("packets", static_cast<std::int64_t>(packets))
        .param("racks", static_cast<std::int64_t>(racks))
        .value("lemma1_gap_max", gap.max())
        .value("violation_max", violation.max());
  }
  table.print("Lemmas 1-4 measured (gap/overcharge ~ 0 = identities hold)");

  std::printf(
      "\nReading: 'charge/alpha' is how much of the worst-case impact budget the\n"
      "realized schedule consumed (Lemma 2 guarantees <= 1); the violation factor\n"
      "stays below 2 exactly as Lemma 4 proves.\n");
  report.print();
  return 0;
}
