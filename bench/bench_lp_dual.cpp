// EXP-F4 -- Figure 4 of the paper: the dual LP D and the dual-fitting
// witness of Section IV-B. Reports, per instance:
//   * strong duality between the generated Figure-3/Figure-4 models,
//   * the witness value vs the dual optimum (witness/2 is feasible),
//   * the per-constraint violation factor of the unhalved witness
//     (Lemma 4 asserts < 2).

#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-F4: dual LP D (Figure 4) and the dual-fitting witness, eps = 1\n");
  const double eps = 1.0;

  Table table({"seed", "primal LP", "dual LP", "duality gap", "witness D", "D/2 <= dualOPT",
               "max violation (<2)", "halved feasible"});
  bool ok = true;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 1237);
    TwoTierConfig net;
    net.racks = 3;
    net.lasers_per_rack = 1;
    net.photodetectors_per_rack = 1;
    net.max_edge_delay = 1 + static_cast<Delay>(seed % 2);
    if (seed % 3 == 0) net.fixed_link_delay = 4;
    const Topology topology = build_two_tier(net, rng);
    WorkloadConfig traffic;
    traffic.num_packets = 4;
    traffic.arrival_rate = 2.0;
    traffic.weights = WeightDist::UniformInt;
    traffic.weight_max = 4;
    traffic.seed = seed;
    const Instance instance = generate_workload(topology, traffic);

    const PaperLpOptions options{eps, 0};
    const lp::Solution primal = lp::solve(build_primal_lp(instance, options).model);
    const lp::Solution dual = lp::solve(build_dual_lp(instance, options).model);

    const RunResult run = run_alg(instance);
    const DualWitness witness = build_dual_witness(instance, run);
    const DualFeasibilityReport report = check_dual_feasibility(instance, witness);

    const bool solved = primal.status == lp::SolveStatus::Optimal &&
                        dual.status == lp::SolveStatus::Optimal;
    const double gap = solved ? std::abs(primal.objective - dual.objective) : -1.0;
    const bool witness_below = witness.lower_bound(eps) <= dual.objective + 1e-6;
    ok = ok && solved && gap < 1e-5 * (1 + primal.objective) && witness_below &&
         report.halved_feasible && report.max_violation_ratio < 2.0 + 1e-9;

    table.add_row({Table::fmt(seed), solved ? Table::fmt(primal.objective) : "FAIL",
                   solved ? Table::fmt(dual.objective) : "FAIL", Table::fmt(gap, 6),
                   Table::fmt(witness.objective(eps)), witness_below ? "yes" : "NO",
                   Table::fmt(report.max_violation_ratio, 4),
                   report.halved_feasible ? "yes" : "NO"});
  }
  table.print("Figure 3 vs Figure 4: strong duality and the Section IV-B witness");

  std::printf("\nEXP-F4 %s\n", ok ? "REPRODUCED (Lemma 4/5 hold on every instance)"
                                  : "MISMATCH");
  return ok ? 0 : 1;
}
