// EXP-F4 -- Figure 4 of the paper: the dual LP D and the dual-fitting
// witness of Section IV-B. Reports, per instance:
//   * strong duality between the generated Figure-3/Figure-4 models,
//   * the witness value vs the dual optimum (witness/2 is feasible),
//   * the per-constraint violation factor of the unhalved witness
//     (Lemma 4 asserts < 2).

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/dual_witness.hpp"
#include "lp/paper_lps.hpp"
#include "lp/simplex.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-F4: dual LP D (Figure 4) and the dual-fitting witness, eps = 1\n");
  const double eps = 1.0;

  BenchReport report("lp_dual");
  Table table({"seed", "primal LP", "dual LP", "duality gap", "witness D", "D/2 <= dualOPT",
               "max violation (<2)", "halved feasible"});
  bool ok = true;

  ScenarioSpec base = two_tier_scenario("lp-dual", 3, 1, 0.8, 1);
  base.topology.seed_salt = 1237;
  base.workload.num_packets = 4;
  base.workload.arrival_rate = 2.0;
  base.workload.weights = WeightDist::UniformInt;
  base.workload.weight_max = 4;
  base.engine.record_trace = true;
  base.repetitions = 6;
  const ScenarioRunner runner(base);

  ScenarioSpec wide = base;      // odd seeds: deeper delay spread
  wide.topology.two_tier.max_edge_delay = 2;
  const ScenarioRunner wide_runner(wide);
  ScenarioSpec hybrid = base;    // every third seed: fixed links present
  hybrid.topology.two_tier.fixed_link_delay = 4;
  const ScenarioRunner hybrid_runner(hybrid);

  for (const std::uint64_t seed : runner.seeds()) {
    const ScenarioRunner& chosen = (seed % 3 == 0)   ? hybrid_runner
                                   : (seed % 2 == 0) ? wide_runner
                                                     : runner;
    const Instance instance = chosen.instance(seed);

    const PaperLpOptions options{eps, 0};
    const lp::Solution primal = lp::solve(build_primal_lp(instance, options).model);
    const lp::Solution dual = lp::solve(build_dual_lp(instance, options).model);

    const RunResult run = chosen.run_once(alg_policy(), instance);
    const DualWitness witness = build_dual_witness(instance, run);
    const DualFeasibilityReport feasibility = check_dual_feasibility(instance, witness);

    const bool solved = primal.status == lp::SolveStatus::Optimal &&
                        dual.status == lp::SolveStatus::Optimal;
    const double gap = solved ? std::abs(primal.objective - dual.objective) : -1.0;
    const bool witness_below = witness.lower_bound(eps) <= dual.objective + 1e-6;
    ok = ok && solved && gap < 1e-5 * (1 + primal.objective) && witness_below &&
         feasibility.halved_feasible && feasibility.max_violation_ratio < 2.0 + 1e-9;

    table.add_row({Table::fmt(seed), solved ? Table::fmt(primal.objective) : "FAIL",
                   solved ? Table::fmt(dual.objective) : "FAIL", Table::fmt(gap, 6),
                   Table::fmt(witness.objective(eps)), witness_below ? "yes" : "NO",
                   Table::fmt(feasibility.max_violation_ratio, 4),
                   feasibility.halved_feasible ? "yes" : "NO"});
    report.add("alg", run.total_cost, 0.0)
        .param("seed", static_cast<std::int64_t>(seed))
        .value("witness", witness.objective(eps))
        .value("violation", feasibility.max_violation_ratio);
  }
  table.print("Figure 3 vs Figure 4: strong duality and the Section IV-B witness");

  std::printf("\nEXP-F4 %s\n", ok ? "REPRODUCED (Lemma 4/5 hold on every instance)"
                                  : "MISMATCH");
  report.print();
  return ok ? 0 : 1;
}
