// EXP-MIG -- restricted migration ablation. The paper's ALG commits each
// packet to one route forever (non-migratory); the OPT it competes against
// is fully migratory. This experiment lets queued (not-yet-started)
// packets re-run the dispatcher every step and measures how much of the
// migratory advantage that recovers, across dispatchers.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-MIG: re-dispatching queued packets every step (restricted migration)\n");
  std::printf("(cost normalized to the non-migratory run; 12 seeds per cell)\n");

  const auto policies = dispatcher_ablations();
  Table table({"dispatcher", "uniform", "hotspot", "hotspot hybrid"});

  struct Scenario {
    PairSkew skew;
    Delay fixed_delay;
  };
  const Scenario scenarios[] = {
      {PairSkew::Uniform, 0}, {PairSkew::Hotspot, 0}, {PairSkew::Hotspot, 8}};

  for (std::size_t p = 0; p < 4; ++p) {  // Impact, Random, RoundRobin, JSQ
    std::vector<std::string> row = {policies[p].name};
    for (const Scenario& scenario : scenarios) {
      Summary ratio;
      for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 577);
        TwoTierConfig net;
        net.racks = 8;
        net.lasers_per_rack = 2;
        net.photodetectors_per_rack = 2;
        net.density = 0.5;
        net.max_edge_delay = 2;
        net.fixed_link_delay = scenario.fixed_delay;
        const Topology topology = build_two_tier(net, rng);
        WorkloadConfig traffic;
        traffic.num_packets = 150;
        traffic.arrival_rate = 5.0;
        traffic.skew = scenario.skew;
        traffic.weights = WeightDist::UniformInt;
        traffic.weight_max = 8;
        traffic.seed = seed;
        const Instance instance = generate_workload(topology, traffic);

        EngineOptions fixed_routes;
        fixed_routes.record_trace = false;
        const double base = run_policy_cost(instance, policies[p], fixed_routes);
        EngineOptions migratory = fixed_routes;
        migratory.redispatch_queued = true;
        const double migrated = run_policy_cost(instance, policies[p], migratory);
        ratio.add(migrated / base);
      }
      row.push_back(Table::fmt(ratio.mean(), 3) + "x");
    }
    table.add_row(row);
  }
  table.print("cost with queued-packet migration / without");

  std::printf(
      "\nExpected shape: the impact dispatcher gains little (its commitments were\n"
      "already informed), while queue-blind dispatchers recover much of their gap --\n"
      "evidence that ALG's worst-case-impact commitment loses almost nothing against\n"
      "the restricted-migratory relaxation on stochastic traffic.\n");
  return 0;
}
