// EXP-MIG -- restricted migration ablation. The paper's ALG commits each
// packet to one route forever (non-migratory); the OPT it competes against
// is fully migratory. This experiment lets queued (not-yet-started)
// packets re-run the dispatcher every step and measures how much of the
// migratory advantage that recovers, across dispatchers.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-MIG: re-dispatching queued packets every step (restricted migration)\n");
  std::printf("(cost normalized to the non-migratory run; 12 seeds per cell)\n");

  const auto policies = dispatcher_ablations();
  BenchReport report("migration");
  Table table({"dispatcher", "uniform", "hotspot", "hotspot hybrid"});

  struct Scenario {
    const char* name;
    PairSkew skew;
    Delay fixed_delay;
  };
  const Scenario scenarios[] = {{"uniform", PairSkew::Uniform, 0},
                                {"hotspot", PairSkew::Hotspot, 0},
                                {"hotspot hybrid", PairSkew::Hotspot, 8}};

  // Enqueue both engine variants of every (dispatcher, scenario) cell in
  // one batch: cells alternate committed / migratory.
  BatchRunner batch;
  for (std::size_t p = 0; p < 4; ++p) {  // Impact, Random, RoundRobin, JSQ
    for (const Scenario& scenario : scenarios) {
      ScenarioSpec spec = two_tier_scenario(scenario.name, 8, 2, 0.5);
      spec.topology.two_tier.fixed_link_delay = scenario.fixed_delay;
      spec.topology.seed_salt = 577;
      spec.workload.num_packets = 150;
      spec.workload.arrival_rate = 5.0;
      spec.workload.skew = scenario.skew;
      spec.workload.weights = WeightDist::UniformInt;
      spec.workload.weight_max = 8;
      spec.repetitions = 12;
      batch.add(spec, policies[p]);
      ScenarioSpec migratory = spec;
      migratory.engine.redispatch_queued = true;
      batch.add(migratory, policies[p]);
    }
  }
  const auto results = batch.run();

  std::size_t cell = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    std::vector<std::string> row = {policies[p].name};
    for (const Scenario& scenario : scenarios) {
      const ScenarioResult& committed = results[cell++];
      const ScenarioResult& migrated = results[cell++];
      // Paired per-seed ratios (same instances by construction).
      Summary ratio;
      for (std::size_t i = 0; i < committed.repetitions.size(); ++i) {
        ratio.add(migrated.repetitions[i].total_cost / committed.repetitions[i].total_cost);
      }
      row.push_back(Table::fmt(ratio.mean(), 3) + "x");
      report.add(migrated)
          .param("workload", scenario.name)
          .value("vs_committed", ratio.mean());
    }
    table.add_row(row);
  }
  table.print("cost with queued-packet migration / without");

  std::printf(
      "\nExpected shape: the impact dispatcher gains little (its commitments were\n"
      "already informed), while queue-blind dispatchers recover much of their gap --\n"
      "evidence that ALG's worst-case-impact commitment loses almost nothing against\n"
      "the restricted-migratory relaxation on stochastic traffic.\n");
  report.print();
  return 0;
}
