// EXP-FCT -- flow-level view of the objective: the abstract's "minimize
// flow completion times". Generates elephant/mice FLOWS (multi-unit, via
// the Section-II reduction), runs ALG and the baselines, and reports
// weighted FCT, mean FCT, and p99 FCT -- the metrics a datacenter
// operator would read.

#include <cstdio>

#include "common.hpp"
#include "flow/flows.hpp"
#include "workload/flow_sizes.hpp"

namespace {

using namespace rdcn;

/// The elephant/mice mix of the headline table, deterministic per seed.
FlowSet elephant_mice_flows(std::uint64_t seed) {
  Rng rng(seed * 401);
  TwoTierConfig net;
  net.racks = 12;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.5;
  const Topology topology = build_two_tier(net, rng);

  FlowSet flows(topology);
  Rng traffic(seed * 13);
  Time step = 1;
  std::size_t mice = 0, elephants = 0;
  while (mice + elephants < 75) {
    const auto src = static_cast<NodeIndex>(traffic.next_below(12));
    auto dst = static_cast<NodeIndex>(traffic.next_below(12));
    if (dst == src) dst = static_cast<NodeIndex>((dst + 1) % 12);
    if (elephants < 15 && traffic.next_bool(0.2)) {
      flows.add_flow(step, 16.0, 8, src, dst);  // elephant: heavy, long
      ++elephants;
    } else {
      flows.add_flow(step, 1.0, 1, src, dst);  // mouse
      ++mice;
    }
    if (traffic.next_bool(0.5)) ++step;
  }
  return flows;
}

/// The canonical empirical size profiles, deterministic per seed.
FlowSet profile_flows(FlowSizeProfile profile, std::uint64_t seed) {
  Rng rng(seed * 709);
  TwoTierConfig net;
  net.racks = 8;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.6;
  const Topology topology = build_two_tier(net, rng);

  FlowWorkloadConfig config;
  config.num_flows = 60;
  config.flow_arrival_rate = 1.5;
  config.profile = profile;
  config.max_size = 64;  // keep the expansion laptop-sized
  // Equal flow importance: weight 1 per flow -> unit packets of
  // weight 1/size, so short flows carry heavier chunks (the
  // SRPT-flavoured regime where weight-awareness pays; with
  // weight-by-size all chunks weigh 1 and every work-conserving
  // order coincides).
  config.weight_by_size = false;
  config.seed = seed;
  return generate_flow_workload(topology, config);
}

}  // namespace

int main() {
  using namespace rdcn;
  using namespace rdcn::bench;

  std::printf("EXP-FCT: flow completion times, elephant/mice mix\n");
  std::printf("(12 racks, 2x2; 60 mice (1 unit) : 15 elephants (8 units); 10 seeds)\n");

  const auto policies = scheduler_baselines();
  BenchReport report("flows");
  Table table({"scheduler", "weighted FCT", "vs ALG", "mean FCT", "p99 FCT",
               "fractional cost"});

  ScenarioSpec spec;
  spec.name = "elephant-mice";
  spec.make_instance = [](std::uint64_t seed) {
    return elephant_mice_flows(seed).to_instance();
  };
  spec.repetitions = 10;
  const ScenarioRunner runner(spec);

  std::vector<Summary> wfct(policies.size()), mean_fct(policies.size()),
      p99(policies.size()), frac(policies.size());
  for (const std::uint64_t seed : runner.seeds()) {
    const FlowSet flows = elephant_mice_flows(seed);
    flows.to_instance();  // populate the packet -> flow map for analyze_flows
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const FlowReport flow_report = analyze_flows(flows, runner.run_once(policies[p], seed));
      wfct[p].add(flow_report.total_weighted_fct);
      mean_fct[p].add(flow_report.mean_fct);
      p99[p].add(flow_report.p99_fct);
      frac[p].add(flow_report.total_fractional_cost);
    }
  }

  for (std::size_t p = 0; p < policies.size(); ++p) {
    table.add_row({policies[p].name, Table::fmt(wfct[p].mean(), 1),
                   Table::fmt(wfct[p].mean() / wfct[0].mean(), 2) + "x",
                   Table::fmt(mean_fct[p].mean(), 2), Table::fmt(p99[p].mean(), 1),
                   Table::fmt(frac[p].mean(), 1)});
    report.add(policies[p].name, frac[p].mean(), 0.0)
        .param("workload", "elephant-mice")
        .value("weighted_fct", wfct[p].mean())
        .value("p99_fct", p99[p].mean());
  }
  table.print("flow completion times (lower is better)");

  std::printf(
      "\nExpected shape: ALG minimizes the paper's fractional objective and with it\n"
      "weighted FCT; weight-blind baselines let elephants monopolize matchings,\n"
      "inflating p99 for mice; Rotor pays its oblivious cycle on every flow.\n");

  // Second view: the canonical empirical flow-size profiles. ALG vs the
  // closest competitor (MaxWeight) and the weight-blind FIFO.
  {
    Table profile_table({"size profile", "ALG wFCT", "MaxWeight", "FIFO", "mean size"});
    for (const FlowSizeProfile profile :
         {FlowSizeProfile::WebSearch, FlowSizeProfile::DataMining,
          FlowSizeProfile::UniformTiny}) {
      ScenarioSpec profile_spec;
      profile_spec.name = std::string("profile-") + to_string(profile);
      profile_spec.make_instance = [profile](std::uint64_t seed) {
        return profile_flows(profile, seed).to_instance();
      };
      profile_spec.repetitions = 6;
      const ScenarioRunner profile_runner(profile_spec);

      Summary alg_wfct, mw_wfct, fifo_wfct, sizes;
      for (const std::uint64_t seed : profile_runner.seeds()) {
        const FlowSet flows = profile_flows(profile, seed);
        flows.to_instance();  // populate the packet -> flow map
        for (const Flow& flow : flows.flows()) {
          sizes.add(static_cast<double>(flow.size));
        }
        auto wfct_of = [&](const PolicyFactory& policy) {
          return analyze_flows(flows, profile_runner.run_once(policy, seed))
              .total_weighted_fct;
        };
        alg_wfct.add(wfct_of(policies[0]));
        mw_wfct.add(wfct_of(policies[1]));
        fifo_wfct.add(wfct_of(policies[5]));
      }
      profile_table.add_row({to_string(profile), "1.00x",
                             Table::fmt(mw_wfct.mean() / alg_wfct.mean(), 2) + "x",
                             Table::fmt(fifo_wfct.mean() / alg_wfct.mean(), 2) + "x",
                             Table::fmt(sizes.mean(), 1)});
      report.add("alg", alg_wfct.mean(), 0.0).param("profile", to_string(profile));
      report.add("maxweight", mw_wfct.mean(), 0.0).param("profile", to_string(profile));
      report.add("fifo", fifo_wfct.mean(), 0.0).param("profile", to_string(profile));
    }
    profile_table.print("empirical size profiles (weighted FCT normalized to ALG)");
    std::printf(
        "\nWith equal flow importance, short flows carry the heavy chunks; the heavier\n"
        "the size tail (data-mining > web-search > uniform-tiny), the more FIFO's\n"
        "size-blindness costs (2.08x vs 1.56x vs parity) while ALG stays within a few\n"
        "percent of the Hungarian MaxWeight at a fraction of its per-step cost.\n");
  }
  report.print();
  return 0;
}
