file(REMOVE_RECURSE
  "CMakeFiles/bench_migration.dir/bench/bench_migration.cpp.o"
  "CMakeFiles/bench_migration.dir/bench/bench_migration.cpp.o.d"
  "bench/bench_migration"
  "bench/bench_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
