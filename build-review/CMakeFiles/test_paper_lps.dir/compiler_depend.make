# Empty compiler generated dependencies file for test_paper_lps.
# This may be replaced when dependencies are built.
