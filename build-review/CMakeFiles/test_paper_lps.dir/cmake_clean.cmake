file(REMOVE_RECURSE
  "CMakeFiles/test_paper_lps.dir/tests/test_paper_lps.cpp.o"
  "CMakeFiles/test_paper_lps.dir/tests/test_paper_lps.cpp.o.d"
  "test_paper_lps"
  "test_paper_lps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_lps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
