# Empty dependencies file for test_output_queueing.
# This may be replaced when dependencies are built.
