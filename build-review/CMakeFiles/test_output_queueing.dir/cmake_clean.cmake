file(REMOVE_RECURSE
  "CMakeFiles/test_output_queueing.dir/tests/test_output_queueing.cpp.o"
  "CMakeFiles/test_output_queueing.dir/tests/test_output_queueing.cpp.o.d"
  "test_output_queueing"
  "test_output_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
