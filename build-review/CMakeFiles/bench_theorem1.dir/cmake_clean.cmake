file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1.dir/bench/bench_theorem1.cpp.o"
  "CMakeFiles/bench_theorem1.dir/bench/bench_theorem1.cpp.o.d"
  "bench/bench_theorem1"
  "bench/bench_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
