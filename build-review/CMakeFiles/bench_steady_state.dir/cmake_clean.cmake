file(REMOVE_RECURSE
  "CMakeFiles/bench_steady_state.dir/bench/bench_steady_state.cpp.o"
  "CMakeFiles/bench_steady_state.dir/bench/bench_steady_state.cpp.o.d"
  "bench/bench_steady_state"
  "bench/bench_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
