# Empty compiler generated dependencies file for bench_steady_state.
# This may be replaced when dependencies are built.
