file(REMOVE_RECURSE
  "CMakeFiles/bench_bmatching.dir/bench/bench_bmatching.cpp.o"
  "CMakeFiles/bench_bmatching.dir/bench/bench_bmatching.cpp.o.d"
  "bench/bench_bmatching"
  "bench/bench_bmatching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmatching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
