# Empty dependencies file for bench_bmatching.
# This may be replaced when dependencies are built.
