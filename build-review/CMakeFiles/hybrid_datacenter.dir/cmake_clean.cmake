file(REMOVE_RECURSE
  "CMakeFiles/hybrid_datacenter.dir/examples/hybrid_datacenter.cpp.o"
  "CMakeFiles/hybrid_datacenter.dir/examples/hybrid_datacenter.cpp.o.d"
  "examples/hybrid_datacenter"
  "examples/hybrid_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
