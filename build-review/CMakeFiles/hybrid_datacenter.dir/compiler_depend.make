# Empty compiler generated dependencies file for hybrid_datacenter.
# This may be replaced when dependencies are built.
