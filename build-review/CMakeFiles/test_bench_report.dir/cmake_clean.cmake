file(REMOVE_RECURSE
  "CMakeFiles/test_bench_report.dir/tests/test_bench_report.cpp.o"
  "CMakeFiles/test_bench_report.dir/tests/test_bench_report.cpp.o.d"
  "test_bench_report"
  "test_bench_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
