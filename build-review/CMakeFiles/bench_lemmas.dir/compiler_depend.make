# Empty compiler generated dependencies file for bench_lemmas.
# This may be replaced when dependencies are built.
