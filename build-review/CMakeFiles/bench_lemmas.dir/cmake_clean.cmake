file(REMOVE_RECURSE
  "CMakeFiles/bench_lemmas.dir/bench/bench_lemmas.cpp.o"
  "CMakeFiles/bench_lemmas.dir/bench/bench_lemmas.cpp.o.d"
  "bench/bench_lemmas"
  "bench/bench_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
