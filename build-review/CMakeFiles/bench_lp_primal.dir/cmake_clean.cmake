file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_primal.dir/bench/bench_lp_primal.cpp.o"
  "CMakeFiles/bench_lp_primal.dir/bench/bench_lp_primal.cpp.o.d"
  "bench/bench_lp_primal"
  "bench/bench_lp_primal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_primal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
