# Empty compiler generated dependencies file for bench_lp_primal.
# This may be replaced when dependencies are built.
