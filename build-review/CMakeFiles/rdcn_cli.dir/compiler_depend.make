# Empty compiler generated dependencies file for rdcn_cli.
# This may be replaced when dependencies are built.
