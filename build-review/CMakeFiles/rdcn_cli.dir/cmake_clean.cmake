file(REMOVE_RECURSE
  "CMakeFiles/rdcn_cli.dir/tools/rdcn_cli.cpp.o"
  "CMakeFiles/rdcn_cli.dir/tools/rdcn_cli.cpp.o.d"
  "rdcn_cli"
  "rdcn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdcn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
