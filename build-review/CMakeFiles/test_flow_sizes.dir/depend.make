# Empty dependencies file for test_flow_sizes.
# This may be replaced when dependencies are built.
