file(REMOVE_RECURSE
  "CMakeFiles/test_flow_sizes.dir/tests/test_flow_sizes.cpp.o"
  "CMakeFiles/test_flow_sizes.dir/tests/test_flow_sizes.cpp.o.d"
  "test_flow_sizes"
  "test_flow_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
