
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dispatchers.cpp" "CMakeFiles/rdcn.dir/src/baseline/dispatchers.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/baseline/dispatchers.cpp.o.d"
  "/root/repo/src/baseline/schedulers.cpp" "CMakeFiles/rdcn.dir/src/baseline/schedulers.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/baseline/schedulers.cpp.o.d"
  "/root/repo/src/check/audit.cpp" "CMakeFiles/rdcn.dir/src/check/audit.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/check/audit.cpp.o.d"
  "/root/repo/src/check/differential.cpp" "CMakeFiles/rdcn.dir/src/check/differential.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/check/differential.cpp.o.d"
  "/root/repo/src/check/minimize.cpp" "CMakeFiles/rdcn.dir/src/check/minimize.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/check/minimize.cpp.o.d"
  "/root/repo/src/core/alg.cpp" "CMakeFiles/rdcn.dir/src/core/alg.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/alg.cpp.o.d"
  "/root/repo/src/core/charging.cpp" "CMakeFiles/rdcn.dir/src/core/charging.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/charging.cpp.o.d"
  "/root/repo/src/core/dual_witness.cpp" "CMakeFiles/rdcn.dir/src/core/dual_witness.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/dual_witness.cpp.o.d"
  "/root/repo/src/core/exact_certificate.cpp" "CMakeFiles/rdcn.dir/src/core/exact_certificate.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/exact_certificate.cpp.o.d"
  "/root/repo/src/core/impact.cpp" "CMakeFiles/rdcn.dir/src/core/impact.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/impact.cpp.o.d"
  "/root/repo/src/core/randomized.cpp" "CMakeFiles/rdcn.dir/src/core/randomized.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/core/randomized.cpp.o.d"
  "/root/repo/src/flow/flows.cpp" "CMakeFiles/rdcn.dir/src/flow/flows.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/flow/flows.cpp.o.d"
  "/root/repo/src/lp/exact_paper_lp.cpp" "CMakeFiles/rdcn.dir/src/lp/exact_paper_lp.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/lp/exact_paper_lp.cpp.o.d"
  "/root/repo/src/lp/exact_simplex.cpp" "CMakeFiles/rdcn.dir/src/lp/exact_simplex.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/lp/exact_simplex.cpp.o.d"
  "/root/repo/src/lp/model.cpp" "CMakeFiles/rdcn.dir/src/lp/model.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/lp/model.cpp.o.d"
  "/root/repo/src/lp/paper_lps.cpp" "CMakeFiles/rdcn.dir/src/lp/paper_lps.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/lp/paper_lps.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "CMakeFiles/rdcn.dir/src/lp/simplex.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/lp/simplex.cpp.o.d"
  "/root/repo/src/match/brute_force.cpp" "CMakeFiles/rdcn.dir/src/match/brute_force.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/brute_force.cpp.o.d"
  "/root/repo/src/match/capacitated.cpp" "CMakeFiles/rdcn.dir/src/match/capacitated.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/capacitated.cpp.o.d"
  "/root/repo/src/match/edge_coloring.cpp" "CMakeFiles/rdcn.dir/src/match/edge_coloring.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/edge_coloring.cpp.o.d"
  "/root/repo/src/match/gale_shapley.cpp" "CMakeFiles/rdcn.dir/src/match/gale_shapley.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/gale_shapley.cpp.o.d"
  "/root/repo/src/match/hopcroft_karp.cpp" "CMakeFiles/rdcn.dir/src/match/hopcroft_karp.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/hopcroft_karp.cpp.o.d"
  "/root/repo/src/match/hungarian.cpp" "CMakeFiles/rdcn.dir/src/match/hungarian.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/hungarian.cpp.o.d"
  "/root/repo/src/match/stable.cpp" "CMakeFiles/rdcn.dir/src/match/stable.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/match/stable.cpp.o.d"
  "/root/repo/src/net/builders.cpp" "CMakeFiles/rdcn.dir/src/net/builders.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/net/builders.cpp.o.d"
  "/root/repo/src/net/instance.cpp" "CMakeFiles/rdcn.dir/src/net/instance.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/net/instance.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "CMakeFiles/rdcn.dir/src/net/topology.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/net/topology.cpp.o.d"
  "/root/repo/src/opt/brute_force.cpp" "CMakeFiles/rdcn.dir/src/opt/brute_force.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/opt/brute_force.cpp.o.d"
  "/root/repo/src/opt/lower_bounds.cpp" "CMakeFiles/rdcn.dir/src/opt/lower_bounds.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/opt/lower_bounds.cpp.o.d"
  "/root/repo/src/opt/output_queueing.cpp" "CMakeFiles/rdcn.dir/src/opt/output_queueing.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/opt/output_queueing.cpp.o.d"
  "/root/repo/src/run/batch.cpp" "CMakeFiles/rdcn.dir/src/run/batch.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/batch.cpp.o.d"
  "/root/repo/src/run/policies.cpp" "CMakeFiles/rdcn.dir/src/run/policies.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/policies.cpp.o.d"
  "/root/repo/src/run/random.cpp" "CMakeFiles/rdcn.dir/src/run/random.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/random.cpp.o.d"
  "/root/repo/src/run/scenario.cpp" "CMakeFiles/rdcn.dir/src/run/scenario.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/scenario.cpp.o.d"
  "/root/repo/src/run/stream.cpp" "CMakeFiles/rdcn.dir/src/run/stream.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/stream.cpp.o.d"
  "/root/repo/src/run/suite.cpp" "CMakeFiles/rdcn.dir/src/run/suite.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/run/suite.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/rdcn.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "CMakeFiles/rdcn.dir/src/sim/gantt.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/sim/gantt.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/rdcn.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/traffic/source.cpp" "CMakeFiles/rdcn.dir/src/traffic/source.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/traffic/source.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/rdcn.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/rational.cpp" "CMakeFiles/rdcn.dir/src/util/rational.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/rational.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/rdcn.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/rdcn.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/rdcn.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/rdcn.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/adversarial.cpp" "CMakeFiles/rdcn.dir/src/workload/adversarial.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/workload/adversarial.cpp.o.d"
  "/root/repo/src/workload/flow_sizes.cpp" "CMakeFiles/rdcn.dir/src/workload/flow_sizes.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/workload/flow_sizes.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "CMakeFiles/rdcn.dir/src/workload/generator.cpp.o" "gcc" "CMakeFiles/rdcn.dir/src/workload/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
