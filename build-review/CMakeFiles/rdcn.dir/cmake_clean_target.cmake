file(REMOVE_RECURSE
  "librdcn.a"
)
