# Empty compiler generated dependencies file for rdcn.
# This may be replaced when dependencies are built.
