file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid.dir/bench/bench_hybrid.cpp.o"
  "CMakeFiles/bench_hybrid.dir/bench/bench_hybrid.cpp.o.d"
  "bench/bench_hybrid"
  "bench/bench_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
