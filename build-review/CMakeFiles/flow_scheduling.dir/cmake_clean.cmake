file(REMOVE_RECURSE
  "CMakeFiles/flow_scheduling.dir/examples/flow_scheduling.cpp.o"
  "CMakeFiles/flow_scheduling.dir/examples/flow_scheduling.cpp.o.d"
  "examples/flow_scheduling"
  "examples/flow_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
