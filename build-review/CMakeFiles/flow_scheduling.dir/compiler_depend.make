# Empty compiler generated dependencies file for flow_scheduling.
# This may be replaced when dependencies are built.
