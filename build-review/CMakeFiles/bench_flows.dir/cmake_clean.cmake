file(REMOVE_RECURSE
  "CMakeFiles/bench_flows.dir/bench/bench_flows.cpp.o"
  "CMakeFiles/bench_flows.dir/bench/bench_flows.cpp.o.d"
  "bench/bench_flows"
  "bench/bench_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
