# Empty dependencies file for bench_flows.
# This may be replaced when dependencies are built.
