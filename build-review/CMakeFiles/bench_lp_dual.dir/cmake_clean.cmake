file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_dual.dir/bench/bench_lp_dual.cpp.o"
  "CMakeFiles/bench_lp_dual.dir/bench/bench_lp_dual.cpp.o.d"
  "bench/bench_lp_dual"
  "bench/bench_lp_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
