# Empty compiler generated dependencies file for bench_lp_dual.
# This may be replaced when dependencies are built.
