file(REMOVE_RECURSE
  "CMakeFiles/test_duality.dir/tests/test_duality.cpp.o"
  "CMakeFiles/test_duality.dir/tests/test_duality.cpp.o.d"
  "test_duality"
  "test_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
