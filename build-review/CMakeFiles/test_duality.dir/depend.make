# Empty dependencies file for test_duality.
# This may be replaced when dependencies are built.
