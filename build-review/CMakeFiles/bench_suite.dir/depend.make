# Empty dependencies file for bench_suite.
# This may be replaced when dependencies are built.
