file(REMOVE_RECURSE
  "CMakeFiles/bench_suite.dir/bench/bench_suite.cpp.o"
  "CMakeFiles/bench_suite.dir/bench/bench_suite.cpp.o.d"
  "bench/bench_suite"
  "bench/bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
