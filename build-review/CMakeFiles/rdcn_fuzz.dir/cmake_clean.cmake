file(REMOVE_RECURSE
  "CMakeFiles/rdcn_fuzz.dir/tools/rdcn_fuzz.cpp.o"
  "CMakeFiles/rdcn_fuzz.dir/tools/rdcn_fuzz.cpp.o.d"
  "rdcn_fuzz"
  "rdcn_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdcn_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
