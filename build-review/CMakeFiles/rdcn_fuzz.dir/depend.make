# Empty dependencies file for rdcn_fuzz.
# This may be replaced when dependencies are built.
