file(REMOVE_RECURSE
  "CMakeFiles/test_exact_lp.dir/tests/test_exact_lp.cpp.o"
  "CMakeFiles/test_exact_lp.dir/tests/test_exact_lp.cpp.o.d"
  "test_exact_lp"
  "test_exact_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
