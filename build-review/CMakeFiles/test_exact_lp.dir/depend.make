# Empty dependencies file for test_exact_lp.
# This may be replaced when dependencies are built.
