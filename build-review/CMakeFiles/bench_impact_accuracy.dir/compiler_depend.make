# Empty compiler generated dependencies file for bench_impact_accuracy.
# This may be replaced when dependencies are built.
