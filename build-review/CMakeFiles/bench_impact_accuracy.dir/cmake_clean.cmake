file(REMOVE_RECURSE
  "CMakeFiles/bench_impact_accuracy.dir/bench/bench_impact_accuracy.cpp.o"
  "CMakeFiles/bench_impact_accuracy.dir/bench/bench_impact_accuracy.cpp.o.d"
  "bench/bench_impact_accuracy"
  "bench/bench_impact_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impact_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
