file(REMOVE_RECURSE
  "CMakeFiles/paper_figures.dir/examples/paper_figures.cpp.o"
  "CMakeFiles/paper_figures.dir/examples/paper_figures.cpp.o.d"
  "examples/paper_figures"
  "examples/paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
