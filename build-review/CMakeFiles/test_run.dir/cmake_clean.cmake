file(REMOVE_RECURSE
  "CMakeFiles/test_run.dir/tests/test_run.cpp.o"
  "CMakeFiles/test_run.dir/tests/test_run.cpp.o.d"
  "test_run"
  "test_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
