file(REMOVE_RECURSE
  "CMakeFiles/bench_crossbar.dir/bench/bench_crossbar.cpp.o"
  "CMakeFiles/bench_crossbar.dir/bench/bench_crossbar.cpp.o.d"
  "bench/bench_crossbar"
  "bench/bench_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
