# Empty compiler generated dependencies file for test_engine_regression.
# This may be replaced when dependencies are built.
