file(REMOVE_RECURSE
  "CMakeFiles/test_engine_regression.dir/tests/test_engine_regression.cpp.o"
  "CMakeFiles/test_engine_regression.dir/tests/test_engine_regression.cpp.o.d"
  "test_engine_regression"
  "test_engine_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
