# Empty compiler generated dependencies file for certified_run.
# This may be replaced when dependencies are built.
