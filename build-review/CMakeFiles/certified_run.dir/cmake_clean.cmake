file(REMOVE_RECURSE
  "CMakeFiles/certified_run.dir/examples/certified_run.cpp.o"
  "CMakeFiles/certified_run.dir/examples/certified_run.cpp.o.d"
  "examples/certified_run"
  "examples/certified_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certified_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
