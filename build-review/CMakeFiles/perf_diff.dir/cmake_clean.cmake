file(REMOVE_RECURSE
  "CMakeFiles/perf_diff.dir/tools/perf_diff.cpp.o"
  "CMakeFiles/perf_diff.dir/tools/perf_diff.cpp.o.d"
  "perf_diff"
  "perf_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
