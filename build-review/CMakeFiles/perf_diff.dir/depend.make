# Empty dependencies file for perf_diff.
# This may be replaced when dependencies are built.
