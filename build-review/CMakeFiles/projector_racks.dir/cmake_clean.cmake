file(REMOVE_RECURSE
  "CMakeFiles/projector_racks.dir/examples/projector_racks.cpp.o"
  "CMakeFiles/projector_racks.dir/examples/projector_racks.cpp.o.d"
  "examples/projector_racks"
  "examples/projector_racks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projector_racks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
