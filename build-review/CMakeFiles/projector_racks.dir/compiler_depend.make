# Empty compiler generated dependencies file for projector_racks.
# This may be replaced when dependencies are built.
