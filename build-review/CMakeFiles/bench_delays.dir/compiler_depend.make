# Empty compiler generated dependencies file for bench_delays.
# This may be replaced when dependencies are built.
