file(REMOVE_RECURSE
  "CMakeFiles/bench_delays.dir/bench/bench_delays.cpp.o"
  "CMakeFiles/bench_delays.dir/bench/bench_delays.cpp.o.d"
  "bench/bench_delays"
  "bench/bench_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
