#pragma once

// Crash-safe file replacement: write-temp, fsync, rename. After a crash
// (SIGKILL included) at any byte, the destination either holds its
// previous contents or the complete new contents -- never a torn prefix.
// The suite journal, committed bench baselines and perf_diff reports all
// write through here.

#include <string>

namespace rdcn {

/// Atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// fsyncs it, renames over `path`, then fsyncs the directory so the
/// rename itself survives power loss. Throws std::runtime_error (with
/// errno context) on any I/O failure; the temp file is removed on error.
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace rdcn
