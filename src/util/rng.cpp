#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace rdcn {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

double Rng::next_exponential(double lambda) noexcept {
  assert(lambda > 0);
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999999999;
  return -std::log1p(-u) / lambda;
}

std::uint64_t Rng::next_poisson(double mean) noexcept {
  assert(mean >= 0);
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = next_double();
    while (product > limit) {
      ++k;
      product *= next_double();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at high arrival rates.
  const double u1 = next_double();
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value <= 0 ? 0 : static_cast<std::uint64_t>(value);
}

double Rng::next_pareto(double x_m, double alpha) noexcept {
  assert(x_m > 0 && alpha > 0);
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999999999;
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t index) const noexcept {
  std::uint64_t sm = seed_ ^ (0xd1342543de82ef95ULL * (index + 1));
  return Rng(splitmix64(sm));
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rdcn
