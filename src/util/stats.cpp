#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rdcn {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty Summary");
  assert(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Summary::ci95_halfwidth() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) {
    if (s <= 0.0) throw std::invalid_argument("geometric_mean needs positive samples");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace rdcn
