#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rdcn {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty Summary");
  assert(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Summary::ci95_halfwidth() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

LatencyHistogram::LatencyHistogram(int sub_bucket_bits) : bits_(sub_bucket_bits) {
  if (sub_bucket_bits < 0 || sub_bucket_bits > 20) {
    throw std::invalid_argument("sub_bucket_bits must be in [0, 20]");
  }
}

std::size_t LatencyHistogram::bucket_index(std::int64_t value, int sub_bucket_bits) {
  if (value < 0) value = 0;
  const std::int64_t sub = std::int64_t{1} << sub_bucket_bits;
  if (value < 2 * sub) return static_cast<std::size_t>(value);
  // value in octave [2^(k-1), 2^k) with k - 1 > sub_bucket_bits; the
  // octave splits into `sub` equal sub-buckets of width 2^(k-1-bits).
  int msb = 0;
  for (std::int64_t v = value; v > 1; v >>= 1) ++msb;  // value in [2^msb, 2^(msb+1))
  const int shift = msb - sub_bucket_bits;
  const auto octave = static_cast<std::size_t>(msb - sub_bucket_bits - 1);
  const auto within = static_cast<std::size_t>((value - (std::int64_t{1} << msb)) >> shift);
  return static_cast<std::size_t>(2 * sub) + octave * static_cast<std::size_t>(sub) + within;
}

std::pair<std::int64_t, std::int64_t> LatencyHistogram::bucket_range(std::size_t index,
                                                                     int sub_bucket_bits) {
  const std::int64_t sub = std::int64_t{1} << sub_bucket_bits;
  if (index < static_cast<std::size_t>(2 * sub)) {
    const auto v = static_cast<std::int64_t>(index);
    return {v, v};
  }
  const std::size_t rest = index - static_cast<std::size_t>(2 * sub);
  const auto octave = static_cast<int>(rest / static_cast<std::size_t>(sub));
  const auto within = static_cast<std::int64_t>(rest % static_cast<std::size_t>(sub));
  const std::int64_t width = std::int64_t{1} << (octave + 1);
  const std::int64_t lower = (std::int64_t{1} << (octave + sub_bucket_bits + 1)) + within * width;
  return {lower, lower + width - 1};
}

void LatencyHistogram::add(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t index = bucket_index(value, bits_);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  ++counts_[index];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.bits_ != bits_) {
    throw std::invalid_argument("cannot merge histograms with different layouts");
  }
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t LatencyHistogram::min() const noexcept { return count_ == 0 ? 0 : min_; }

std::int64_t LatencyHistogram::max() const noexcept { return count_ == 0 ? 0 : max_; }

std::int64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) throw std::logic_error("percentile of empty LatencyHistogram");
  assert(q >= 0.0 && q <= 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q / 100.0 * static_cast<double>(count_))));
  // Rank 1 is the smallest recorded sample exactly; answering with its
  // bucket's upper bound would let a low quantile exceed every sample in
  // the bucket (p0 > min()).
  if (target <= 1) return min_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return std::clamp(bucket_range(i, bits_).second, min_, max_);
    }
  }
  return max();
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) {
    if (s <= 0.0) throw std::invalid_argument("geometric_mean needs positive samples");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace rdcn
