#pragma once

// Exact rational arithmetic on 64-bit numerator/denominator with overflow
// checking. Used by the duality test-suite: chunk weights are w_p/d(e), so
// latency ledgers, the dual witness and the Lemma-1/2 identities are exact
// rationals whenever packet weights are integers. Checking those identities
// exactly (instead of with epsilons) is what makes the property tests
// trustworthy. Throws rdcn::RationalOverflow when a value leaves the
// representable range, which in practice never happens at the instance
// sizes the tests use.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace rdcn {

class RationalOverflow : public std::runtime_error {
 public:
  RationalOverflow() : std::runtime_error("rational overflow") {}
};

class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): integers embed naturally.
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}
  Rational(std::int64_t numerator, std::int64_t denominator);

  std::int64_t numerator() const noexcept { return num_; }
  std::int64_t denominator() const noexcept { return den_; }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  Rational operator/(const Rational& other) const;
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  bool operator==(const Rational& other) const noexcept;
  std::strong_ordering operator<=>(const Rational& other) const;

  bool is_zero() const noexcept { return num_ == 0; }
  bool is_negative() const noexcept { return num_ < 0; }

  double to_double() const noexcept;
  std::string to_string() const;

 private:
  void normalize();

  std::int64_t num_;
  std::int64_t den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace rdcn
