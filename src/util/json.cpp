#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rdcn::json {

namespace {

[[noreturn]] void type_mismatch(const char* wanted, const Value& value) {
  throw std::logic_error(std::string("json: expected ") + wanted + ", value is " +
                         value.type_name());
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_mismatch("bool", *this);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_mismatch("number", *this);
  return number_;
}

std::int64_t Value::as_integer() const {
  if (!is_integer_) type_mismatch("integer", *this);
  return integer_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_mismatch("string", *this);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) type_mismatch("array", *this);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) type_mismatch("object", *this);
  return object_;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const char* Value::type_name() const noexcept {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "unknown";
}

namespace {

constexpr int kMaxDepth = 64;  ///< nesting guard for untrusted files

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("line " + std::to_string(line_) + ", column " + std::to_string(column_) +
                     ": " + what);
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  void expect(char c) {
    if (at_end()) fail(std::string("unexpected end of input, expected '") + c + "'");
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    advance();
  }

  void expect_keyword(const char* keyword) {
    for (const char* k = keyword; *k; ++k) {
      if (at_end() || peek() != *k) {
        fail(std::string("invalid literal (expected '") + keyword + "')");
      }
      advance();
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    if (at_end()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't': expect_keyword("true"); return Value(true);
      case 'f': expect_keyword("false"); return Value(false);
      case 'n': expect_keyword("null"); return Value();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object object;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      advance();
      return Value(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      for (const Member& member : object) {
        if (member.first == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      skip_whitespace();
      Value value = parse_value(depth + 1);
      object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside an object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}');
      return Value(std::move(object));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array array;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      advance();
      return Value(std::move(array));
    }
    while (true) {
      skip_whitespace();
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside an array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']');
      return Value(std::move(array));
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("unexpected end of input inside a \\u escape");
      const char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(std::string("invalid hex digit '") + c + "' in \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char escape = advance();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (at_end() || peek() != '\\') fail("unpaired UTF-16 surrogate");
            advance();
            if (at_end() || peek() != 'u') fail("unpaired UTF-16 surrogate");
            advance();
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("invalid UTF-16 surrogate pair");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail(std::string("invalid escape '\\") + escape + "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_integer = true;
    if (!at_end() && peek() == '-') advance();
    if (at_end() || peek() < '0' || peek() > '9') fail("malformed number");
    if (peek() == '0') {
      advance();
      if (!at_end() && peek() >= '0' && peek() <= '9') fail("numbers may not have leading zeros");
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && peek() == '.') {
      is_integer = false;
      advance();
      if (at_end() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_integer = false;
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (at_end() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_integer) {
      errno = 0;
      char* end = nullptr;
      const long long integer = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        return Value(static_cast<std::int64_t>(integer));
      }
      // Out of int64 range: fall through to double.
    }
    const double number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(number)) fail("number out of range");
    return Value(number);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

void dump_string(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Value& value, int indent, int depth, std::string& out) {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (value.type()) {
    case Value::Type::Null: out += "null"; return;
    case Value::Type::Bool: out += value.as_bool() ? "true" : "false"; return;
    case Value::Type::Number: {
      if (value.is_integer()) {
        out += std::to_string(value.as_integer());
        return;
      }
      const double number = value.as_number();
      if (!std::isfinite(number)) {
        out += "null";  // NaN / inf have no JSON representation
        return;
      }
      // Shortest decimal that parses back to the identical double, so
      // normalized documents round-trip bit-for-bit.
      char buffer[64];
      for (const int precision : {15, 16, 17}) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, number);
        if (std::strtod(buffer, nullptr) == number) break;
      }
      out += buffer;
      return;
    }
    case Value::Type::String: dump_string(value.as_string(), out); return;
    case Value::Type::Array: {
      const Array& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        dump_value(array[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Value::Type::Object: {
      const Object& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i) out += ",";
        newline(depth + 1);
        dump_string(object[i].first, out);
        out += indent > 0 ? ": " : ":";
        dump_value(object[i].second, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string dump(const Value& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  return out;
}

}  // namespace rdcn::json
