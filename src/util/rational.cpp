#include "util/rational.hpp"

#include <numeric>
#include <ostream>

namespace rdcn {

namespace {

std::int64_t checked(__int128 value) {
  if (value > INT64_MAX || value < INT64_MIN) throw RationalOverflow();
  return static_cast<std::int64_t>(value);
}

}  // namespace

Rational::Rational(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator) {
  if (den_ == 0) throw std::invalid_argument("rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    if (den_ == INT64_MIN || num_ == INT64_MIN) throw RationalOverflow();
    den_ = -den_;
    num_ = -num_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  num_ /= g;
  den_ /= g;
}

Rational Rational::operator-() const {
  if (num_ == INT64_MIN) throw RationalOverflow();
  Rational result;
  result.num_ = -num_;
  result.den_ = den_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  // a/b + c/d with d' = lcm reduction via g = gcd(b, d).
  const std::int64_t g = std::gcd(den_, other.den_);
  const __int128 lhs = static_cast<__int128>(num_) * (other.den_ / g);
  const __int128 rhs = static_cast<__int128>(other.num_) * (den_ / g);
  const __int128 den = static_cast<__int128>(den_) * (other.den_ / g);
  return Rational(checked(lhs + rhs), checked(den));
}

Rational Rational::operator-(const Rational& other) const { return *this + (-other); }

Rational Rational::operator*(const Rational& other) const {
  // Cross-reduce before multiplying to delay overflow.
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, other.den_);
  const std::int64_t g2 = std::gcd(other.num_ < 0 ? -other.num_ : other.num_, den_);
  const __int128 num = static_cast<__int128>(num_ / g1) * (other.num_ / g2);
  const __int128 den = static_cast<__int128>(den_ / g2) * (other.den_ / g1);
  return Rational(checked(num), checked(den));
}

Rational Rational::operator/(const Rational& other) const {
  if (other.num_ == 0) throw std::invalid_argument("rational division by zero");
  if (other.num_ == INT64_MIN || other.den_ == INT64_MIN) throw RationalOverflow();
  return *this * Rational(other.den_, other.num_);
}

Rational& Rational::operator+=(const Rational& other) { return *this = *this + other; }
Rational& Rational::operator-=(const Rational& other) { return *this = *this - other; }
Rational& Rational::operator*=(const Rational& other) { return *this = *this * other; }
Rational& Rational::operator/=(const Rational& other) { return *this = *this / other; }

bool Rational::operator==(const Rational& other) const noexcept {
  return num_ == other.num_ && den_ == other.den_;
}

std::strong_ordering Rational::operator<=>(const Rational& other) const {
  const __int128 lhs = static_cast<__int128>(num_) * other.den_;
  const __int128 rhs = static_cast<__int128>(other.num_) * den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace rdcn
