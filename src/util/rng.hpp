#pragma once

// Deterministic, seedable random number generation for reproducible
// experiments. We ship our own generator (xoshiro256**, seeded via
// splitmix64) instead of std::mt19937 so that streams are identical across
// standard library implementations, which matters when EXPERIMENTS.md
// records exact measured numbers.

#include <cstdint>
#include <vector>

namespace rdcn {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound) via Lemire rejection; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) noexcept;

  /// Exponential with rate lambda (> 0).
  double next_exponential(double lambda) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small means,
  /// normal approximation for large ones).
  std::uint64_t next_poisson(double mean) noexcept;

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double next_pareto(double x_m, double alpha) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (for per-task RNGs in parallel
  /// sweeps): deterministic function of the parent seed and the index.
  Rng fork(std::uint64_t index) const noexcept;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

/// Discrete Zipf(s) sampler over {0, ..., n-1} with exponent s >= 0,
/// P(k) proportional to 1/(k+1)^s. Precomputes the CDF; O(log n) sampling.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace rdcn
