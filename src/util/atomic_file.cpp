#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace rdcn {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", temp);

  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      fail("cannot write", temp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(temp.c_str());
    fail("cannot sync", temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    fail("cannot rename into", path);
  }

  // fsync the directory so the rename is durable, not just ordered.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best-effort: some filesystems reject directory fsync
    ::close(dir_fd);
  }
}

}  // namespace rdcn
