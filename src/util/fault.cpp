#include "util/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <typeinfo>

#include <cxxabi.h>

namespace rdcn {

DeadlineWatchdog::DeadlineWatchdog() : thread_([this] { loop(); }) {}

DeadlineWatchdog::~DeadlineWatchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

DeadlineWatchdog::Guard& DeadlineWatchdog::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    disarm();
    watchdog_ = other.watchdog_;
    id_ = other.id_;
    other.watchdog_ = nullptr;
  }
  return *this;
}

void DeadlineWatchdog::Guard::disarm() {
  if (watchdog_ != nullptr) {
    watchdog_->remove(id_);
    watchdog_ = nullptr;
  }
}

DeadlineWatchdog::Guard DeadlineWatchdog::arm(CancelToken& token, double delay_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(delay_ms, 0.0)));
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    entries_.push_back(Entry{id, deadline, &token});
  }
  wake_.notify_all();
  return Guard(this, id);
}

void DeadlineWatchdog::remove(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() +
                     static_cast<std::vector<Entry>::difference_type>(i));
      break;
    }
  }
}

void DeadlineWatchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (entries_.empty()) {
      wake_.wait(lock);
      continue;
    }
    auto earliest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.deadline < b.deadline; });
    const auto now = std::chrono::steady_clock::now();
    if (earliest->deadline <= now) {
      // Cancel under the mutex: a concurrent Guard::disarm blocks until
      // this store finishes, so the token outlives the access.
      earliest->token->cancel();
      entries_.erase(earliest);
      continue;
    }
    wake_.wait_until(lock, earliest->deadline);
  }
}

double backoff_delay_ms(double base_ms, int attempt, double cap_ms) {
  double delay = std::max(base_ms, 0.0);
  for (int i = 1; i < attempt && delay < cap_ms; ++i) delay *= 2.0;
  return std::min(delay, cap_ms);
}

bool is_transient_failure(const std::exception_ptr& failure) {
  if (!failure) return false;
  try {
    std::rethrow_exception(failure);
  } catch (const TransientError&) {
    return true;
  } catch (...) {
    return false;
  }
}

namespace {

std::string demangled_name(const std::type_info& info) {
  int status = 0;
  const std::unique_ptr<char, void (*)(void*)> demangled(
      abi::__cxa_demangle(info.name(), nullptr, nullptr, &status), std::free);
  return (status == 0 && demangled) ? std::string(demangled.get())
                                    : std::string(info.name());
}

}  // namespace

FailureInfo describe_failure(const std::exception_ptr& failure) {
  FailureInfo info;
  if (!failure) {
    info.type = "none";
    return info;
  }
  try {
    std::rethrow_exception(failure);
  } catch (const std::exception& error) {
    info.type = demangled_name(typeid(error));
    info.message = error.what();
  } catch (...) {
    info.type = "unknown";
    info.message = "non-standard exception";
  }
  return info;
}

}  // namespace rdcn
