#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rdcn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Chunked dynamic scheduling: workers grab the next index atomically so
  // unevenly sized iterations (different instance sizes) still balance.
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(count, pool.thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, count, &body] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, count, body);
}

}  // namespace rdcn
