#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rdcn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A partially-constructed pool must still join the workers it did
    // spawn: destroying a joinable std::thread is std::terminate.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  // Workers finish the task they are running and exit; the queue is torn
  // down only after every worker has been joined, so no task is destroyed
  // while a worker could still be dequeuing it.
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_failure_) {
    // Hand the failure to exactly one caller and stay usable afterwards.
    std::exception_ptr failure;
    std::swap(failure, first_failure_);
    lock.unlock();
    std::rethrow_exception(failure);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Stop takes precedence over draining: queued-but-unstarted tasks
      // are discarded at destruction (their closures may be invalid on
      // exception paths), and the destructor joins us promptly.
      if (stopping_) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_failure_) first_failure_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Chunked dynamic scheduling: workers grab the next index atomically so
  // unevenly sized iterations (different instance sizes) still balance.
  // A thrown body stops the other workers from starting new iterations;
  // the pool captures the exception and wait_idle rethrows it here.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const std::size_t workers = std::min(count, pool.thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, &failed, count, &body] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // captured by the pool, rethrown from wait_idle
        }
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, count, body);
}

}  // namespace rdcn
