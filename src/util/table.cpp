#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rdcn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::fmt(std::int64_t value) { return std::to_string(value); }
std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_ascii().c_str());
  std::fflush(stdout);
}

}  // namespace rdcn
