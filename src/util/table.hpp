#pragma once

// ASCII table / CSV emitter. Every bench binary prints its experiment's
// rows through this so tables look like the paper's and are greppable.

#include <string>
#include <vector>

namespace rdcn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::int64_t value);
  static std::string fmt(std::uint64_t value);

  /// Renders an aligned ASCII table with a separator under the header.
  std::string to_ascii() const;
  /// Renders RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  std::string to_csv() const;

  /// Prints the ASCII form to stdout with a title banner.
  void print(const std::string& title) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdcn
