#pragma once

// Fault-tolerance primitives for the runner layer: cooperative
// cancellation (CancelToken + DeadlineWatchdog), the transient-vs-
// deterministic failure taxonomy the retry machinery classifies against,
// and exponential backoff. The engine checks a token with one relaxed
// load at step boundaries (EngineOptions::cancel, null when no deadline
// is armed), so the probe-off hot path pays a single pointer test.
//
// Taxonomy: TransientError marks infrastructure failures that a
// seed-preserving re-run may clear (a deadline on a loaded pool, an
// injected flake); CancelledError is the deadline flavor the engine
// throws at the first step boundary after its token fires. Everything
// else -- logic_error (AuditFailure included), runtime_error contract
// violations -- is deterministic: the same seed would fail the same way,
// so retrying only wastes the budget.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rdcn {

/// Infrastructure failure a seed-preserving re-run may clear. Retry
/// machinery (BatchRunner, rdcn_fuzz) retries these with backoff.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A cooperative cancellation fired (deadline): thrown by the engine at
/// the first step boundary after its CancelToken is cancelled.
class CancelledError : public TransientError {
 public:
  using TransientError::TransientError;
};

/// One-shot cancellation flag. cancel() is sticky; cancelled() is a
/// single relaxed load, cheap enough for per-step checks.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Shared deadline thread: arm() registers (token, wall-clock deadline)
/// and returns a guard; the watchdog cancels tokens whose deadline passes
/// before the guard disarms them. Tokens are only touched under the
/// watchdog mutex, so a guard's destruction synchronizes with any
/// in-flight cancel and the token may safely live on the caller's stack.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog();
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  /// Disarms its entry on destruction (no-op if the deadline already
  /// fired). Movable so arm() can return it.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept : watchdog_(other.watchdog_), id_(other.id_) {
      other.watchdog_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept;
    ~Guard() { disarm(); }

   private:
    friend class DeadlineWatchdog;
    Guard(DeadlineWatchdog* watchdog, std::uint64_t id)
        : watchdog_(watchdog), id_(id) {}
    void disarm();

    DeadlineWatchdog* watchdog_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Cancels `token` once `delay_ms` of wall clock elapses, unless the
  /// returned guard is destroyed first.
  Guard arm(CancelToken& token, double delay_ms);

 private:
  struct Entry {
    std::uint64_t id;
    std::chrono::steady_clock::time_point deadline;
    CancelToken* token;
  };

  void loop();
  void remove(std::uint64_t id);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

/// Exponential backoff delay before retry `attempt` (1-based: the delay
/// after the attempt that just failed): base * 2^(attempt-1), capped.
double backoff_delay_ms(double base_ms, int attempt, double cap_ms = 1000.0);

/// True when the exception is infrastructure-transient (TransientError,
/// deadline cancellations included) and a seed-preserving retry is sound.
bool is_transient_failure(const std::exception_ptr& failure);

/// Human-readable (type, message) of an exception, for structured error
/// rows: type is the demangled dynamic class name ("rdcn::CancelledError",
/// "std::logic_error"), message is what() (non-std exceptions get a
/// placeholder).
struct FailureInfo {
  std::string type;
  std::string message;
};
FailureInfo describe_failure(const std::exception_ptr& failure);

}  // namespace rdcn
