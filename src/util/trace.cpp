#include "util/trace.hpp"

#include <algorithm>
#include <utility>

namespace rdcn::trace {

namespace {

/// Microseconds with nanosecond resolution preserved: the trace format's
/// "ts"/"dur" are (fractional) microseconds.
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

json::Value chrome_trace(std::vector<TraceEvent> events, json::Object other_data) {
  // Spans complete child-before-parent (RAII), so the ring arrives in end
  // order; viewers want start order, longest (outermost) first on ties.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.dur_ns > b.dur_ns;
                   });
  json::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    json::Object entry;
    entry.emplace_back("name", json::Value(std::string(event.name)));
    entry.emplace_back("cat", json::Value("round"));
    entry.emplace_back("ph", json::Value("X"));
    entry.emplace_back("ts", json::Value(to_us(event.start_ns)));
    entry.emplace_back("dur", json::Value(to_us(event.dur_ns)));
    entry.emplace_back("pid", json::Value(std::int64_t{1}));
    entry.emplace_back("tid", json::Value(std::int64_t{1}));
    trace_events.emplace_back(std::move(entry));
  }
  json::Object document;
  document.emplace_back("displayTimeUnit", json::Value("ms"));
  document.emplace_back("traceEvents", json::Value(std::move(trace_events)));
  if (!other_data.empty()) {
    document.emplace_back("otherData", json::Value(std::move(other_data)));
  }
  return json::Value(std::move(document));
}

std::string chrome_trace_json(std::vector<TraceEvent> events, json::Object other_data,
                              int indent) {
  return json::dump(chrome_trace(std::move(events), std::move(other_data)), indent);
}

}  // namespace rdcn::trace
