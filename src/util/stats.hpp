#pragma once

// Lightweight summary statistics used by the benchmark harness to report
// mean / stddev / percentiles / confidence intervals over repeated runs.

#include <cstddef>
#include <vector>

namespace rdcn {

/// Accumulates scalar samples and answers summary queries. Percentile
/// queries sort a copy lazily; the accumulator is meant for at most a few
/// million samples (experiment sweeps), not streaming telemetry.
class Summary {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const noexcept;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Geometric mean of strictly positive samples (competitive-ratio tables).
double geometric_mean(const std::vector<double>& samples);

}  // namespace rdcn
