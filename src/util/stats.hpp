#pragma once

// Lightweight summary statistics used by the benchmark harness to report
// mean / stddev / percentiles / confidence intervals over repeated runs,
// plus a bounded-memory log-bucket histogram for streaming latency
// telemetry (steady-state p50/p95/p99/p999 over millions of samples).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rdcn {

/// Accumulates scalar samples and answers summary queries. Percentile
/// queries sort a copy lazily; the accumulator is meant for at most a few
/// million samples (experiment sweeps), not streaming telemetry.
class Summary {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const noexcept;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Geometric mean of strictly positive samples (competitive-ratio tables).
double geometric_mean(const std::vector<double>& samples);

/// Log-bucket histogram over nonnegative integer samples (latencies in
/// steps) with bounded memory: O(log(max) * 2^sub_bucket_bits) buckets
/// regardless of sample count, so a streamed run can fold millions of
/// per-packet latencies without retaining them.
///
/// Bucket layout (HDR-histogram style): values below 2 * S (S = 2 ^
/// sub_bucket_bits) get one bucket each -- exact; above that, every octave
/// [2^k, 2^(k+1)) splits into S equal sub-buckets, bounding the relative
/// quantization error by 2^-sub_bucket_bits. Percentiles use the
/// nearest-rank convention on bucket upper bounds, so in the exact region
/// (small samples, small values) they reproduce the exact order statistic.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(int sub_bucket_bits = 5);

  /// Records one sample; negative values clamp to 0.
  void add(std::int64_t value);
  /// Folds `other` in; layouts (sub_bucket_bits) must match.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept;  ///< of the raw (unquantized) samples
  std::int64_t min() const noexcept;  ///< exact; 0 when empty
  std::int64_t max() const noexcept;  ///< exact; 0 when empty

  /// Nearest-rank percentile, q in [0, 100]: the upper bound of the first
  /// bucket whose cumulative count reaches ceil(q/100 * count), clamped
  /// into the observed [min(), max()]; rank 1 (q = 0, or any q resolving
  /// to the first sample) returns min() exactly, so no quantile can
  /// exceed / undercut every recorded sample. Throws std::logic_error
  /// when empty.
  std::int64_t percentile(double q) const;
  std::int64_t p50() const { return percentile(50.0); }
  std::int64_t p95() const { return percentile(95.0); }
  std::int64_t p99() const { return percentile(99.0); }
  std::int64_t p999() const { return percentile(99.9); }

  int sub_bucket_bits() const noexcept { return bits_; }
  std::size_t num_buckets() const noexcept { return counts_.size(); }

  /// Layout hooks (exposed for tests): the bucket a value lands in, and
  /// the inclusive [lower, upper] value range of a bucket.
  static std::size_t bucket_index(std::int64_t value, int sub_bucket_bits);
  static std::pair<std::int64_t, std::int64_t> bucket_range(std::size_t index,
                                                            int sub_bucket_bits);

 private:
  int bits_;
  std::vector<std::uint64_t> counts_;  ///< grown lazily to the max bucket
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace rdcn
