#pragma once

// Minimal fixed-size thread pool plus a parallel_for helper. The library's
// algorithms are sequential by construction (the online model is a single
// time loop), but experiment sweeps (seeds x epsilons x workloads) are
// embarrassingly parallel; bench binaries use parallel_for to keep
// wall-clock reasonable on laptop-class machines.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rdcn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Iterations must be independent; exceptions must not escape the body.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// One-shot convenience that owns a temporary pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace rdcn
