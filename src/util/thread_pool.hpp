#pragma once

// Minimal fixed-size thread pool plus a parallel_for helper. The library's
// algorithms are sequential by construction (the online model is a single
// time loop), but experiment sweeps (seeds x epsilons x workloads) are
// embarrassingly parallel; bench binaries use parallel_for to keep
// wall-clock reasonable on laptop-class machines.
//
// Failure contract (ISSUE 8): tasks may throw. The pool catches every
// escaping exception in the worker (an exception leaving a thread function
// is std::terminate), keeps the first one, and rethrows it from the next
// wait_idle() -- after every other in-flight task has finished, so callers
// observe all-or-nothing completion. Destruction never executes pending
// work: queued-but-unstarted tasks are discarded, because on exception
// paths the closures may reference stack frames that are already being
// unwound. wait_idle() is the only way to guarantee completion.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rdcn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  /// Exception-safe: if a worker fails to spawn, the already-started ones
  /// are joined before the exception propagates.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins the workers after their current task; tasks still queued are
  /// discarded, not run (see the failure contract above). A captured task
  /// exception that was never collected by wait_idle() is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks may throw: the first escaping exception is
  /// captured and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them threw (clearing it, so the pool stays
  /// usable afterwards).
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_failure_;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Iterations must be independent. If a body throws, workers stop picking
/// up new iterations and the first exception propagates to the caller
/// (which iterations ran beyond the throwing one is unspecified).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// One-shot convenience that owns a temporary pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace rdcn
