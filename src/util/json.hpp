#pragma once

// Minimal strict JSON: a small DOM, a recursive-descent parser with
// line/column error positions, and a writer. No dependencies; the library
// needs machine-readable config in (run/suite) and machine-readable
// results out (BenchReport-style lines), not a full JSON stack.
//
// Strictness: RFC 8259 grammar only -- no comments, no trailing commas,
// no NaN/Infinity literals; duplicate object keys are rejected (a config
// file with two "racks" keys is a bug, not a preference); trailing
// garbage after the document is rejected. Object member order is
// preserved so error messages and round-trips follow the file.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rdcn::json {

/// Parse failure; message is "line L, column C: what went wrong".
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;  ///< file order preserved

class Value {
 public:
  // The enumerators intentionally mirror the json::Array / json::Object
  // alias names; being enum-class-scoped they can never be confused with
  // the aliases, so the shadow warning is suppressed rather than the
  // names mangled.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
  enum class Type { Null, Bool, Number, String, Array, Object };
#pragma GCC diagnostic pop

  Value() = default;  ///< null
  Value(bool value) : type_(Type::Bool), bool_(value) {}
  Value(double value) : type_(Type::Number), number_(value) {}
  Value(std::int64_t value)
      : type_(Type::Number), number_(static_cast<double>(value)), integer_(value),
        is_integer_(true) {}
  Value(int value) : Value(static_cast<std::int64_t>(value)) {}
  Value(const char* value) : type_(Type::String), string_(value) {}
  Value(std::string value) : type_(Type::String), string_(std::move(value)) {}
  Value(Array value) : type_(Type::Array), array_(std::move(value)) {}
  Value(Object value) : type_(Type::Object), object_(std::move(value)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  /// A number written without fraction/exponent that fits std::int64_t.
  bool is_integer() const noexcept { return is_integer_; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  /// Typed accessors throw std::logic_error on a type mismatch (callers
  /// that want a good message check the type first).
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_integer() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const noexcept;

  /// Human-readable type name ("number", "object", ...) for messages.
  const char* type_name() const noexcept;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  bool is_integer_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (any value type at the root). Throws
/// ParseError with a line/column position on malformed input.
Value parse(const std::string& text);

/// Serializes a value. indent == 0 emits one compact line; indent > 0
/// pretty-prints with that many spaces per level. Non-finite numbers emit
/// null (they have no JSON representation). Integers print without a
/// fraction, so integer-valued configs round-trip verbatim.
std::string dump(const Value& value, int indent = 0);

}  // namespace rdcn::json
