#pragma once

// Chrome trace-event export: turns a flat list of completed spans into the
// catapult/Perfetto JSON trace format (load via ui.perfetto.dev or
// chrome://tracing). Only the "complete event" subset ("ph":"X") is
// emitted -- one object per span with microsecond start/duration -- which
// every viewer nests by containment, so a single-threaded producer (the
// engine probe) needs no begin/end pairing. The document is built on
// util/json's DOM and serialized by its strict writer, so the output
// round-trips through json::parse by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace rdcn::trace {

/// One completed span. `name` must point at static storage (the probe's
/// phase names): events sit in a pre-sized ring that must not own strings.
struct TraceEvent {
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< relative to the producer's epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  ///< nesting depth when the span opened (0 = top)
};

/// Builds the trace document: {"displayTimeUnit":"ms","traceEvents":[...],
/// "otherData":{...}}. Events are sorted by (start, -duration) so parents
/// precede their children and timestamps are monotone regardless of the
/// ring's completion order. `other_data` lands verbatim under "otherData"
/// (the probe puts its counter/gauge registry there).
json::Value chrome_trace(std::vector<TraceEvent> events, json::Object other_data = {});

/// chrome_trace + json::dump in one call.
std::string chrome_trace_json(std::vector<TraceEvent> events,
                              json::Object other_data = {}, int indent = 0);

}  // namespace rdcn::trace
