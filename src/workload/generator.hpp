#pragma once

// Synthetic workload generators. The paper motivates demand-aware
// scheduling with the skewed, bursty structure of measured datacenter
// traffic ([17]-[19]); these generators expose exactly those knobs:
// arrival burstiness (Poisson vs ON/OFF-modulated), rack-pair skew
// (uniform / Zipf / hotspot / permutation / incast), and weight
// distributions (unit / uniform-integer / Pareto-derived / bimodal
// "elephant-vs-mouse" priorities).

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/instance.hpp"
#include "util/rng.hpp"

namespace rdcn {

enum class PairSkew {
  Uniform,      ///< (src, dst) uniform over routable pairs
  Zipf,         ///< rack popularity Zipf-distributed on both sides
  Hotspot,      ///< a fraction of traffic pinned to one hot pair
  Permutation,  ///< dst = fixed random permutation of src
  Incast,       ///< all destinations funnel into one rack
};

enum class WeightDist {
  Unit,        ///< all weights 1
  UniformInt,  ///< uniform integer in [1, weight_max] (exact-audit friendly)
  Pareto,      ///< heavy-tailed, rounded up to an integer
  Bimodal,     ///< mice weight 1, elephants weight weight_max
};

struct WorkloadConfig {
  std::size_t num_packets = 100;
  /// Mean packets per step (Poisson); smaller = lighter load.
  double arrival_rate = 2.0;
  PairSkew skew = PairSkew::Uniform;
  double zipf_exponent = 1.2;
  double hotspot_fraction = 0.5;  ///< Hotspot: share sent on the hot pair
  WeightDist weights = WeightDist::UniformInt;
  std::int64_t weight_max = 10;
  double pareto_shape = 1.3;
  double elephant_fraction = 0.1;  ///< Bimodal: share of heavy packets
  /// ON/OFF burst modulation: with probability burst_off_prob a step
  /// contributes no arrivals; ON steps are proportionally hotter so the
  /// mean rate is preserved.
  bool bursty = false;
  double burst_off_prob = 0.7;
  std::uint64_t seed = 1;
};

/// Samples (source, destination) endpoint pairs over a topology's routable
/// rack pairs according to config.skew. Construction draws the skew's
/// one-time randomness (Zipf rank order, hot pair, permutation, incast
/// sink) from `rng`; sample() then draws per packet. generate_workload and
/// the streaming traffic sources (traffic/) share this class, so batch and
/// open-loop traffic see identical endpoint distributions.
class PairSampler {
 public:
  PairSampler(const Topology& topology, const WorkloadConfig& config, Rng& rng);

  std::pair<NodeIndex, NodeIndex> sample(Rng& rng) const;

  std::size_t num_pairs() const noexcept { return pairs_.size(); }

 private:
  std::vector<std::pair<NodeIndex, NodeIndex>> pairs_;
  WorkloadConfig config_;  ///< copy: only the skew knobs are consulted
  std::unique_ptr<ZipfSampler> zipf_;
  std::pair<NodeIndex, NodeIndex> hot_pair_{};
  std::vector<std::pair<NodeIndex, NodeIndex>> permutation_;
  NodeIndex sink_ = 0;
  std::vector<std::pair<NodeIndex, NodeIndex>> incast_pairs_;
};

/// One weight draw from config.weights (shared by batch and streaming).
double sample_weight(const WorkloadConfig& config, Rng& rng);

/// Generates a packet sequence over the topology's routable rack pairs.
/// Deterministic in (topology, config): all randomness flows from
/// config.seed.
Instance generate_workload(const Topology& topology, const WorkloadConfig& config);

/// The standard multi-unit reduction (Section II): appends `size` unit
/// packets of weight total_weight / size, all arriving at `arrival`.
void append_flow(Instance& instance, Time arrival, double total_weight, std::int64_t size,
                 NodeIndex source, NodeIndex destination);

/// Human-readable labels for the benchmark tables.
const char* to_string(PairSkew skew);
const char* to_string(WeightDist weights);

}  // namespace rdcn
