#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace rdcn {

namespace {

/// All routable ordered (source, destination) pairs with source != dest
/// (self-pairs never occur in rack-to-rack traffic).
std::vector<std::pair<NodeIndex, NodeIndex>> routable_pairs(const Topology& topology) {
  std::vector<std::pair<NodeIndex, NodeIndex>> pairs;
  for (NodeIndex s = 0; s < topology.num_sources(); ++s) {
    for (NodeIndex d = 0; d < topology.num_destinations(); ++d) {
      if (s == d && topology.num_sources() == topology.num_destinations()) continue;
      if (topology.routable(s, d)) pairs.emplace_back(s, d);
    }
  }
  if (pairs.empty()) throw std::invalid_argument("topology has no routable pairs");
  return pairs;
}

}  // namespace

PairSampler::PairSampler(const Topology& topology, const WorkloadConfig& config, Rng& rng)
    : pairs_(routable_pairs(topology)), config_(config) {
  switch (config.skew) {
      case PairSkew::Uniform:
        break;
      case PairSkew::Zipf: {
        // Rank pairs in a random order, then sample ranks Zipf-style; this
        // yields the few-hot-pairs-carry-most-traffic shape of [17], [19].
        rng.shuffle(pairs_);
        zipf_ = std::make_unique<ZipfSampler>(pairs_.size(), config.zipf_exponent);
        break;
      }
      case PairSkew::Hotspot:
        hot_pair_ = pairs_[rng.next_below(pairs_.size())];
        break;
      case PairSkew::Permutation: {
        // dst(src) = random permutation restricted to routable pairs: for
        // each source pick one fixed destination.
        for (NodeIndex s = 0; s < topology.num_sources(); ++s) {
          std::vector<NodeIndex> dests;
          for (const auto& [ps, pd] : pairs_) {
            if (ps == s) dests.push_back(pd);
          }
          if (!dests.empty()) {
            permutation_.emplace_back(s, dests[rng.next_below(dests.size())]);
          }
        }
        if (permutation_.empty()) throw std::invalid_argument("no permutation pairs");
        break;
      }
      case PairSkew::Incast: {
        // Choose the sink as a destination that the most sources can reach.
        std::vector<std::size_t> reach(
            static_cast<std::size_t>(topology.num_destinations()), 0);
        for (const auto& [ps, pd] : pairs_) ++reach[static_cast<std::size_t>(pd)];
        const auto best = std::max_element(reach.begin(), reach.end());
        sink_ = static_cast<NodeIndex>(best - reach.begin());
        for (const auto& pair : pairs_) {
          if (pair.second == sink_) incast_pairs_.push_back(pair);
        }
        break;
      }
  }
}

std::pair<NodeIndex, NodeIndex> PairSampler::sample(Rng& rng) const {
  switch (config_.skew) {
    case PairSkew::Uniform:
      return pairs_[rng.next_below(pairs_.size())];
    case PairSkew::Zipf:
      return pairs_[zipf_->sample(rng)];
    case PairSkew::Hotspot:
      if (rng.next_bool(config_.hotspot_fraction)) return hot_pair_;
      return pairs_[rng.next_below(pairs_.size())];
    case PairSkew::Permutation:
      return permutation_[rng.next_below(permutation_.size())];
    case PairSkew::Incast:
      return incast_pairs_[rng.next_below(incast_pairs_.size())];
  }
  return pairs_.front();
}

double sample_weight(const WorkloadConfig& config, Rng& rng) {
  switch (config.weights) {
    case WeightDist::Unit:
      return 1.0;
    case WeightDist::UniformInt:
      return static_cast<double>(rng.next_int(1, config.weight_max));
    case WeightDist::Pareto: {
      const double value = rng.next_pareto(1.0, config.pareto_shape);
      return std::min(std::ceil(value), 1e6);  // integral, clipped tail
    }
    case WeightDist::Bimodal:
      return rng.next_bool(config.elephant_fraction)
                 ? static_cast<double>(config.weight_max)
                 : 1.0;
  }
  return 1.0;
}

Instance generate_workload(const Topology& topology, const WorkloadConfig& config) {
  Rng rng(config.seed);
  const PairSampler sampler(topology, config, rng);

  Instance instance(topology, {});
  Time step = 1;
  std::size_t generated = 0;
  while (generated < config.num_packets) {
    double rate = config.arrival_rate;
    if (config.bursty) {
      if (rng.next_bool(config.burst_off_prob)) {
        rate = 0.0;
      } else {
        rate = config.arrival_rate / (1.0 - config.burst_off_prob);
      }
    }
    const std::uint64_t arrivals =
        rate > 0 ? rng.next_poisson(rate) : 0;
    for (std::uint64_t k = 0; k < arrivals && generated < config.num_packets; ++k) {
      const auto [source, destination] = sampler.sample(rng);
      instance.add_packet(step, sample_weight(config, rng), source, destination);
      ++generated;
    }
    ++step;
  }
  return instance;
}

void append_flow(Instance& instance, Time arrival, double total_weight, std::int64_t size,
                 NodeIndex source, NodeIndex destination) {
  if (size < 1) throw std::invalid_argument("flow size must be >= 1");
  const double unit_weight = total_weight / static_cast<double>(size);
  for (std::int64_t i = 0; i < size; ++i) {
    instance.add_packet(arrival, unit_weight, source, destination);
  }
}

const char* to_string(PairSkew skew) {
  switch (skew) {
    case PairSkew::Uniform: return "uniform";
    case PairSkew::Zipf: return "zipf";
    case PairSkew::Hotspot: return "hotspot";
    case PairSkew::Permutation: return "permutation";
    case PairSkew::Incast: return "incast";
  }
  return "?";
}

const char* to_string(WeightDist weights) {
  switch (weights) {
    case WeightDist::Unit: return "unit";
    case WeightDist::UniformInt: return "uniform-int";
    case WeightDist::Pareto: return "pareto";
    case WeightDist::Bimodal: return "bimodal";
  }
  return "?";
}

}  // namespace rdcn
