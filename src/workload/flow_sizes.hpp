#pragma once

// Empirical flow-size distributions used throughout the datacenter
// networking literature (and matching the skew/burstiness studies the
// paper cites [17]-[19]): the "web search" (DCTCP, Alizadeh et al.) and
// "data mining" (VL2/ProjecToR-style) size CDFs, quantized to unit packets
// of this model. Sizes are in packets; the tables are coarse piecewise
// approximations of the published CDFs -- what matters for the scheduler
// is the heavy tail (most flows tiny, most BYTES in a few elephants),
// which these preserve.

#include <cstdint>

#include "flow/flows.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace rdcn {

enum class FlowSizeProfile {
  WebSearch,   ///< DCTCP web-search: mice-dominated, tail to ~2k packets
  DataMining,  ///< data-mining: extreme tail, most bytes in huge flows
  UniformTiny, ///< control: 1-4 packets uniform
};

/// Samples a flow size (in unit packets) from the profile.
std::int64_t sample_flow_size(FlowSizeProfile profile, Rng& rng);

struct FlowWorkloadConfig {
  std::size_t num_flows = 100;
  double flow_arrival_rate = 1.0;  ///< Poisson flows per step
  FlowSizeProfile profile = FlowSizeProfile::WebSearch;
  /// Cap on a single flow's size (keeps simulations laptop-sized while
  /// preserving the tail shape below the cap).
  std::int64_t max_size = 256;
  /// Flow weight: proportional to size ("bytes matter") or unit.
  bool weight_by_size = true;
  std::uint64_t seed = 1;
};

/// Generates a FlowSet over the topology's routable rack pairs (uniform
/// pair choice; compose with skewed Instances via workload/generator.hpp
/// when pair skew is wanted).
FlowSet generate_flow_workload(const Topology& topology, const FlowWorkloadConfig& config);

const char* to_string(FlowSizeProfile profile);

}  // namespace rdcn
