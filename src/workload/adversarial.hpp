#pragma once

// Structured adversarial instances that stress the algorithm's guarantees
// -- the shapes lower-bound constructions in this literature use
// (Dinitz-Moseley [22] style load concentration, staggered weight
// gradients, head-of-line traps). Used by the tightness experiment to
// probe how close ALG gets to the 2(2/eps+1) analysis bound.

#include "net/instance.hpp"
#include "util/rng.hpp"

namespace rdcn {

/// Single (t, r) pair, n equal-weight packets arriving together: maximal
/// serialization; ALG is forced into the 1 + 2 + ... + n staircase.
Instance adversarial_single_edge_batch(std::size_t packets, double weight = 1.0);

/// Weight gradient through a shared transmitter: at every step a slightly
/// heavier packet arrives for a different receiver, repeatedly bumping the
/// queue -- stresses the H_p accounting.
Instance adversarial_weight_gradient(std::size_t packets);

/// Two-tier trap: packets can choose between a short contended edge and a
/// long private edge; greedy-by-delay is bad, greedy-by-queue is bad, the
/// impact rule must trade them off.
Instance adversarial_delay_trap(std::size_t waves);

/// Hotspot burst storm: alternating incast bursts into two destinations
/// sharing receivers, with a heavy elephant arriving mid-burst.
Instance adversarial_burst_storm(std::size_t bursts, Rng& rng);

}  // namespace rdcn
