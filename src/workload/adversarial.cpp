#include "workload/adversarial.hpp"

namespace rdcn {

Instance adversarial_single_edge_batch(std::size_t packets, double weight) {
  Topology g;
  g.add_sources(1);
  g.add_destinations(1);
  const NodeIndex t = g.add_transmitter(0);
  const NodeIndex r = g.add_receiver(0);
  g.add_edge(t, r, 1);
  Instance instance(std::move(g), {});
  for (std::size_t i = 0; i < packets; ++i) {
    instance.add_packet(1, weight, 0, 0);
  }
  return instance;
}

Instance adversarial_weight_gradient(std::size_t packets) {
  // One source with one transmitter, `packets` destinations with one
  // receiver each; packet i (arriving at step i+1) is heavier than all
  // previous ones, so each arrival preempts the whole backlog.
  Topology g;
  g.add_sources(1);
  const auto n = static_cast<NodeIndex>(packets);
  g.add_destinations(n);
  const NodeIndex t = g.add_transmitter(0);
  for (NodeIndex d = 0; d < n; ++d) {
    const NodeIndex r = g.add_receiver(d);
    g.add_edge(t, r, 1);
  }
  Instance instance(std::move(g), {});
  for (std::size_t i = 0; i < packets; ++i) {
    instance.add_packet(static_cast<Time>(i + 1), static_cast<double>(i + 1), 0,
                        static_cast<NodeIndex>(i));
  }
  return instance;
}

Instance adversarial_delay_trap(std::size_t waves) {
  // Each source has two candidate edges to the destination: a delay-1 edge
  // through a SHARED receiver (contended) and a delay-4 edge through a
  // private receiver. Waves of simultaneous arrivals make the shared edge
  // a trap; the impact rule must start diverting to the slow edges.
  constexpr NodeIndex kSources = 4;
  Topology g;
  g.add_sources(kSources);
  g.add_destinations(1);
  const NodeIndex shared_r = g.add_receiver(0);
  std::vector<NodeIndex> transmitters;
  for (NodeIndex s = 0; s < kSources; ++s) {
    const NodeIndex t = g.add_transmitter(s);
    transmitters.push_back(t);
    g.add_edge(t, shared_r, 1);
    const NodeIndex private_r = g.add_receiver(0);
    g.add_edge(t, private_r, 4);
  }
  Instance instance(std::move(g), {});
  for (std::size_t wave = 0; wave < waves; ++wave) {
    for (NodeIndex s = 0; s < kSources; ++s) {
      instance.add_packet(static_cast<Time>(wave + 1), 2.0, s, 0);
    }
  }
  return instance;
}

Instance adversarial_burst_storm(std::size_t bursts, Rng& rng) {
  constexpr NodeIndex kRacks = 6;
  Topology g;
  g.add_sources(kRacks);
  g.add_destinations(2);
  std::vector<NodeIndex> transmitters;
  for (NodeIndex s = 0; s < kRacks; ++s) transmitters.push_back(g.add_transmitter(s));
  const NodeIndex r0 = g.add_receiver(0);
  const NodeIndex r1 = g.add_receiver(1);
  for (NodeIndex t : transmitters) {
    g.add_edge(t, r0, 1);
    g.add_edge(t, r1, 2);
  }
  Instance instance(std::move(g), {});
  Time now = 1;
  for (std::size_t burst = 0; burst < bursts; ++burst) {
    const NodeIndex target = (burst % 2 == 0) ? 0 : 1;
    for (NodeIndex s = 0; s < kRacks; ++s) {
      instance.add_packet(now, 1.0 + static_cast<double>(rng.next_below(3)), s, target);
    }
    if (burst % 3 == 1) {
      // Elephant in the middle of the storm.
      instance.add_packet(now, 12.0, static_cast<NodeIndex>(rng.next_below(kRacks)),
                          target);
    }
    now += 1 + static_cast<Time>(rng.next_below(2));
  }
  return instance;
}

}  // namespace rdcn
