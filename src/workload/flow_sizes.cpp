#include "workload/flow_sizes.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace rdcn {

namespace {

struct CdfPoint {
  double probability;  ///< P(size <= this bucket)
  std::int64_t size;   ///< bucket size in packets
};

// Coarse piecewise CDFs (packets of ~1 KB). Web search: ~50% of flows
// under 10 packets but a visible tail; data mining: ~80% tiny, the rest
// enormous (most bytes live in the top few percent).
constexpr CdfPoint kWebSearch[] = {
    {0.15, 1}, {0.30, 2}, {0.50, 6}, {0.65, 15}, {0.80, 40},
    {0.90, 120}, {0.96, 400}, {0.99, 1000}, {1.00, 2000},
};
constexpr CdfPoint kDataMining[] = {
    {0.50, 1}, {0.70, 2}, {0.80, 4}, {0.88, 20}, {0.93, 150},
    {0.97, 1000}, {0.99, 5000}, {1.00, 20000},
};

std::int64_t sample_from_cdf(const CdfPoint* table, std::size_t count, Rng& rng) {
  const double u = rng.next_double();
  double previous_p = 0.0;
  std::int64_t previous_size = 1;
  for (std::size_t i = 0; i < count; ++i) {
    if (u <= table[i].probability) {
      // Interpolate within the bucket (log-ish via linear on sizes).
      const double span = table[i].probability - previous_p;
      const double frac = span > 0 ? (u - previous_p) / span : 1.0;
      const auto size = static_cast<std::int64_t>(
          static_cast<double>(previous_size) +
          frac * static_cast<double>(table[i].size - previous_size));
      return std::max<std::int64_t>(1, size);
    }
    previous_p = table[i].probability;
    previous_size = table[i].size;
  }
  return table[count - 1].size;
}

}  // namespace

std::int64_t sample_flow_size(FlowSizeProfile profile, Rng& rng) {
  switch (profile) {
    case FlowSizeProfile::WebSearch:
      return sample_from_cdf(kWebSearch, std::size(kWebSearch), rng);
    case FlowSizeProfile::DataMining:
      return sample_from_cdf(kDataMining, std::size(kDataMining), rng);
    case FlowSizeProfile::UniformTiny:
      return rng.next_int(1, 4);
  }
  return 1;
}

FlowSet generate_flow_workload(const Topology& topology, const FlowWorkloadConfig& config) {
  if (config.max_size < 1) throw std::invalid_argument("max_size must be >= 1");
  Rng rng(config.seed);

  std::vector<std::pair<NodeIndex, NodeIndex>> pairs;
  for (NodeIndex s = 0; s < topology.num_sources(); ++s) {
    for (NodeIndex d = 0; d < topology.num_destinations(); ++d) {
      if (s == d && topology.num_sources() == topology.num_destinations()) continue;
      if (topology.routable(s, d)) pairs.emplace_back(s, d);
    }
  }
  if (pairs.empty()) throw std::invalid_argument("topology has no routable pairs");

  FlowSet flows(topology);
  Time step = 1;
  std::size_t generated = 0;
  while (generated < config.num_flows) {
    const std::uint64_t arrivals = rng.next_poisson(config.flow_arrival_rate);
    for (std::uint64_t k = 0; k < arrivals && generated < config.num_flows; ++k) {
      const auto [source, destination] = pairs[rng.next_below(pairs.size())];
      const std::int64_t size =
          std::min(config.max_size, sample_flow_size(config.profile, rng));
      const double weight =
          config.weight_by_size ? static_cast<double>(size) : 1.0;
      flows.add_flow(step, weight, size, source, destination);
      ++generated;
    }
    ++step;
  }
  return flows;
}

const char* to_string(FlowSizeProfile profile) {
  switch (profile) {
    case FlowSizeProfile::WebSearch: return "web-search";
    case FlowSizeProfile::DataMining: return "data-mining";
    case FlowSizeProfile::UniformTiny: return "uniform-tiny";
  }
  return "?";
}

}  // namespace rdcn
