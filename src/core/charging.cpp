#include "core/charging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace rdcn {

namespace {

/// time -> (packet -> StepPacketRecord) lookup over the recorded trace.
class TraceIndex {
 public:
  explicit TraceIndex(const RunResult& result) {
    for (const StepRecord& step : result.trace) {
      auto& by_packet = steps_[step.time];
      for (const StepPacketRecord& rec : step.packets) by_packet.emplace(rec.packet, rec);
    }
  }

  const StepPacketRecord& at(Time time, PacketIndex packet) const {
    const auto step_it = steps_.find(time);
    if (step_it == steps_.end()) {
      throw std::logic_error("charging audit: no trace record for step " +
                             std::to_string(time));
    }
    const auto rec_it = step_it->second.find(packet);
    if (rec_it == step_it->second.end()) {
      throw std::logic_error("charging audit: packet missing from step record");
    }
    return rec_it->second;
  }

 private:
  std::unordered_map<Time, std::unordered_map<PacketIndex, StepPacketRecord>> steps_;
};

std::int64_t integer_weight(const Packet& packet) {
  const double rounded = std::floor(packet.weight);
  if (rounded != packet.weight || std::abs(packet.weight) > 1e15) {
    throw std::invalid_argument("exact audit requires integer packet weights");
  }
  return static_cast<std::int64_t>(rounded);
}

/// Shared charging walk; Number is double or Rational.
template <typename Number, typename MakeChunkWeight>
void distribute_charges(const Instance& instance, const RunResult& result,
                        const TraceIndex& trace, MakeChunkWeight make_chunk_weight,
                        std::vector<Number>& charge) {
  const Topology& topology = instance.topology();
  charge.assign(instance.num_packets(), Number(0));

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];

    if (outcome.route.use_fixed) {
      const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
      charge[i] += make_chunk_weight(packet, 1) * Number(static_cast<std::int64_t>(*direct));
      continue;
    }

    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const Number chunk_weight = make_chunk_weight(packet, edge.delay);

    for (Time transmit : outcome.chunk_transmit_steps) {
      // In-flight rounds [transmit, completion): charged to the packet.
      charge[i] += chunk_weight * Number(static_cast<std::int64_t>(1 + tail));
      // Waiting rounds [a_p, transmit): someone blocked the chunk.
      for (Time tau = packet.arrival; tau < transmit; ++tau) {
        const StepPacketRecord& rec = trace.at(tau, packet.id);
        if (rec.transmitted) {
          charge[i] += chunk_weight;  // blocked by the packet's own chunk
          continue;
        }
        const PacketIndex blocker = rec.blocker;
        if (blocker < 0) {
          throw std::logic_error("charging audit: blocked chunk without blocker");
        }
        const Packet& blocker_packet =
            instance.packets()[static_cast<std::size_t>(blocker)];
        if (arrived_before(blocker_packet, packet)) {
          charge[i] += chunk_weight;  // blocker was first: c' in H_p, p pays
        } else {
          charge[static_cast<std::size_t>(blocker)] += chunk_weight;  // c in L_q, q pays
        }
      }
    }
  }
}

}  // namespace

ChargingAudit audit_charging(const Instance& instance, const RunResult& result) {
  if (result.trace.empty() && !instance.packets().empty()) {
    throw std::invalid_argument("charging audit needs a run with record_trace=true");
  }
  const TraceIndex trace(result);
  ChargingAudit audit;
  distribute_charges<double>(
      instance, result, trace,
      [](const Packet& packet, Delay delay) {
        return packet.weight / static_cast<double>(delay);
      },
      audit.charge);

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    audit.total_charge += audit.charge[i];
    audit.max_overcharge =
        std::max(audit.max_overcharge, audit.charge[i] - result.outcomes[i].route.alpha);
  }
  audit.cover_gap = std::abs(audit.total_charge - result.total_cost);
  return audit;
}

std::vector<Rational> exact_alphas(const Instance& instance, const RunResult& result) {
  const Topology& topology = instance.topology();
  const auto& packets = instance.packets();
  std::vector<Rational> alphas(instance.num_packets(), Rational(0));

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = packets[i];
    const PacketOutcome& outcome = result.outcomes[i];
    const std::int64_t weight = integer_weight(packet);

    if (outcome.route.use_fixed) {
      const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
      alphas[i] = Rational(weight) * Rational(static_cast<std::int64_t>(*direct));
      continue;
    }

    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Rational own_chunk_weight(weight, static_cast<std::int64_t>(edge.delay));
    const Rational base =
        Rational(weight) *
        (Rational(static_cast<std::int64_t>(topology.transmitter_attach_delay(edge.transmitter))) +
         Rational(static_cast<std::int64_t>(edge.delay) + 1, 2) +
         Rational(static_cast<std::int64_t>(topology.receiver_attach_delay(edge.receiver))));

    // Reconstruct the dispatch-time pending state: packets earlier in the
    // input sequence, routed via an adjacent edge, with the chunks they
    // had not yet transmitted strictly before step a_p (the dispatcher
    // runs before the step's scheduling round).
    std::int64_t h_count = 0;
    Rational l_weight(0);
    for (std::size_t j = 0; j < i; ++j) {
      const PacketOutcome& other = result.outcomes[j];
      if (other.route.use_fixed) continue;
      const ReconfigEdge& other_edge = topology.edge(other.route.edge);
      if (other_edge.transmitter != edge.transmitter && other_edge.receiver != edge.receiver) {
        continue;
      }
      std::int64_t remaining = other_edge.delay;
      for (Time transmit : other.chunk_transmit_steps) {
        if (transmit < packet.arrival) --remaining;
      }
      if (remaining <= 0) continue;
      const Rational other_chunk_weight(integer_weight(packets[j]),
                                        static_cast<std::int64_t>(other_edge.delay));
      if (other_chunk_weight >= own_chunk_weight) {
        h_count += remaining;
      } else {
        l_weight += other_chunk_weight * Rational(remaining);
      }
    }
    alphas[i] = base + Rational(weight) * Rational(h_count) +
                Rational(static_cast<std::int64_t>(edge.delay)) * l_weight;
  }
  return alphas;
}

ExactChargingAudit audit_charging_exact(const Instance& instance, const RunResult& result) {
  if (!instance.has_integer_weights()) {
    throw std::invalid_argument("exact audit requires integer weights");
  }
  if (result.trace.empty() && !instance.packets().empty()) {
    throw std::invalid_argument("charging audit needs a run with record_trace=true");
  }
  const TraceIndex trace(result);
  const Topology& topology = instance.topology();

  ExactChargingAudit audit;
  distribute_charges<Rational>(
      instance, result, trace,
      [](const Packet& packet, Delay delay) {
        return Rational(integer_weight(packet), static_cast<std::int64_t>(delay));
      },
      audit.charge);
  audit.alpha = exact_alphas(instance, result);

  // Recompute ALG's cost exactly from the outcomes.
  audit.total_cost = Rational(0);
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.route.use_fixed) {
      const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
      audit.total_cost += Rational(integer_weight(packet)) *
                          Rational(static_cast<std::int64_t>(*direct));
      continue;
    }
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const Rational chunk_weight(integer_weight(packet), static_cast<std::int64_t>(edge.delay));
    for (Time transmit : outcome.chunk_transmit_steps) {
      const Time completion = transmit + 1 + tail;
      audit.total_cost +=
          chunk_weight * Rational(static_cast<std::int64_t>(completion - packet.arrival));
    }
  }

  Rational total_charge(0);
  audit.within_alpha = true;
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    total_charge += audit.charge[i];
    if (audit.charge[i] > audit.alpha[i]) audit.within_alpha = false;
  }
  audit.charges_cover_cost = (total_charge == audit.total_cost);
  return audit;
}

}  // namespace rdcn
