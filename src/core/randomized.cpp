#include "core/randomized.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rdcn {

void PerturbedStableScheduler::select(const Engine& engine, Time /*now*/,
                                      const std::vector<Candidate>& candidates,
                                      Selection& out) {
  // Log-normal multiplicative noise keeps weights positive and preserves
  // large weight gaps while shuffling near-ties.
  noisy_.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double u1 = rng_.next_double();
    const double u2 = rng_.next_double();
    const double normal =
        std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
    noisy_[i] = candidates[i].chunk_weight * std::exp(sigma_ * normal);
  }
  order_.resize(candidates.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    if (noisy_[a] != noisy_[b]) return noisy_[a] > noisy_[b];
    if (candidates[a].arrival != candidates[b].arrival) {
      return candidates[a].arrival < candidates[b].arrival;
    }
    return candidates[a].packet < candidates[b].packet;
  });
  scratch_.select_in_order(engine, candidates, order_, out);
}

void RandomSerialDictatorScheduler::select(const Engine& engine, Time /*now*/,
                                           const std::vector<Candidate>& candidates,
                                           Selection& out) {
  order_.resize(candidates.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
  scratch_.select_in_order(engine, candidates, order_, out);
}

}  // namespace rdcn
