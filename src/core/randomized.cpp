#include "core/randomized.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "match/stable.hpp"

namespace rdcn {

namespace {

std::vector<std::size_t> greedy_over_order(const Engine& engine,
                                           const std::vector<Candidate>& candidates,
                                           const std::vector<std::size_t>& order) {
  std::vector<MatchRequest> requests;
  requests.reserve(order.size());
  for (std::size_t idx : order) {
    requests.push_back(MatchRequest{candidates[idx].transmitter, candidates[idx].receiver});
  }
  const auto accepted = greedy_stable_matching(
      requests, static_cast<std::size_t>(engine.topology().num_transmitters()),
      static_cast<std::size_t>(engine.topology().num_receivers()));
  std::vector<std::size_t> selected;
  selected.reserve(accepted.size());
  for (std::size_t sorted_index : accepted) selected.push_back(order[sorted_index]);
  return selected;
}

}  // namespace

std::vector<std::size_t> PerturbedStableScheduler::select(
    const Engine& engine, Time /*now*/, const std::vector<Candidate>& candidates) {
  // Log-normal multiplicative noise keeps weights positive and preserves
  // large weight gaps while shuffling near-ties.
  std::vector<double> noisy(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double u1 = rng_.next_double();
    const double u2 = rng_.next_double();
    const double normal =
        std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
    noisy[i] = candidates[i].chunk_weight * std::exp(sigma_ * normal);
  }
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (noisy[a] != noisy[b]) return noisy[a] > noisy[b];
    if (candidates[a].arrival != candidates[b].arrival) {
      return candidates[a].arrival < candidates[b].arrival;
    }
    return candidates[a].packet < candidates[b].packet;
  });
  return greedy_over_order(engine, candidates, order);
}

std::vector<std::size_t> RandomSerialDictatorScheduler::select(
    const Engine& engine, Time /*now*/, const std::vector<Candidate>& candidates) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);
  return greedy_over_order(engine, candidates, order);
}

}  // namespace rdcn
