#pragma once

// Exact-rational form of the Section IV-B dual witness: with integer
// packet weights, alpha_p (recomputed from the run), the beta ledgers
// (= twice the reconfigurable cost) and the dual objective
//   D(eps) = sum alpha - 1/(2+eps) * (sum beta_t + sum beta_r)
// are all exact rationals. Together with lp/exact_paper_lp.hpp this makes
// the whole Theorem-1 certificate chain float-free:
//   ALG = sum charges <= sum alpha,  D/2 <= LP-OPT(eps) <= OPT(eps).

#include "lp/exact_paper_lp.hpp"
#include "net/instance.hpp"
#include "sim/engine.hpp"
#include "util/rational.hpp"

namespace rdcn {

struct ExactCertificate {
  Rational alg_cost;        ///< ALG's total weighted fractional latency
  Rational sum_alpha;       ///< sum of exact alpha_p
  Rational reconfig_cost;   ///< = sum_t,tau beta = sum_r,tau beta (Lemma 1)
  Rational dual_objective;  ///< D(eps)
  Rational lower_bound;     ///< D(eps)/2, a certified bound on OPT(1/(2+eps))

  /// Lemma 3 (exact): ALG * eps/(2+eps) <= D.
  bool lemma3_holds(ExactEps eps) const;
};

/// Builds the exact certificate from an ALG run (ImpactDispatcher alphas
/// are recomputed exactly; requires integer weights).
ExactCertificate build_exact_certificate(const Instance& instance, const RunResult& result,
                                         ExactEps eps);

}  // namespace rdcn
