#include "core/impact.hpp"

namespace rdcn {

namespace {

/// The deterministic parts of Delta_p(e) shared by both formulations. The
/// engine precomputes d(u) + (d(e) + 1)/2 + d(v) per edge with the same
/// association this function used to spell out, so base is bit-identical.
ImpactBreakdown base_terms(const Engine& engine, const Packet& packet, EdgeIndex e,
                           double& d, double& own_chunk_weight) {
  const Engine::EdgeMeta& meta = engine.edge_meta(e);
  d = meta.delay;
  own_chunk_weight = packet.weight / d;
  ImpactBreakdown breakdown;
  breakdown.base = packet.weight * meta.base_coeff;
  return breakdown;
}

}  // namespace

ImpactBreakdown impact_of(const Engine& engine, const Packet& packet, EdgeIndex e) {
  double d = 0.0;
  double own_chunk_weight = 0.0;
  ImpactBreakdown breakdown = base_terms(engine, packet, e, d, own_chunk_weight);

  // All pending packets arrived (in sequence order) before `packet`,
  // because the dispatcher runs at arrival time before enqueueing it; so
  // every pending chunk is in B_p and ties in weight go to H. The index's
  // strictly-below query at threshold w_p/d(e) realizes exactly that >=
  // convention: the at-or-above complement is H.
  const ImpactSplit split = engine.impact_split(e, own_chunk_weight);
  breakdown.h_count = split.heavier;
  breakdown.l_weight = split.lighter_weight;

  breakdown.delta = breakdown.base + packet.weight * static_cast<double>(breakdown.h_count) +
                    d * breakdown.l_weight;
  return breakdown;
}

ImpactBreakdown impact_of_scan(const Engine& engine, const Packet& packet, EdgeIndex e) {
  const Topology& topology = engine.topology();
  const ReconfigEdge& edge = topology.edge(e);
  double d = 0.0;
  double own_chunk_weight = 0.0;
  ImpactBreakdown breakdown = base_terms(engine, packet, e, d, own_chunk_weight);

  auto account = [&](PacketIndex q) {
    const double q_chunk_weight = engine.chunk_weight(q);
    const std::int64_t q_remaining = engine.remaining_chunks(q);
    if (q_chunk_weight >= own_chunk_weight) {
      breakdown.h_count += q_remaining;
    } else {
      breakdown.l_weight += static_cast<double>(q_remaining) * q_chunk_weight;
    }
  };

  for (PacketIndex q : engine.pending_on_transmitter(edge.transmitter)) account(q);
  for (PacketIndex q : engine.pending_on_receiver(edge.receiver)) {
    // Skip packets already counted through the transmitter side (their
    // assigned edge shares both endpoints with e, e.g. a parallel edge).
    if (engine.assigned_transmitter(q) == edge.transmitter) continue;
    account(q);
  }

  breakdown.delta = breakdown.base + packet.weight * static_cast<double>(breakdown.h_count) +
                    d * breakdown.l_weight;
  return breakdown;
}

}  // namespace rdcn
