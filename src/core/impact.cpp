#include "core/impact.hpp"

namespace rdcn {

ImpactBreakdown impact_of(const Engine& engine, const Packet& packet, EdgeIndex e) {
  const Topology& topology = engine.topology();
  const ReconfigEdge& edge = topology.edge(e);
  const double d = static_cast<double>(edge.delay);
  const double du = static_cast<double>(topology.transmitter_attach_delay(edge.transmitter));
  const double dv = static_cast<double>(topology.receiver_attach_delay(edge.receiver));
  const double own_chunk_weight = packet.weight / d;

  ImpactBreakdown breakdown;
  breakdown.base = packet.weight * (du + (d + 1.0) / 2.0 + dv);

  auto account = [&](PacketIndex q) {
    // All pending packets arrived (in sequence order) before `packet`,
    // because the dispatcher runs at arrival time before enqueueing it;
    // so every pending chunk is in B_p. Ties in weight therefore go to H.
    const double q_chunk_weight = engine.chunk_weight(q);
    const std::int64_t q_remaining = engine.remaining_chunks(q);
    if (q_chunk_weight >= own_chunk_weight) {
      breakdown.h_count += q_remaining;
    } else {
      breakdown.l_weight += static_cast<double>(q_remaining) * q_chunk_weight;
    }
  };

  for (PacketIndex q : engine.pending_on_transmitter(edge.transmitter)) account(q);
  for (PacketIndex q : engine.pending_on_receiver(edge.receiver)) {
    // Skip packets already counted through the transmitter side (their
    // assigned edge shares both endpoints with e, e.g. a parallel edge).
    if (engine.assigned_transmitter(q) == edge.transmitter) continue;
    account(q);
  }

  breakdown.delta = breakdown.base + packet.weight * static_cast<double>(breakdown.h_count) +
                    d * breakdown.l_weight;
  return breakdown;
}

}  // namespace rdcn
