#pragma once

// Randomized scheduling -- the paper's Section VI names "exploring
// randomized scheduling algorithms" as future work; this module provides
// two natural candidates built on the same stable-matching skeleton, so
// the bench harness can measure whether randomization helps in practice:
//
//   * PerturbedStableScheduler -- multiplies each chunk's priority weight
//     by exp(sigma * N(0,1)) before the greedy pass (smoothed priorities;
//     sigma = 0 degenerates to ALG's scheduler);
//   * RandomSerialDictatorScheduler -- a random packet order per step
//     (uniform serial dictatorship), the unweighted analogue.
//
// Both remain stable with respect to their own per-step priority order,
// so the engine's matching validation and all delivery invariants hold.
// Like the registry baselines, both keep their working buffers as members
// so steady-state select() calls allocate nothing.

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/greedy_select.hpp"
#include "util/rng.hpp"

namespace rdcn {

class PerturbedStableScheduler final : public SchedulePolicy {
 public:
  explicit PerturbedStableScheduler(double sigma, std::uint64_t seed = 1)
      : sigma_(sigma), rng_(seed) {}

  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

  double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
  Rng rng_;
  std::vector<double> noisy_;
  std::vector<std::size_t> order_;
  GreedySelectScratch scratch_;
};

class RandomSerialDictatorScheduler final : public SchedulePolicy {
 public:
  explicit RandomSerialDictatorScheduler(std::uint64_t seed = 1) : rng_(seed) {}

  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  Rng rng_;
  std::vector<std::size_t> order_;
  GreedySelectScratch scratch_;
};

}  // namespace rdcn
