#include "core/exact_certificate.hpp"

#include "core/charging.hpp"

namespace rdcn {

bool ExactCertificate::lemma3_holds(ExactEps eps) const {
  // ALG * eps/(2+eps) <= D  <=>  ALG * num/(2*den+num) <= D  (den > 0).
  return alg_cost * Rational(eps.num, 2 * eps.den + eps.num) <= dual_objective;
}

ExactCertificate build_exact_certificate(const Instance& instance, const RunResult& result,
                                         ExactEps eps) {
  const Topology& topology = instance.topology();
  ExactCertificate certificate;

  const std::vector<Rational> alphas = exact_alphas(instance, result);
  for (const Rational& alpha : alphas) certificate.sum_alpha += alpha;

  // Exact ALG cost split into reconfigurable and fixed shares.
  Rational fixed_cost(0);
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    const auto weight = static_cast<std::int64_t>(packet.weight);
    if (outcome.route.use_fixed) {
      const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
      fixed_cost += Rational(weight) * Rational(static_cast<std::int64_t>(*direct));
      continue;
    }
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const Rational chunk_weight(weight, static_cast<std::int64_t>(edge.delay));
    for (Time transmit : outcome.chunk_transmit_steps) {
      certificate.reconfig_cost +=
          chunk_weight *
          Rational(static_cast<std::int64_t>(transmit + 1 + tail - packet.arrival));
    }
  }
  certificate.alg_cost = certificate.reconfig_cost + fixed_cost;

  // D = sum alpha - budget * (sum beta_t + sum beta_r); by Lemma 1 each
  // beta ledger equals the reconfigurable cost exactly.
  certificate.dual_objective =
      certificate.sum_alpha - eps.budget() * (certificate.reconfig_cost +
                                              certificate.reconfig_cost);
  certificate.lower_bound = certificate.dual_objective / Rational(2);
  return certificate;
}

}  // namespace rdcn
