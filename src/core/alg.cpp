#include "core/alg.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/impact.hpp"
#include "match/capacitated.hpp"

namespace rdcn {

RouteDecision ImpactDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  const Topology& topology = engine.topology();
  const std::vector<EdgeIndex> candidates =
      topology.candidate_edges(packet.source, packet.destination);

  double best_delta = std::numeric_limits<double>::infinity();
  EdgeIndex best_edge = kInvalidEdge;
  for (EdgeIndex e : candidates) {
    const double delta = impact_of(engine, packet, e).delta;
    if (delta < best_delta) {  // ties keep the lowest edge index
      best_delta = delta;
      best_edge = e;
    }
  }

  const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
  RouteDecision decision;
  if (best_edge == kInvalidEdge) {
    if (!direct) throw std::logic_error("packet has no route");
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  if (direct && packet.weight * static_cast<double>(*direct) <= best_delta) {
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  decision.use_fixed = false;
  decision.edge = best_edge;
  decision.alpha = best_delta;
  return decision;
}

std::vector<std::size_t> StableMatchingScheduler::select(
    const Engine& engine, Time /*now*/, const std::vector<Candidate>& candidates) {
  // The engine hands candidates in the paper's priority order (see
  // SchedulePolicy::select), so the greedy stable matching of Section
  // III-C is a single scan: accept whenever both endpoints are free.
  const auto num_t = static_cast<std::size_t>(engine.topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(engine.topology().num_receivers());

  if (engine.options().endpoint_capacity == 1) {
    transmitter_taken_.assign(num_t, 0);
    receiver_taken_.assign(num_r, 0);
    const std::size_t limit = std::min(num_t, num_r);
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      auto& t_taken = transmitter_taken_[static_cast<std::size_t>(c.transmitter)];
      auto& r_taken = receiver_taken_[static_cast<std::size_t>(c.receiver)];
      if (t_taken || r_taken) continue;
      t_taken = 1;
      r_taken = 1;
      selected.push_back(i);
      if (selected.size() == limit) break;  // every further chunk is blocked
    }
    return selected;
  }

  // b-matching extension: endpoints carry up to b edges per step; the
  // capacitated greedy consumes the candidates in the given (priority)
  // order, so accepted indices are candidate indices directly.
  std::vector<CapacitatedRequest> requests;
  requests.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    requests.push_back(
        CapacitatedRequest{c.transmitter, c.receiver, static_cast<std::int64_t>(c.edge)});
  }
  return greedy_stable_bmatching(requests, num_t, num_r, engine.options().endpoint_capacity);
}

RunResult run_alg(const Instance& instance, EngineOptions options) {
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  return simulate(instance, dispatcher, scheduler, options);
}

}  // namespace rdcn
