#include "core/alg.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/chunk_order.hpp"
#include "core/impact.hpp"
#include "match/capacitated.hpp"
#include "match/stable.hpp"

namespace rdcn {

RouteDecision ImpactDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  const Topology& topology = engine.topology();
  const std::vector<EdgeIndex> candidates =
      topology.candidate_edges(packet.source, packet.destination);

  double best_delta = std::numeric_limits<double>::infinity();
  EdgeIndex best_edge = kInvalidEdge;
  for (EdgeIndex e : candidates) {
    const double delta = impact_of(engine, packet, e).delta;
    if (delta < best_delta) {  // ties keep the lowest edge index
      best_delta = delta;
      best_edge = e;
    }
  }

  const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
  RouteDecision decision;
  if (best_edge == kInvalidEdge) {
    if (!direct) throw std::logic_error("packet has no route");
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  if (direct && packet.weight * static_cast<double>(*direct) <= best_delta) {
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  decision.use_fixed = false;
  decision.edge = best_edge;
  decision.alpha = best_delta;
  return decision;
}

std::vector<std::size_t> StableMatchingScheduler::select(
    const Engine& engine, Time /*now*/, const std::vector<Candidate>& candidates) {
  // Sort candidate indices by the paper's priority order, then accept
  // greedily whenever both endpoints are still free (Section III-C).
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&candidates](std::size_t a, std::size_t b) {
    return chunk_higher_priority(candidates[a], candidates[b]);
  });

  const auto num_t = static_cast<std::size_t>(engine.topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(engine.topology().num_receivers());
  std::vector<std::size_t> accepted;
  if (engine.options().endpoint_capacity == 1) {
    std::vector<MatchRequest> requests;
    requests.reserve(order.size());
    for (std::size_t idx : order) {
      requests.push_back(MatchRequest{candidates[idx].transmitter, candidates[idx].receiver});
    }
    accepted = greedy_stable_matching(requests, num_t, num_r);
  } else {
    // b-matching extension: endpoints carry up to b edges per step.
    std::vector<CapacitatedRequest> requests;
    requests.reserve(order.size());
    for (std::size_t idx : order) {
      requests.push_back(CapacitatedRequest{candidates[idx].transmitter,
                                            candidates[idx].receiver,
                                            static_cast<std::int64_t>(candidates[idx].edge)});
    }
    accepted = greedy_stable_bmatching(requests, num_t, num_r,
                                       engine.options().endpoint_capacity);
  }

  std::vector<std::size_t> selected;
  selected.reserve(accepted.size());
  for (std::size_t sorted_index : accepted) selected.push_back(order[sorted_index]);
  return selected;
}

RunResult run_alg(const Instance& instance, EngineOptions options) {
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  return simulate(instance, dispatcher, scheduler, options);
}

}  // namespace rdcn
