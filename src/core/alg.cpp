#include "core/alg.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/impact.hpp"

namespace rdcn {

RouteDecision ImpactDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  const Topology& topology = engine.topology();
  engine.viable_edges_into(packet.source, packet.destination, edges_);

  double best_delta = std::numeric_limits<double>::infinity();
  EdgeIndex best_edge = kInvalidEdge;
  for (EdgeIndex e : edges_) {
    const double delta = impact_of(engine, packet, e).delta;
    if (delta < best_delta) {  // ties keep the lowest edge index
      best_delta = delta;
      best_edge = e;
    }
  }

  const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
  RouteDecision decision;
  if (best_edge == kInvalidEdge) {
    if (!direct) throw std::logic_error("packet has no route");
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  if (direct && packet.weight * static_cast<double>(*direct) <= best_delta) {
    decision.use_fixed = true;
    decision.alpha = packet.weight * static_cast<double>(*direct);
    return decision;
  }
  decision.use_fixed = false;
  decision.edge = best_edge;
  decision.alpha = best_delta;
  return decision;
}

void StableMatchingScheduler::select(const Engine& engine, Time /*now*/,
                                     const std::vector<Candidate>& candidates,
                                     Selection& out) {
  // The engine hands candidates in the paper's priority order (see
  // SchedulePolicy::select), so the greedy stable matching of Section
  // III-C is a single scan: accept whenever both endpoints are free.
  const auto num_t = static_cast<std::size_t>(engine.topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(engine.topology().num_receivers());

  if (engine.options().endpoint_capacity == 1) {
    transmitter_taken_.resize(num_t, 0);
    receiver_taken_.resize(num_r, 0);
    ++serial_;
    const std::size_t limit = std::min(num_t, num_r);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      auto& t_taken = transmitter_taken_[static_cast<std::size_t>(c.transmitter)];
      auto& r_taken = receiver_taken_[static_cast<std::size_t>(c.receiver)];
      if (t_taken == serial_ || r_taken == serial_) continue;
      t_taken = serial_;
      r_taken = serial_;
      out.push(i);
      if (out.size() == limit) break;  // every further chunk is blocked
    }
    return;
  }

  // b-matching extension: endpoints carry up to b edges per step, each
  // physical edge at most one chunk. Same greedy accept order as
  // match/capacitated's greedy_stable_bmatching, run in place on stamped
  // load counters so this path is allocation-free at steady state too.
  const std::int32_t capacity = engine.options().endpoint_capacity;
  t_load_stamp_.resize(num_t, 0);
  r_load_stamp_.resize(num_r, 0);
  edge_used_stamp_.resize(static_cast<std::size_t>(engine.topology().num_edges()), 0);
  t_load_.resize(num_t, 0);
  r_load_.resize(num_r, 0);
  ++serial_;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const auto t = static_cast<std::size_t>(c.transmitter);
    const auto r = static_cast<std::size_t>(c.receiver);
    const auto e = static_cast<std::size_t>(c.edge);
    if (t_load_stamp_[t] != serial_) {
      t_load_stamp_[t] = serial_;
      t_load_[t] = 0;
    }
    if (r_load_stamp_[r] != serial_) {
      r_load_stamp_[r] = serial_;
      r_load_[r] = 0;
    }
    if (t_load_[t] >= capacity || r_load_[r] >= capacity) continue;
    if (edge_used_stamp_[e] == serial_) continue;
    ++t_load_[t];
    ++r_load_[r];
    edge_used_stamp_[e] = serial_;
    out.push(i);
  }
}

RunResult run_alg(const Instance& instance, EngineOptions options) {
  ImpactDispatcher dispatcher;
  StableMatchingScheduler scheduler;
  return simulate(instance, dispatcher, scheduler, options);
}

}  // namespace rdcn
