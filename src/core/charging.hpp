#pragma once

// The cost-charging scheme of Section IV-C ("ALG-to-alpha's charging
// scheme"), implemented as an auditor over a traced ALG run:
//
//  * a packet on the fixed network is charged its own latency w_p dl(p);
//  * a chunk's in-flight rounds and rounds blocked by the packet's own
//    chunks are charged to its packet (these sum to the base term of
//    Delta);
//  * a round where chunk c of p is blocked by chunk c' of q != p charges
//    w_c to whichever of p, q arrived LATER (the blocked packet pays if
//    the blocker was there first -- c' in H_p; the blocker pays if it
//    barged in later -- c in L_q).
//
// Lemma 2 states charge(p) <= alpha_p; summing, ALG <= sum alpha. The
// auditor verifies both, exactly (in rational arithmetic) when the
// instance has integer weights.

#include <vector>

#include "net/instance.hpp"
#include "sim/engine.hpp"
#include "util/rational.hpp"

namespace rdcn {

struct ChargingAudit {
  std::vector<double> charge;  ///< c_p per packet
  double total_charge = 0.0;
  /// max_p (c_p - alpha_p); Lemma 2 says <= 0 (up to float noise)
  double max_overcharge = 0.0;
  /// |sum_p c_p - ALG total cost|; the scheme partitions the cost exactly
  double cover_gap = 0.0;
};

/// Floating-point audit; requires a run with record_trace = true and
/// speedup_rounds == 1 under ALG's policies.
ChargingAudit audit_charging(const Instance& instance, const RunResult& result);

struct ExactChargingAudit {
  std::vector<Rational> charge;
  std::vector<Rational> alpha;  ///< alpha_p recomputed in exact arithmetic
  Rational total_cost;          ///< ALG cost recomputed exactly
  bool charges_cover_cost = false;  ///< sum charge == total cost, exactly
  bool within_alpha = false;        ///< charge[p] <= alpha[p] for all p, exactly
};

/// Exact audit; requires Instance::has_integer_weights().
ExactChargingAudit audit_charging_exact(const Instance& instance, const RunResult& result);

/// Recomputes alpha_p for every packet exactly from the run's outcomes
/// (reconstructing each dispatch-time pending state); the engine's double
/// alphas must agree with these up to rounding.
std::vector<Rational> exact_alphas(const Instance& instance, const RunResult& result);

}  // namespace rdcn
