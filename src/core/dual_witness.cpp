#include "core/dual_witness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rdcn {

double DualWitness::objective(double eps) const {
  return sum_alpha - (sum_beta_t + sum_beta_r) / (2.0 + eps);
}

DualWitness build_dual_witness(const Instance& instance, const RunResult& result) {
  if (result.outcomes.size() != instance.num_packets()) {
    throw std::invalid_argument("result does not match instance");
  }
  const Topology& topology = instance.topology();

  DualWitness witness;
  witness.horizon = result.makespan;
  witness.alpha.resize(instance.num_packets());
  witness.beta_t.assign(static_cast<std::size_t>(topology.num_transmitters()),
                        std::vector<double>(static_cast<std::size_t>(witness.horizon), 0.0));
  witness.beta_r.assign(static_cast<std::size_t>(topology.num_receivers()),
                        std::vector<double>(static_cast<std::size_t>(witness.horizon), 0.0));

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    witness.alpha[i] = outcome.route.alpha;
    witness.sum_alpha += outcome.route.alpha;
    if (outcome.route.use_fixed) continue;

    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const double chunk_weight = packet.weight / static_cast<double>(edge.delay);
    for (Time transmit : outcome.chunk_transmit_steps) {
      const Time completion = transmit + 1 + tail;
      // Chunk active over [a_p, completion): counted in both endpoints'
      // beta for every step of that window (this is Lemma 1's ledger).
      for (Time tau = packet.arrival; tau < completion; ++tau) {
        witness.beta_t[static_cast<std::size_t>(edge.transmitter)]
                      [static_cast<std::size_t>(tau)] += chunk_weight;
        witness.beta_r[static_cast<std::size_t>(edge.receiver)]
                      [static_cast<std::size_t>(tau)] += chunk_weight;
        witness.sum_beta_t += chunk_weight;
        witness.sum_beta_r += chunk_weight;
      }
    }
  }
  return witness;
}

DualFeasibilityReport check_dual_feasibility(const Instance& instance,
                                             const DualWitness& witness,
                                             double tolerance) {
  const Topology& topology = instance.topology();
  DualFeasibilityReport report;

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const double alpha = witness.alpha[i];

    // Constraint family 1: for all e = (t, r) in E_p and tau >= a_p:
    //   alpha_p - d(e) (beta_{t,tau} + beta_{r,tau}) <= w_p (tau + d^(e) - a_p).
    // Beyond the horizon both betas vanish and the RHS grows, so checking
    // tau in [a_p, horizon] is exhaustive.
    for (EdgeIndex e : topology.candidate_edges(packet.source, packet.destination)) {
      const ReconfigEdge& edge = topology.edge(e);
      const double d = static_cast<double>(edge.delay);
      const double total_delay = static_cast<double>(topology.total_edge_delay(e));
      for (Time tau = packet.arrival; tau <= witness.horizon; ++tau) {
        double beta_sum = 0.0;
        if (tau < witness.horizon) {
          beta_sum = witness.beta_t[static_cast<std::size_t>(edge.transmitter)]
                                   [static_cast<std::size_t>(tau)] +
                     witness.beta_r[static_cast<std::size_t>(edge.receiver)]
                                   [static_cast<std::size_t>(tau)];
        }
        const double lhs = alpha - d * beta_sum;
        const double rhs =
            packet.weight * (static_cast<double>(tau - packet.arrival) + total_delay);
        ++report.constraints_checked;
        if (lhs > 0.0) {
          report.max_violation_ratio = std::max(report.max_violation_ratio, lhs / rhs);
        }
        if (lhs / 2.0 > rhs + tolerance) report.halved_feasible = false;
      }
    }

    // Constraint family 2: alpha_p <= w_p dl(p) for p in Pi_l. The
    // dispatcher guarantees this unhalved, hence certainly halved.
    if (auto direct = topology.fixed_link_delay(packet.source, packet.destination)) {
      ++report.constraints_checked;
      if (alpha / 2.0 > packet.weight * static_cast<double>(*direct) + tolerance) {
        report.halved_feasible = false;
      }
    }
  }
  return report;
}

double lemma1_gap(const DualWitness& witness, const RunResult& result) {
  const double gap_tr = std::abs(witness.sum_beta_t - witness.sum_beta_r);
  const double gap_cost = std::abs(witness.sum_beta_t - result.reconfig_cost);
  return std::max(gap_tr, gap_cost);
}

}  // namespace rdcn
