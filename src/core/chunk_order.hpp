#pragma once

// chunk_higher_priority now lives in sim/policy.hpp next to Candidate: the
// engine itself keeps its pending list in this order, so the comparator is
// part of the scheduling contract rather than an ALG implementation detail.
// This forwarding header keeps existing includes working.

#include "sim/policy.hpp"
