#pragma once

// The single total order on chunks used everywhere in the paper:
// decreasing chunk weight, then increasing packet arrival, then input
// sequence position. Section III-B's requirement that "from two chunks of
// the same weight, the chunk of the earlier arriving packet is preferred"
// and Section III-C's scheduler ordering are both instances of this order;
// using one comparator keeps the dispatcher's H/L classification and the
// scheduler's blocking relation consistent (which Lemma 2 relies on).

#include "sim/policy.hpp"

namespace rdcn {

inline bool chunk_higher_priority(const Candidate& a, const Candidate& b) noexcept {
  if (a.chunk_weight != b.chunk_weight) return a.chunk_weight > b.chunk_weight;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.packet < b.packet;
}

}  // namespace rdcn
