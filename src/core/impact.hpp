#pragma once

// Worst-case impact Delta_p(e) of Section III-B: the dispatcher's estimate
// of the weighted-latency increase caused by committing packet p to edge
// e = (t, r), given the chunks already pending in the system:
//
//   Delta_p(e) = w_p * ( d(src,t) + (d(e)+1)/2 + d(r,dest) )   (base path)
//              + w_p * |H_p(e)|                                (p blocked)
//              + d(e) * w(L_p(e))                              (p blocks)
//
// where A_p(e) is the set of pending chunks of earlier-arrived packets
// assigned to edges sharing t or r with e; H_p(e) are those at least as
// heavy as w_p/d(e) (ties prefer the earlier packet, hence >= on weights),
// and L_p(e) the strictly lighter ones.

#include "sim/engine.hpp"

namespace rdcn {

struct ImpactBreakdown {
  double base = 0.0;      ///< w_p * (d(u) + (d(e)+1)/2 + d(v))
  std::int64_t h_count = 0;  ///< |H_p(e)|: pending chunks that may block p
  double l_weight = 0.0;  ///< w(L_p(e)): weight of chunks p may block
  double delta = 0.0;     ///< the full Delta_p(e)
};

/// Computes Delta_p(e) against the engine's current pending state (the
/// packet itself must not have been enqueued yet). Resolves |H_p(e)| and
/// w(L_p(e)) through the engine's incremental impact index in O(log n);
/// h_count is exact, l_weight carries the index's canonical summation
/// order (see sim/impact_index.hpp).
ImpactBreakdown impact_of(const Engine& engine, const Packet& packet, EdgeIndex e);

/// The pre-index formulation: a full scan over both endpoint queues.
/// O(pending) per call -- kept as the verification oracle behind check/'s
/// differential cross-validation and the property tests; not on any hot
/// path. Agrees with impact_of exactly on base/h_count and to summation-
/// reassociation tolerance on l_weight/delta.
ImpactBreakdown impact_of_scan(const Engine& engine, const Packet& packet, EdgeIndex e);

}  // namespace rdcn
