#pragma once

// The paper's online algorithm ALG (Section III):
//  * ImpactDispatcher  -- the greedy-dispatch rule of Section III-B:
//    commit each arriving packet to the route minimizing its worst-case
//    impact, i.e. argmin_e Delta_p(e), or the fixed direct link when
//    w_p * dl(p) <= min_e Delta_p(e);
//  * StableMatchingScheduler -- the scheduler of Section III-C: per step,
//    greedily build a stable matching of pending chunks, scanning them in
//    decreasing weight / increasing arrival order.
//
// run_alg() wires both into the engine; its RouteDecision::alpha values
// are exactly the dual variables alpha_p of Section IV-B.

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace rdcn {

class ImpactDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  std::vector<EdgeIndex> edges_;  ///< candidate_edges_into scratch
};

class StableMatchingScheduler final : public SchedulePolicy {
 public:
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  // Serial-stamped endpoint-taken scratch: one counter bump frees every
  // endpoint, so a round is a single candidate pass with direct topology
  // indexing -- no per-round clearing and no allocations after the arrays
  // grow to the topology size once.
  std::uint64_t serial_ = 0;
  std::vector<std::uint64_t> transmitter_taken_;
  std::vector<std::uint64_t> receiver_taken_;
  // b-matching path (endpoint_capacity > 1): stamped per-endpoint load
  // counters and a stamped per-edge used flag -- the same greedy as
  // match/capacitated's greedy_stable_bmatching, run in place.
  std::vector<std::uint64_t> t_load_stamp_, r_load_stamp_, edge_used_stamp_;
  std::vector<std::int32_t> t_load_, r_load_;
};

/// Runs ALG on the instance. Trace recording is on by default so that the
/// dual-fitting witness and charging audit can be built from the result.
RunResult run_alg(const Instance& instance, EngineOptions options = {.speedup_rounds = 1,
                                                                     .record_trace = true,
                                                                     .max_steps = 0});

}  // namespace rdcn
