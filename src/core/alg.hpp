#pragma once

// The paper's online algorithm ALG (Section III):
//  * ImpactDispatcher  -- the greedy-dispatch rule of Section III-B:
//    commit each arriving packet to the route minimizing its worst-case
//    impact, i.e. argmin_e Delta_p(e), or the fixed direct link when
//    w_p * dl(p) <= min_e Delta_p(e);
//  * StableMatchingScheduler -- the scheduler of Section III-C: per step,
//    greedily build a stable matching of pending chunks, scanning them in
//    decreasing weight / increasing arrival order.
//
// run_alg() wires both into the engine; its RouteDecision::alpha values
// are exactly the dual variables alpha_p of Section IV-B.

#include "sim/engine.hpp"

namespace rdcn {

class ImpactDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;
};

class StableMatchingScheduler final : public SchedulePolicy {
 public:
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;

 private:
  // Reused per-step scratch (endpoint-taken flags); sized on first use.
  std::vector<char> transmitter_taken_;
  std::vector<char> receiver_taken_;
};

/// Runs ALG on the instance. Trace recording is on by default so that the
/// dual-fitting witness and charging audit can be built from the result.
RunResult run_alg(const Instance& instance, EngineOptions options = {.speedup_rounds = 1,
                                                                     .record_trace = true,
                                                                     .max_steps = 0});

}  // namespace rdcn
