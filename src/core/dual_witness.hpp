#pragma once

// The dual-fitting witness of Section IV-B, built from a completed ALG run:
//   alpha_p  = the dispatcher's frozen worst-case impact (RouteDecision::alpha),
//   beta_t,tau / beta_r,tau = total weight of chunks assigned to an edge at
//   transmitter t / receiver r that are active at tau (arrived, not yet at
//   their destination).
//
// The witness supports:
//   * objective(eps) -- the dual objective of Figure 4,
//   * lower_bound(eps) = objective(eps) / 2 -- a certified lower bound on
//     OPT with transmission budget 1/(2+eps) (Lemma 5 / weak duality),
//   * check_feasibility -- machine-checks Lemma 4/5: the witness halved
//     satisfies every constraint of the dual program D.

#include <vector>

#include "net/instance.hpp"
#include "sim/engine.hpp"

namespace rdcn {

struct DualWitness {
  std::vector<double> alpha;                ///< per packet
  std::vector<std::vector<double>> beta_t;  ///< [transmitter][tau], tau < horizon
  std::vector<std::vector<double>> beta_r;  ///< [receiver][tau]
  Time horizon = 0;  ///< exclusive: beta_*[..][tau] == 0 for tau >= horizon
  double sum_alpha = 0.0;
  double sum_beta_t = 0.0;
  double sum_beta_r = 0.0;

  /// Dual objective of Figure 4 for the given eps (OPT budget 1/(2+eps)).
  double objective(double eps) const;
  /// Certified lower bound on OPT(1/(2+eps)-speed): objective of the
  /// halved (feasible, by Lemma 5) witness.
  double lower_bound(double eps) const { return objective(eps) / 2.0; }
};

/// Builds the witness from an ALG run (requires RouteDecision::alpha to be
/// populated, i.e. the run used ImpactDispatcher).
DualWitness build_dual_witness(const Instance& instance, const RunResult& result);

struct DualFeasibilityReport {
  /// max over all x_{p,e,tau} constraints of
  ///   (alpha_p - d(e) (beta_{t,tau}+beta_{r,tau})) / (w_p (tau + d^(e) - a_p));
  /// Lemma 4 asserts this is < 2.
  double max_violation_ratio = 0.0;
  /// True iff the halved witness satisfies every dual constraint
  /// (x-constraints with factor-2 slack above, and alpha_p <= w_p dl(p)).
  bool halved_feasible = true;
  std::size_t constraints_checked = 0;
};

DualFeasibilityReport check_dual_feasibility(const Instance& instance,
                                             const DualWitness& witness,
                                             double tolerance = 1e-9);

/// Lemma 1: sum_t,tau beta - sum_r,tau beta == 0 and both equal the
/// reconfigurable share of ALG's cost. Returns the max absolute gap.
double lemma1_gap(const DualWitness& witness, const RunResult& result);

}  // namespace rdcn
