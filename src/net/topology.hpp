#pragma once

// The two-tiered hybrid network model of Section II of the paper.
//
// G = (V, E, d) with V partitioned into four layers: sources S, transmitters
// T, receivers R, destinations D. Every transmitter is attached to exactly
// one source, every receiver to exactly one destination; attach edges carry
// a nonnegative delay. Transmitter-receiver edges form the reconfigurable
// layer and carry delay >= 1 (per step, the set of active reconfigurable
// edges must be a matching). Optionally, fixed direct source->destination
// links Eℓ model the hybrid part; the paper's LP places no capacity
// constraint on them, so they are uncapacitated here as well.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rdcn {

using NodeIndex = std::int32_t;
using EdgeIndex = std::int32_t;
using Delay = std::int64_t;

constexpr EdgeIndex kInvalidEdge = -1;

/// A transmitter-receiver edge of the reconfigurable layer.
struct ReconfigEdge {
  NodeIndex transmitter = 0;
  NodeIndex receiver = 0;
  Delay delay = 1;  ///< d(e) >= 1; transmitting one unit takes d(e) steps.
};

/// A fixed direct source->destination link (the hybrid layer).
struct FixedLink {
  NodeIndex source = 0;
  NodeIndex destination = 0;
  Delay delay = 1;  ///< dℓ; a packet sent here completes after dℓ steps.
};

class Topology {
 public:
  Topology() = default;

  // --- construction -------------------------------------------------------

  /// Adds `count` sources/destinations; returns the index of the first.
  NodeIndex add_sources(NodeIndex count);
  NodeIndex add_destinations(NodeIndex count);

  /// Adds a transmitter attached to `source` with attach delay d(src, t).
  NodeIndex add_transmitter(NodeIndex source, Delay attach_delay = 0);
  /// Adds a receiver attached to `destination` with attach delay d(r, dest).
  NodeIndex add_receiver(NodeIndex destination, Delay attach_delay = 0);

  /// Adds a reconfigurable edge (delay >= 1). Returns its index.
  EdgeIndex add_edge(NodeIndex transmitter, NodeIndex receiver, Delay delay = 1);

  /// Adds (or tightens) a fixed direct link between a source-destination
  /// pair. Keeping the minimum delay mirrors the model's single dℓ(p).
  void add_fixed_link(NodeIndex source, NodeIndex destination, Delay delay);

  // --- queries ------------------------------------------------------------

  NodeIndex num_sources() const noexcept { return num_sources_; }
  NodeIndex num_destinations() const noexcept { return num_destinations_; }
  NodeIndex num_transmitters() const noexcept {
    return static_cast<NodeIndex>(transmitter_source_.size());
  }
  NodeIndex num_receivers() const noexcept {
    return static_cast<NodeIndex>(receiver_destination_.size());
  }
  EdgeIndex num_edges() const noexcept { return static_cast<EdgeIndex>(edges_.size()); }

  NodeIndex source_of(NodeIndex transmitter) const { return transmitter_source_.at(transmitter); }
  NodeIndex destination_of(NodeIndex receiver) const { return receiver_destination_.at(receiver); }
  Delay transmitter_attach_delay(NodeIndex transmitter) const {
    return transmitter_attach_delay_.at(transmitter);
  }
  Delay receiver_attach_delay(NodeIndex receiver) const {
    return receiver_attach_delay_.at(receiver);
  }

  const ReconfigEdge& edge(EdgeIndex e) const { return edges_.at(static_cast<std::size_t>(e)); }
  const std::vector<ReconfigEdge>& edges() const noexcept { return edges_; }

  /// d̂(e) = d(src(t), t) + d(e) + d(r, dest(r)): total path delay of e.
  Delay total_edge_delay(EdgeIndex e) const;

  const std::vector<EdgeIndex>& edges_of_transmitter(NodeIndex t) const {
    return edges_of_transmitter_.at(t);
  }
  const std::vector<EdgeIndex>& edges_of_receiver(NodeIndex r) const {
    return edges_of_receiver_.at(r);
  }
  const std::vector<NodeIndex>& transmitters_of_source(NodeIndex s) const {
    return transmitters_of_source_.at(s);
  }
  const std::vector<NodeIndex>& receivers_of_destination(NodeIndex d) const {
    return receivers_of_destination_.at(d);
  }

  /// E_p for a (source, destination) pair: all reconfigurable edges (t, r)
  /// with src(t) = s and dest(r) = d, in increasing edge-index order.
  std::vector<EdgeIndex> candidate_edges(NodeIndex source, NodeIndex destination) const;
  /// Allocation-free variant: clears and refills `out` (dispatchers keep a
  /// member scratch so the per-packet dispatch path stays off the heap).
  void candidate_edges_into(NodeIndex source, NodeIndex destination,
                            std::vector<EdgeIndex>& out) const;

  /// dℓ for the pair, if a fixed direct link exists.
  std::optional<Delay> fixed_link_delay(NodeIndex source, NodeIndex destination) const;
  const std::vector<FixedLink>& fixed_links() const noexcept { return fixed_links_; }

  /// True if at least one route (reconfigurable or fixed) exists.
  bool routable(NodeIndex source, NodeIndex destination) const;

  /// Validates all internal invariants; returns an error message or empty.
  std::string validate() const;

 private:
  /// Builds the lazy (source, destination) -> edges CSR that backs
  /// candidate_edges_into. Buckets are filled in the same order the
  /// uncached scan visited edges (per-source transmitter order, then
  /// per-transmitter edge order), so dispatch argmin tie-breaks -- and
  /// therefore schedules -- are unchanged.
  void build_pair_cache() const;
  NodeIndex num_sources_ = 0;
  NodeIndex num_destinations_ = 0;

  std::vector<NodeIndex> transmitter_source_;
  std::vector<Delay> transmitter_attach_delay_;
  std::vector<NodeIndex> receiver_destination_;
  std::vector<Delay> receiver_attach_delay_;

  std::vector<ReconfigEdge> edges_;
  std::vector<std::vector<EdgeIndex>> edges_of_transmitter_;
  std::vector<std::vector<EdgeIndex>> edges_of_receiver_;
  std::vector<std::vector<NodeIndex>> transmitters_of_source_;
  std::vector<std::vector<NodeIndex>> receivers_of_destination_;

  std::vector<FixedLink> fixed_links_;

  // candidate_edges_into is the per-dispatch inner loop; the uncached scan
  // over every edge of the source's transmitters dominated end-to-end
  // profiles. CSR over (source, destination) pairs, built on first query
  // and invalidated by any mutation.
  mutable std::vector<EdgeIndex> pair_edges_;
  mutable std::vector<std::int32_t> pair_offsets_;  ///< num_sources*num_destinations + 1
  mutable bool pair_cache_ready_ = false;
};

}  // namespace rdcn
