#pragma once

// An Instance bundles a topology with an online packet sequence and is the
// unit every scheduler, bound, and benchmark consumes. Includes a plain-text
// serialization so workloads can be recorded and replayed bit-exactly.

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/topology.hpp"

namespace rdcn {

class Instance {
 public:
  Instance() = default;
  Instance(Topology topology, std::vector<Packet> packets);

  // Spelled out because the validation memo is atomic (not copyable);
  // copies carry the same data, so they inherit the flag.
  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  Instance(Instance&& other) noexcept;
  Instance& operator=(Instance&& other) noexcept;

  const Topology& topology() const noexcept { return topology_; }
  const std::vector<Packet>& packets() const noexcept { return packets_; }
  std::size_t num_packets() const noexcept { return packets_.size(); }

  /// Appends a packet (assigning its sequence id) and keeps arrival order.
  void add_packet(Time arrival, Weight weight, NodeIndex source, NodeIndex destination);

  /// Validates topology invariants, packet ranges, routability and that the
  /// sequence is sorted by (arrival, id). Returns an error string or empty.
  std::string validate() const;

  /// True if every packet weight is integral (enables exact Rational audits).
  bool has_integer_weights() const noexcept;

  /// Sum over packets of the best-case weighted latency (min over routes of
  /// w_p * path delay); a trivial lower bound on any schedule's cost.
  double ideal_cost() const;

  /// A safe horizon: by the argument in Section IV-A, all work finishes by
  /// max arrival + |Π| * max total edge delay under any reasonable schedule.
  Time horizon_bound() const;

  // --- serialization ------------------------------------------------------
  void save(std::ostream& out) const;
  static Instance load(std::istream& in);
  std::string to_string() const;
  static Instance from_string(const std::string& text);

 private:
  Topology topology_;
  std::vector<Packet> packets_;
  /// Memo for validate(): true once a full validation passed; reset by
  /// add_packet. Atomic because distinct engines may validate one shared
  /// const Instance from pool threads concurrently.
  mutable std::atomic<bool> validated_{false};
};

}  // namespace rdcn
