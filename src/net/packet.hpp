#pragma once

// Packets (Section II). Unit size, positive weight, integral arrival time
// (the paper shifts fractional arrivals to the next transmission slot, so
// we model arrivals as integers >= 1 directly). Multi-unit flows are
// represented by the standard reduction: a flow of size L and weight w is
// L unit packets of weight w/L (see workload::expand_flow).

#include <cstdint>

#include "net/topology.hpp"

namespace rdcn {

using PacketIndex = std::int64_t;
using Time = std::int64_t;
using Weight = double;

struct Packet {
  PacketIndex id = 0;     ///< position in the arrival sequence (tie order)
  Time arrival = 1;       ///< a_p, integral, >= 1
  Weight weight = 1.0;    ///< w_p > 0
  NodeIndex source = 0;       ///< src(p)
  NodeIndex destination = 0;  ///< dest(p)
};

/// Strict arrival order used throughout the paper's tie-breaking: packets
/// are ordered by arrival time, then by their position in the input
/// sequence ("p' arrived before p" in Section III-B).
inline bool arrived_before(const Packet& a, const Packet& b) noexcept {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

}  // namespace rdcn
