#include "net/instance.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rdcn {

Instance::Instance(Topology topology, std::vector<Packet> packets)
    : topology_(std::move(topology)), packets_(std::move(packets)) {
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    packets_[i].id = static_cast<PacketIndex>(i);
  }
}

Instance::Instance(const Instance& other)
    : topology_(other.topology_),
      packets_(other.packets_),
      validated_(other.validated_.load()) {}

Instance& Instance::operator=(const Instance& other) {
  topology_ = other.topology_;
  packets_ = other.packets_;
  validated_.store(other.validated_.load());
  return *this;
}

Instance::Instance(Instance&& other) noexcept
    : topology_(std::move(other.topology_)),
      packets_(std::move(other.packets_)),
      validated_(other.validated_.load()) {}

Instance& Instance::operator=(Instance&& other) noexcept {
  topology_ = std::move(other.topology_);
  packets_ = std::move(other.packets_);
  validated_.store(other.validated_.load());
  return *this;
}

void Instance::add_packet(Time arrival, Weight weight, NodeIndex source,
                          NodeIndex destination) {
  Packet packet;
  packet.id = static_cast<PacketIndex>(packets_.size());
  packet.arrival = arrival;
  packet.weight = weight;
  packet.source = source;
  packet.destination = destination;
  if (!packets_.empty() && packets_.back().arrival > arrival) {
    throw std::invalid_argument("packets must be appended in arrival order");
  }
  validated_ = false;
  packets_.push_back(packet);
}

std::string Instance::validate() const {
  // Every Engine validates its instance, and sweeps re-run the same
  // instance under many policies, so a clean result is memoized (the only
  // mutator, add_packet, resets the memo).
  if (validated_) return {};
  std::string topo_error = topology_.validate();
  if (!topo_error.empty()) return topo_error;
  auto fail = [](std::size_t i, const std::string& what) {
    return "packet " + std::to_string(i) + " " + what;
  };
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    const Packet& p = packets_[i];
    if (p.id != static_cast<PacketIndex>(i)) {
      return fail(i, "has wrong id " + std::to_string(p.id));
    }
    if (p.arrival < 1) return fail(i, "has arrival < 1");
    if (!(p.weight > 0)) return fail(i, "has non-positive weight");
    if (p.source < 0 || p.source >= topology_.num_sources() || p.destination < 0 ||
        p.destination >= topology_.num_destinations()) {
      return fail(i, "has out-of-range endpoints");
    }
    if (!topology_.routable(p.source, p.destination)) {
      return fail(i, "has no route from " + std::to_string(p.source) + " to " +
                         std::to_string(p.destination));
    }
    if (i > 0 && arrived_before(p, packets_[i - 1])) {
      return fail(i, "out of arrival order");
    }
  }
  validated_ = true;
  return {};
}

bool Instance::has_integer_weights() const noexcept {
  for (const Packet& p : packets_) {
    if (std::floor(p.weight) != p.weight) return false;
    if (std::abs(p.weight) > 1e15) return false;
  }
  return true;
}

double Instance::ideal_cost() const {
  double total = 0.0;
  for (const Packet& p : packets_) {
    double best = std::numeric_limits<double>::infinity();
    if (auto direct = topology_.fixed_link_delay(p.source, p.destination)) {
      best = static_cast<double>(*direct);
    }
    for (EdgeIndex e : topology_.candidate_edges(p.source, p.destination)) {
      // Even alone in the system, a packet on edge e pays the staircase
      // (d(e)+1)/2 average over its d(e) chunks plus attach delays.
      const ReconfigEdge& edge = topology_.edge(e);
      const double lat = static_cast<double>(topology_.transmitter_attach_delay(edge.transmitter)) +
                         (static_cast<double>(edge.delay) + 1.0) / 2.0 +
                         static_cast<double>(topology_.receiver_attach_delay(edge.receiver));
      best = std::min(best, lat);
    }
    total += p.weight * best;
  }
  return total;
}

Time Instance::horizon_bound() const {
  Time max_arrival = 1;
  for (const Packet& p : packets_) max_arrival = std::max(max_arrival, p.arrival);
  Delay max_delay = 1;
  for (EdgeIndex e = 0; e < topology_.num_edges(); ++e) {
    max_delay = std::max(max_delay, topology_.total_edge_delay(e));
  }
  for (const FixedLink& link : topology_.fixed_links()) {
    max_delay = std::max(max_delay, link.delay);
  }
  return max_arrival + static_cast<Time>(packets_.size()) * max_delay + 1;
}

void Instance::save(std::ostream& out) const {
  out << "rdcn-instance v1\n";
  out << "sources " << topology_.num_sources() << "\n";
  out << "destinations " << topology_.num_destinations() << "\n";
  out << "transmitters " << topology_.num_transmitters() << "\n";
  for (NodeIndex t = 0; t < topology_.num_transmitters(); ++t) {
    out << topology_.source_of(t) << " " << topology_.transmitter_attach_delay(t) << "\n";
  }
  out << "receivers " << topology_.num_receivers() << "\n";
  for (NodeIndex r = 0; r < topology_.num_receivers(); ++r) {
    out << topology_.destination_of(r) << " " << topology_.receiver_attach_delay(r) << "\n";
  }
  out << "edges " << topology_.num_edges() << "\n";
  for (const auto& edge : topology_.edges()) {
    out << edge.transmitter << " " << edge.receiver << " " << edge.delay << "\n";
  }
  out << "fixed_links " << topology_.fixed_links().size() << "\n";
  for (const auto& link : topology_.fixed_links()) {
    out << link.source << " " << link.destination << " " << link.delay << "\n";
  }
  out << "packets " << packets_.size() << "\n";
  out.precision(17);
  for (const Packet& p : packets_) {
    out << p.arrival << " " << p.weight << " " << p.source << " " << p.destination << "\n";
  }
}

Instance Instance::load(std::istream& in) {
  auto expect = [&in](const std::string& keyword) -> std::int64_t {
    std::string word;
    std::int64_t value = 0;
    if (!(in >> word >> value) || word != keyword) {
      throw std::runtime_error("instance parse error near '" + keyword + "'");
    }
    return value;
  };
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "rdcn-instance" || version != "v1") {
    throw std::runtime_error("not an rdcn-instance v1 stream");
  }

  Topology topology;
  topology.add_sources(static_cast<NodeIndex>(expect("sources")));
  topology.add_destinations(static_cast<NodeIndex>(expect("destinations")));

  const auto num_transmitters = expect("transmitters");
  for (std::int64_t i = 0; i < num_transmitters; ++i) {
    NodeIndex source = 0;
    Delay attach = 0;
    if (!(in >> source >> attach)) throw std::runtime_error("bad transmitter record");
    topology.add_transmitter(source, attach);
  }
  const auto num_receivers = expect("receivers");
  for (std::int64_t i = 0; i < num_receivers; ++i) {
    NodeIndex destination = 0;
    Delay attach = 0;
    if (!(in >> destination >> attach)) throw std::runtime_error("bad receiver record");
    topology.add_receiver(destination, attach);
  }
  const auto num_edges = expect("edges");
  for (std::int64_t i = 0; i < num_edges; ++i) {
    NodeIndex t = 0, r = 0;
    Delay delay = 1;
    if (!(in >> t >> r >> delay)) throw std::runtime_error("bad edge record");
    topology.add_edge(t, r, delay);
  }
  const auto num_links = expect("fixed_links");
  for (std::int64_t i = 0; i < num_links; ++i) {
    NodeIndex s = 0, d = 0;
    Delay delay = 1;
    if (!(in >> s >> d >> delay)) throw std::runtime_error("bad fixed link record");
    topology.add_fixed_link(s, d, delay);
  }

  Instance instance(std::move(topology), {});
  const auto num_packets = expect("packets");
  for (std::int64_t i = 0; i < num_packets; ++i) {
    Time arrival = 1;
    Weight weight = 1.0;
    NodeIndex s = 0, d = 0;
    if (!(in >> arrival >> weight >> s >> d)) throw std::runtime_error("bad packet record");
    instance.add_packet(arrival, weight, s, d);
  }
  return instance;
}

std::string Instance::to_string() const {
  std::ostringstream out;
  save(out);
  return out.str();
}

Instance Instance::from_string(const std::string& text) {
  std::istringstream in(text);
  return load(in);
}

}  // namespace rdcn
