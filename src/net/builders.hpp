#pragma once

// Topology/instance builders: the paper's worked examples (Figures 1 and 2)
// plus parameterized families used throughout tests and benchmarks.

#include <cstdint>
#include <vector>

#include "net/instance.hpp"
#include "util/rng.hpp"

namespace rdcn {

/// The exact instance of Figure 1: sources {s1, s2}, transmitters
/// {t1, t2, t3} (t1, t2 on s1; t3 on s2), receivers {r1..r4} on
/// destinations {d1, d2, d2, d3}, reconfigurable edges (t1,r1), (t1,r2),
/// (t3,r3), (t3,r4) all with delay 1, a fixed link (s2,d3) with delay 4,
/// and the five unit-weight packets of the table. The paper states the
/// table's schedule costs 9 and the optimum costs 7.
Instance figure1_instance();

/// Node/edge indices of the Figure-1 instance, for readable tests.
struct Figure1Ids {
  NodeIndex s1, s2;
  NodeIndex t1, t2, t3;
  NodeIndex r1, r2, r3, r4;
  NodeIndex d1, d2, d3;
  EdgeIndex t1r1, t1r2, t3r3, t3r4;
};
Figure1Ids figure1_ids();

/// The Figure-2 graph: sources {s1, s2} with one transmitter each,
/// destinations {d1, d2, d3} with one receiver each, edges
/// (t1,r1), (t1,r2), (t2,r2), (t2,r3), all delays 1, no fixed links.
Topology figure2_topology();

/// Figure 2's input Π: p1 (s1→d1, w=1), p2 (s1→d2, w=2), p3 (s2→d2, w=3),
/// all arriving at time 1 in that order. Expected realized impacts 1, 2, 5.
Instance figure2_instance_pi();

/// Figure 2's input Π′ = Π plus p4 (s2→d3, w=4). Expected impacts 1,3,3,7.
Instance figure2_instance_pi_prime();

/// Parameterized two-tier datacenter (ProjecToR-style): `racks` racks, each
/// both a source and a destination, with `lasers` transmitters and
/// `photodetectors` receivers per rack. Each (transmitter, receiver) pair
/// whose racks differ becomes a reconfigurable edge with probability
/// `density`; delays drawn uniformly from [1, max_edge_delay]. When
/// `fixed_link_delay > 0`, every ordered rack pair gets a fixed link of that
/// delay (the hybrid electrical network).
struct TwoTierConfig {
  NodeIndex racks = 8;
  NodeIndex lasers_per_rack = 2;
  NodeIndex photodetectors_per_rack = 2;
  double density = 1.0;          ///< probability an allowed edge exists
  Delay max_edge_delay = 1;      ///< d(e) ~ Uniform{1..max_edge_delay}
  Delay attach_delay = 0;        ///< delay of every attach edge
  Delay fixed_link_delay = 0;    ///< 0 = no hybrid layer
  bool allow_self_edges = false; ///< edges between a rack's own t and r
};

/// Builds the topology; guarantees every ordered rack pair (i != j) is
/// routable (adds one deterministic edge when sampling left a pair empty
/// and no fixed layer exists).
Topology build_two_tier(const TwoTierConfig& config, Rng& rng);

/// Classic single-tier crossbar switch (the model of [20], [21] that the
/// paper generalizes): n input ports = n sources with one transmitter each,
/// n output ports = n destinations with one receiver each, full bipartite
/// reconfigurable layer with unit delays, no fixed links.
Topology build_crossbar(NodeIndex ports);

// --- topology zoo -----------------------------------------------------------
//
// Three further wiring families the paper's two-tier model admits. All are
// deterministic in (config, rng-seed): the same draws produce bit-identical
// edge lists, so fuzz seeds and suite files replay exactly.

/// Oversubscribed hybrid pod: two rack classes with asymmetric port counts
/// (the first `hot_racks` racks carry the hot class's lasers/photodetectors,
/// the rest the cold class's), reconfigurable edges drawn per port pair with
/// probability `density` from two delay classes (fast/slow), and a hybrid
/// fixed layer whose delay is the base electrical delay scaled by the
/// oversubscription factor. Every ordered rack pair is routable: via the
/// fixed layer when present, else via a deterministic patch edge.
struct OversubscribedConfig {
  NodeIndex racks = 8;
  NodeIndex hot_racks = 2;           ///< first hot_racks racks are "hot"
  NodeIndex hot_lasers = 4;
  NodeIndex hot_photodetectors = 2;  ///< asymmetry: more out- than in-ports
  NodeIndex cold_lasers = 1;
  NodeIndex cold_photodetectors = 1;
  double density = 0.7;              ///< probability a port pair is wired
  Delay fast_delay = 1;              ///< delay class drawn per edge:
  Delay slow_delay = 4;              ///< slow with probability slow_fraction
  double slow_fraction = 0.25;
  Delay attach_delay = 0;
  /// Fixed layer delay = max(1, round(fixed_base_delay * oversubscription));
  /// fixed_base_delay == 0 disables the hybrid layer entirely.
  Delay fixed_base_delay = 4;
  double oversubscription = 4.0;
};
Topology build_oversubscribed(const OversubscribedConfig& config, Rng& rng);

/// Expander-style sparse reconfigurable layer: the rack-level wiring is the
/// superposition of `degree` random fixed-point-free permutations of the
/// racks, so every rack has reconfigurable out- and in-degree exactly
/// `degree` (parallel rack pairs may repeat across permutations -- port
/// redundancy). Edges round-robin over each rack's lasers/photodetectors.
/// Routability guarantee: every ordered rack pair is routable iff
/// fixed_link_delay > 0 (the hybrid fallback); without it only the wired
/// pairs are routable (the workload samplers draw from routable pairs, so
/// sparse traffic concentrates on the expander edges -- by design).
struct ExpanderConfig {
  NodeIndex racks = 12;
  NodeIndex degree = 3;  ///< rack-level out/in degree; <= racks - 1
  NodeIndex lasers_per_rack = 2;
  NodeIndex photodetectors_per_rack = 2;
  Delay min_edge_delay = 1;  ///< d(e) ~ Uniform{min..max}
  Delay max_edge_delay = 2;
  Delay attach_delay = 0;
  Delay fixed_link_delay = 8;  ///< 0 = pure expander, no hybrid fallback
};
Topology build_expander(const ExpanderConfig& config, Rng& rng);

/// RotorNet-style rotor topology: `num_matchings` round-robin rack-level
/// perfect matchings; matching m wires rack i to rack (i + m + 1) % racks on
/// laser/photodetector port (m % ports_per_rack). Fully deterministic (no
/// randomness). num_matchings == 0 selects racks - 1 matchings, which wires
/// every ordered rack pair exactly once (full coverage); fewer matchings
/// leave the remaining offsets unwired (routable only if fixed_link_delay
/// > 0). The registry's "rotor" scheduler cycles these matchings round-robin.
struct RotorConfig {
  NodeIndex racks = 8;
  NodeIndex ports_per_rack = 1;
  NodeIndex num_matchings = 0;  ///< 0 = racks - 1 (all offsets covered)
  Delay edge_delay = 1;
  Delay attach_delay = 0;
  Delay fixed_link_delay = 0;
};
Topology build_rotor(const RotorConfig& config);

/// The number of rack-level matchings build_rotor realizes for the config
/// (num_matchings clamped into [1, racks - 1], 0 mapped to racks - 1).
NodeIndex rotor_matchings(const RotorConfig& config);

}  // namespace rdcn
