#include "net/builders.hpp"

namespace rdcn {

namespace {

struct Figure1Parts {
  Topology topology;
  Figure1Ids ids;
};

Figure1Parts make_figure1() {
  Figure1Parts parts;
  Topology& g = parts.topology;
  Figure1Ids& ids = parts.ids;

  ids.s1 = g.add_sources(2);
  ids.s2 = ids.s1 + 1;
  ids.d1 = g.add_destinations(3);
  ids.d2 = ids.d1 + 1;
  ids.d3 = ids.d1 + 2;

  ids.t1 = g.add_transmitter(ids.s1);
  ids.t2 = g.add_transmitter(ids.s1);  // drawn in the figure, no dashed edges
  ids.t3 = g.add_transmitter(ids.s2);

  ids.r1 = g.add_receiver(ids.d1);
  ids.r2 = g.add_receiver(ids.d2);
  ids.r3 = g.add_receiver(ids.d2);
  ids.r4 = g.add_receiver(ids.d3);

  ids.t1r1 = g.add_edge(ids.t1, ids.r1, 1);
  ids.t1r2 = g.add_edge(ids.t1, ids.r2, 1);
  ids.t3r3 = g.add_edge(ids.t3, ids.r3, 1);
  ids.t3r4 = g.add_edge(ids.t3, ids.r4, 1);

  g.add_fixed_link(ids.s2, ids.d3, 4);
  return parts;
}

}  // namespace

Instance figure1_instance() {
  Figure1Parts parts = make_figure1();
  const Figure1Ids& ids = parts.ids;
  Instance instance(std::move(parts.topology), {});
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s1, ids.d1);  // p1
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s1, ids.d2);  // p2
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s2, ids.d2);  // p3
  instance.add_packet(/*arrival=*/2, /*weight=*/1.0, ids.s2, ids.d2);  // p4
  instance.add_packet(/*arrival=*/2, /*weight=*/1.0, ids.s2, ids.d3);  // p5
  return instance;
}

Figure1Ids figure1_ids() { return make_figure1().ids; }

Topology figure2_topology() {
  Topology g;
  const NodeIndex s1 = g.add_sources(2);
  const NodeIndex s2 = s1 + 1;
  const NodeIndex d1 = g.add_destinations(3);
  const NodeIndex d2 = d1 + 1;
  const NodeIndex d3 = d1 + 2;
  const NodeIndex t1 = g.add_transmitter(s1);
  const NodeIndex t2 = g.add_transmitter(s2);
  const NodeIndex r1 = g.add_receiver(d1);
  const NodeIndex r2 = g.add_receiver(d2);
  const NodeIndex r3 = g.add_receiver(d3);
  g.add_edge(t1, r1, 1);  // p1's edge
  g.add_edge(t1, r2, 1);  // p2's edge
  g.add_edge(t2, r2, 1);  // p3's edge
  g.add_edge(t2, r3, 1);  // p4's edge
  return g;
}

Instance figure2_instance_pi() {
  Instance instance(figure2_topology(), {});
  instance.add_packet(1, 1.0, /*s1=*/0, /*d1=*/0);  // p1
  instance.add_packet(1, 2.0, /*s1=*/0, /*d2=*/1);  // p2
  instance.add_packet(1, 3.0, /*s2=*/1, /*d2=*/1);  // p3
  return instance;
}

Instance figure2_instance_pi_prime() {
  Instance instance = figure2_instance_pi();
  instance.add_packet(1, 4.0, /*s2=*/1, /*d3=*/2);  // p4
  return instance;
}

Topology build_two_tier(const TwoTierConfig& config, Rng& rng) {
  Topology g;
  g.add_sources(config.racks);
  g.add_destinations(config.racks);

  std::vector<std::vector<NodeIndex>> rack_transmitters(
      static_cast<std::size_t>(config.racks));
  std::vector<std::vector<NodeIndex>> rack_receivers(static_cast<std::size_t>(config.racks));
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.lasers_per_rack; ++i) {
      rack_transmitters[static_cast<std::size_t>(rack)].push_back(
          g.add_transmitter(rack, config.attach_delay));
    }
    for (NodeIndex i = 0; i < config.photodetectors_per_rack; ++i) {
      rack_receivers[static_cast<std::size_t>(rack)].push_back(
          g.add_receiver(rack, config.attach_delay));
    }
  }

  auto sample_delay = [&rng, &config]() -> Delay {
    if (config.max_edge_delay <= 1) return 1;
    return rng.next_int(1, config.max_edge_delay);
  };

  for (NodeIndex src_rack = 0; src_rack < config.racks; ++src_rack) {
    for (NodeIndex dst_rack = 0; dst_rack < config.racks; ++dst_rack) {
      if (src_rack == dst_rack && !config.allow_self_edges) continue;
      bool any_edge = false;
      for (NodeIndex t : rack_transmitters[static_cast<std::size_t>(src_rack)]) {
        for (NodeIndex r : rack_receivers[static_cast<std::size_t>(dst_rack)]) {
          if (rng.next_bool(config.density)) {
            g.add_edge(t, r, sample_delay());
            any_edge = true;
          }
        }
      }
      // Keep every ordered pair routable when there is no hybrid fallback.
      if (!any_edge && config.fixed_link_delay <= 0 && src_rack != dst_rack &&
          !rack_transmitters[static_cast<std::size_t>(src_rack)].empty() &&
          !rack_receivers[static_cast<std::size_t>(dst_rack)].empty()) {
        g.add_edge(rack_transmitters[static_cast<std::size_t>(src_rack)].front(),
                   rack_receivers[static_cast<std::size_t>(dst_rack)].front(), sample_delay());
      }
    }
  }

  if (config.fixed_link_delay > 0) {
    for (NodeIndex s = 0; s < config.racks; ++s) {
      for (NodeIndex d = 0; d < config.racks; ++d) {
        if (s == d) continue;
        g.add_fixed_link(s, d, config.fixed_link_delay);
      }
    }
  }
  return g;
}

Topology build_crossbar(NodeIndex ports) {
  Topology g;
  g.add_sources(ports);
  g.add_destinations(ports);
  std::vector<NodeIndex> transmitters;
  std::vector<NodeIndex> receivers;
  transmitters.reserve(static_cast<std::size_t>(ports));
  receivers.reserve(static_cast<std::size_t>(ports));
  for (NodeIndex i = 0; i < ports; ++i) transmitters.push_back(g.add_transmitter(i));
  for (NodeIndex i = 0; i < ports; ++i) receivers.push_back(g.add_receiver(i));
  for (NodeIndex t : transmitters) {
    for (NodeIndex r : receivers) g.add_edge(t, r, 1);
  }
  return g;
}

}  // namespace rdcn
