#include "net/builders.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rdcn {

namespace {

struct Figure1Parts {
  Topology topology;
  Figure1Ids ids;
};

Figure1Parts make_figure1() {
  Figure1Parts parts;
  Topology& g = parts.topology;
  Figure1Ids& ids = parts.ids;

  ids.s1 = g.add_sources(2);
  ids.s2 = ids.s1 + 1;
  ids.d1 = g.add_destinations(3);
  ids.d2 = ids.d1 + 1;
  ids.d3 = ids.d1 + 2;

  ids.t1 = g.add_transmitter(ids.s1);
  ids.t2 = g.add_transmitter(ids.s1);  // drawn in the figure, no dashed edges
  ids.t3 = g.add_transmitter(ids.s2);

  ids.r1 = g.add_receiver(ids.d1);
  ids.r2 = g.add_receiver(ids.d2);
  ids.r3 = g.add_receiver(ids.d2);
  ids.r4 = g.add_receiver(ids.d3);

  ids.t1r1 = g.add_edge(ids.t1, ids.r1, 1);
  ids.t1r2 = g.add_edge(ids.t1, ids.r2, 1);
  ids.t3r3 = g.add_edge(ids.t3, ids.r3, 1);
  ids.t3r4 = g.add_edge(ids.t3, ids.r4, 1);

  g.add_fixed_link(ids.s2, ids.d3, 4);
  return parts;
}

}  // namespace

Instance figure1_instance() {
  Figure1Parts parts = make_figure1();
  const Figure1Ids& ids = parts.ids;
  Instance instance(std::move(parts.topology), {});
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s1, ids.d1);  // p1
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s1, ids.d2);  // p2
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, ids.s2, ids.d2);  // p3
  instance.add_packet(/*arrival=*/2, /*weight=*/1.0, ids.s2, ids.d2);  // p4
  instance.add_packet(/*arrival=*/2, /*weight=*/1.0, ids.s2, ids.d3);  // p5
  return instance;
}

Figure1Ids figure1_ids() { return make_figure1().ids; }

Topology figure2_topology() {
  Topology g;
  const NodeIndex s1 = g.add_sources(2);
  const NodeIndex s2 = s1 + 1;
  const NodeIndex d1 = g.add_destinations(3);
  const NodeIndex d2 = d1 + 1;
  const NodeIndex d3 = d1 + 2;
  const NodeIndex t1 = g.add_transmitter(s1);
  const NodeIndex t2 = g.add_transmitter(s2);
  const NodeIndex r1 = g.add_receiver(d1);
  const NodeIndex r2 = g.add_receiver(d2);
  const NodeIndex r3 = g.add_receiver(d3);
  g.add_edge(t1, r1, 1);  // p1's edge
  g.add_edge(t1, r2, 1);  // p2's edge
  g.add_edge(t2, r2, 1);  // p3's edge
  g.add_edge(t2, r3, 1);  // p4's edge
  return g;
}

Instance figure2_instance_pi() {
  Instance instance(figure2_topology(), {});
  instance.add_packet(1, 1.0, /*s1=*/0, /*d1=*/0);  // p1
  instance.add_packet(1, 2.0, /*s1=*/0, /*d2=*/1);  // p2
  instance.add_packet(1, 3.0, /*s2=*/1, /*d2=*/1);  // p3
  return instance;
}

Instance figure2_instance_pi_prime() {
  Instance instance = figure2_instance_pi();
  instance.add_packet(1, 4.0, /*s2=*/1, /*d3=*/2);  // p4
  return instance;
}

Topology build_two_tier(const TwoTierConfig& config, Rng& rng) {
  Topology g;
  g.add_sources(config.racks);
  g.add_destinations(config.racks);

  std::vector<std::vector<NodeIndex>> rack_transmitters(
      static_cast<std::size_t>(config.racks));
  std::vector<std::vector<NodeIndex>> rack_receivers(static_cast<std::size_t>(config.racks));
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.lasers_per_rack; ++i) {
      rack_transmitters[static_cast<std::size_t>(rack)].push_back(
          g.add_transmitter(rack, config.attach_delay));
    }
    for (NodeIndex i = 0; i < config.photodetectors_per_rack; ++i) {
      rack_receivers[static_cast<std::size_t>(rack)].push_back(
          g.add_receiver(rack, config.attach_delay));
    }
  }

  auto sample_delay = [&rng, &config]() -> Delay {
    if (config.max_edge_delay <= 1) return 1;
    return rng.next_int(1, config.max_edge_delay);
  };

  for (NodeIndex src_rack = 0; src_rack < config.racks; ++src_rack) {
    for (NodeIndex dst_rack = 0; dst_rack < config.racks; ++dst_rack) {
      if (src_rack == dst_rack && !config.allow_self_edges) continue;
      bool any_edge = false;
      for (NodeIndex t : rack_transmitters[static_cast<std::size_t>(src_rack)]) {
        for (NodeIndex r : rack_receivers[static_cast<std::size_t>(dst_rack)]) {
          if (rng.next_bool(config.density)) {
            g.add_edge(t, r, sample_delay());
            any_edge = true;
          }
        }
      }
      // Keep every ordered pair routable when there is no hybrid fallback.
      if (!any_edge && config.fixed_link_delay <= 0 && src_rack != dst_rack &&
          !rack_transmitters[static_cast<std::size_t>(src_rack)].empty() &&
          !rack_receivers[static_cast<std::size_t>(dst_rack)].empty()) {
        g.add_edge(rack_transmitters[static_cast<std::size_t>(src_rack)].front(),
                   rack_receivers[static_cast<std::size_t>(dst_rack)].front(), sample_delay());
      }
    }
  }

  if (config.fixed_link_delay > 0) {
    for (NodeIndex s = 0; s < config.racks; ++s) {
      for (NodeIndex d = 0; d < config.racks; ++d) {
        if (s == d) continue;
        g.add_fixed_link(s, d, config.fixed_link_delay);
      }
    }
  }
  return g;
}

Topology build_oversubscribed(const OversubscribedConfig& config, Rng& rng) {
  if (config.racks < 2) throw std::invalid_argument("oversubscribed: racks must be >= 2");
  if (config.hot_racks < 0 || config.hot_racks > config.racks) {
    throw std::invalid_argument("oversubscribed: hot_racks must be in [0, racks]");
  }
  if (config.hot_lasers < 1 || config.hot_photodetectors < 1 || config.cold_lasers < 1 ||
      config.cold_photodetectors < 1) {
    throw std::invalid_argument("oversubscribed: every rack class needs >= 1 port per side");
  }
  if (config.density < 0.0 || config.density > 1.0) {
    throw std::invalid_argument("oversubscribed: density must be in [0, 1]");
  }
  if (config.slow_fraction < 0.0 || config.slow_fraction > 1.0) {
    throw std::invalid_argument("oversubscribed: slow_fraction must be in [0, 1]");
  }
  if (config.fast_delay < 1 || config.slow_delay < config.fast_delay) {
    throw std::invalid_argument("oversubscribed: need 1 <= fast_delay <= slow_delay");
  }
  if (config.oversubscription < 1.0) {
    throw std::invalid_argument("oversubscribed: oversubscription must be >= 1");
  }

  Topology g;
  g.add_sources(config.racks);
  g.add_destinations(config.racks);

  std::vector<std::vector<NodeIndex>> rack_transmitters(
      static_cast<std::size_t>(config.racks));
  std::vector<std::vector<NodeIndex>> rack_receivers(static_cast<std::size_t>(config.racks));
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    const bool hot = rack < config.hot_racks;
    const NodeIndex lasers = hot ? config.hot_lasers : config.cold_lasers;
    const NodeIndex pds = hot ? config.hot_photodetectors : config.cold_photodetectors;
    for (NodeIndex i = 0; i < lasers; ++i) {
      rack_transmitters[static_cast<std::size_t>(rack)].push_back(
          g.add_transmitter(rack, config.attach_delay));
    }
    for (NodeIndex i = 0; i < pds; ++i) {
      rack_receivers[static_cast<std::size_t>(rack)].push_back(
          g.add_receiver(rack, config.attach_delay));
    }
  }

  auto sample_delay = [&rng, &config]() -> Delay {
    return rng.next_bool(config.slow_fraction) ? config.slow_delay : config.fast_delay;
  };

  const Delay fixed_delay =
      config.fixed_base_delay > 0
          ? std::max<Delay>(1, static_cast<Delay>(std::llround(
                                   static_cast<double>(config.fixed_base_delay) *
                                   config.oversubscription)))
          : 0;

  for (NodeIndex src_rack = 0; src_rack < config.racks; ++src_rack) {
    for (NodeIndex dst_rack = 0; dst_rack < config.racks; ++dst_rack) {
      if (src_rack == dst_rack) continue;
      bool any_edge = false;
      for (NodeIndex t : rack_transmitters[static_cast<std::size_t>(src_rack)]) {
        for (NodeIndex r : rack_receivers[static_cast<std::size_t>(dst_rack)]) {
          if (rng.next_bool(config.density)) {
            g.add_edge(t, r, sample_delay());
            any_edge = true;
          }
        }
      }
      // Same routability contract as build_two_tier: patch only when the
      // pair has no hybrid fallback.
      if (!any_edge && fixed_delay <= 0) {
        g.add_edge(rack_transmitters[static_cast<std::size_t>(src_rack)].front(),
                   rack_receivers[static_cast<std::size_t>(dst_rack)].front(),
                   sample_delay());
      }
    }
  }

  if (fixed_delay > 0) {
    for (NodeIndex s = 0; s < config.racks; ++s) {
      for (NodeIndex d = 0; d < config.racks; ++d) {
        if (s == d) continue;
        g.add_fixed_link(s, d, fixed_delay);
      }
    }
  }
  return g;
}

namespace {

/// Random permutation of {0..n-1} with no fixed points: shuffle, then
/// repair each fixed point by swapping with its successor (the swap cannot
/// introduce a new fixed point at either position, so one pass suffices).
std::vector<NodeIndex> random_derangement(NodeIndex n, Rng& rng) {
  std::vector<NodeIndex> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  for (NodeIndex i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      const NodeIndex j = (i + 1) % n;
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    }
  }
  return perm;
}

}  // namespace

Topology build_expander(const ExpanderConfig& config, Rng& rng) {
  if (config.racks < 2) throw std::invalid_argument("expander: racks must be >= 2");
  if (config.degree < 1 || config.degree > config.racks - 1) {
    throw std::invalid_argument("expander: degree must be in [1, racks - 1]");
  }
  if (config.lasers_per_rack < 1 || config.photodetectors_per_rack < 1) {
    throw std::invalid_argument("expander: every rack needs >= 1 port per side");
  }
  if (config.min_edge_delay < 1 || config.max_edge_delay < config.min_edge_delay) {
    throw std::invalid_argument("expander: need 1 <= min_edge_delay <= max_edge_delay");
  }

  Topology g;
  g.add_sources(config.racks);
  g.add_destinations(config.racks);
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.lasers_per_rack; ++i) {
      g.add_transmitter(rack, config.attach_delay);
    }
  }
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.photodetectors_per_rack; ++i) {
      g.add_receiver(rack, config.attach_delay);
    }
  }
  auto transmitter_of = [&config](NodeIndex rack, NodeIndex port) {
    return rack * config.lasers_per_rack + port;
  };
  auto receiver_of = [&config](NodeIndex rack, NodeIndex port) {
    return rack * config.photodetectors_per_rack + port;
  };

  auto sample_delay = [&rng, &config]() -> Delay {
    if (config.max_edge_delay <= config.min_edge_delay) return config.min_edge_delay;
    return rng.next_int(config.min_edge_delay, config.max_edge_delay);
  };

  for (NodeIndex m = 0; m < config.degree; ++m) {
    const std::vector<NodeIndex> perm = random_derangement(config.racks, rng);
    for (NodeIndex rack = 0; rack < config.racks; ++rack) {
      g.add_edge(transmitter_of(rack, m % config.lasers_per_rack),
                 receiver_of(perm[static_cast<std::size_t>(rack)],
                             m % config.photodetectors_per_rack),
                 sample_delay());
    }
  }

  if (config.fixed_link_delay > 0) {
    for (NodeIndex s = 0; s < config.racks; ++s) {
      for (NodeIndex d = 0; d < config.racks; ++d) {
        if (s == d) continue;
        g.add_fixed_link(s, d, config.fixed_link_delay);
      }
    }
  }
  return g;
}

NodeIndex rotor_matchings(const RotorConfig& config) {
  if (config.racks < 2) throw std::invalid_argument("rotor: racks must be >= 2");
  if (config.num_matchings < 0 || config.num_matchings > config.racks - 1) {
    throw std::invalid_argument("rotor: num_matchings must be in [0, racks - 1]");
  }
  return config.num_matchings == 0 ? config.racks - 1 : config.num_matchings;
}

Topology build_rotor(const RotorConfig& config) {
  const NodeIndex matchings = rotor_matchings(config);
  if (config.ports_per_rack < 1) {
    throw std::invalid_argument("rotor: ports_per_rack must be >= 1");
  }
  if (config.edge_delay < 1) throw std::invalid_argument("rotor: edge_delay must be >= 1");

  Topology g;
  g.add_sources(config.racks);
  g.add_destinations(config.racks);
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.ports_per_rack; ++i) {
      g.add_transmitter(rack, config.attach_delay);
    }
  }
  for (NodeIndex rack = 0; rack < config.racks; ++rack) {
    for (NodeIndex i = 0; i < config.ports_per_rack; ++i) {
      g.add_receiver(rack, config.attach_delay);
    }
  }

  for (NodeIndex m = 0; m < matchings; ++m) {
    const NodeIndex offset = m + 1;
    const NodeIndex port = m % config.ports_per_rack;
    for (NodeIndex rack = 0; rack < config.racks; ++rack) {
      const NodeIndex dst_rack = (rack + offset) % config.racks;
      g.add_edge(rack * config.ports_per_rack + port,
                 dst_rack * config.ports_per_rack + port, config.edge_delay);
    }
  }

  if (config.fixed_link_delay > 0) {
    for (NodeIndex s = 0; s < config.racks; ++s) {
      for (NodeIndex d = 0; d < config.racks; ++d) {
        if (s == d) continue;
        g.add_fixed_link(s, d, config.fixed_link_delay);
      }
    }
  }
  return g;
}

Topology build_crossbar(NodeIndex ports) {
  Topology g;
  g.add_sources(ports);
  g.add_destinations(ports);
  std::vector<NodeIndex> transmitters;
  std::vector<NodeIndex> receivers;
  transmitters.reserve(static_cast<std::size_t>(ports));
  receivers.reserve(static_cast<std::size_t>(ports));
  for (NodeIndex i = 0; i < ports; ++i) transmitters.push_back(g.add_transmitter(i));
  for (NodeIndex i = 0; i < ports; ++i) receivers.push_back(g.add_receiver(i));
  for (NodeIndex t : transmitters) {
    for (NodeIndex r : receivers) g.add_edge(t, r, 1);
  }
  return g;
}

}  // namespace rdcn
