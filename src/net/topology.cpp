#include "net/topology.hpp"

#include <sstream>
#include <stdexcept>

namespace rdcn {

NodeIndex Topology::add_sources(NodeIndex count) {
  if (count < 0) throw std::invalid_argument("negative source count");
  pair_cache_ready_ = false;
  const NodeIndex first = num_sources_;
  num_sources_ += count;
  transmitters_of_source_.resize(static_cast<std::size_t>(num_sources_));
  return first;
}

NodeIndex Topology::add_destinations(NodeIndex count) {
  if (count < 0) throw std::invalid_argument("negative destination count");
  pair_cache_ready_ = false;
  const NodeIndex first = num_destinations_;
  num_destinations_ += count;
  receivers_of_destination_.resize(static_cast<std::size_t>(num_destinations_));
  return first;
}

NodeIndex Topology::add_transmitter(NodeIndex source, Delay attach_delay) {
  if (source < 0 || source >= num_sources_) throw std::out_of_range("bad source index");
  if (attach_delay < 0) throw std::invalid_argument("negative attach delay");
  pair_cache_ready_ = false;
  const auto index = static_cast<NodeIndex>(transmitter_source_.size());
  transmitter_source_.push_back(source);
  transmitter_attach_delay_.push_back(attach_delay);
  edges_of_transmitter_.emplace_back();
  transmitters_of_source_[static_cast<std::size_t>(source)].push_back(index);
  return index;
}

NodeIndex Topology::add_receiver(NodeIndex destination, Delay attach_delay) {
  if (destination < 0 || destination >= num_destinations_) {
    throw std::out_of_range("bad destination index");
  }
  if (attach_delay < 0) throw std::invalid_argument("negative attach delay");
  pair_cache_ready_ = false;
  const auto index = static_cast<NodeIndex>(receiver_destination_.size());
  receiver_destination_.push_back(destination);
  receiver_attach_delay_.push_back(attach_delay);
  edges_of_receiver_.emplace_back();
  receivers_of_destination_[static_cast<std::size_t>(destination)].push_back(index);
  return index;
}

EdgeIndex Topology::add_edge(NodeIndex transmitter, NodeIndex receiver, Delay delay) {
  if (transmitter < 0 || transmitter >= num_transmitters()) {
    throw std::out_of_range("bad transmitter index");
  }
  if (receiver < 0 || receiver >= num_receivers()) throw std::out_of_range("bad receiver index");
  if (delay < 1) throw std::invalid_argument("reconfigurable edge delay must be >= 1");
  pair_cache_ready_ = false;
  const auto index = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(ReconfigEdge{transmitter, receiver, delay});
  edges_of_transmitter_[static_cast<std::size_t>(transmitter)].push_back(index);
  edges_of_receiver_[static_cast<std::size_t>(receiver)].push_back(index);
  return index;
}

void Topology::add_fixed_link(NodeIndex source, NodeIndex destination, Delay delay) {
  if (source < 0 || source >= num_sources_) throw std::out_of_range("bad source index");
  if (destination < 0 || destination >= num_destinations_) {
    throw std::out_of_range("bad destination index");
  }
  if (delay < 1) throw std::invalid_argument("fixed link delay must be >= 1");
  for (auto& link : fixed_links_) {
    if (link.source == source && link.destination == destination) {
      link.delay = std::min(link.delay, delay);
      return;
    }
  }
  fixed_links_.push_back(FixedLink{source, destination, delay});
}

Delay Topology::total_edge_delay(EdgeIndex e) const {
  const ReconfigEdge& edge_ref = edge(e);
  return transmitter_attach_delay_.at(edge_ref.transmitter) + edge_ref.delay +
         receiver_attach_delay_.at(edge_ref.receiver);
}

std::vector<EdgeIndex> Topology::candidate_edges(NodeIndex source,
                                                 NodeIndex destination) const {
  std::vector<EdgeIndex> result;
  candidate_edges_into(source, destination, result);
  return result;
}

void Topology::build_pair_cache() const {
  const auto sources = static_cast<std::size_t>(num_sources_);
  const auto destinations = static_cast<std::size_t>(num_destinations_);
  pair_offsets_.assign(sources * destinations + 1, 0);
  const auto pair_index = [destinations](std::size_t s, std::size_t d) {
    return s * destinations + d;
  };
  for (std::size_t s = 0; s < sources; ++s) {
    for (NodeIndex t : transmitters_of_source_[s]) {
      for (EdgeIndex e : edges_of_transmitter_[static_cast<std::size_t>(t)]) {
        const auto r = static_cast<std::size_t>(edges_[static_cast<std::size_t>(e)].receiver);
        const auto d = static_cast<std::size_t>(receiver_destination_[r]);
        ++pair_offsets_[pair_index(s, d) + 1];
      }
    }
  }
  for (std::size_t p = 1; p < pair_offsets_.size(); ++p) pair_offsets_[p] += pair_offsets_[p - 1];
  pair_edges_.resize(edges_.size());
  std::vector<std::int32_t> cursor(pair_offsets_.begin(), pair_offsets_.end() - 1);
  for (std::size_t s = 0; s < sources; ++s) {
    for (NodeIndex t : transmitters_of_source_[s]) {
      for (EdgeIndex e : edges_of_transmitter_[static_cast<std::size_t>(t)]) {
        const auto r = static_cast<std::size_t>(edges_[static_cast<std::size_t>(e)].receiver);
        const auto d = static_cast<std::size_t>(receiver_destination_[r]);
        pair_edges_[static_cast<std::size_t>(cursor[pair_index(s, d)]++)] = e;
      }
    }
  }
  pair_cache_ready_ = true;
}

void Topology::candidate_edges_into(NodeIndex source, NodeIndex destination,
                                    std::vector<EdgeIndex>& out) const {
  if (source < 0 || source >= num_sources_) {
    throw std::out_of_range("candidate_edges_into: bad source index");
  }
  out.clear();
  if (destination < 0 || destination >= num_destinations_) return;  // no receiver maps there
  if (!pair_cache_ready_) build_pair_cache();
  const auto p = static_cast<std::size_t>(source) * static_cast<std::size_t>(num_destinations_) +
                 static_cast<std::size_t>(destination);
  const auto begin = static_cast<std::size_t>(pair_offsets_[p]);
  const auto end = static_cast<std::size_t>(pair_offsets_[p + 1]);
  out.insert(out.end(), pair_edges_.begin() + static_cast<std::ptrdiff_t>(begin),
             pair_edges_.begin() + static_cast<std::ptrdiff_t>(end));
}

std::optional<Delay> Topology::fixed_link_delay(NodeIndex source,
                                                NodeIndex destination) const {
  for (const auto& link : fixed_links_) {
    if (link.source == source && link.destination == destination) return link.delay;
  }
  return std::nullopt;
}

bool Topology::routable(NodeIndex source, NodeIndex destination) const {
  if (fixed_link_delay(source, destination).has_value()) return true;
  return !candidate_edges(source, destination).empty();
}

std::string Topology::validate() const {
  std::ostringstream error;
  for (std::size_t t = 0; t < transmitter_source_.size(); ++t) {
    if (transmitter_source_[t] < 0 || transmitter_source_[t] >= num_sources_) {
      error << "transmitter " << t << " attached to invalid source";
      return error.str();
    }
  }
  for (std::size_t r = 0; r < receiver_destination_.size(); ++r) {
    if (receiver_destination_[r] < 0 || receiver_destination_[r] >= num_destinations_) {
      error << "receiver " << r << " attached to invalid destination";
      return error.str();
    }
  }
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto& edge_ref = edges_[e];
    if (edge_ref.transmitter < 0 || edge_ref.transmitter >= num_transmitters() ||
        edge_ref.receiver < 0 || edge_ref.receiver >= num_receivers()) {
      error << "edge " << e << " has invalid endpoints";
      return error.str();
    }
    if (edge_ref.delay < 1) {
      error << "edge " << e << " has delay < 1";
      return error.str();
    }
  }
  for (const auto& link : fixed_links_) {
    if (link.source < 0 || link.source >= num_sources_ || link.destination < 0 ||
        link.destination >= num_destinations_) {
      error << "fixed link has invalid endpoints";
      return error.str();
    }
    if (link.delay < 1) {
      error << "fixed link has delay < 1";
      return error.str();
    }
  }
  return {};
}

}  // namespace rdcn
