#pragma once

// Capacitated ("b-matching") generalization of the greedy stable matching:
// each left/right endpoint may carry up to `capacity` simultaneous
// requests, while each physical edge (identified by the caller-supplied
// key) still carries at most one. This models ToR nodes with b lasers
// usable in parallel -- the online dynamic b-matching setting of
// Bienkowski et al. [46] that the paper cites as related work.
//
// The stability notion generalizes pointwise: a rejected request must find
// at a saturated endpoint (or on its occupied edge) only requests of
// priority at least its own.

#include <cstdint>
#include <span>
#include <vector>

#include "match/stable.hpp"

namespace rdcn {

struct CapacitatedRequest {
  std::int32_t left = 0;
  std::int32_t right = 0;
  std::int64_t edge_key = -1;  ///< requests sharing a key exclude each other
};

/// Greedy accept in the given (priority) order subject to left/right
/// capacities and per-edge exclusivity. capacity >= 1.
std::vector<std::size_t> greedy_stable_bmatching(std::span<const CapacitatedRequest> requests,
                                                 std::size_t num_left, std::size_t num_right,
                                                 std::int32_t capacity);

/// Checks the generalized stability property of a selection produced for
/// the given priority order (requests sorted by decreasing priority):
/// capacities and edge-exclusivity hold, and every rejected request is
/// blocked by an earlier accepted request on a saturated endpoint or on
/// its own edge.
bool is_stable_bmatching(std::span<const CapacitatedRequest> requests,
                         std::span<const std::size_t> accepted, std::size_t num_left,
                         std::size_t num_right, std::int32_t capacity);

}  // namespace rdcn
