#include "match/capacitated.hpp"

#include <unordered_set>

namespace rdcn {

std::vector<std::size_t> greedy_stable_bmatching(std::span<const CapacitatedRequest> requests,
                                                 std::size_t num_left, std::size_t num_right,
                                                 std::int32_t capacity) {
  std::vector<std::int32_t> left_used(num_left, 0);
  std::vector<std::int32_t> right_used(num_right, 0);
  std::unordered_set<std::int64_t> edges_used;
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    if (left_used[static_cast<std::size_t>(request.left)] >= capacity) continue;
    if (right_used[static_cast<std::size_t>(request.right)] >= capacity) continue;
    if (request.edge_key >= 0 && edges_used.contains(request.edge_key)) continue;
    ++left_used[static_cast<std::size_t>(request.left)];
    ++right_used[static_cast<std::size_t>(request.right)];
    if (request.edge_key >= 0) edges_used.insert(request.edge_key);
    accepted.push_back(i);
  }
  return accepted;
}

bool is_stable_bmatching(std::span<const CapacitatedRequest> requests,
                         std::span<const std::size_t> accepted, std::size_t num_left,
                         std::size_t num_right, std::int32_t capacity) {
  std::vector<std::int32_t> left_used(num_left, 0);
  std::vector<std::int32_t> right_used(num_right, 0);
  // For blocking checks we need the LAST (lowest-priority) occupant index
  // of each endpoint/edge.
  std::vector<std::size_t> left_last(num_left, 0);
  std::vector<std::size_t> right_last(num_right, 0);
  std::unordered_set<std::int64_t> edges_used;
  std::vector<bool> is_accepted(requests.size(), false);

  for (std::size_t idx : accepted) {
    if (idx >= requests.size()) return false;
    const auto& request = requests[idx];
    const auto left = static_cast<std::size_t>(request.left);
    const auto right = static_cast<std::size_t>(request.right);
    if (left_used[left] >= capacity || right_used[right] >= capacity) return false;
    if (request.edge_key >= 0 && !edges_used.insert(request.edge_key).second) return false;
    ++left_used[left];
    ++right_used[right];
    left_last[left] = std::max(left_last[left], idx);
    right_last[right] = std::max(right_last[right], idx);
    is_accepted[idx] = true;
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (is_accepted[i]) continue;
    const auto& request = requests[i];
    const auto left = static_cast<std::size_t>(request.left);
    const auto right = static_cast<std::size_t>(request.right);
    // Blocked legitimately iff: its edge is taken by an earlier request,
    // or one of its endpoints is saturated entirely by earlier requests.
    bool blocked = false;
    if (request.edge_key >= 0 && edges_used.contains(request.edge_key)) {
      // Find the owner; it must be earlier. Owners are accepted requests
      // with the same key -- scan accepted (small sets in practice).
      for (std::size_t idx : accepted) {
        if (requests[idx].edge_key == request.edge_key && idx < i) {
          blocked = true;
          break;
        }
      }
    }
    if (!blocked && left_used[left] >= capacity && left_last[left] < i) blocked = true;
    if (!blocked && right_used[right] >= capacity && right_last[right] < i) blocked = true;
    if (!blocked) return false;
  }
  return true;
}

}  // namespace rdcn
