#pragma once

// Gale-Shapley deferred acceptance (the paper's reference [23]) on
// preference lists. Included as the classical substrate the paper's
// symmetric-priority greedy specializes: with symmetric edge weights the
// proposer-optimal and receiver-optimal stable matchings coincide and the
// greedy of match/stable.hpp computes them directly.

#include <cstdint>
#include <vector>

namespace rdcn {

/// preferences_left[i] = ordered list of right-indices i prefers (best
/// first); analogously for preferences_right. Agents may have partial
/// lists; unlisted pairs are unacceptable.
struct StableMarriageInput {
  std::vector<std::vector<std::int32_t>> preferences_left;
  std::vector<std::vector<std::int32_t>> preferences_right;
};

/// match_of_left[i] = matched right index or -1; proposer (left) optimal.
struct StableMarriageResult {
  std::vector<std::int32_t> match_of_left;
  std::vector<std::int32_t> match_of_right;
};

StableMarriageResult gale_shapley(const StableMarriageInput& input);

/// True iff no blocking pair exists: a mutually acceptable (i, j) where i
/// prefers j to its match (or is unmatched) and j prefers i to its match.
bool is_stable_marriage(const StableMarriageInput& input, const StableMarriageResult& result);

}  // namespace rdcn
