#include "match/stable.hpp"

#include <cstdint>
#include <limits>

namespace rdcn {

std::vector<std::size_t> greedy_stable_matching(std::span<const MatchRequest> requests,
                                                std::size_t num_left,
                                                std::size_t num_right) {
  std::vector<bool> left_busy(num_left, false);
  std::vector<bool> right_busy(num_right, false);
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto left = static_cast<std::size_t>(requests[i].left);
    const auto right = static_cast<std::size_t>(requests[i].right);
    if (!left_busy[left] && !right_busy[right]) {
      left_busy[left] = true;
      right_busy[right] = true;
      accepted.push_back(i);
    }
  }
  return accepted;
}

std::vector<std::size_t> blocking_witness(std::span<const MatchRequest> requests,
                                          std::span<const std::size_t> accepted,
                                          std::size_t num_left, std::size_t num_right) {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // owner_of_left/right[x] = accepted request index occupying endpoint x.
  std::vector<std::size_t> owner_left(num_left, kNone);
  std::vector<std::size_t> owner_right(num_right, kNone);
  std::vector<bool> is_accepted(requests.size(), false);
  for (std::size_t idx : accepted) {
    is_accepted[idx] = true;
    owner_left[static_cast<std::size_t>(requests[idx].left)] = idx;
    owner_right[static_cast<std::size_t>(requests[idx].right)] = idx;
  }
  std::vector<std::size_t> witness(requests.size(), kNone);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (is_accepted[i]) continue;
    const std::size_t via_left = owner_left[static_cast<std::size_t>(requests[i].left)];
    const std::size_t via_right = owner_right[static_cast<std::size_t>(requests[i].right)];
    // Prefer the earlier (higher-priority) blocker; at least one must exist
    // when `accepted` came from greedy_stable_matching.
    witness[i] = std::min(via_left, via_right);
  }
  return witness;
}

bool is_stable_selection(std::span<const MatchRequest> requests,
                         std::span<const std::size_t> accepted, std::size_t num_left,
                         std::size_t num_right) {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> owner_left(num_left, kNone);
  std::vector<std::size_t> owner_right(num_right, kNone);
  std::vector<bool> is_accepted(requests.size(), false);
  for (std::size_t idx : accepted) {
    if (idx >= requests.size()) return false;
    const auto left = static_cast<std::size_t>(requests[idx].left);
    const auto right = static_cast<std::size_t>(requests[idx].right);
    if (owner_left[left] != kNone || owner_right[right] != kNone) return false;  // not a matching
    owner_left[left] = idx;
    owner_right[right] = idx;
    is_accepted[idx] = true;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (is_accepted[i]) continue;
    const std::size_t via_left = owner_left[static_cast<std::size_t>(requests[i].left)];
    const std::size_t via_right = owner_right[static_cast<std::size_t>(requests[i].right)];
    const std::size_t blocker = std::min(via_left, via_right);
    if (blocker == kNone || blocker > i) return false;  // no prior blocker: unstable
  }
  return true;
}

}  // namespace rdcn
