#pragma once

// Exponential-time matching oracles used only by the test-suite to verify
// the polynomial algorithms on small random graphs.

#include <vector>

#include "match/hungarian.hpp"

namespace rdcn {

/// Exact maximum-weight matching by branching on each edge (include /
/// exclude). Intended for <= ~24 edges.
double brute_force_max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                       std::size_t num_left, std::size_t num_right);

/// Exact maximum-cardinality matching size by the same branching.
std::size_t brute_force_max_cardinality(const std::vector<WeightedBipartiteEdge>& edges,
                                        std::size_t num_left, std::size_t num_right);

}  // namespace rdcn
