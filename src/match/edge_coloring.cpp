#include "match/edge_coloring.hpp"

#include <algorithm>

namespace rdcn {

EdgeColoring color_bipartite_edges(const std::vector<BipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right) {
  EdgeColoring result;
  result.color.assign(edges.size(), -1);

  std::vector<std::int32_t> degree_left(num_left, 0), degree_right(num_right, 0);
  for (const auto& e : edges) {
    ++degree_left[static_cast<std::size_t>(e.left)];
    ++degree_right[static_cast<std::size_t>(e.right)];
  }
  std::int32_t delta = 0;
  for (std::int32_t d : degree_left) delta = std::max(delta, d);
  for (std::int32_t d : degree_right) delta = std::max(delta, d);
  result.num_colors = delta;
  if (delta == 0) return result;

  const auto n_colors = static_cast<std::size_t>(delta);
  // used_left[v][c] = edge index using color c at left vertex v (or -1).
  std::vector<std::vector<std::int64_t>> used_left(
      num_left, std::vector<std::int64_t>(n_colors, -1));
  std::vector<std::vector<std::int64_t>> used_right(
      num_right, std::vector<std::int64_t>(n_colors, -1));

  auto first_free = [n_colors](const std::vector<std::int64_t>& used) -> std::int32_t {
    for (std::size_t c = 0; c < n_colors; ++c) {
      if (used[c] == -1) return static_cast<std::int32_t>(c);
    }
    return -1;
  };

  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto left = static_cast<std::size_t>(edges[k].left);
    const auto right = static_cast<std::size_t>(edges[k].right);
    const std::int32_t a = first_free(used_left[left]);    // free at the left end
    const std::int32_t b = first_free(used_right[right]);  // free at the right end

    if (a != b) {
      // König/Kempe argument: follow the maximal alternating a/b path that
      // starts at `right` with an a-colored edge, then swap a<->b along it.
      // The path cannot end at `left` (a is free there), so after the swap
      // color a is free at both endpoints of edge k.
      std::vector<std::size_t> path;
      std::size_t vertex = right;
      bool vertex_is_right = true;
      std::int32_t want = a;
      while (true) {
        const auto& used_here = vertex_is_right ? used_right[vertex] : used_left[vertex];
        const std::int64_t next_edge = used_here[static_cast<std::size_t>(want)];
        if (next_edge == -1) break;
        path.push_back(static_cast<std::size_t>(next_edge));
        const auto& e = edges[static_cast<std::size_t>(next_edge)];
        vertex = vertex_is_right ? static_cast<std::size_t>(e.left)
                                 : static_cast<std::size_t>(e.right);
        vertex_is_right = !vertex_is_right;
        want = (want == a) ? b : a;
      }
      for (std::size_t e_idx : path) {
        const auto& e = edges[e_idx];
        const auto c = static_cast<std::size_t>(result.color[e_idx]);
        used_left[static_cast<std::size_t>(e.left)][c] = -1;
        used_right[static_cast<std::size_t>(e.right)][c] = -1;
      }
      for (std::size_t e_idx : path) {
        const auto& e = edges[e_idx];
        const std::int32_t swapped = (result.color[e_idx] == a) ? b : a;
        result.color[e_idx] = swapped;
        used_left[static_cast<std::size_t>(e.left)][static_cast<std::size_t>(swapped)] =
            static_cast<std::int64_t>(e_idx);
        used_right[static_cast<std::size_t>(e.right)][static_cast<std::size_t>(swapped)] =
            static_cast<std::int64_t>(e_idx);
      }
    }
    result.color[k] = a;
    used_left[left][static_cast<std::size_t>(a)] = static_cast<std::int64_t>(k);
    used_right[right][static_cast<std::size_t>(a)] = static_cast<std::int64_t>(k);
  }
  return result;
}

std::vector<std::vector<std::size_t>> coloring_to_matchings(const EdgeColoring& coloring) {
  std::vector<std::vector<std::size_t>> matchings(
      static_cast<std::size_t>(std::max(coloring.num_colors, 0)));
  for (std::size_t k = 0; k < coloring.color.size(); ++k) {
    matchings[static_cast<std::size_t>(coloring.color[k])].push_back(k);
  }
  return matchings;
}

bool is_proper_edge_coloring(const std::vector<BipartiteEdge>& edges,
                             const EdgeColoring& coloring, std::size_t num_left,
                             std::size_t num_right) {
  if (coloring.color.size() != edges.size()) return false;
  for (std::int32_t c : coloring.color) {
    if (c < 0 || c >= coloring.num_colors) return false;
  }
  const auto colors = static_cast<std::size_t>(coloring.num_colors);
  std::vector<std::vector<bool>> seen_left(num_left, std::vector<bool>(colors, false));
  std::vector<std::vector<bool>> seen_right(num_right, std::vector<bool>(colors, false));
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto c = static_cast<std::size_t>(coloring.color[k]);
    auto&& l = seen_left[static_cast<std::size_t>(edges[k].left)][c];
    auto&& r = seen_right[static_cast<std::size_t>(edges[k].right)][c];
    if (l || r) return false;
    l = true;
    r = true;
  }
  return true;
}

}  // namespace rdcn
