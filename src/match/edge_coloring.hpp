#pragma once

// Bipartite edge coloring: partitions the edge set of a bipartite
// (multi)graph into Δ matchings (König's theorem). Substrate for the
// demand-oblivious rotor baseline (RotorNet [8] style): the switch cycles
// through the color classes, one matching per step, independent of demand.

#include <cstdint>
#include <vector>

namespace rdcn {

struct BipartiteEdge {
  std::int32_t left = 0;
  std::int32_t right = 0;
};

/// Returns color[k] in [0, num_colors) for each edge k, such that edges of
/// equal color form a matching, using exactly Δ = max degree colors.
/// Implements the classical alternating-path (Kempe chain) argument.
struct EdgeColoring {
  std::vector<std::int32_t> color;
  std::int32_t num_colors = 0;
};

EdgeColoring color_bipartite_edges(const std::vector<BipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right);

/// Groups the edges by color: result[c] = edge indices of color c.
std::vector<std::vector<std::size_t>> coloring_to_matchings(const EdgeColoring& coloring);

/// Verifies that every color class is a matching.
bool is_proper_edge_coloring(const std::vector<BipartiteEdge>& edges,
                             const EdgeColoring& coloring, std::size_t num_left,
                             std::size_t num_right);

}  // namespace rdcn
