#pragma once

// Hopcroft-Karp maximum-cardinality bipartite matching, O(E sqrt(V)).
// Substrate for throughput-oriented baselines and for sizing rotor phases.

#include <cstdint>
#include <vector>

namespace rdcn {

/// adjacency[i] = right neighbours of left vertex i.
/// Returns match_of_left (right index or -1 per left vertex).
std::vector<std::int32_t> hopcroft_karp(const std::vector<std::vector<std::int32_t>>& adjacency,
                                        std::size_t num_right);

/// Cardinality helper.
std::size_t matching_size(const std::vector<std::int32_t>& match_of_left);

}  // namespace rdcn
