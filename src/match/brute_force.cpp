#include "match/brute_force.hpp"

#include <algorithm>

namespace rdcn {

namespace {

struct SearchState {
  const std::vector<WeightedBipartiteEdge>* edges = nullptr;
  std::vector<bool> left_busy;
  std::vector<bool> right_busy;
};

double search_weight(SearchState& state, std::size_t index) {
  const auto& edges = *state.edges;
  if (index == edges.size()) return 0.0;
  // Skip this edge.
  double best = search_weight(state, index + 1);
  const auto left = static_cast<std::size_t>(edges[index].left);
  const auto right = static_cast<std::size_t>(edges[index].right);
  if (!state.left_busy[left] && !state.right_busy[right]) {
    state.left_busy[left] = true;
    state.right_busy[right] = true;
    best = std::max(best, edges[index].weight + search_weight(state, index + 1));
    state.left_busy[left] = false;
    state.right_busy[right] = false;
  }
  return best;
}

std::size_t search_cardinality(SearchState& state, std::size_t index) {
  const auto& edges = *state.edges;
  if (index == edges.size()) return 0;
  std::size_t best = search_cardinality(state, index + 1);
  const auto left = static_cast<std::size_t>(edges[index].left);
  const auto right = static_cast<std::size_t>(edges[index].right);
  if (!state.left_busy[left] && !state.right_busy[right]) {
    state.left_busy[left] = true;
    state.right_busy[right] = true;
    best = std::max(best, 1 + search_cardinality(state, index + 1));
    state.left_busy[left] = false;
    state.right_busy[right] = false;
  }
  return best;
}

}  // namespace

double brute_force_max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                       std::size_t num_left, std::size_t num_right) {
  SearchState state;
  state.edges = &edges;
  state.left_busy.assign(num_left, false);
  state.right_busy.assign(num_right, false);
  return search_weight(state, 0);
}

std::size_t brute_force_max_cardinality(const std::vector<WeightedBipartiteEdge>& edges,
                                        std::size_t num_left, std::size_t num_right) {
  SearchState state;
  state.edges = &edges;
  state.left_busy.assign(num_left, false);
  state.right_busy.assign(num_right, false);
  return search_cardinality(state, 0);
}

}  // namespace rdcn
