#include "match/hopcroft_karp.hpp"

#include <functional>
#include <limits>
#include <queue>

namespace rdcn {

namespace {
constexpr std::int32_t kFree = -1;
constexpr std::int32_t kInfDist = std::numeric_limits<std::int32_t>::max();
}  // namespace

std::vector<std::int32_t> hopcroft_karp(const std::vector<std::vector<std::int32_t>>& adjacency,
                                        std::size_t num_right) {
  const std::size_t num_left = adjacency.size();
  std::vector<std::int32_t> match_left(num_left, kFree);
  std::vector<std::int32_t> match_right(num_right, kFree);
  std::vector<std::int32_t> dist(num_left);

  auto bfs = [&]() -> bool {
    std::queue<std::int32_t> frontier;
    bool reachable_free_right = false;
    for (std::size_t i = 0; i < num_left; ++i) {
      if (match_left[i] == kFree) {
        dist[i] = 0;
        frontier.push(static_cast<std::int32_t>(i));
      } else {
        dist[i] = kInfDist;
      }
    }
    while (!frontier.empty()) {
      const std::int32_t i = frontier.front();
      frontier.pop();
      for (std::int32_t j : adjacency[static_cast<std::size_t>(i)]) {
        const std::int32_t next = match_right[static_cast<std::size_t>(j)];
        if (next == kFree) {
          reachable_free_right = true;
        } else if (dist[static_cast<std::size_t>(next)] == kInfDist) {
          dist[static_cast<std::size_t>(next)] = dist[static_cast<std::size_t>(i)] + 1;
          frontier.push(next);
        }
      }
    }
    return reachable_free_right;
  };

  std::function<bool(std::int32_t)> dfs = [&](std::int32_t i) -> bool {
    for (std::int32_t j : adjacency[static_cast<std::size_t>(i)]) {
      const std::int32_t next = match_right[static_cast<std::size_t>(j)];
      if (next == kFree ||
          (dist[static_cast<std::size_t>(next)] == dist[static_cast<std::size_t>(i)] + 1 &&
           dfs(next))) {
        match_left[static_cast<std::size_t>(i)] = j;
        match_right[static_cast<std::size_t>(j)] = i;
        return true;
      }
    }
    dist[static_cast<std::size_t>(i)] = kInfDist;
    return false;
  };

  while (bfs()) {
    for (std::size_t i = 0; i < num_left; ++i) {
      if (match_left[i] == kFree) dfs(static_cast<std::int32_t>(i));
    }
  }
  return match_left;
}

std::size_t matching_size(const std::vector<std::int32_t>& match_of_left) {
  std::size_t count = 0;
  for (std::int32_t m : match_of_left) count += (m != kFree) ? 1 : 0;
  return count;
}

}  // namespace rdcn
