#include "match/gale_shapley.hpp"

#include <queue>

namespace rdcn {

namespace {

/// rank[j][i] = position of left i in right j's list, or INT32_MAX.
std::vector<std::vector<std::int32_t>> build_ranks(
    const std::vector<std::vector<std::int32_t>>& preferences, std::size_t other_side) {
  std::vector<std::vector<std::int32_t>> ranks(preferences.size());
  for (std::size_t j = 0; j < preferences.size(); ++j) {
    ranks[j].assign(other_side, INT32_MAX);
    for (std::size_t pos = 0; pos < preferences[j].size(); ++pos) {
      ranks[j][static_cast<std::size_t>(preferences[j][pos])] =
          static_cast<std::int32_t>(pos);
    }
  }
  return ranks;
}

}  // namespace

StableMarriageResult gale_shapley(const StableMarriageInput& input) {
  const std::size_t num_left = input.preferences_left.size();
  const std::size_t num_right = input.preferences_right.size();
  const auto right_rank = build_ranks(input.preferences_right, num_left);

  StableMarriageResult result;
  result.match_of_left.assign(num_left, -1);
  result.match_of_right.assign(num_right, -1);
  std::vector<std::size_t> next_proposal(num_left, 0);

  std::queue<std::int32_t> free_left;
  for (std::size_t i = 0; i < num_left; ++i) free_left.push(static_cast<std::int32_t>(i));

  while (!free_left.empty()) {
    const std::int32_t i = free_left.front();
    free_left.pop();
    const auto& prefs = input.preferences_left[static_cast<std::size_t>(i)];
    bool matched = false;
    while (next_proposal[static_cast<std::size_t>(i)] < prefs.size()) {
      const std::int32_t j = prefs[next_proposal[static_cast<std::size_t>(i)]++];
      const auto& ranks_j = right_rank[static_cast<std::size_t>(j)];
      if (ranks_j[static_cast<std::size_t>(i)] == INT32_MAX) continue;  // i unacceptable to j
      const std::int32_t current = result.match_of_right[static_cast<std::size_t>(j)];
      if (current == -1) {
        result.match_of_right[static_cast<std::size_t>(j)] = i;
        result.match_of_left[static_cast<std::size_t>(i)] = j;
        matched = true;
        break;
      }
      if (ranks_j[static_cast<std::size_t>(i)] < ranks_j[static_cast<std::size_t>(current)]) {
        // j trades up; the jilted proposer re-enters the pool.
        result.match_of_right[static_cast<std::size_t>(j)] = i;
        result.match_of_left[static_cast<std::size_t>(i)] = j;
        result.match_of_left[static_cast<std::size_t>(current)] = -1;
        free_left.push(current);
        matched = true;
        break;
      }
    }
    (void)matched;
  }
  return result;
}

bool is_stable_marriage(const StableMarriageInput& input, const StableMarriageResult& result) {
  const std::size_t num_left = input.preferences_left.size();
  const std::size_t num_right = input.preferences_right.size();
  const auto left_rank = build_ranks(input.preferences_left, num_right);
  const auto right_rank = build_ranks(input.preferences_right, num_left);

  for (std::size_t i = 0; i < num_left; ++i) {
    for (std::int32_t j : input.preferences_left[i]) {
      if (right_rank[static_cast<std::size_t>(j)][i] == INT32_MAX) continue;
      const std::int32_t i_match = result.match_of_left[i];
      const std::int32_t j_match = result.match_of_right[static_cast<std::size_t>(j)];
      const bool i_prefers_j =
          i_match == -1 || left_rank[i][static_cast<std::size_t>(j)] <
                               left_rank[i][static_cast<std::size_t>(i_match)];
      const bool j_prefers_i =
          j_match == -1 ||
          right_rank[static_cast<std::size_t>(j)][i] <
              right_rank[static_cast<std::size_t>(j)][static_cast<std::size_t>(j_match)];
      if (i_prefers_j && j_prefers_i) return false;
    }
  }
  return true;
}

}  // namespace rdcn
