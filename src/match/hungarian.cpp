#include "match/hungarian.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace rdcn {

std::vector<std::int32_t> min_cost_assignment(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return {};
  for (const auto& row : cost) {
    if (row.size() != n) throw std::invalid_argument("assignment matrix must be square");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Classic O(n^3) Hungarian with 1-based row/column potentials
  // (see e.g. e-maxx); p[j] = row matched to column j.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::int32_t> assignment(n, -1);
  for (std::size_t j = 1; j <= n; ++j) {
    assignment[p[j] - 1] = static_cast<std::int32_t>(j - 1);
  }
  return assignment;
}

MatchingResult max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right) {
  MatchingResult result;
  if (edges.empty() || num_left == 0 || num_right == 0) return result;

  // Pad to a square matrix where cell (i, j) holds the best (heaviest)
  // edge between i and j; absent pairs cost 0, so the perfect assignment
  // on the padded matrix restricted to positive-weight cells is exactly a
  // maximum-weight matching.
  const std::size_t n = std::max(num_left, num_right);
  std::vector<std::vector<double>> gain(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<std::size_t>> best_edge(
      n, std::vector<std::size_t>(n, std::numeric_limits<std::size_t>::max()));
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto& e = edges[k];
    assert(e.left >= 0 && static_cast<std::size_t>(e.left) < num_left);
    assert(e.right >= 0 && static_cast<std::size_t>(e.right) < num_right);
    const auto i = static_cast<std::size_t>(e.left);
    const auto j = static_cast<std::size_t>(e.right);
    if (e.weight > gain[i][j]) {
      gain[i][j] = e.weight;
      best_edge[i][j] = k;
    }
  }

  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) cost[i][j] = -gain[i][j];
  }
  const auto assignment = min_cost_assignment(cost);
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(assignment[i]);
    if (gain[i][j] > 0.0 && best_edge[i][j] != std::numeric_limits<std::size_t>::max()) {
      result.edges.push_back(best_edge[i][j]);
      result.total_weight += gain[i][j];
    }
  }
  return result;
}

}  // namespace rdcn
