#include "match/hungarian.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace rdcn {

void HungarianWorkspace::solve(const double* cost, std::size_t rows, std::size_t cols,
                               std::vector<std::int32_t>& row_to_col) {
  row_to_col.assign(rows, -1);
  if (rows == 0) return;
  if (rows > cols) throw std::invalid_argument("assignment needs rows <= cols");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Classic O(n^3) Hungarian with 1-based row/column potentials (e-maxx /
  // Jonker-Volgenant), rectangular rows <= cols, plus two structural
  // changes. First, the Jonker-Volgenant initialization: column reduction
  // (v[j] = column minimum) and a greedy row pass matching each row to its
  // minimum reduced-cost column when still free -- on typical matrices
  // this assigns most rows up front, so the augmentation loop below only
  // runs for the leftovers. Second, inside an augmentation, columns not
  // yet in the alternating tree live in a swap-remove free list, so each
  // step touches only the still-free columns instead of scanning all of
  // them behind an `if (used)` branch. Column 0 is the virtual root;
  // p_[j] = row matched to column j.
  u_.assign(rows + 1, 0.0);
  v_.assign(cols + 1, 0.0);
  p_.assign(cols + 1, 0);
  way_.assign(cols + 1, 0);
  if (rows == cols) {
    // Column reduction is only dual-feasible when every column ends up
    // matched (complementary slackness needs v == 0 on unmatched columns),
    // i.e. for square problems; rectangular ones keep v = 0 and rely on
    // the row-minimum greedy pass alone.
    for (std::size_t j = 1; j <= cols; ++j) v_[j] = cost[j - 1];
    for (std::size_t i = 1; i < rows; ++i) {
      const double* row = cost + i * cols;  // row[j - 1] == cost[i][j-1]
      for (std::size_t j = 1; j <= cols; ++j) {
        if (row[j - 1] < v_[j]) v_[j] = row[j - 1];
      }
    }
  }
  for (std::size_t i = 1; i <= rows; ++i) {
    const double* row = cost + (i - 1) * cols;  // row[j - 1] == cost[i-1][j-1]
    double best = row[0] - v_[1];
    std::size_t best_j = 1;
    for (std::size_t j = 2; j <= cols; ++j) {
      const double cur = row[j - 1] - v_[j];
      if (cur < best) {
        best = cur;
        best_j = j;
      }
    }
    u_[i] = best;  // feasible: cost[i][j] - u[i] - v[j] >= 0 for every j
    if (p_[best_j] == 0) {
      p_[best_j] = i;  // reduced cost 0 on the matched cell
      row_to_col[i - 1] = static_cast<std::int32_t>(best_j - 1);
    }
  }
  for (std::size_t i = 1; i <= rows; ++i) {
    if (row_to_col[i - 1] >= 0) continue;  // matched by the greedy pass
    p_[0] = i;
    std::size_t j0 = 0;
    minv_.assign(cols + 1, kInf);
    free_cols_.clear();
    for (std::size_t j = 1; j <= cols; ++j) free_cols_.push_back(j);
    used_cols_.clear();
    used_cols_.push_back(0);
    do {
      const std::size_t i0 = p_[j0];
      const double* row = cost + (i0 - 1) * cols;  // row[j - 1] == cost[i0-1][j-1]
      const double ui0 = u_[i0];
      double delta = kInf;
      std::size_t best_pos = 0;
      for (std::size_t pos = 0; pos < free_cols_.size(); ++pos) {
        const std::size_t j = free_cols_[pos];
        const double cur = row[j - 1] - ui0 - v_[j];
        if (cur < minv_[j]) {
          minv_[j] = cur;
          way_[j] = j0;
        }
        if (minv_[j] < delta) {
          delta = minv_[j];
          best_pos = pos;
        }
      }
      const std::size_t j1 = free_cols_[best_pos];
      for (std::size_t j : used_cols_) {
        u_[p_[j]] += delta;
        v_[j] -= delta;
      }
      for (std::size_t j : free_cols_) minv_[j] -= delta;
      free_cols_[best_pos] = free_cols_.back();
      free_cols_.pop_back();
      used_cols_.push_back(j1);
      j0 = j1;
    } while (p_[j0] != 0);
    do {
      const std::size_t j1 = way_[j0];
      p_[j0] = p_[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  for (std::size_t j = 1; j <= cols; ++j) {
    if (p_[j] != 0) row_to_col[p_[j] - 1] = static_cast<std::int32_t>(j - 1);
  }
}

std::vector<std::int32_t> min_cost_assignment(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return {};
  std::vector<double> flat;
  flat.reserve(n * n);
  for (const auto& row : cost) {
    if (row.size() != n) throw std::invalid_argument("assignment matrix must be square");
    flat.insert(flat.end(), row.begin(), row.end());
  }
  HungarianWorkspace workspace;
  std::vector<std::int32_t> assignment;
  workspace.solve(flat.data(), n, n, assignment);
  return assignment;
}

MatchingResult max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right) {
  MatchingResult result;
  if (edges.empty() || num_left == 0 || num_right == 0) return result;
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  // Cell (i, j) holds minus the best (heaviest) gain between i and j;
  // absent pairs cost 0, so the optimal assignment restricted to
  // negative-cost cells is exactly a maximum-weight matching. Transpose so
  // rows is the smaller side (the solver is rectangular).
  // MaxWeightScheduler::select (baseline/schedulers.cpp) inlines this
  // encoding over its candidate list -- keep the two in sync.
  const bool transpose = num_left > num_right;
  const std::size_t rows = transpose ? num_right : num_left;
  const std::size_t cols = transpose ? num_left : num_right;
  std::vector<double> cost(rows * cols, 0.0);
  std::vector<std::size_t> best_edge(rows * cols, kNone);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto& e = edges[k];
    assert(e.left >= 0 && static_cast<std::size_t>(e.left) < num_left);
    assert(e.right >= 0 && static_cast<std::size_t>(e.right) < num_right);
    const auto i = static_cast<std::size_t>(transpose ? e.right : e.left);
    const auto j = static_cast<std::size_t>(transpose ? e.left : e.right);
    if (-e.weight < cost[i * cols + j]) {
      cost[i * cols + j] = -e.weight;
      best_edge[i * cols + j] = k;
    }
  }

  HungarianWorkspace workspace;
  std::vector<std::int32_t> assignment;
  workspace.solve(cost.data(), rows, cols, assignment);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto j = static_cast<std::size_t>(assignment[i]);
    const std::size_t cell = i * cols + j;
    if (cost[cell] < 0.0 && best_edge[cell] != kNone) {
      result.edges.push_back(best_edge[cell]);
      result.total_weight -= cost[cell];
    }
  }
  return result;
}

}  // namespace rdcn
