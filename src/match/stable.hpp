#pragma once

// Greedy stable matching on bipartite conflict graphs (Section III-A).
//
// A matching M is stable w.r.t. symmetric priorities if every request not
// in M is blocked by some request in M that shares an endpoint and has
// priority at least as high. With symmetric (edge-weight) priorities the
// greedy algorithm -- scan requests from highest to lowest priority, accept
// whenever both endpoints are free -- produces a stable matching; this is
// exactly the scheduler's per-step computation.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rdcn {

/// One unit of work wanting to occupy (left, right) for the step.
struct MatchRequest {
  std::int32_t left = 0;   ///< e.g. transmitter index
  std::int32_t right = 0;  ///< e.g. receiver index
};

/// Greedily accepts requests in the given order (the caller sorts by
/// priority, highest first, with its own tie-breaking); a request is
/// accepted iff neither endpoint is taken by an earlier accepted request.
/// Returns the indices (into `requests`) of accepted requests, in order.
std::vector<std::size_t> greedy_stable_matching(std::span<const MatchRequest> requests,
                                                std::size_t num_left,
                                                std::size_t num_right);

/// For every rejected request, finds the accepted request that blocks it:
/// the earliest accepted request (in priority order) sharing an endpoint.
/// result[i] == accepted index for rejected i, or SIZE_MAX for accepted
/// requests (they block themselves). Used by the charging auditor.
std::vector<std::size_t> blocking_witness(std::span<const MatchRequest> requests,
                                          std::span<const std::size_t> accepted,
                                          std::size_t num_left, std::size_t num_right);

/// Validates the defining property: `accepted` is a matching and every
/// rejected request conflicts with an accepted request of lower index
/// (i.e. priority at least as high under the caller's order).
bool is_stable_selection(std::span<const MatchRequest> requests,
                         std::span<const std::size_t> accepted, std::size_t num_left,
                         std::size_t num_right);

}  // namespace rdcn
