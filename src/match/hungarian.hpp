#pragma once

// Maximum-weight bipartite matching via the Hungarian algorithm (O(n^3)
// Jonker-Volgenant style with potentials). Substrate for the MaxWeight
// baseline scheduler, which transmits a maximum-weight matching per step
// (the classic crossbar-throughput policy of McKeown et al. [49]).

#include <cstdint>
#include <vector>

namespace rdcn {

struct WeightedBipartiteEdge {
  std::int32_t left = 0;
  std::int32_t right = 0;
  double weight = 0.0;
};

struct MatchingResult {
  std::vector<std::size_t> edges;  ///< indices into the input edge list
  double total_weight = 0.0;
};

/// Maximum-weight (not necessarily perfect, not necessarily maximum-
/// cardinality) matching: only edges with positive weight contribute, and
/// the matching maximizes the total weight. Negative-weight edges are never
/// selected. O((L+R)^3).
MatchingResult max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right);

/// Minimum-cost assignment on a dense square matrix: returns, for each row,
/// the assigned column. cost[i][j] may be any finite double. O(n^3).
std::vector<std::int32_t> min_cost_assignment(const std::vector<std::vector<double>>& cost);

}  // namespace rdcn
