#pragma once

// Maximum-weight bipartite matching via the Hungarian algorithm (O(n^3)
// Jonker-Volgenant style with potentials). Substrate for the MaxWeight
// baseline scheduler, which transmits a maximum-weight matching per step
// (the classic crossbar-throughput policy of McKeown et al. [49]).
//
// The workhorse is HungarianWorkspace: a reusable, allocation-free (after
// first growth) solver over a caller-owned row-major cost matrix, so the
// per-round scheduling hot path can run it on the k_active x k_active
// submatrix of busy endpoints without touching the heap. The vector-based
// free functions below are convenience wrappers for tests and one-shot
// callers.

#include <cstdint>
#include <vector>

namespace rdcn {

struct WeightedBipartiteEdge {
  std::int32_t left = 0;
  std::int32_t right = 0;
  double weight = 0.0;
};

struct MatchingResult {
  std::vector<std::size_t> edges;  ///< indices into the input edge list
  double total_weight = 0.0;
};

/// Reusable min-cost assignment solver. One instance per caller; internal
/// arrays grow to the high-water problem size once and are then reused, so
/// steady-state solve() calls perform zero heap allocations (the output
/// vector included, once at capacity).
class HungarianWorkspace {
 public:
  /// Minimum-cost assignment of every row to a distinct column on the
  /// rows x cols (rows <= cols) row-major matrix `cost`; cost[i*cols + j]
  /// may be any finite double. Writes the assigned column of each row into
  /// `row_to_col` (resized to rows). O(rows^2 * cols). Among equal-cost
  /// optima the tie-break is deterministic but unspecified.
  void solve(const double* cost, std::size_t rows, std::size_t cols,
             std::vector<std::int32_t>& row_to_col);

 private:
  std::vector<double> u_, v_, minv_;
  std::vector<std::size_t> p_, way_, free_cols_, used_cols_;
};

/// Maximum-weight (not necessarily perfect, not necessarily maximum-
/// cardinality) matching: only edges with positive weight contribute, and
/// the matching maximizes the total weight. Negative-weight edges are never
/// selected. O((L+R)^3).
MatchingResult max_weight_matching(const std::vector<WeightedBipartiteEdge>& edges,
                                   std::size_t num_left, std::size_t num_right);

/// Minimum-cost assignment on a dense square matrix: returns, for each row,
/// the assigned column. cost[i][j] may be any finite double. O(n^3).
std::vector<std::int32_t> min_cost_assignment(const std::vector<std::vector<double>>& cost);

}  // namespace rdcn
