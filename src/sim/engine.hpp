#pragma once

// Time-stepped simulation engine for the model of Section II.
//
// Timeline per integral step tau:
//   1. every packet with arrival == tau is dispatched (in sequence order)
//      and its chunks join the pending pool;
//   2. `speedup_rounds` scheduling rounds run; each transmits a matching of
//      pending chunks (one chunk per busy transmitter/receiver per round);
//   3. transmitted chunks complete at tau + 1 + d(src,t) + d(r,dest) and
//      their weighted latency w_c * (completion - a_p) is accounted.
//
// speedup_rounds = 1 is the paper's unit-speed algorithm (the analysis puts
// the 1/(2+eps) slowdown on OPT instead); k > 1 realizes an integral
// algorithm-side speedup for the ablation experiments.
//
// The engine runs in one of two modes sharing the identical stepping code
// (so a streamed run over a recorded arrival sequence reproduces the batch
// schedule bit-for-bit):
//
//  * batch: constructed from an Instance, run() simulates the whole packet
//    sequence and returns a RunResult with every PacketOutcome;
//  * streaming: constructed from a Topology plus a retirement sink; the
//    caller injects packets online (begin_step / inject / finish_step) and
//    completed packets leave through the sink instead of accumulating, so
//    resident per-packet state is O(in-flight), not O(total served) --
//    the mode behind traffic/'s open-loop steady-state runs.
//
// Hot-path design (the engine is the inner loop of every bench and the
// ScenarioRunner fan-out):
//  * the pending-candidate list is maintained incrementally in chunk
//    priority order -- a packet's (chunk_weight, arrival, id) key never
//    changes, so candidates are sorted once at dispatch (batch-merged per
//    step through a reusable merge buffer) and handed to
//    SchedulePolicy::select without per-step rebuild or re-sort;
//  * the steady-state round loop performs zero heap allocations: the
//    scheduler fills an engine-owned Selection scratch in place, the
//    reconfiguration-delay filter and the completed-candidate compaction
//    work on reusable buffers, and every registry policy keeps its own
//    working storage in members (pinned by tests/test_hotpath.cpp);
//  * active-endpoint compression: active_endpoints() exposes a per-round
//    dense remap of only the transmitters/receivers that currently carry
//    pending candidates, so matching computations (MaxWeight's Hungarian,
//    the greedy/iSLIP passes) run over k_active-sized state instead of
//    topology-sized arrays;
//  * per-endpoint queues carry index maps, so removing a finished packet
//    costs the queue tail shift instead of a full scan, and completed
//    candidates leave the global list in one compaction pass per round;
//  * dispatch-side queries go through an incremental per-endpoint impact
//    index (sim/impact_index.hpp): integer chunk-load counters make JSQ's
//    edge load O(1), and weight-keyed order-statistic treaps answer
//    impact_of's |H|/w(L) split in O(log n) instead of scanning both
//    endpoint queues per candidate edge. The engine feeds the index at the
//    same three lifecycle points that maintain the queues (dispatch,
//    per-chunk service, unlisting); the weight structures are enabled
//    lazily by the first impact_split() call and decay during long
//    non-impact drains, so non-impact policies pay only the O(1) counters;
//  * per-packet state lives in a sliding window of dense arrays indexed by
//    (id - window base); retired prefixes are compacted away amortized
//    O(1), which is what bounds streaming memory; batch mode preallocates
//    the window and outcome arrays from the instance size;
//  * matching validation uses round-stamped scratch arrays instead of
//    per-round allocations sized by the topology;
//  * time advances event-driven: when no chunk is pending the clock jumps
//    to the next arrival instead of simulating empty steps.

#include <functional>
#include <memory>
#include <vector>

#include "net/instance.hpp"
#include "sim/chunk_steps.hpp"
#include "util/fault.hpp"
#include "sim/impact_index.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "sim/probe.hpp"

namespace rdcn {

struct EngineOptions {
  int speedup_rounds = 1;
  /// Record per-step blocking information (needed by the charging auditor
  /// and the figure benches). Only meaningful with speedup_rounds == 1,
  /// endpoint_capacity == 1 and reconfig_delay == 0 (the analysis model).
  /// Batch mode only.
  bool record_trace = false;
  /// Hard stop; exceeding it throws, catching schedulers that starve
  /// packets. Batch mode: 0 derives a bound from Instance::horizon_bound().
  /// Streaming mode: 0 disables the guard (the driver owns termination).
  Time max_steps = 0;
  /// b-matching extension: each transmitter/receiver may carry up to this
  /// many simultaneous edges per step (each edge still carries one chunk).
  /// 1 = the paper's matching model.
  int endpoint_capacity = 1;
  /// Reconfiguration-delay extension: retargeting an endpoint to a new
  /// edge keeps it dark for this many steps (0 = the paper's free
  /// reconfiguration). Requires endpoint_capacity == 1.
  Delay reconfig_delay = 0;
  /// Restricted-migration ablation: every step, packets that have not yet
  /// transmitted ANY chunk are handed back to the dispatcher (in their
  /// original order) and may change route. The paper's ALG is
  /// non-migratory (false); OPT in the analysis is fully migratory -- this
  /// probes the gap for queued packets. Incompatible with record_trace.
  /// Batch mode only.
  bool redispatch_queued = false;
  /// Per-step invariant audit (check/): the engine carries an
  /// InvariantAuditor that independently re-derives matching feasibility,
  /// conservation, clock monotonicity and per-packet completion accounting
  /// from the observed events, throwing AuditFailure on any violation.
  /// Works in both modes; costs a constant factor, so it is off by default
  /// and turned on by tests, golden replays and the fuzz driver.
  bool audit = false;
  /// Observability (sim/probe.hpp): phase profiler + counter/gauge
  /// registry over the scheduling round, optional raw-span ring for Chrome
  /// trace export. Purely observational -- schedules are bit-for-bit
  /// identical either way -- and allocation-free at steady state when on.
  /// Both modes. (Kept after the scalar options so their designated
  /// initializers stay valid.)
  ProbeConfig probe{};
  /// Cooperative cancellation (util/fault.hpp): when set, begin_step
  /// checks the token (one relaxed load) and throws CancelledError at the
  /// first step boundary after it fires -- the same step-edge contract as
  /// apply_mutation. Null (the default, when no deadline is armed) costs
  /// one pointer test on the hot path. The token must outlive the run.
  const CancelToken* cancel = nullptr;
};

/// Per-packet outcome of a run.
struct PacketOutcome {
  RouteDecision route;
  /// Transmit step of chunk i (reconfigurable route only), size d(e_p).
  ChunkSteps chunk_transmit_steps;
  Time completion = 0;          ///< time the last fraction reaches dest(p)
  double weighted_latency = 0;  ///< sum over fractions of w*x*(finish - a_p)
  /// The packet never completed: its edge was killed by a StageMutation (or
  /// it arrived for a pair with no surviving route). completion stays 0;
  /// weighted_latency keeps the chunks already accounted (wasted service).
  bool dropped = false;
};

/// What happens to in-flight packets whose assigned edge a StageMutation
/// kills. Fixed-route packets retire at dispatch and are never affected.
enum class DeadPolicy {
  /// Retire immediately as dropped (outcome.dropped; partial latency kept).
  Drop,
  /// Packets with no transmitted chunk are handed back to the dispatcher
  /// and may re-route over surviving edges or the fixed layer; packets
  /// mid-transmit still drop (routing is non-migratory, Section II).
  Requeue,
};

/// One atomic engine/topology mutation. Valid only at a step boundary
/// (between finish_step() and the next begin_step()): the engine patches
/// the candidate list, the per-endpoint queues, the impact index and the
/// affected in-flight packets together, then cross-checks the index
/// against a rebuild from scratch. Restores apply before kills, so an edge
/// named by both ends up dead.
struct StageMutation {
  std::vector<EdgeIndex> kill_edges;
  std::vector<EdgeIndex> restore_edges;
  /// Rack granularity: index r kills/restores every reconfigurable edge
  /// whose transmitter attaches to source r or whose receiver attaches to
  /// destination r. Fixed direct links never die (the hybrid safety net).
  std::vector<NodeIndex> kill_racks;
  std::vector<NodeIndex> restore_racks;
  int speedup_rounds = 0;     ///< scheduling rounds per step; 0 = keep current
  int endpoint_capacity = 0;  ///< b-matching capacity; 0 = keep current
  DeadPolicy dead_policy = DeadPolicy::Drop;

  bool is_noop() const noexcept {
    return kill_edges.empty() && restore_edges.empty() && kill_racks.empty() &&
           restore_racks.empty() && speedup_rounds == 0 && endpoint_capacity == 0;
  }
};

/// Effect summary of one Engine::apply_mutation call.
struct MutationStats {
  std::size_t edges_killed = 0;    ///< alive -> dead transitions
  std::size_t edges_restored = 0;  ///< dead -> alive transitions
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_requeued = 0;
};

/// A mutation pinned to a clock time: it takes effect for every step with
/// now() >= at (drive loops apply it before the first such step begins,
/// clamping idle jumps so no stage edge is skipped).
struct TimedMutation {
  Time at = 0;
  StageMutation mutation;
};

/// What the streaming retirement sink receives when a packet completes
/// (for fixed-route packets: immediately at dispatch; for reconfigurable
/// routes: at the step its last chunk transmits).
struct RetiredPacket {
  PacketIndex id = 0;
  Time arrival = 0;
  Weight weight = 0.0;
  PacketOutcome outcome;
};

/// Retirement callback of a streaming engine. Called once per packet, in
/// completion order (not id order).
using RetireSink = std::function<void(RetiredPacket&&)>;

/// Dense remap of the endpoints that currently carry pending candidates
/// (built per scheduling round; see Engine::active_endpoints). Ranks are
/// assigned in order of first appearance in the priority-sorted candidate
/// list, so they are deterministic in the engine state.
struct ActiveEndpoints {
  std::vector<NodeIndex> transmitters;  ///< dense rank -> topology id
  std::vector<NodeIndex> receivers;

  std::size_t num_transmitters() const noexcept { return transmitters.size(); }
  std::size_t num_receivers() const noexcept { return receivers.size(); }

  /// topology id -> dense rank. Valid ONLY for endpoints that appear in
  /// the candidate list the map was built from (entries for inactive
  /// endpoints are stale, deliberately: no O(topology) clear per round).
  std::int32_t transmitter_rank(NodeIndex t) const {
    return transmitter_rank_[static_cast<std::size_t>(t)];
  }
  std::int32_t receiver_rank(NodeIndex r) const {
    return receiver_rank_[static_cast<std::size_t>(r)];
  }

 private:
  friend class Engine;
  std::vector<std::int32_t> transmitter_rank_;
  std::vector<std::int32_t> receiver_rank_;
};

/// Per-step record used by the charging auditor: for every packet pending
/// at the step, whether one of its chunks was transmitted, and if not,
/// which packet's transmitted chunk blocked it.
struct StepPacketRecord {
  PacketIndex packet = 0;
  bool transmitted = false;
  PacketIndex blocker = -1;  ///< valid iff !transmitted
};

struct StepRecord {
  Time time = 0;
  std::vector<StepPacketRecord> packets;
  std::size_t matching_size = 0;
};

struct RunResult {
  std::vector<PacketOutcome> outcomes;  ///< batch mode only; empty streamed
  double total_cost = 0.0;     ///< total weighted fractional latency
  double reconfig_cost = 0.0;  ///< share routed over the reconfigurable layer
  double fixed_cost = 0.0;     ///< share routed over fixed direct links
  Time makespan = 0;           ///< last completion time
  Time steps_simulated = 0;
  std::vector<StepRecord> trace;  ///< nonempty iff record_trace
  ProbeReport probe;  ///< filled (enabled = true) iff EngineOptions::probe
};

class Engine {
 public:
  /// Batch mode: simulate a full Instance via run().
  Engine(const Instance& instance, DispatchPolicy& dispatcher, SchedulePolicy& scheduler,
         EngineOptions options = {});

  /// Streaming mode: packets are injected online in id order (ids
  /// sequential from 0, arrivals nondecreasing); completed packets leave
  /// through `sink`. record_trace and redispatch_queued are unavailable.
  Engine(const Topology& topology, DispatchPolicy& dispatcher, SchedulePolicy& scheduler,
         EngineOptions options, RetireSink sink);

  /// Runs the full simulation to completion and returns the result.
  /// Batch mode only.
  RunResult run();

  /// Batch-mode run under a stage schedule: mutations sorted by `at`
  /// (nondecreasing) are applied at step boundaries so that every step
  /// with now() >= at executes post-mutation. The idle jump is clamped to
  /// the next stage edge, so schedules are honored even across arrival
  /// gaps. Incompatible with record_trace and redispatch_queued.
  RunResult run(const std::vector<TimedMutation>& schedule);

  // --- stage mutations ----------------------------------------------------

  /// Applies one mutation atomically at a step boundary (throws between
  /// begin_step and finish_step). Patches candidates, endpoint queues and
  /// the impact index together, drops or requeues in-flight packets on
  /// dead edges, then cross-checks the index bit-for-bit against a rebuild
  /// from scratch. Both modes.
  MutationStats apply_mutation(const StageMutation& mutation);

  /// False only for reconfigurable edges killed by a StageMutation.
  bool edge_alive(EdgeIndex e) const noexcept {
    return dead_edges_ == 0 || edge_alive_[static_cast<std::size_t>(e)] != 0;
  }
  std::size_t dead_edge_count() const noexcept { return dead_edges_; }

  /// candidate_edges_into() restricted to alive edges -- what dispatchers
  /// route over. The common no-failures case is a pass-through (zero-cost:
  /// one integer compare).
  void viable_edges_into(NodeIndex source, NodeIndex destination,
                         std::vector<EdgeIndex>& out) const;

  /// True if source->destination still has some way through: a fixed
  /// direct link, or at least one alive reconfigurable edge.
  bool has_viable_route(NodeIndex source, NodeIndex destination) const;

  std::uint64_t packets_dropped() const noexcept { return dropped_count_; }
  std::uint64_t packets_requeued() const noexcept { return requeued_count_; }

  // --- streaming interface ------------------------------------------------
  //
  // One engine step is exactly run()'s loop body:
  //   begin_step(next_arrival);              // clock advance + step guard
  //   while (arrival == now()) inject(p);    // dispatch this step's packets
  //   finish_step();                         // scheduling rounds, retirement
  // Driving a streaming engine with a pre-recorded arrival sequence
  // therefore reproduces the batch engine's schedule bit-for-bit.

  /// True while any chunk is pending on the reconfigurable layer.
  bool busy() const noexcept { return !candidates_.empty() || !staged_.empty(); }

  /// Advances the clock one step -- jumping to *next_arrival when idle --
  /// and counts the step against max_steps. Pass the arrival time of the
  /// earliest not-yet-injected packet, or nullptr when the arrival stream
  /// is exhausted (drain).
  void begin_step(const Time* next_arrival);

  /// Dispatches one packet at the current step (packet.arrival must equal
  /// now(), packet.id must be the next sequential id). Streaming mode.
  void inject(const Packet& packet);

  /// Runs the step's scheduling rounds and retires completed packets.
  void finish_step();

  /// Aggregate costs/makespan accumulated so far (streaming mode: the
  /// outcomes vector stays empty; per-packet data leaves via the sink).
  const RunResult& aggregates() const noexcept { return result_; }

  /// Packets dispatched but not yet retired.
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// Current / peak number of resident per-packet window slots -- the
  /// memory-bounding quantity: O(in-flight span), not O(total served).
  std::size_t resident_slots() const noexcept { return state_.size(); }
  std::size_t peak_resident_slots() const noexcept { return peak_resident_; }
  std::uint64_t packets_dispatched() const noexcept { return dispatched_count_; }
  std::uint64_t packets_retired() const noexcept { return retired_count_; }

  // --- read-only view for policies ---------------------------------------

  /// Batch mode only (streaming engines have no Instance); policies use
  /// topology()/options() and the per-packet accessors below instead.
  const Instance& instance() const noexcept { return *instance_; }
  const Topology& topology() const noexcept { return *topology_; }
  const EngineOptions& options() const noexcept { return options_; }
  Time now() const noexcept { return now_; }

  /// Packets committed to a reconfigurable edge at transmitter t / receiver
  /// r that still have untransmitted chunks. Unordered (removal is
  /// swap-remove): consumers must aggregate order-independently, which
  /// every dispatcher's accounting does. The dispatch hot paths no longer
  /// scan these queues (they query the impact index below, whose
  /// canonical-shape summation is queue-order independent); the queues
  /// remain the authority for membership and for check/'s naive-scan
  /// oracle.
  const std::vector<PacketIndex>& pending_on_transmitter(NodeIndex t) const {
    return pending_by_transmitter_.at(static_cast<std::size_t>(t));
  }
  const std::vector<PacketIndex>& pending_on_receiver(NodeIndex r) const {
    return pending_by_receiver_.at(static_cast<std::size_t>(r));
  }

  /// All pending reconfigurable-route candidates, in decreasing chunk
  /// priority -- the exact list SchedulePolicy::select receives. Same-step
  /// arrivals staged since the last scheduling round are not yet merged.
  const std::vector<Candidate>& pending_candidates() const noexcept { return candidates_; }

  /// Dense remap of the endpoints carrying candidates in `candidates`.
  /// When called on the engine's own pending list (the normal select()
  /// path) the map is built at most once per scheduling round
  /// (round-stamped); a foreign list -- bench harnesses isolating one
  /// select call -- rebuilds into the same reusable buffers. Either way
  /// the build allocates nothing at steady state.
  const ActiveEndpoints& active_endpoints(const std::vector<Candidate>& candidates) const;

  /// Per-packet accessors; valid for pending (dispatched, unretired)
  /// packets -- the ones policies see in queues and candidate lists.
  EdgeIndex assigned_edge(PacketIndex p) const { return state_[slot(p)].route.edge; }
  std::int64_t remaining_chunks(PacketIndex p) const { return remaining_[slot(p)]; }
  Weight chunk_weight(PacketIndex p) const { return chunk_weight_[slot(p)]; }
  /// Transmitter of the packet's assigned edge (-1 on the fixed route); a
  /// dense mirror so the dispatch-time queue scans (impact_of, JSQ) avoid
  /// chasing PacketState + the topology edge array per entry.
  NodeIndex assigned_transmitter(PacketIndex p) const { return assigned_transmitter_[slot(p)]; }

  /// The incremental impact index's always-on integer-load view (JSQ's
  /// edge_load, pair grouping). Never enables the weight structures.
  const ImpactIndex& impact_index() const noexcept { return impact_index_; }

  /// The observability probe; null unless EngineOptions::probe.enabled.
  /// Streaming drivers read it live (telemetry windows diff its report);
  /// batch mode also copies the final report into RunResult::probe.
  const Probe* probe() const noexcept { return probe_; }
  Probe* probe() noexcept { return probe_; }

  /// O(log n) |H_p(e)| / w(L_p(e)) split at `threshold` = w_p/d(e) -- the
  /// hot path behind impact_of. Enables (or rebuilds after decay) the
  /// index's weight structures on first use; `mutable` for the same reason
  /// as the active-endpoint cache: a lazily-built view behind the const
  /// policy interface.
  ImpactSplit impact_split(EdgeIndex e, double threshold) const;

  /// Per-edge constants derived from the topology once at construction.
  /// Folding them into one cache line per edge keeps the per-candidate
  /// dispatch math (impact_of's deterministic terms) and the per-chunk
  /// completion accounting off the topology's bounds-checked scattered
  /// arrays. base_coeff keeps the exact association of the formula it
  /// replaces, so Delta values are bit-identical.
  struct EdgeMeta {
    double base_coeff = 0.0;  ///< d(u) + (d(e) + 1)/2 + d(v)
    double delay = 1.0;       ///< d(e)
    Delay attach_tail = 0;    ///< d(src(t), t) + d(r, dest(r))
  };
  const EdgeMeta& edge_meta(EdgeIndex e) const {
    return edge_meta_[static_cast<std::size_t>(e)];
  }

 private:
  struct PacketState {
    RouteDecision route;
    Time arrival = 0;
    Weight weight = 0.0;
    /// Endpoints kept per packet so stage mutations can re-dispatch or
    /// route-check in-flight packets without an Instance (streaming mode
    /// has no packet sequence to look them up in).
    NodeIndex source = 0;
    NodeIndex destination = 0;
    bool dispatched = false;
    bool retired = false;
  };

  void init(EngineOptions options);
  std::size_t slot(PacketIndex p) const {
    return static_cast<std::size_t>(p - window_base_);
  }
  /// Creates the window slot for the next sequential packet id.
  void append_slot(const Packet& packet);
  /// Moves a completed packet's outcome out of the window (to the sink in
  /// streaming mode, to result_.outcomes in batch mode) and compacts the
  /// window's retired prefix.
  void retire_packet(PacketIndex packet);
  void compact_window();
  void dispatch_arrivals();
  /// Applies a dispatch decision to a packet (enqueue on edge or fixed).
  void apply_route(const Packet& packet, const RouteDecision& route);
  /// Folds candidates staged by apply_route into the priority-sorted list.
  void merge_staged_candidates();
  /// Removes a not-yet-started packet from the pending structures.
  void unlist_pending(PacketIndex packet);
  /// Order-preserving removal from one per-endpoint queue via its index map.
  void erase_from_queue(std::vector<PacketIndex>& queue,
                        std::vector<std::int32_t>& position, PacketIndex packet);
  /// Restricted migration: re-dispatches packets with no transmitted chunk.
  void redispatch_queued_packets();
  /// One scheduling round; returns number of chunks transmitted.
  std::size_t schedule_round(bool record);
  bool work_left() const;
  /// Retires `packet` without completion: marks the outcome dropped and
  /// delivers it (sink / result_.outcomes) like a normal retirement.
  void drop_packet(PacketIndex packet);
  /// Verifies the incremental impact index against a rebuild from scratch
  /// (integer loads always; treap splits when the weight structures are
  /// live). Throws std::logic_error on any mismatch. Called after every
  /// apply_mutation -- mutations are cold, rebuilds are O(n log n).
  void crosscheck_impact_index();

  const Instance* instance_ = nullptr;  ///< null in streaming mode
  const Topology* topology_ = nullptr;
  DispatchPolicy* dispatcher_;
  SchedulePolicy* scheduler_;
  EngineOptions options_;
  RetireSink sink_;  ///< set iff streaming mode
  std::unique_ptr<EngineObserver> auditor_;  ///< set iff options_.audit
  std::unique_ptr<Probe> probe_store_;  ///< set iff options_.probe.enabled
  /// Raw mirror of probe_store_: the hot-path sites branch on one pointer;
  /// const views (impact_split) still time themselves through it.
  Probe* probe_ = nullptr;

  /// Reconfiguration-delay state: what each endpoint is tuned (or tuning)
  /// to, and when it becomes usable. Only consulted when reconfig_delay > 0.
  struct EndpointConfig {
    EdgeIndex target = kInvalidEdge;
    Time ready = 0;
  };
  std::vector<EndpointConfig> transmitter_config_;
  std::vector<EndpointConfig> receiver_config_;

  Time now_ = 0;
  std::size_t next_arrival_ = 0;  ///< batch: first not-yet-dispatched packet

  /// Sliding per-packet window: slot i holds packet window_base_ + i.
  /// Slots are appended in id order at dispatch and compacted away once a
  /// retired prefix accumulates. Dense per-packet mirrors of the fields
  /// the dispatch hot loops read (impact_of / JSQ scan whole per-endpoint
  /// queues) stay separate arrays so those scans sit in few cache lines.
  PacketIndex window_base_ = 0;
  std::size_t front_retired_ = 0;  ///< length of the window's retired prefix
  std::vector<PacketState> state_;
  std::vector<std::int64_t> remaining_;  ///< untransmitted chunks
  std::vector<Weight> chunk_weight_;
  std::vector<NodeIndex> assigned_transmitter_;  ///< -1 on the fixed route
  std::vector<PacketOutcome> outcomes_;
  std::size_t in_flight_ = 0;
  std::size_t peak_resident_ = 0;
  std::uint64_t dispatched_count_ = 0;
  std::uint64_t retired_count_ = 0;
  std::uint64_t dropped_count_ = 0;
  std::uint64_t requeued_count_ = 0;

  /// Stage-mutation state. dead_edges_ == 0 is the steady-state fast path:
  /// edge_alive() and viable_edges_into() reduce to one compare, so runs
  /// without mutations pay nothing. step_open_ guards the step-boundary
  /// contract of apply_mutation.
  std::vector<char> edge_alive_;
  std::size_t dead_edges_ = 0;
  bool step_open_ = false;
  /// Mutation-path scratch (cold): packets affected by a kill, and the
  /// route-check buffer behind has_viable_route.
  std::vector<PacketIndex> mutation_scratch_;
  mutable std::vector<EdgeIndex> route_scratch_;

  /// Pending candidates in decreasing chunk priority; the list handed to
  /// the scheduler. Maintained incrementally: same-step dispatches stage
  /// into staged_ and are batch-merged before the next scheduling round.
  std::vector<Candidate> candidates_;
  std::vector<Candidate> staged_;

  /// Per-endpoint queues (dispatch order, as impact_of's accounting
  /// expects) with per-packet index maps (window-slot indexed) for
  /// scan-free removal.
  std::vector<std::vector<PacketIndex>> pending_by_transmitter_;
  std::vector<std::vector<PacketIndex>> pending_by_receiver_;
  std::vector<std::int32_t> queue_pos_transmitter_;  ///< window slot -> index
  std::vector<std::int32_t> queue_pos_receiver_;

  /// Round-stamped scratch for selection validation (replaces per-round
  /// allocations sized by the topology).
  std::uint64_t round_serial_ = 0;
  std::vector<std::uint64_t> edge_used_round_;
  std::vector<std::uint64_t> load_t_round_, load_r_round_;
  std::vector<int> load_t_, load_r_;
  std::vector<PacketIndex> owner_t_, owner_r_;  ///< valid iff round matches
  std::vector<std::uint64_t> chosen_round_;     ///< per candidate index

  std::vector<EdgeMeta> edge_meta_;  ///< per-edge constants (see edge_meta())

  /// Reusable round-loop scratch: the Selection handed to the scheduler,
  /// the merge buffer behind merge_staged_candidates, and the finished-
  /// candidate list of the post-transmit compaction. All grow-once.
  Selection selection_;
  std::vector<Candidate> merge_scratch_;
  std::vector<std::size_t> finished_scratch_;

  /// Incremental per-endpoint impact index; fed at dispatch, per-chunk
  /// service, and unlisting. Mutable: weight structures build lazily
  /// behind the const impact_split() view.
  mutable ImpactIndex impact_index_;

  /// Active-endpoint compression cache (see active_endpoints()); mutable
  /// because policies pull it lazily through the const engine view.
  mutable ActiveEndpoints active_;
  mutable std::uint64_t active_serial_ = 0;  ///< select_serial_ it was built at
  std::uint64_t select_serial_ = 0;          ///< bumped before every select()

  RunResult result_;
};

/// Convenience wrapper: build an engine, run, return the result.
RunResult simulate(const Instance& instance, DispatchPolicy& dispatcher,
                   SchedulePolicy& scheduler, EngineOptions options = {});

/// The default starvation guard for a finite packet sequence: generous
/// (demand-oblivious baselines like rotor can take a full matching cycle
/// per chunk, far beyond the paper's reasonable-schedule horizon), so it
/// only catches outright starvation. Used by the batch Engine constructor
/// when EngineOptions::max_steps == 0 and by StreamRunner trace replays.
Time default_max_steps(const Instance& instance, Delay reconfig_delay);

}  // namespace rdcn
