#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace rdcn {

namespace {

char packet_glyph(PacketIndex packet) {
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kAlphabet[static_cast<std::size_t>(packet) % 62];
}

}  // namespace

std::string render_gantt(const Instance& instance, const RunResult& result,
                         const GanttOptions& options) {
  const Topology& topology = instance.topology();

  Time from = options.from;
  if (from <= 0) {
    from = instance.num_packets() ? instance.packets().front().arrival : 1;
  }
  Time until = options.until;
  if (until <= 0) until = std::max<Time>(result.makespan, from);
  until = std::min<Time>(until, from + static_cast<Time>(options.max_width) - 1);
  const auto width = static_cast<std::size_t>(until - from + 1);

  std::vector<std::string> t_rows(static_cast<std::size_t>(topology.num_transmitters()),
                                  std::string(width, '.'));
  std::vector<std::string> r_rows(static_cast<std::size_t>(topology.num_receivers()),
                                  std::string(width, '.'));

  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.route.use_fixed) continue;
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    for (Time transmit : outcome.chunk_transmit_steps) {
      if (transmit < from || transmit > until) continue;
      const auto column = static_cast<std::size_t>(transmit - from);
      t_rows[static_cast<std::size_t>(edge.transmitter)][column] =
          packet_glyph(static_cast<PacketIndex>(i));
      r_rows[static_cast<std::size_t>(edge.receiver)][column] =
          packet_glyph(static_cast<PacketIndex>(i));
    }
  }

  std::ostringstream out;
  out << "time " << from << " .. " << until << " (glyph = packet id mod 62)\n";
  for (NodeIndex t = 0; t < topology.num_transmitters(); ++t) {
    out << "t" << t << "\t|" << t_rows[static_cast<std::size_t>(t)] << "|\n";
  }
  if (options.show_receivers) {
    for (NodeIndex r = 0; r < topology.num_receivers(); ++r) {
      out << "r" << r << "\t|" << r_rows[static_cast<std::size_t>(r)] << "|\n";
    }
  }
  if (options.show_fixed) {
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      if (!result.outcomes[i].route.use_fixed) continue;
      out << "fixed p" << i << ": " << instance.packets()[i].arrival << " .. "
          << result.outcomes[i].completion << "\n";
    }
  }
  return out.str();
}

}  // namespace rdcn
