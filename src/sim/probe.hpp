#pragma once

// In-engine observability: a phase profiler plus a fixed-slot counter and
// gauge registry, compiled in always and off by default.
//
// Design constraints (both pinned by tests):
//  * zero overhead when off -- the engine holds a nullable Probe*, every
//    instrumentation site is one branch on it, and Span's constructor on a
//    null probe does nothing (no clock read);
//  * zero heap allocations at steady state when ON -- counters and gauges
//    are fixed arrays, the span stack is a fixed-depth array, and the raw
//    span ring is pre-sized at construction with drop-oldest overflow (the
//    discarded spans are counted in Counter::DroppedEvents), so enabling
//    the probe never perturbs the allocation profile the hot-path tests
//    pin -- nor the schedule: instrumentation only observes, which the
//    probe-enabled goldens in test_engine_regression verify bit-for-bit.
//
// The phase profiler measures the named phases of a scheduling round with
// RAII spans. Phases nest (impact-index queries run inside dispatch); each
// phase accumulates both total (inclusive) and self (exclusive) time, the
// latter by subtracting child time on the span stack, so the self times of
// a round partition its wall clock without double counting. The raw spans
// optionally land in a ring buffer exportable as a Chrome trace-event JSON
// document (util/trace.hpp) for timeline inspection in Perfetto.

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/trace.hpp"

namespace rdcn {

/// The engine's round phases, in round order. Dispatch covers the
/// per-step packet dispatch (policy decision + route application);
/// IndexMaintenance the impact index's lazy rebuild + deferred-event flush
/// + query, nested inside Dispatch (or Select, for index-using
/// schedulers); MergeCompact both the staged-candidate merge and the
/// post-round completed-candidate compaction; Service the chunk transmit
/// and retirement accounting.
enum class Phase : std::uint8_t {
  Dispatch = 0,
  IndexMaintenance,
  Select,
  Validate,
  Service,
  MergeCompact,
};
inline constexpr std::size_t kNumPhases = 6;
const char* to_string(Phase phase);

/// Monotone counters. IndexRebuilds mirrors ImpactIndex::rebuilds() (set,
/// not incremented, by the engine once per round); DroppedEvents counts
/// ring-overflow span discards and is maintained by the probe itself.
enum class Counter : std::uint8_t {
  Rounds = 0,
  ChunksTransmitted,
  PacketsDispatched,
  PacketsRetired,
  CandidatesMerged,
  ImpactQueries,
  IndexRebuilds,
  DroppedEvents,
  PacketsDropped,   ///< failure-injection drops (StageMutation / dead routes)
  PacketsRequeued,  ///< packets re-dispatched off a killed edge
  StageMutations,   ///< apply_mutation calls
};
inline constexpr std::size_t kNumCounters = 11;
const char* to_string(Counter counter);

/// Sampled gauges: last value and high-water mark. Sampled once per
/// scheduling round (ActiveTransmitters/ActiveReceivers only on rounds
/// where the policy built the active-endpoint map).
enum class Gauge : std::uint8_t {
  PendingCandidates = 0,
  SelectedPerRound,
  ActiveTransmitters,
  ActiveReceivers,
  TreapNodes,
  InFlight,
};
inline constexpr std::size_t kNumGauges = 6;
const char* to_string(Gauge gauge);

struct ProbeConfig {
  bool enabled = false;
  /// Raw-span ring capacity; 0 keeps aggregates only (no trace export).
  /// The ring is allocated once at construction.
  std::size_t event_capacity = 0;
};

/// Aggregated probe state, detached from the engine's lifetime (batch
/// runners destroy the engine before reporting). Plain data: safe to copy,
/// merge across repetitions, and diff across telemetry windows.
struct ProbeReport {
  bool enabled = false;
  std::array<std::uint64_t, kNumPhases> phase_self_ns{};   ///< exclusive
  std::array<std::uint64_t, kNumPhases> phase_total_ns{};  ///< inclusive
  std::array<std::uint64_t, kNumPhases> phase_calls{};
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauge_last{};
  std::array<std::uint64_t, kNumGauges> gauge_max{};
  std::uint64_t wall_ns = 0;  ///< probe construction -> report()

  /// Total self time across phases: the instrumented share of wall_ns.
  std::uint64_t instrumented_ns() const noexcept;
};

/// Accumulates `from` into `into` (phase times and counters add, gauge
/// maxima max, gauge lasts follow `from`) -- repetition aggregation.
void merge_report(ProbeReport& into, const ProbeReport& from);

/// {"phases":{...},"counters":{...},"gauges":{...}} for machine-readable
/// front ends (suite rows, rdcn_cli profile).
json::Value report_to_json(const ProbeReport& report);

class Probe {
 public:
  explicit Probe(const ProbeConfig& config);

  /// RAII phase span. A null probe makes construction and destruction
  /// no-ops (single branch, no clock read) -- instrumentation sites pass
  /// the engine's nullable pointer unconditionally.
  class Span {
   public:
    Span(Probe* probe, Phase phase) noexcept : probe_(probe) {
      if (probe_ != nullptr) probe_->begin_span(phase);
    }
    ~Span() {
      if (probe_ != nullptr) probe_->end_span();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Probe* probe_;
  };

  void count(Counter counter, std::uint64_t delta = 1) noexcept {
    counters_[static_cast<std::size_t>(counter)] += delta;
  }
  /// Overwrites a counter with an externally-maintained monotone value.
  void set(Counter counter, std::uint64_t value) noexcept {
    counters_[static_cast<std::size_t>(counter)] = value;
  }
  void gauge(Gauge gauge, std::uint64_t value) noexcept {
    const auto i = static_cast<std::size_t>(gauge);
    gauge_last_[i] = value;
    if (value > gauge_max_[i]) gauge_max_[i] = value;
  }

  std::uint64_t counter(Counter counter) const noexcept {
    return counters_[static_cast<std::size_t>(counter)];
  }
  std::uint64_t phase_self_ns(Phase phase) const noexcept {
    return phase_self_ns_[static_cast<std::size_t>(phase)];
  }
  std::uint64_t dropped_events() const noexcept {
    return counters_[static_cast<std::size_t>(Counter::DroppedEvents)];
  }

  /// Snapshot of the aggregates (callable mid-run; telemetry windows diff
  /// consecutive snapshots).
  ProbeReport report() const;

  /// Ring contents, oldest first. Copies out of the ring (the ring itself
  /// never reorders), so the hot path is undisturbed.
  std::vector<trace::TraceEvent> events() const;

  /// Chrome trace document of the ring plus the registry as "otherData".
  std::string chrome_trace_json(int indent = 0) const;

 private:
  static constexpr std::size_t kMaxSpanDepth = 8;

  struct Frame {
    Phase phase = Phase::Dispatch;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;  ///< time closed child spans covered
  };

  void begin_span(Phase phase) noexcept;
  void end_span() noexcept;
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;

  std::array<std::uint64_t, kNumPhases> phase_self_ns_{};
  std::array<std::uint64_t, kNumPhases> phase_total_ns_{};
  std::array<std::uint64_t, kNumPhases> phase_calls_{};
  std::array<std::uint64_t, kNumCounters> counters_{};
  std::array<std::uint64_t, kNumGauges> gauge_last_{};
  std::array<std::uint64_t, kNumGauges> gauge_max_{};

  std::array<Frame, kMaxSpanDepth> stack_{};
  std::size_t depth_ = 0;
  /// Spans deeper than kMaxSpanDepth are folded into their ancestor
  /// (counted as its self time) instead of overflowing the stack.
  std::size_t overflow_depth_ = 0;

  /// Pre-sized ring, oldest at next_ once full (drop-oldest overwrite).
  std::vector<trace::TraceEvent> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_size_ = 0;
};

}  // namespace rdcn
