#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace rdcn {

Engine::Engine(const Instance& instance, DispatchPolicy& dispatcher,
               SchedulePolicy& scheduler, EngineOptions options)
    : instance_(&instance),
      dispatcher_(&dispatcher),
      scheduler_(&scheduler),
      options_(options) {
  const std::string error = instance.validate();
  if (!error.empty()) throw std::invalid_argument("invalid instance: " + error);
  if (options_.speedup_rounds < 1) throw std::invalid_argument("speedup_rounds must be >= 1");
  if (options_.endpoint_capacity < 1) {
    throw std::invalid_argument("endpoint_capacity must be >= 1");
  }
  if (options_.reconfig_delay < 0) throw std::invalid_argument("reconfig_delay must be >= 0");
  if (options_.reconfig_delay > 0 && options_.endpoint_capacity != 1) {
    throw std::invalid_argument("reconfig_delay requires endpoint_capacity == 1");
  }
  if (options_.record_trace &&
      (options_.speedup_rounds != 1 || options_.endpoint_capacity != 1 ||
       options_.reconfig_delay != 0 || options_.redispatch_queued)) {
    throw std::invalid_argument(
        "trace recording requires the analysis model (speedup 1, capacity 1, no "
        "reconfiguration delay, non-migratory)");
  }
  // Generous guard: demand-oblivious baselines (rotor) can take a full
  // matching cycle per chunk, far beyond the paper's reasonable-schedule
  // horizon, so the default only catches outright starvation.
  if (options_.max_steps == 0) {
    options_.max_steps =
        instance.horizon_bound() * 64 * (options_.reconfig_delay + 1) + 64;
  }
  state_.resize(instance.num_packets());
  pending_by_transmitter_.resize(static_cast<std::size_t>(topology().num_transmitters()));
  pending_by_receiver_.resize(static_cast<std::size_t>(topology().num_receivers()));
  transmitter_config_.resize(static_cast<std::size_t>(topology().num_transmitters()));
  receiver_config_.resize(static_cast<std::size_t>(topology().num_receivers()));
  result_.outcomes.resize(instance.num_packets());
}

bool Engine::work_left() const {
  return next_arrival_ < instance_->num_packets() || !pending_.empty();
}

void Engine::apply_route(const Packet& packet, const RouteDecision& route) {
  auto& ps = state_[static_cast<std::size_t>(packet.id)];
  auto& outcome = result_.outcomes[static_cast<std::size_t>(packet.id)];
  ps.route = route;
  ps.dispatched = true;
  outcome.route = route;

  if (route.use_fixed) {
    const auto delay = topology().fixed_link_delay(packet.source, packet.destination);
    if (!delay) throw std::logic_error("dispatcher chose a non-existent fixed link");
    // Fixed links are uncapacitated: transmission starts at the decision
    // time (== arrival for the normal dispatch path; later when a queued
    // packet migrates to the fixed layer).
    const Time start = std::max(now_, packet.arrival);
    outcome.completion = start + *delay;
    outcome.weighted_latency =
        packet.weight * static_cast<double>(outcome.completion - packet.arrival);
    result_.fixed_cost += outcome.weighted_latency;
    result_.total_cost += outcome.weighted_latency;
    result_.makespan = std::max(result_.makespan, outcome.completion);
  } else {
    if (route.edge < 0 || route.edge >= topology().num_edges()) {
      throw std::logic_error("dispatcher chose an invalid edge");
    }
    const ReconfigEdge& edge = topology().edge(route.edge);
    if (topology().source_of(edge.transmitter) != packet.source ||
        topology().destination_of(edge.receiver) != packet.destination) {
      throw std::logic_error("dispatcher chose an edge outside E_p");
    }
    ps.remaining = edge.delay;
    ps.chunk_weight = packet.weight / static_cast<double>(edge.delay);
    pending_.push_back(packet.id);
    pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)].push_back(packet.id);
    pending_by_receiver_[static_cast<std::size_t>(edge.receiver)].push_back(packet.id);
    outcome.chunk_transmit_steps.reserve(static_cast<std::size_t>(edge.delay));
  }
}

void Engine::dispatch_arrivals() {
  const auto& packets = instance_->packets();
  while (next_arrival_ < packets.size() && packets[next_arrival_].arrival == now_) {
    const Packet& packet = packets[next_arrival_];
    apply_route(packet, dispatcher_->dispatch(*this, packet));
    ++next_arrival_;
  }
}

void Engine::unlist_pending(PacketIndex packet) {
  const auto& ps = state_[static_cast<std::size_t>(packet)];
  const ReconfigEdge& edge = topology().edge(ps.route.edge);
  std::erase(pending_, packet);
  std::erase(pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)], packet);
  std::erase(pending_by_receiver_[static_cast<std::size_t>(edge.receiver)], packet);
}

void Engine::redispatch_queued_packets() {
  // Packets with every chunk still untransmitted may change route; they
  // are re-offered to the dispatcher in arrival order, each temporarily
  // removed so it does not see itself as queue pressure.
  std::vector<PacketIndex> queued;
  for (PacketIndex p : pending_) {
    const auto& ps = state_[static_cast<std::size_t>(p)];
    if (ps.remaining == topology().edge(ps.route.edge).delay) queued.push_back(p);
  }
  std::sort(queued.begin(), queued.end(), [this](PacketIndex a, PacketIndex b) {
    return arrived_before(instance_->packets()[static_cast<std::size_t>(a)],
                          instance_->packets()[static_cast<std::size_t>(b)]);
  });
  for (PacketIndex p : queued) {
    const Packet& packet = instance_->packets()[static_cast<std::size_t>(p)];
    unlist_pending(p);
    auto& ps = state_[static_cast<std::size_t>(p)];
    ps.remaining = 0;
    apply_route(packet, dispatcher_->dispatch(*this, packet));
  }
}

std::size_t Engine::schedule_round(bool record) {
  std::vector<Candidate> candidates;
  candidates.reserve(pending_.size());
  for (PacketIndex p : pending_) {
    const auto& ps = state_[static_cast<std::size_t>(p)];
    const ReconfigEdge& edge = topology().edge(ps.route.edge);
    Candidate candidate;
    candidate.packet = p;
    candidate.edge = ps.route.edge;
    candidate.transmitter = edge.transmitter;
    candidate.receiver = edge.receiver;
    candidate.chunk_weight = ps.chunk_weight;
    candidate.arrival = instance_->packets()[static_cast<std::size_t>(p)].arrival;
    candidate.remaining = ps.remaining;
    candidates.push_back(candidate);
  }
  if (candidates.empty()) {
    if (record) result_.trace.push_back(StepRecord{now_, {}, 0});
    return 0;
  }

  std::vector<std::size_t> selected = scheduler_->select(*this, now_, candidates);

  // Validate the selection is a (b-)matching: per-endpoint load within
  // capacity, each edge used at most once. owner_* additionally tracks the
  // single occupant for the trace path (capacity 1 there by construction).
  std::vector<bool> chosen(candidates.size(), false);
  std::vector<PacketIndex> owner_t(static_cast<std::size_t>(topology().num_transmitters()), -1);
  std::vector<PacketIndex> owner_r(static_cast<std::size_t>(topology().num_receivers()), -1);
  std::vector<int> load_t(static_cast<std::size_t>(topology().num_transmitters()), 0);
  std::vector<int> load_r(static_cast<std::size_t>(topology().num_receivers()), 0);
  std::vector<bool> edge_used(static_cast<std::size_t>(topology().num_edges()), false);
  for (std::size_t index : selected) {
    if (index >= candidates.size() || chosen[index]) {
      throw std::logic_error("scheduler returned an invalid candidate index");
    }
    chosen[index] = true;
    const Candidate& c = candidates[index];
    if (edge_used[static_cast<std::size_t>(c.edge)]) {
      throw std::logic_error("scheduler selected one edge twice");
    }
    edge_used[static_cast<std::size_t>(c.edge)] = true;
    if (++load_t[static_cast<std::size_t>(c.transmitter)] > options_.endpoint_capacity ||
        ++load_r[static_cast<std::size_t>(c.receiver)] > options_.endpoint_capacity) {
      throw std::logic_error("scheduler selection exceeds endpoint capacity");
    }
    owner_t[static_cast<std::size_t>(c.transmitter)] = c.packet;
    owner_r[static_cast<std::size_t>(c.receiver)] = c.packet;
  }

  // Reconfiguration-delay extension: an endpoint only carries a chunk when
  // it is already tuned to that edge; otherwise this selection starts (or
  // retargets) its retuning and the chunk stays queued.
  if (options_.reconfig_delay > 0) {
    std::vector<std::size_t> usable;
    usable.reserve(selected.size());
    for (std::size_t index : selected) {
      const Candidate& c = candidates[index];
      auto& tc = transmitter_config_[static_cast<std::size_t>(c.transmitter)];
      auto& rc = receiver_config_[static_cast<std::size_t>(c.receiver)];
      bool ready = true;
      if (tc.target != c.edge) {
        tc.target = c.edge;
        tc.ready = now_ + options_.reconfig_delay;
        ready = false;
      } else if (now_ < tc.ready) {
        ready = false;
      }
      if (rc.target != c.edge) {
        rc.target = c.edge;
        rc.ready = now_ + options_.reconfig_delay;
        ready = false;
      } else if (now_ < rc.ready) {
        ready = false;
      }
      if (ready) {
        usable.push_back(index);
      } else {
        chosen[index] = false;
      }
    }
    selected = std::move(usable);
  }

  StepRecord step;
  step.time = now_;
  step.matching_size = selected.size();
  if (record) step.packets.reserve(candidates.size());

  // Transmit the selected chunks and account their latency.
  std::vector<PacketIndex> finished;
  for (std::size_t index : selected) {
    const Candidate& c = candidates[index];
    auto& ps = state_[static_cast<std::size_t>(c.packet)];
    auto& outcome = result_.outcomes[static_cast<std::size_t>(c.packet)];
    const ReconfigEdge& edge = topology().edge(c.edge);
    const Time completion = now_ + 1 + topology().transmitter_attach_delay(edge.transmitter) +
                            topology().receiver_attach_delay(edge.receiver);
    outcome.chunk_transmit_steps.push_back(now_);
    const double latency = c.chunk_weight * static_cast<double>(completion - c.arrival);
    outcome.weighted_latency += latency;
    result_.reconfig_cost += latency;
    result_.total_cost += latency;
    --ps.remaining;
    if (ps.remaining == 0) {
      outcome.completion = completion;
      result_.makespan = std::max(result_.makespan, completion);
      finished.push_back(c.packet);
    }
  }

  if (record) {
    // For every pending packet, note whether it transmitted and otherwise
    // which transmitted packet blocked it (the heaviest conflicting owner;
    // the charging auditor checks the priority relation separately).
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      StepPacketRecord rec;
      rec.packet = c.packet;
      rec.transmitted = chosen[i];
      if (!chosen[i]) {
        const PacketIndex via_t = owner_t[static_cast<std::size_t>(c.transmitter)];
        const PacketIndex via_r = owner_r[static_cast<std::size_t>(c.receiver)];
        PacketIndex blocker = -1;
        auto better = [this](PacketIndex a, PacketIndex b) {
          // Prefer the blocker earlier in the chunk priority order:
          // heavier chunk first, then earlier arrival, then lower id.
          if (b == -1) return a;
          if (a == -1) return b;
          const auto& sa = state_[static_cast<std::size_t>(a)];
          const auto& sb = state_[static_cast<std::size_t>(b)];
          if (sa.chunk_weight != sb.chunk_weight) {
            return sa.chunk_weight > sb.chunk_weight ? a : b;
          }
          const auto& pa = instance_->packets()[static_cast<std::size_t>(a)];
          const auto& pb = instance_->packets()[static_cast<std::size_t>(b)];
          return arrived_before(pa, pb) ? a : b;
        };
        blocker = better(via_t, via_r);
        rec.blocker = blocker;
      }
      step.packets.push_back(rec);
    }
  }
  if (record) result_.trace.push_back(std::move(step));

  for (PacketIndex p : finished) {
    const auto& ps = state_[static_cast<std::size_t>(p)];
    const ReconfigEdge& edge = topology().edge(ps.route.edge);
    std::erase(pending_, p);
    std::erase(pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)], p);
    std::erase(pending_by_receiver_[static_cast<std::size_t>(edge.receiver)], p);
  }
  return selected.size();
}

RunResult Engine::run() {
  const auto& packets = instance_->packets();
  now_ = 0;
  while (work_left()) {
    if (pending_.empty() && next_arrival_ < packets.size() &&
        packets[next_arrival_].arrival > now_ + 1) {
      now_ = packets[next_arrival_].arrival;  // fast-forward over idle gaps
    } else {
      ++now_;
    }
    ++result_.steps_simulated;
    if (result_.steps_simulated > options_.max_steps) {
      throw std::runtime_error("engine exceeded max_steps; scheduler may be starving packets");
    }
    dispatch_arrivals();
    if (options_.redispatch_queued) redispatch_queued_packets();
    for (int round = 0; round < options_.speedup_rounds; ++round) {
      if (pending_.empty() && round > 0) break;
      schedule_round(options_.record_trace);
    }
  }
  return std::move(result_);
}

RunResult simulate(const Instance& instance, DispatchPolicy& dispatcher,
                   SchedulePolicy& scheduler, EngineOptions options) {
  Engine engine(instance, dispatcher, scheduler, options);
  return engine.run();
}

}  // namespace rdcn
