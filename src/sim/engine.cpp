#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rdcn {

Engine::Engine(const Instance& instance, DispatchPolicy& dispatcher,
               SchedulePolicy& scheduler, EngineOptions options)
    : instance_(&instance),
      topology_(&instance.topology()),
      dispatcher_(&dispatcher),
      scheduler_(&scheduler) {
  const std::string error = instance.validate();
  if (!error.empty()) throw std::invalid_argument("invalid instance: " + error);
  init(options);
  if (options_.max_steps == 0) {
    options_.max_steps = default_max_steps(instance, options_.reconfig_delay);
  }
  // Batch mode knows the full packet count up front: size every window
  // array once so dispatch never grows them incrementally.
  const std::size_t n = instance.num_packets();
  state_.reserve(n);
  remaining_.reserve(n);
  chunk_weight_.reserve(n);
  assigned_transmitter_.reserve(n);
  outcomes_.reserve(n);
  queue_pos_transmitter_.reserve(n);
  queue_pos_receiver_.reserve(n);
  impact_index_.reserve_pending(n);
  result_.outcomes.resize(n);
  // Seed the per-endpoint pending queues: their incremental growth during
  // the run otherwise accounts for most of the run loop's allocations.
  const std::size_t queue_seed = std::min<std::size_t>(n, 16);
  for (auto& queue : pending_by_transmitter_) queue.reserve(queue_seed);
  for (auto& queue : pending_by_receiver_) queue.reserve(queue_seed);
}

Engine::Engine(const Topology& topology, DispatchPolicy& dispatcher,
               SchedulePolicy& scheduler, EngineOptions options, RetireSink sink)
    : topology_(&topology),
      dispatcher_(&dispatcher),
      scheduler_(&scheduler),
      sink_(std::move(sink)) {
  const std::string error = topology.validate();
  if (!error.empty()) throw std::invalid_argument("invalid topology: " + error);
  if (!sink_) throw std::invalid_argument("streaming engine needs a retirement sink");
  if (options.record_trace) {
    throw std::invalid_argument("trace recording requires batch mode");
  }
  if (options.redispatch_queued) {
    throw std::invalid_argument("queued redispatch requires batch mode");
  }
  init(options);
}

void Engine::init(EngineOptions options) {
  options_ = options;
  if (options_.speedup_rounds < 1) throw std::invalid_argument("speedup_rounds must be >= 1");
  if (options_.endpoint_capacity < 1) {
    throw std::invalid_argument("endpoint_capacity must be >= 1");
  }
  if (options_.reconfig_delay < 0) throw std::invalid_argument("reconfig_delay must be >= 0");
  if (options_.reconfig_delay > 0 && options_.endpoint_capacity != 1) {
    throw std::invalid_argument("reconfig_delay requires endpoint_capacity == 1");
  }
  if (options_.record_trace &&
      (options_.speedup_rounds != 1 || options_.endpoint_capacity != 1 ||
       options_.reconfig_delay != 0 || options_.redispatch_queued)) {
    throw std::invalid_argument(
        "trace recording requires the analysis model (speedup 1, capacity 1, no "
        "reconfiguration delay, non-migratory)");
  }
  const auto num_t = static_cast<std::size_t>(topology_->num_transmitters());
  const auto num_r = static_cast<std::size_t>(topology_->num_receivers());
  pending_by_transmitter_.resize(num_t);
  pending_by_receiver_.resize(num_r);
  transmitter_config_.resize(num_t);
  receiver_config_.resize(num_r);
  edge_used_round_.assign(static_cast<std::size_t>(topology_->num_edges()), 0);
  load_t_round_.assign(num_t, 0);
  load_r_round_.assign(num_r, 0);
  load_t_.assign(num_t, 0);
  load_r_.assign(num_r, 0);
  owner_t_.assign(num_t, -1);
  owner_r_.assign(num_r, -1);
  active_.transmitter_rank_.assign(num_t, -1);
  active_.receiver_rank_.assign(num_r, -1);
  impact_index_.attach(*topology_);
  const auto num_edges = static_cast<std::size_t>(topology_->num_edges());
  edge_alive_.assign(num_edges, 1);
  edge_meta_.resize(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    const ReconfigEdge& edge = topology_->edge(static_cast<EdgeIndex>(i));
    EdgeMeta& meta = edge_meta_[i];
    const auto du =
        static_cast<double>(topology_->transmitter_attach_delay(edge.transmitter));
    const auto dv = static_cast<double>(topology_->receiver_attach_delay(edge.receiver));
    const auto d = static_cast<double>(edge.delay);
    meta.base_coeff = du + (d + 1.0) / 2.0 + dv;
    meta.delay = d;
    meta.attach_tail = topology_->transmitter_attach_delay(edge.transmitter) +
                       topology_->receiver_attach_delay(edge.receiver);
  }
  // A selection is a (b-)matching, so its size is bounded a priori; sizing
  // the round-loop scratch here keeps even the first rounds off the heap.
  const std::size_t matching_bound =
      std::min(num_t, num_r) * static_cast<std::size_t>(options_.endpoint_capacity);
  selection_.mutable_indices().reserve(matching_bound);
  finished_scratch_.reserve(matching_bound);
  if (options_.audit) auditor_ = make_invariant_auditor();
  if (options_.probe.enabled) {
    probe_store_ = std::make_unique<Probe>(options_.probe);
    probe_ = probe_store_.get();
  }
}

bool Engine::work_left() const {
  return next_arrival_ < instance_->num_packets() || !candidates_.empty() ||
         !staged_.empty();
}

// rdcn-lint: hot
void Engine::append_slot(const Packet& packet) {
  if (packet.id != window_base_ + static_cast<PacketIndex>(state_.size())) {
    throw std::logic_error("packets must be dispatched in sequence-id order");
  }
  PacketState ps;
  ps.arrival = packet.arrival;
  ps.weight = packet.weight;
  ps.source = packet.source;
  ps.destination = packet.destination;
  state_.push_back(ps);
  remaining_.push_back(0);
  chunk_weight_.push_back(0.0);
  assigned_transmitter_.push_back(-1);
  outcomes_.emplace_back();
  queue_pos_transmitter_.push_back(-1);
  queue_pos_receiver_.push_back(-1);
  peak_resident_ = std::max(peak_resident_, state_.size());
  ++in_flight_;
  ++dispatched_count_;
  if (probe_) probe_->count(Counter::PacketsDispatched);
}

// rdcn-lint: hot
void Engine::retire_packet(PacketIndex packet) {
  const std::size_t s = slot(packet);
  if (auditor_) auditor_->on_retire(*this, packet, outcomes_[s]);
  state_[s].retired = true;
  --in_flight_;
  ++retired_count_;
  if (probe_) probe_->count(Counter::PacketsRetired);
  if (sink_) {
    sink_(RetiredPacket{packet, state_[s].arrival, state_[s].weight,
                        std::move(outcomes_[s])});
  } else {
    result_.outcomes[static_cast<std::size_t>(packet)] = std::move(outcomes_[s]);
  }
  compact_window();
}

// rdcn-lint: hot
void Engine::compact_window() {
  while (front_retired_ < state_.size() && state_[front_retired_].retired) {
    ++front_retired_;
  }
  // Amortized O(1) per packet: the prefix erase costs O(window) and only
  // fires once the retired prefix covers half the (>= 128 slot) window.
  if (front_retired_ < 64 || front_retired_ * 2 < state_.size()) return;
  const auto n = static_cast<std::ptrdiff_t>(front_retired_);
  state_.erase(state_.begin(), state_.begin() + n);
  remaining_.erase(remaining_.begin(), remaining_.begin() + n);
  chunk_weight_.erase(chunk_weight_.begin(), chunk_weight_.begin() + n);
  assigned_transmitter_.erase(assigned_transmitter_.begin(),
                              assigned_transmitter_.begin() + n);
  outcomes_.erase(outcomes_.begin(), outcomes_.begin() + n);
  queue_pos_transmitter_.erase(queue_pos_transmitter_.begin(),
                               queue_pos_transmitter_.begin() + n);
  queue_pos_receiver_.erase(queue_pos_receiver_.begin(), queue_pos_receiver_.begin() + n);
  window_base_ += static_cast<PacketIndex>(front_retired_);
  front_retired_ = 0;
}

// rdcn-lint: hot
void Engine::apply_route(const Packet& packet, const RouteDecision& route) {
  if (auditor_) auditor_->on_dispatch(*this, packet, route);
  const std::size_t s = slot(packet.id);
  auto& ps = state_[s];
  auto& outcome = outcomes_[s];
  ps.route = route;
  ps.dispatched = true;
  outcome.route = route;

  if (route.use_fixed) {
    assigned_transmitter_[s] = -1;  // may migrate here under redispatch_queued
    const auto delay = topology_->fixed_link_delay(packet.source, packet.destination);
    if (!delay) throw std::logic_error("dispatcher chose a non-existent fixed link");
    // Fixed links are uncapacitated: transmission starts at the decision
    // time (== arrival for the normal dispatch path; later when a queued
    // packet migrates to the fixed layer).
    const Time start = std::max(now_, packet.arrival);
    outcome.completion = start + *delay;
    outcome.weighted_latency =
        packet.weight * static_cast<double>(outcome.completion - packet.arrival);
    result_.fixed_cost += outcome.weighted_latency;
    result_.total_cost += outcome.weighted_latency;
    result_.makespan = std::max(result_.makespan, outcome.completion);
    retire_packet(packet.id);
  } else {
    if (route.edge < 0 || route.edge >= topology_->num_edges()) {
      throw std::logic_error("dispatcher chose an invalid edge");
    }
    if (!edge_alive(route.edge)) {
      throw std::logic_error("dispatcher chose an edge killed by a stage mutation");
    }
    const ReconfigEdge& edge = topology_->edge(route.edge);
    if (topology_->source_of(edge.transmitter) != packet.source ||
        topology_->destination_of(edge.receiver) != packet.destination) {
      throw std::logic_error("dispatcher chose an edge outside E_p");
    }
    auto& remaining = remaining_[s];
    auto& chunk_weight = chunk_weight_[s];
    remaining = edge.delay;
    chunk_weight = packet.weight / static_cast<double>(edge.delay);
    assigned_transmitter_[s] = edge.transmitter;

    auto& t_queue = pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)];
    auto& r_queue = pending_by_receiver_[static_cast<std::size_t>(edge.receiver)];
    queue_pos_transmitter_[s] = static_cast<std::int32_t>(t_queue.size());
    queue_pos_receiver_[s] = static_cast<std::int32_t>(r_queue.size());
    t_queue.push_back(packet.id);  // rdcn-lint: allow(hot-alloc) -- pending_by_* seeded in init
    r_queue.push_back(packet.id);  // rdcn-lint: allow(hot-alloc) -- pending_by_* seeded in init
    impact_index_.add_chunks(edge.transmitter, edge.receiver, route.edge, chunk_weight,
                             remaining);

    Candidate candidate;
    candidate.packet = packet.id;
    candidate.edge = route.edge;
    candidate.transmitter = edge.transmitter;
    candidate.receiver = edge.receiver;
    candidate.chunk_weight = chunk_weight;
    candidate.arrival = packet.arrival;
    candidate.remaining = remaining;
    staged_.push_back(candidate);  // rdcn-lint: allow(hot-alloc) -- settles at high-water capacity (see merge)

    outcome.chunk_transmit_steps.reserve(static_cast<std::size_t>(edge.delay));
  }
}

// rdcn-lint: hot
void Engine::merge_staged_candidates() {
  if (staged_.empty()) return;
  Probe::Span span(probe_, Phase::MergeCompact);
  if (probe_) probe_->count(Counter::CandidatesMerged, staged_.size());
  std::sort(staged_.begin(), staged_.end(), chunk_higher_priority);
  if (candidates_.empty()) {
    candidates_.swap(staged_);
  } else {
    // One linear pass into a reusable buffer: both vectors settle at the
    // high-water capacity and the merge stops allocating.
    merge_scratch_.clear();
    merge_scratch_.reserve(candidates_.size() + staged_.size());
    std::merge(candidates_.begin(), candidates_.end(), staged_.begin(), staged_.end(),
               std::back_inserter(merge_scratch_), chunk_higher_priority);
    candidates_.swap(merge_scratch_);
    staged_.clear();
  }
}

// rdcn-lint: hot
ImpactSplit Engine::impact_split(EdgeIndex e, double threshold) const {
  // Timed at query granularity (rebuild + deferred-event flush + lookup):
  // per-update spans inside add_chunks would cost more than the O(1)
  // counter work they measure. Nests under Dispatch (or Select).
  Probe::Span span(probe_, Phase::IndexMaintenance);
  if (probe_) probe_->count(Counter::ImpactQueries);
  if (!impact_index_.weight_ready()) impact_index_.rebuild(candidates_, staged_);
  return impact_index_.edge_split(e, threshold);
}

// rdcn-lint: hot
const ActiveEndpoints& Engine::active_endpoints(
    const std::vector<Candidate>& candidates) const {
  // Round-stamped cache for the engine's own pending list; a foreign list
  // (benches driving select() directly) rebuilds every call. Rank entries
  // of endpoints absent from `candidates` are left stale on purpose --
  // consumers may only look up endpoints of the candidates themselves.
  const bool own = &candidates == &candidates_;
  if (own && active_serial_ == select_serial_ && select_serial_ != 0) return active_;
  active_.transmitters.clear();
  active_.receivers.clear();
  for (const Candidate& c : candidates) {
    const auto t = static_cast<std::size_t>(c.transmitter);
    const auto r = static_cast<std::size_t>(c.receiver);
    // First-appearance check via the rank array: a stale rank either lies
    // outside the current active list or points at a different endpoint.
    const std::int32_t t_rank = active_.transmitter_rank_[t];
    if (t_rank < 0 || static_cast<std::size_t>(t_rank) >= active_.transmitters.size() ||
        active_.transmitters[static_cast<std::size_t>(t_rank)] != c.transmitter) {
      active_.transmitter_rank_[t] = static_cast<std::int32_t>(active_.transmitters.size());
      active_.transmitters.push_back(c.transmitter);  // rdcn-lint: allow(hot-alloc) -- grows to high-water endpoint count
    }
    const std::int32_t r_rank = active_.receiver_rank_[r];
    if (r_rank < 0 || static_cast<std::size_t>(r_rank) >= active_.receivers.size() ||
        active_.receivers[static_cast<std::size_t>(r_rank)] != c.receiver) {
      active_.receiver_rank_[r] = static_cast<std::int32_t>(active_.receivers.size());
      active_.receivers.push_back(c.receiver);  // rdcn-lint: allow(hot-alloc) -- grows to high-water endpoint count
    }
  }
  active_serial_ = own ? select_serial_ : 0;
  return active_;
}

// rdcn-lint: hot
void Engine::dispatch_arrivals() {
  const auto& packets = instance_->packets();
  if (next_arrival_ >= packets.size() || packets[next_arrival_].arrival != now_) return;
  Probe::Span span(probe_, Phase::Dispatch);
  while (next_arrival_ < packets.size() && packets[next_arrival_].arrival == now_) {
    const Packet& packet = packets[next_arrival_];
    append_slot(packet);
    if (dead_edges_ != 0 && !has_viable_route(packet.source, packet.destination)) {
      drop_packet(packet.id);  // pair severed by failures; nothing to route over
    } else {
      apply_route(packet, dispatcher_->dispatch(*this, packet));
    }
    ++next_arrival_;
  }
}

// rdcn-lint: hot
void Engine::inject(const Packet& packet) {
  if (packet.arrival != now_) {
    throw std::logic_error("inject: packet.arrival must equal the current step");
  }
  Probe::Span span(probe_, Phase::Dispatch);
  append_slot(packet);
  if (dead_edges_ != 0 && !has_viable_route(packet.source, packet.destination)) {
    drop_packet(packet.id);  // pair severed by failures; nothing to route over
  } else {
    apply_route(packet, dispatcher_->dispatch(*this, packet));
  }
}

// rdcn-lint: hot
void Engine::erase_from_queue(std::vector<PacketIndex>& queue,
                              std::vector<std::int32_t>& position, PacketIndex packet) {
  // Swap-remove: every queue consumer (impact_of, JSQ load, membership
  // checks) aggregates order-independently, so O(1) removal beats keeping
  // dispatch order and shifting the tail on every retirement.
  const auto index = static_cast<std::size_t>(position[slot(packet)]);
  position[slot(packet)] = -1;
  if (index + 1 != queue.size()) {
    queue[index] = queue.back();
    position[slot(queue[index])] = static_cast<std::int32_t>(index);
  }
  queue.pop_back();
}

// rdcn-lint: hot
void Engine::unlist_pending(PacketIndex packet) {
  const auto& ps = state_[slot(packet)];
  const ReconfigEdge& edge = topology_->edge(ps.route.edge);

  // The priority key (chunk_weight, arrival, id) is immutable, so the
  // candidate's slot is found by binary search instead of a full scan.
  Candidate key;
  key.packet = packet;
  key.chunk_weight = chunk_weight_[slot(packet)];
  key.arrival = ps.arrival;
  const auto it =
      std::lower_bound(candidates_.begin(), candidates_.end(), key, chunk_higher_priority);
  if (it == candidates_.end() || it->packet != packet) {
    throw std::logic_error("unlist_pending: packet is not pending");
  }
  candidates_.erase(it);

  erase_from_queue(pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)],
                   queue_pos_transmitter_, packet);
  erase_from_queue(pending_by_receiver_[static_cast<std::size_t>(edge.receiver)],
                   queue_pos_receiver_, packet);
  impact_index_.add_chunks(edge.transmitter, edge.receiver, ps.route.edge,
                           chunk_weight_[slot(packet)], -remaining_[slot(packet)]);
}

void Engine::drop_packet(PacketIndex packet) {
  const std::size_t s = slot(packet);
  outcomes_[s].dropped = true;
  if (auditor_) auditor_->on_drop(*this, packet, outcomes_[s]);
  state_[s].retired = true;
  --in_flight_;
  ++dropped_count_;
  if (probe_) probe_->count(Counter::PacketsDropped);
  if (sink_) {
    sink_(RetiredPacket{packet, state_[s].arrival, state_[s].weight,
                        std::move(outcomes_[s])});
  } else {
    result_.outcomes[static_cast<std::size_t>(packet)] = std::move(outcomes_[s]);
  }
  compact_window();
}

// rdcn-lint: hot
void Engine::viable_edges_into(NodeIndex source, NodeIndex destination,
                               std::vector<EdgeIndex>& out) const {
  topology_->candidate_edges_into(source, destination, out);
  if (dead_edges_ == 0) return;  // steady state: pure pass-through
  std::size_t write = 0;
  for (EdgeIndex e : out) {
    if (edge_alive_[static_cast<std::size_t>(e)]) out[write++] = e;
  }
  out.resize(write);
}

bool Engine::has_viable_route(NodeIndex source, NodeIndex destination) const {
  if (topology_->fixed_link_delay(source, destination)) return true;
  topology_->candidate_edges_into(source, destination, route_scratch_);
  if (dead_edges_ == 0) return !route_scratch_.empty();
  for (EdgeIndex e : route_scratch_) {
    if (edge_alive_[static_cast<std::size_t>(e)]) return true;
  }
  return false;
}

MutationStats Engine::apply_mutation(const StageMutation& mutation) {
  if (step_open_) {
    throw std::logic_error("apply_mutation: only valid at a step boundary");
  }
  if (options_.record_trace || options_.redispatch_queued) {
    throw std::invalid_argument(
        "stage mutations are incompatible with record_trace / redispatch_queued");
  }
  MutationStats stats;
  merge_staged_candidates();  // unlist_pending needs the merged list

  const auto num_edges = static_cast<std::size_t>(topology_->num_edges());
  const auto valid_rack = [&](NodeIndex r) {
    return r >= 0 && (r < topology_->num_sources() || r < topology_->num_destinations());
  };
  const auto rack_touches = [&](const ReconfigEdge& edge, NodeIndex r) {
    return topology_->source_of(edge.transmitter) == r ||
           topology_->destination_of(edge.receiver) == r;
  };
  const auto restore_edge = [&](EdgeIndex e) {
    char& alive = edge_alive_[static_cast<std::size_t>(e)];
    if (!alive) {
      alive = 1;
      --dead_edges_;
      ++stats.edges_restored;
    }
  };
  const auto kill_edge = [&](EdgeIndex e) {
    char& alive = edge_alive_[static_cast<std::size_t>(e)];
    if (alive) {
      alive = 0;
      ++dead_edges_;
      ++stats.edges_killed;
    }
  };

  // Restores before kills: an edge named by both stays dead.
  for (EdgeIndex e : mutation.restore_edges) {
    if (e < 0 || e >= topology_->num_edges()) {
      throw std::invalid_argument("apply_mutation: restore_edges index out of range");
    }
    restore_edge(e);
  }
  for (NodeIndex r : mutation.restore_racks) {
    if (!valid_rack(r)) {
      throw std::invalid_argument("apply_mutation: restore_racks index out of range");
    }
    for (std::size_t i = 0; i < num_edges; ++i) {
      const auto e = static_cast<EdgeIndex>(i);
      if (rack_touches(topology_->edge(e), r)) restore_edge(e);
    }
  }
  for (EdgeIndex e : mutation.kill_edges) {
    if (e < 0 || e >= topology_->num_edges()) {
      throw std::invalid_argument("apply_mutation: kill_edges index out of range");
    }
    kill_edge(e);
  }
  for (NodeIndex r : mutation.kill_racks) {
    if (!valid_rack(r)) {
      throw std::invalid_argument("apply_mutation: kill_racks index out of range");
    }
    for (std::size_t i = 0; i < num_edges; ++i) {
      const auto e = static_cast<EdgeIndex>(i);
      if (rack_touches(topology_->edge(e), r)) kill_edge(e);
    }
  }

  // In-flight packets stranded on freshly-killed edges, in (arrival, id)
  // order so requeue re-dispatch is deterministic and arrival-fair.
  // Edges dead before this call carry no candidates, so scanning for any
  // dead edge finds exactly the newly stranded set.
  if (stats.edges_killed != 0) {
    mutation_scratch_.clear();
    for (const Candidate& c : candidates_) {
      if (!edge_alive_[static_cast<std::size_t>(c.edge)]) {
        mutation_scratch_.push_back(c.packet);
      }
    }
    std::sort(mutation_scratch_.begin(), mutation_scratch_.end(),
              [this](PacketIndex a, PacketIndex b) {
                const Time aa = state_[slot(a)].arrival;
                const Time ab = state_[slot(b)].arrival;
                if (aa != ab) return aa < ab;
                return a < b;
              });
    for (PacketIndex p : mutation_scratch_) {
      const std::size_t s = slot(p);
      const bool untouched =
          remaining_[s] == topology_->edge(state_[s].route.edge).delay;
      unlist_pending(p);
      if (mutation.dead_policy == DeadPolicy::Requeue && untouched &&
          has_viable_route(state_[s].source, state_[s].destination)) {
        remaining_[s] = 0;
        Packet packet;
        packet.id = p;
        packet.arrival = state_[s].arrival;
        packet.weight = state_[s].weight;
        packet.source = state_[s].source;
        packet.destination = state_[s].destination;
        if (auditor_) auditor_->on_requeue(*this, p);
        ++requeued_count_;
        ++stats.packets_requeued;
        if (probe_) probe_->count(Counter::PacketsRequeued);
        apply_route(packet, dispatcher_->dispatch(*this, packet));
      } else {
        drop_packet(p);
        ++stats.packets_dropped;
      }
    }
    merge_staged_candidates();
  }

  if (mutation.speedup_rounds != 0) {
    if (mutation.speedup_rounds < 1) {
      throw std::invalid_argument("apply_mutation: speedup_rounds must be >= 1");
    }
    options_.speedup_rounds = mutation.speedup_rounds;
  }
  if (mutation.endpoint_capacity != 0) {
    if (mutation.endpoint_capacity < 1) {
      throw std::invalid_argument("apply_mutation: endpoint_capacity must be >= 1");
    }
    if (options_.reconfig_delay > 0 && mutation.endpoint_capacity != 1) {
      throw std::invalid_argument(
          "apply_mutation: reconfig_delay requires endpoint_capacity == 1");
    }
    options_.endpoint_capacity = mutation.endpoint_capacity;
    // The matching bound may have grown; keep the round loop off the heap.
    const auto num_t = static_cast<std::size_t>(topology_->num_transmitters());
    const auto num_r = static_cast<std::size_t>(topology_->num_receivers());
    const std::size_t matching_bound =
        std::min(num_t, num_r) * static_cast<std::size_t>(options_.endpoint_capacity);
    selection_.mutable_indices().reserve(matching_bound);
    finished_scratch_.reserve(matching_bound);
  }

  crosscheck_impact_index();
  if (probe_) probe_->count(Counter::StageMutations);
  return stats;
}

void Engine::crosscheck_impact_index() {
  // Rebuild the index from the candidate list alone and require bitwise
  // agreement: integer loads always, treap splits when the live index has
  // its weight structures up (canonical hash-priority shape makes the
  // incremental and rebuilt treaps structurally identical). Mutations are
  // cold, so the O(n log n) rebuild is free at steady state.
  ImpactIndex fresh;
  fresh.attach(*topology_);
  for (const Candidate& c : candidates_) {
    fresh.add_chunks(c.transmitter, c.receiver, c.edge, c.chunk_weight, c.remaining);
  }
  const auto num_edges = static_cast<std::size_t>(topology_->num_edges());
  for (std::size_t i = 0; i < num_edges; ++i) {
    const auto e = static_cast<EdgeIndex>(i);
    if (impact_index_.edge_load(e) != fresh.edge_load(e)) {
      throw std::logic_error(
          "apply_mutation: impact index edge load diverged from rebuild");
    }
  }
  if (impact_index_.weight_ready()) {
    fresh.rebuild(candidates_, staged_);
    for (const Candidate& c : candidates_) {
      const ImpactSplit live = impact_index_.edge_split(c.edge, c.chunk_weight);
      const ImpactSplit ref = fresh.edge_split(c.edge, c.chunk_weight);
      if (live.heavier != ref.heavier || live.lighter_weight != ref.lighter_weight) {
        throw std::logic_error(
            "apply_mutation: impact index weight split diverged from rebuild");
      }
    }
  }
}

void Engine::redispatch_queued_packets() {
  merge_staged_candidates();
  // Packets with every chunk still untransmitted may change route; they
  // are re-offered to the dispatcher in arrival order, each temporarily
  // removed so it does not see itself as queue pressure.
  std::vector<PacketIndex> queued;
  for (const Candidate& c : candidates_) {
    if (c.remaining == topology_->edge(c.edge).delay) queued.push_back(c.packet);
  }
  std::sort(queued.begin(), queued.end(), [this](PacketIndex a, PacketIndex b) {
    const Time aa = state_[slot(a)].arrival;
    const Time ab = state_[slot(b)].arrival;
    if (aa != ab) return aa < ab;
    return a < b;
  });
  for (PacketIndex p : queued) {
    const Packet& packet = instance_->packets()[static_cast<std::size_t>(p)];
    unlist_pending(p);
    remaining_[slot(p)] = 0;
    apply_route(packet, dispatcher_->dispatch(*this, packet));
  }
  merge_staged_candidates();
}

// rdcn-lint: hot
std::size_t Engine::schedule_round(bool record) {
  merge_staged_candidates();
  if (candidates_.empty()) {
    if (record) result_.trace.push_back(StepRecord{now_, {}, 0});  // rdcn-lint: allow(hot-alloc) -- record mode only
    return 0;
  }

  if (probe_) {
    probe_->count(Counter::Rounds);
    probe_->gauge(Gauge::PendingCandidates, candidates_.size());
    probe_->gauge(Gauge::InFlight, in_flight_);
    probe_->gauge(Gauge::TreapNodes, impact_index_.live_weight_nodes());
    probe_->set(Counter::IndexRebuilds, impact_index_.rebuilds());
  }

  ++select_serial_;  // invalidates the active-endpoint map of the last round
  selection_.clear();
  {
    Probe::Span span(probe_, Phase::Select);
    scheduler_->select(*this, now_, candidates_, selection_);
  }
  const std::vector<std::size_t>& selected = selection_.indices();
  if (probe_ && active_serial_ == select_serial_) {
    // The policy built the active-endpoint map this round; sample it.
    probe_->gauge(Gauge::ActiveTransmitters, active_.transmitters.size());
    probe_->gauge(Gauge::ActiveReceivers, active_.receivers.size());
  }

  // The auditor validates first (independently), so a contract violation
  // under audit surfaces as AuditFailure, not as the engine's logic_error.
  if (auditor_) auditor_->on_selection(*this, candidates_, selected);

  // Validate the selection is a (b-)matching: per-endpoint load within
  // capacity, each edge used at most once. Scratch arrays are stamped with
  // the round serial so nothing is re-zeroed per round. owner_* tracks the
  // single occupant for the trace path (capacity 1 there by construction).
  ++round_serial_;
  const std::uint64_t round = round_serial_;
  {
    Probe::Span validate_span(probe_, Phase::Validate);
    chosen_round_.resize(std::max(chosen_round_.size(), candidates_.size()), 0);
    for (std::size_t index : selected) {
      if (index >= candidates_.size() || chosen_round_[index] == round) {
        throw std::logic_error("scheduler returned an invalid candidate index");
      }
      chosen_round_[index] = round;
      const Candidate& c = candidates_[index];
      const auto e = static_cast<std::size_t>(c.edge);
      const auto t = static_cast<std::size_t>(c.transmitter);
      const auto r = static_cast<std::size_t>(c.receiver);
      if (edge_used_round_[e] == round) {
        throw std::logic_error("scheduler selected one edge twice");
      }
      edge_used_round_[e] = round;
      if (load_t_round_[t] != round) {
        load_t_round_[t] = round;
        load_t_[t] = 0;
      }
      if (load_r_round_[r] != round) {
        load_r_round_[r] = round;
        load_r_[r] = 0;
      }
      if (++load_t_[t] > options_.endpoint_capacity ||
          ++load_r_[r] > options_.endpoint_capacity) {
        throw std::logic_error("scheduler selection exceeds endpoint capacity");
      }
      if (record) {
        owner_t_[t] = c.packet;
        owner_r_[r] = c.packet;
      }
    }

    // Reconfiguration-delay extension: an endpoint only carries a chunk
    // when it is already tuned to that edge; otherwise this selection
    // starts (or retargets) its retuning and the chunk stays queued.
    if (options_.reconfig_delay > 0) {
      // Filter the selection in place: endpoints not yet tuned to their
      // edge keep their chunk queued and drop out of this round's
      // transmit set.
      std::vector<std::size_t>& indices = selection_.mutable_indices();
      std::size_t write = 0;
      for (std::size_t index : indices) {
        const Candidate& c = candidates_[index];
        auto& tc = transmitter_config_[static_cast<std::size_t>(c.transmitter)];
        auto& rc = receiver_config_[static_cast<std::size_t>(c.receiver)];
        bool ready = true;
        if (tc.target != c.edge) {
          tc.target = c.edge;
          tc.ready = now_ + options_.reconfig_delay;
          ready = false;
        } else if (now_ < tc.ready) {
          ready = false;
        }
        if (rc.target != c.edge) {
          rc.target = c.edge;
          rc.ready = now_ + options_.reconfig_delay;
          ready = false;
        } else if (now_ < rc.ready) {
          ready = false;
        }
        if (ready) {
          indices[write++] = index;
        } else {
          chosen_round_[index] = 0;
        }
      }
      indices.resize(write);
    }
  }

  if (probe_) probe_->gauge(Gauge::SelectedPerRound, selected.size());

  if (auditor_) auditor_->on_round(*this, candidates_, selected);

  StepRecord step;
  step.time = now_;
  step.matching_size = selected.size();
  if (record) step.packets.reserve(candidates_.size());

  // Transmit the selected chunks and account their latency. `remaining`
  // is updated in place on both the packet state and its candidate entry.
  std::vector<std::size_t>& finished_slots = finished_scratch_;
  finished_slots.clear();
  Probe::Span service_span(probe_, Phase::Service);
  if (probe_) probe_->count(Counter::ChunksTransmitted, selected.size());
  for (std::size_t index : selected) {
    Candidate& c = candidates_[index];
    auto& remaining = remaining_[slot(c.packet)];
    auto& outcome = outcomes_[slot(c.packet)];
    const Time completion =
        now_ + 1 + edge_meta_[static_cast<std::size_t>(c.edge)].attach_tail;
    outcome.chunk_transmit_steps.push_back(now_);
    const double latency = c.chunk_weight * static_cast<double>(completion - c.arrival);
    outcome.weighted_latency += latency;
    result_.reconfig_cost += latency;
    result_.total_cost += latency;
    --remaining;
    c.remaining = remaining;
    impact_index_.add_chunks(c.transmitter, c.receiver, c.edge, c.chunk_weight, -1);
    if (remaining == 0) {
      outcome.completion = completion;
      result_.makespan = std::max(result_.makespan, completion);
      finished_slots.push_back(index);  // rdcn-lint: allow(hot-alloc) -- ref to finished_scratch_, reserved in init
    }
  }

  if (record) {
    // For every pending packet, note whether it transmitted and otherwise
    // which transmitted packet blocked it (the heaviest conflicting owner;
    // the charging auditor checks the priority relation separately).
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const Candidate& c = candidates_[i];
      StepPacketRecord rec;
      rec.packet = c.packet;
      rec.transmitted = chosen_round_[i] == round;
      if (!rec.transmitted) {
        const auto t = static_cast<std::size_t>(c.transmitter);
        const auto r = static_cast<std::size_t>(c.receiver);
        const PacketIndex via_t = load_t_round_[t] == round ? owner_t_[t] : -1;
        const PacketIndex via_r = load_r_round_[r] == round ? owner_r_[r] : -1;
        auto better = [this](PacketIndex a, PacketIndex b) {
          // Prefer the blocker earlier in the chunk priority order:
          // heavier chunk first, then earlier arrival, then lower id.
          if (b == -1) return a;
          if (a == -1) return b;
          const Weight wa = chunk_weight_[slot(a)];
          const Weight wb = chunk_weight_[slot(b)];
          if (wa != wb) return wa > wb ? a : b;
          const Time aa = state_[slot(a)].arrival;
          const Time ab = state_[slot(b)].arrival;
          if (aa != ab) return aa < ab ? a : b;
          return a < b ? a : b;
        };
        rec.blocker = better(via_t, via_r);
      }
      step.packets.push_back(rec);
    }
  }
  if (record) result_.trace.push_back(std::move(step));  // rdcn-lint: allow(hot-alloc) -- record mode only

  // Drop completed packets: one compaction pass over the candidate tail
  // plus scan-free removal from the per-endpoint queues, then retirement
  // out of the per-packet window.
  if (!finished_slots.empty()) {
    std::sort(finished_slots.begin(), finished_slots.end());
    for (std::size_t index : finished_slots) {
      const Candidate& c = candidates_[index];
      erase_from_queue(pending_by_transmitter_[static_cast<std::size_t>(c.transmitter)],
                       queue_pos_transmitter_, c.packet);
      erase_from_queue(pending_by_receiver_[static_cast<std::size_t>(c.receiver)],
                       queue_pos_receiver_, c.packet);
      retire_packet(c.packet);
    }
    // Compaction is a MergeCompact child of the surrounding Service span:
    // self-time accounting keeps the two phases disjoint.
    Probe::Span compact_span(probe_, Phase::MergeCompact);
    std::size_t write = finished_slots.front();
    std::size_t next_finished = 0;
    for (std::size_t read = write; read < candidates_.size(); ++read) {
      if (next_finished < finished_slots.size() && read == finished_slots[next_finished]) {
        ++next_finished;
        continue;
      }
      candidates_[write++] = candidates_[read];
    }
    candidates_.resize(write);
  }
  return selected.size();
}

// rdcn-lint: hot
void Engine::begin_step(const Time* next_arrival) {
  // Cooperative cancellation: null (no deadline armed) is one pointer
  // test; armed is one extra relaxed load. Thrown here, never mid-step,
  // so a cancelled run stops on the same step-edge contract as mutations.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw CancelledError("run cancelled at step boundary (deadline exceeded)");
  }
  const Time previous = now_;
  if (candidates_.empty() && staged_.empty() && next_arrival != nullptr &&
      *next_arrival > now_ + 1) {
    now_ = *next_arrival;  // event-driven: jump idle gaps
  } else {
    ++now_;
  }
  ++result_.steps_simulated;
  if (options_.max_steps > 0 && result_.steps_simulated > options_.max_steps) {
    throw std::runtime_error("engine exceeded max_steps; scheduler may be starving packets");
  }
  step_open_ = true;
  if (auditor_) auditor_->on_step_begin(*this, previous);
}

// rdcn-lint: hot
void Engine::finish_step() {
  if (options_.redispatch_queued) redispatch_queued_packets();
  for (int round = 0; round < options_.speedup_rounds; ++round) {
    if (candidates_.empty() && staged_.empty() && round > 0) break;
    schedule_round(options_.record_trace);
  }
  if (auditor_) auditor_->on_step_end(*this);
  step_open_ = false;
}

RunResult Engine::run() {
  if (instance_ == nullptr) {
    throw std::logic_error("run() requires batch mode; streaming engines are step-driven");
  }
  const auto& packets = instance_->packets();
  now_ = 0;
  while (work_left()) {
    const Time* upcoming =
        next_arrival_ < packets.size() ? &packets[next_arrival_].arrival : nullptr;
    begin_step(upcoming);
    dispatch_arrivals();
    finish_step();
  }
  if (probe_) result_.probe = probe_->report();
  return std::move(result_);
}

RunResult Engine::run(const std::vector<TimedMutation>& schedule) {
  if (instance_ == nullptr) {
    throw std::logic_error("run() requires batch mode; streaming engines are step-driven");
  }
  if (options_.record_trace || options_.redispatch_queued) {
    throw std::invalid_argument(
        "staged runs are incompatible with record_trace / redispatch_queued");
  }
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].at < schedule[i - 1].at) {
      throw std::invalid_argument("stage schedule must be sorted by time");
    }
  }
  const auto& packets = instance_->packets();
  now_ = 0;
  std::size_t next_stage = 0;
  while (true) {
    // A mutation at time T governs every step with now() >= T, so it is
    // applied once the next step's clock (now()+1, barring idle jumps --
    // which the clamp below caps at T-1) reaches it.
    while (next_stage < schedule.size() && schedule[next_stage].at <= now_ + 1) {
      apply_mutation(schedule[next_stage].mutation);
      ++next_stage;
    }
    if (!work_left()) break;
    const Time* upcoming =
        next_arrival_ < packets.size() ? &packets[next_arrival_].arrival : nullptr;
    Time stage_bound = 0;
    if (next_stage < schedule.size()) {
      // Clamp the idle jump to the step before the stage edge: the loop
      // head then applies the mutation and step T runs post-mutation.
      stage_bound = schedule[next_stage].at - 1;
      if (upcoming == nullptr || stage_bound < *upcoming) upcoming = &stage_bound;
    }
    begin_step(upcoming);
    dispatch_arrivals();
    finish_step();
  }
  if (probe_) result_.probe = probe_->report();
  return std::move(result_);
}

RunResult simulate(const Instance& instance, DispatchPolicy& dispatcher,
                   SchedulePolicy& scheduler, EngineOptions options) {
  Engine engine(instance, dispatcher, scheduler, options);
  return engine.run();
}

Time default_max_steps(const Instance& instance, Delay reconfig_delay) {
  return instance.horizon_bound() * 64 * (reconfig_delay + 1) + 64;
}

}  // namespace rdcn
